// An analysis session over the synthetic SkyServer database: runs the seven
// long-running queries of the paper's Table 3 under the hybrid estimator and
// summarizes per-query mu and estimator accuracy.
//
//   $ ./skyserver_session [num_photoobj=60000]

#include <cstdio>
#include <cstdlib>

#include "core/monitor.h"
#include "skyserver/skyserver.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  skyserver::SkyServerConfig config;
  if (argc > 1) {
    config.num_photoobj = static_cast<uint64_t>(std::atoll(argv[1]));
  }
  std::printf("generating synthetic SkyServer (%llu photo objects)...\n",
              static_cast<unsigned long long>(config.num_photoobj));
  Database db;
  Status status = skyserver::GenerateSkyServer(config, &db);
  QPROG_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());

  std::printf("\n%-7s %-10s %-12s %-14s %-14s %-10s\n", "query", "rows",
              "total(Q)", "hybrid max", "hybrid avg", "mu");
  for (int id : skyserver::AvailableSkyQueries()) {
    auto plan = skyserver::BuildSkyQuery(id, db);
    QPROG_CHECK(plan.ok());
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan.value(), {"hybrid"});
    ProgressReport report = monitor.RunWithApproxCheckpoints(100);
    EstimatorMetrics m = report.Metrics(0);
    std::printf("%-7d %-10llu %-12llu %-13.2f%% %-13.2f%% %-10.3f\n", id,
                static_cast<unsigned long long>(report.root_rows),
                static_cast<unsigned long long>(report.total_work),
                100 * m.max_abs_err, 100 * m.avg_abs_err, report.mu);
  }
  return 0;
}
