// The paper's Theorem 1, live: two database instances that every
// single-relation statistic and every execution prefix agree on, whose true
// totals differ by 10x. Any estimator must answer identically on both at the
// decision point — so one of the two answers is off by an order of
// magnitude.
//
//   $ ./adversarial_instances [n=20000]

#include <cstdio>
#include <cstdlib>

#include "core/monitor.h"
#include "stats/table_stats.h"
#include "workload/adversarial.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 20000;
  AdversarialPair pair(n);
  std::printf("R1 has %llu rows; the tuple at position %llu is x=%lld on one "
              "instance, y=%lld on the other.\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(pair.special_position()),
              static_cast<long long>(pair.x()),
              static_cast<long long>(pair.y()));

  // 1. The single-relation statistics are identical.
  HistogramStatisticsGenerator gen(16);
  auto sx = gen.Generate(pair.r1_with_x());
  auto sy = gen.Generate(pair.r1_with_y());
  const Histogram& hx = *sx->column(0).histogram;
  const Histogram& hy = *sy->column(0).histogram;
  bool same = hx.num_buckets() == hy.num_buckets();
  for (size_t b = 0; same && b < hx.num_buckets(); ++b) {
    same = hx.bucket(b).count == hy.bucket(b).count &&
           hx.bucket(b).lower.EqualsForGrouping(hy.bucket(b).lower) &&
           hx.bucket(b).upper.EqualsForGrouping(hy.bucket(b).upper);
  }
  std::printf("histograms identical on both instances: %s\n",
              same ? "yes" : "NO (bug!)");

  // 2. The totals differ by ~10x.
  PhysicalPlan px = pair.BuildPlan(/*use_y_instance=*/false);
  PhysicalPlan py = pair.BuildPlan(/*use_y_instance=*/true);
  uint64_t tx = MeasureTotalWork(&px);
  uint64_t ty = MeasureTotalWork(&py);
  std::printf("total(Q) with x: %llu    total(Q) with y: %llu   (ratio %.1fx)\n",
              static_cast<unsigned long long>(tx),
              static_cast<unsigned long long>(ty),
              static_cast<double>(ty) / static_cast<double>(tx));

  // 3. Every estimator gives the same answer on both, just before the
  //    special tuple is read — and the true progress it should report is
  //    ~0.9 on one instance and ~0.09 on the other.
  uint64_t decision_work = pair.special_position();
  auto probe = [&](bool use_y) {
    PhysicalPlan plan = pair.BuildPlan(use_y);
    ProgressMonitor m =
        ProgressMonitor::WithEstimators(&plan, AllEstimatorNames());
    ProgressReport r = m.Run(decision_work);
    return r;
  };
  ProgressReport rx = probe(false);
  ProgressReport ry = probe(true);
  std::printf("\nat the decision point (before the special tuple):\n");
  std::printf("%-12s %-12s %-12s\n", "estimator", "estimate(x)",
              "estimate(y)");
  for (size_t i = 0; i < rx.names.size(); ++i) {
    std::printf("%-12s %-12.4f %-12.4f\n", rx.names[i].c_str(),
                rx.checkpoints.front().estimates[i],
                ry.checkpoints.front().estimates[i]);
  }
  std::printf("%-12s %-12.4f %-12.4f  <- what they should have said\n",
              "truth", rx.checkpoints.front().true_progress,
              ry.checkpoints.front().true_progress);
  std::printf(
      "\nsafe splits the difference geometrically — the worst-case-optimal "
      "answer (Theorem 6).\n");
  return 0;
}
