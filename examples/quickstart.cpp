// Quickstart: build a small database, run a SQL query, and watch progress
// estimates stream while it executes.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: Database/Table loading,
// statistics collection, the SQL frontend, plan printing, and a live
// ProgressMonitor-style observer loop with the dne/pmax/safe estimators.

#include <cstdio>

#include "common/random.h"
#include "core/bounds.h"
#include "core/estimators.h"
#include "core/pipeline.h"
#include "sql/planner.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main() {
  // 1. Create a database with one million sensor readings.
  Database db;
  auto table = db.CreateTable(
      "readings", Schema({{"sensor_id", TypeId::kInt64},
                          {"temperature", TypeId::kDouble},
                          {"status", TypeId::kString}}));
  QPROG_CHECK(table.ok());
  Rng rng(7);
  const int64_t kRows = 1000000;
  table.value()->Reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    double temp = 15.0 + rng.NextGaussian() * 8.0;
    table.value()->AppendRow(
        {Value::Int64(rng.UniformInt(0, 999)), Value::Double(temp),
         Value::String(temp > 35.0 ? "alert" : "ok")});
  }

  // 2. Collect single-relation statistics (histograms) for the planner.
  HistogramStatisticsGenerator stats_gen(32);
  db.SetStats("readings", stats_gen.Generate(*db.GetTable("readings")));

  // 3. Plan a SQL query.
  const char* query =
      "SELECT sensor_id, count(*) AS n, avg(temperature) AS avg_temp "
      "FROM readings WHERE temperature > 20 "
      "GROUP BY sensor_id ORDER BY avg_temp DESC LIMIT 5";
  auto plan = sql::PlanSql(query, db);
  QPROG_CHECK(plan.ok());
  std::printf("query: %s\n\nplan:\n%s\n", query,
              plan.value().ToString().c_str());

  // 4. Execute with live progress estimates every ~10%% of the work.
  ExecContext ctx;
  BoundsTracker tracker(&plan.value());
  std::vector<Pipeline> pipelines = DecomposePipelines(plan.value());
  ProgressContext pc;
  pc.plan = &plan.value();
  pc.exec = &ctx;
  pc.pipelines = &pipelines;
  pc.scanned_leaf_cardinality = ScannedLeafCardinality(plan.value());

  DneEstimator dne;
  PmaxEstimator pmax;
  SafeEstimator safe;
  std::printf("%-12s %-8s %-8s %-8s\n", "work", "dne", "pmax", "safe");
  ctx.SetWorkObserver(kRows / 10, [&](uint64_t work) {
    PlanBounds bounds = tracker.Compute(ctx);
    pc.bounds = &bounds;
    std::printf("%-12llu %-8.3f %-8.3f %-8.3f\n",
                static_cast<unsigned long long>(work), dne.Estimate(pc),
                pmax.Estimate(pc), safe.Estimate(pc));
    pc.bounds = nullptr;
  });

  std::vector<Row> results;
  exec::Drive(&plan.value(),
              {.ctx = &ctx,
               .sink = [&results](const Row& row) { results.push_back(row); }});
  std::printf("\nresults:\n");
  for (const Row& row : results) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
  std::printf("\ntotal work: %llu getnext calls\n",
              static_cast<unsigned long long>(ctx.work()));
  return 0;
}
