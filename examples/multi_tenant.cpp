// Multi-tenant serving: one QueryServer, two tenants with different quotas,
// a shared memory pool the governor arbitrates, and fleet-level progress
// reporting across every in-flight query.
//
// The walkthrough: warm the admission priors with a monitored run, register
// an untrusted tenant with a tight quota, burst a mixed workload, watch the
// fleet report while queries queue and run, see the over-quota tenant get
// shed with a retry-after hint, then drain and inspect the learned
// per-template statistics.
//
//   $ ./multi_tenant

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "server/query_server.h"
#include "storage/catalog.h"
#include "storage/table.h"

using namespace qprog;  // NOLINT(build/namespaces)

namespace {

Table MakeOrders(int64_t n) {
  Table t("orders", Schema({{"customer", TypeId::kInt64},
                            {"amount", TypeId::kInt64}}));
  Rng rng(7);
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    // Customers appear gradually, so aggregates keep buffering new groups
    // for the whole scan — the shape the memory governor cares about.
    t.AppendRow({Value::Int64(i / 32), Value::Int64(rng.UniformInt(1, 500))});
  }
  return t;
}

void PrintFleet(const QueryServer& server) {
  FleetReport fleet = server.Fleet();
  std::printf("fleet: %zu queued, %zu running, %llu done, %llu shed | pool %llu/%llu rows, %llu revocations\n",
              fleet.queued, fleet.running,
              static_cast<unsigned long long>(fleet.done),
              static_cast<unsigned long long>(fleet.shed),
              static_cast<unsigned long long>(fleet.granted_rows),
              static_cast<unsigned long long>(fleet.pool_rows),
              static_cast<unsigned long long>(fleet.revocations));
  for (const FleetQueryInfo& q : fleet.queries) {
    switch (q.state) {
      case FleetQueryInfo::State::kQueued:
        std::printf("  #%llu [%s] queued at position %zu (predicted wait ~%.1f ms)\n",
                    static_cast<unsigned long long>(q.ticket),
                    q.tenant.c_str(), q.queue_position,
                    static_cast<double>(q.predicted_wait_ns) / 1e6);
        break;
      case FleetQueryInfo::State::kRunning: {
        std::printf("  #%llu [%s] running, work=%llu",
                    static_cast<unsigned long long>(q.ticket),
                    q.tenant.c_str(),
                    static_cast<unsigned long long>(q.work));
        for (size_t i = 0; i < q.estimator_names.size() &&
                           i < q.estimates.size(); ++i) {
          std::printf("  %s=%.3f", q.estimator_names[i].c_str(),
                      q.estimates[i]);
        }
        std::printf("\n");
        break;
      }
      case FleetQueryInfo::State::kDone:
        std::printf("  #%llu [%s] done: %s\n",
                    static_cast<unsigned long long>(q.ticket),
                    q.tenant.c_str(),
                    q.status.ok() ? "ok" : q.status.ToString().c_str());
        break;
    }
  }
}

}  // namespace

int main() {
  Table orders = MakeOrders(200000);
  Database db;
  if (!db.AddTable(std::move(orders)).ok()) return 1;

  ServerOptions opts;
  opts.sessions = 2;
  opts.checkpoint_interval = 5000;
  opts.estimators = {"dne", "safe"};
  opts.governor.pool_rows = 4096;  // shared across the whole fleet
  opts.governor.min_grant_rows = 128;
  opts.admission.fallback_peak_rows = 1024;
  QueryServer server(&db, opts);

  // "analytics" is trusted; "adhoc" may hold at most one query in flight.
  TenantQuota tight;
  tight.max_concurrent = 1;
  server.RegisterTenant("adhoc", tight);

  const char* kReport =
      "SELECT customer, count(*), sum(amount) FROM orders GROUP BY customer";
  const char* kTotal = "SELECT sum(amount), max(amount) FROM orders";

  // 1. Warm the priors: after this run the admission controller predicts
  //    this template's peak memory from its observed footprint instead of
  //    the seeded fallback.
  std::printf("-- warming priors --\n");
  uint64_t warm = server.Submit("analytics", kReport);
  QueryResult wr = server.Wait(warm);
  std::printf("warm-up: %s, peak %llu buffered rows (predicted %llu from %s)\n\n",
              wr.status.ok() ? "ok" : wr.status.ToString().c_str(),
              static_cast<unsigned long long>(wr.report.peak_buffered_rows),
              static_cast<unsigned long long>(wr.admission.predicted_peak_rows),
              wr.admission.predicted_from_prior ? "prior" : "fallback");

  // 2. Burst a mixed workload: more queries than sessions, plus an
  //    over-quota tenant.
  std::printf("-- bursting workload --\n");
  std::vector<uint64_t> tickets;
  tickets.push_back(server.Submit("analytics", kReport));
  tickets.push_back(server.Submit("analytics", kTotal));
  tickets.push_back(server.Submit("analytics", kReport));
  tickets.push_back(server.Submit("adhoc", kTotal));
  uint64_t over_quota = server.Submit("adhoc", kReport);  // quota is 1

  QueryResult shed = server.Wait(over_quota);
  std::printf("over-quota submission: %s (retry in ~%llu ms)\n",
              shed.status.ToString().c_str(),
              static_cast<unsigned long long>(shed.admission.retry_after_ms));

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  PrintFleet(server);

  // 3. Wait for everything; each monitored result carries its own full
  //    progress report.
  std::printf("\n-- results --\n");
  for (uint64_t id : tickets) {
    QueryResult r = server.Wait(id);
    std::printf("#%llu: %s, total_work=%llu, %zu checkpoints, spill_work=%llu, granted=%llu rows\n",
                static_cast<unsigned long long>(id),
                r.status.ok() ? "ok" : r.status.ToString().c_str(),
                static_cast<unsigned long long>(r.report.total_work),
                r.report.checkpoints.size(),
                static_cast<unsigned long long>(r.report.spill_work),
                static_cast<unsigned long long>(r.granted_rows));
  }

  // 4. Drain and inspect what the fleet learned per template.
  server.Shutdown();
  std::printf("\n-- learned priors --\n");
  for (const auto& s : server.workload_stats().Snapshot()) {
    std::printf("template %016llx: runs=%llu, max peak=%llu rows, mean wall=%.1f ms\n",
                static_cast<unsigned long long>(s.fingerprint),
                static_cast<unsigned long long>(s.stats.runs),
                static_cast<unsigned long long>(s.stats.max_peak_buffered_rows),
                static_cast<double>(s.stats.MeanWallNanos()) / 1e6);
  }
  std::printf("\nfleet served %llu queries, shed %llu\n",
              static_cast<unsigned long long>(server.submitted()),
              static_cast<unsigned long long>(server.shed_total()));
  return 0;
}
