// Run any TPC-H query under the progress monitor and print the estimate
// trajectory plus error metrics for every estimator in the toolkit.
//
//   $ ./tpch_progress [query=21] [scale_factor=0.01] [z=2.0]

#include <cstdio>
#include <cstdlib>

#include "core/monitor.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int query = argc > 1 ? std::atoi(argv[1]) : 21;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.01;
  double z = argc > 3 ? std::atof(argv[3]) : 2.0;

  std::printf("generating TPC-H (scale %.3f, zipf z=%.1f)...\n", sf, z);
  Database db;
  tpch::TpchConfig config;
  config.scale_factor = sf;
  config.z = z;
  Status status = tpch::GenerateTpch(config, &db);
  QPROG_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());

  auto plan = tpch::BuildQuery(query, db);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan for Q%d:\n%s\n", query, plan.value().ToString().c_str());

  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), AllEstimatorNames());
  ProgressReport report = monitor.RunWithApproxCheckpoints(100);

  std::printf("%-8s", "actual");
  for (const std::string& n : report.names) std::printf(" %-10s", n.c_str());
  std::printf("\n");
  size_t step = std::max<size_t>(1, report.checkpoints.size() / 20);
  for (size_t i = 0; i < report.checkpoints.size(); i += step) {
    const Checkpoint& c = report.checkpoints[i];
    std::printf("%-8.3f", c.true_progress);
    for (double e : c.estimates) std::printf(" %-10.4f", e);
    std::printf("\n");
  }

  std::printf("\n%-12s %-10s %-10s\n", "estimator", "max_err", "avg_err");
  for (size_t i = 0; i < report.names.size(); ++i) {
    EstimatorMetrics m = report.Metrics(i);
    std::printf("%-12s %-9.2f%% %-9.2f%%\n", report.names[i].c_str(),
                100 * m.max_abs_err, 100 * m.avg_abs_err);
  }
  std::printf("\ntotal(Q) = %llu getnexts, rows = %llu, mu = %.3f\n",
              static_cast<unsigned long long>(report.total_work),
              static_cast<unsigned long long>(report.root_rows), report.mu);
  return 0;
}
