// Cancellation and guardrails: run a monitored query, watch the progress
// estimates stream, and cancel mid-flight from the checkpoint listener —
// the kill-or-wait decision the paper motivates progress estimation with.
// Also demonstrates work budgets and deterministic fault injection.
//
//   $ ./cancellation

#include <cstdio>

#include "common/random.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "storage/table.h"

using namespace qprog;  // NOLINT(build/namespaces)

namespace {

Table MakeReadings(int64_t n) {
  Table t("readings", Schema({{"sensor_id", TypeId::kInt64},
                              {"temperature", TypeId::kDouble}}));
  Rng rng(17);
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(rng.UniformInt(0, 999)),
                 Value::Double(15.0 + rng.NextGaussian() * 8.0)});
  }
  return t;
}

PhysicalPlan MakePlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Gt(eb::Col(1), eb::Dbl(20.0)));
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "n");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::move(filter), std::move(groups), std::vector<std::string>{"sensor"},
      std::move(aggs)));
}

void PrintOutcome(const char* label, const ProgressReport& r) {
  std::printf("%-22s termination=%-10s checkpoints=%zu total_work=%llu",
              label, TerminationReasonToString(r.termination),
              r.checkpoints.size(),
              static_cast<unsigned long long>(r.total_work));
  if (!r.status.ok()) std::printf("  (%s)", r.status.ToString().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Table readings = MakeReadings(500000);
  PhysicalPlan plan = MakePlan(&readings);

  // 1. A user watching the "safe" estimate kills the query once it claims
  //    the query is less than a quarter done after 100k getnext calls — a
  //    kill-or-wait policy expressed as a checkpoint listener.
  QueryGuard guard;
  MonitorOptions watch_opts;
  watch_opts.guard = &guard;
  watch_opts.checkpoint_listener = [&](const Checkpoint& cp) {
    double est = cp.estimates[0];
    std::printf("  work=%-8llu safe=%.3f\n",
                static_cast<unsigned long long>(cp.work), est);
    if (cp.work >= 100000 && est < 0.25) {
      std::printf("  -> too slow, cancelling\n");
      guard.RequestCancel();
    }
  };
  std::printf("-- kill-or-wait run --\n");
  {
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan, {"safe"}, watch_opts);
    PrintOutcome("listener cancel:", monitor.Run(50000));
  }

  // 2. The same query under a hard work budget. The environment is fixed at
  //    construction, so each phase builds its own monitor.
  MonitorOptions guard_opts;
  guard_opts.guard = &guard;
  guard.ResetCancel();
  guard.set_max_work(200000);
  {
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan, {"safe"}, guard_opts);
    PrintOutcome("work budget:", monitor.Run(50000));
  }
  guard.set_max_work(QueryGuard::kNoLimit);

  // 3. Deterministic fault injection: the scan dies at row 300000; the
  //    partial report is identical on every run with this seed.
  FaultInjector injector(42);
  FaultSpec fault;
  fault.site = faults::kSeqScanNext;
  fault.fail_on_hit = 300000;
  fault.message = "simulated I/O error";
  injector.Arm(std::move(fault));
  MonitorOptions fault_opts;
  fault_opts.guard = &guard;
  fault_opts.fault_injector = &injector;
  {
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan, {"safe"}, fault_opts);
    PrintOutcome("injected fault:", monitor.Run(50000));
  }

  // 4. Untouched, the query completes and the report carries true progress.
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"safe"}, guard_opts);
  PrintOutcome("clean run:", monitor.Run(50000));
  return 0;
}
