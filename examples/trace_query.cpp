// Record-and-replay walkthrough for the observability layer: execute a TPC-H
// query under the progress monitor with a JSONL trace sink attached, then
// throw the live results away and re-score every estimator offline from the
// trace file alone. Finishes with an EXPLAIN ANALYZE tree and the worst
// cardinality-estimate offenders from the accuracy tracker.
//
//   $ ./trace_query [query=1] [scale_factor=0.01] [trace=/tmp/qprog_trace.jsonl]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/monitor.h"
#include "obs/accuracy.h"
#include "obs/explain_analyze.h"
#include "obs/replay.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int query = argc > 1 ? std::atoi(argv[1]) : 1;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.01;
  std::string trace_path = argc > 3 ? argv[3] : "/tmp/qprog_trace.jsonl";

  std::printf("generating TPC-H (scale %.3f)...\n", sf);
  Database db;
  tpch::TpchConfig config;
  config.scale_factor = sf;
  Status status = tpch::GenerateTpch(config, &db);
  QPROG_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());

  auto plan = tpch::BuildQuery(query, db);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  // --- 1. Live run, tracing every event to a JSONL file. ------------------
  JsonlFileSink sink(trace_path);
  TelemetryCollector collector(&sink);
  MonitorOptions mon_opts;
  mon_opts.telemetry = &collector;
  ProgressMonitor monitor = ProgressMonitor::WithEstimators(
      &plan.value(), {"dne", "pmax", "safe"}, mon_opts);
  ProgressReport live = monitor.RunWithApproxCheckpoints(50);
  sink.Close();
  QPROG_CHECK_MSG(sink.ok(), "%s", sink.status().ToString().c_str());
  std::printf("ran Q%d: %zu checkpoints, %llu events -> %s\n", query,
              live.checkpoints.size(),
              static_cast<unsigned long long>(collector.events_emitted()),
              trace_path.c_str());

  // --- 2. Offline: replay the file and re-score the estimators. -----------
  // Nothing from the live run is consulted below except for the final
  // live-vs-replay comparison table.
  auto replayed = ReplayTraceFile(trace_path);
  QPROG_CHECK_MSG(replayed.ok(), "%s", replayed.status().ToString().c_str());
  const ProgressReport& offline = replayed.value().report;

  std::printf("\nre-scored from trace (live values in parentheses):\n");
  std::printf("%-12s %-20s %-20s\n", "estimator", "max_err", "avg_err");
  for (size_t i = 0; i < offline.names.size(); ++i) {
    EstimatorMetrics off = offline.Metrics(i);
    EstimatorMetrics on = live.Metrics(i);
    std::printf("%-12s %6.2f%% (%6.2f%%)     %6.2f%% (%6.2f%%)\n",
                offline.names[i].c_str(), 100 * off.max_abs_err,
                100 * on.max_abs_err, 100 * off.avg_abs_err,
                100 * on.avg_abs_err);
  }

  // The bounds-derived estimators can also be recomputed from scratch —
  // checkpoint events carry Curr/LB/UB, which is all pmax and safe need.
  ReevaluatedEstimates re = ReevaluateBoundEstimators(replayed.value());
  double max_dev = 0;
  for (size_t c = 0; c < re.estimates.size(); ++c) {
    for (size_t i = 0; i < re.names.size(); ++i) {
      for (size_t j = 0; j < offline.names.size(); ++j) {
        if (offline.names[j] != re.names[i]) continue;
        double dev = re.estimates[c][i] - offline.checkpoints[c].estimates[j];
        if (dev < 0) dev = -dev;
        if (dev > max_dev) max_dev = dev;
      }
    }
  }
  std::printf(
      "\nre-evaluated pmax/safe from raw checkpoint bounds: "
      "max deviation from recorded estimates = %g\n",
      max_dev);

  // --- 3. Re-execute with stats-only telemetry for the analyze view. ------
  TelemetryCollector stats;
  ExecContext ctx;
  ctx.set_telemetry(&stats);
  exec::Drive(&plan.value(), {.ctx = &ctx});
  QPROG_CHECK(ctx.ok());

  ExplainAnalyzeOptions opts;
  opts.telemetry = &stats;
  opts.include_timing = true;
  std::printf("\nEXPLAIN ANALYZE:\n%s",
              ExplainAnalyze(plan.value(), ctx, opts).c_str());

  RunTelemetry rt = BuildRunTelemetry(plan.value(), ctx, live, &stats);
  std::printf("\n%s\n", rt.summary.c_str());
  std::printf("cardinality log-error: avg=%.3f rms=%.3f twa=%.3f\n",
              rt.avg_log_error, rt.rms_log_error, rt.twa_log_error);
  std::printf("worst-estimated nodes:\n");
  size_t shown = 0;
  for (int id : rt.worst_nodes) {
    if (shown++ == 3) break;
    const NodeAccuracy& n = rt.nodes[static_cast<size_t>(id)];
    std::printf("  #%d %s: actual=%llu est=%.0f |log err|=%.2f\n", n.node_id,
                n.label.c_str(), static_cast<unsigned long long>(n.actual_rows),
                n.estimated_rows, n.log_error);
  }
  return 0;
}
