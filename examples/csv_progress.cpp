// Bring-your-own-data walkthrough: export a generated table to CSV, load it
// back, run SQL over it with a live progress bar, a bounds-annotated
// EXPLAIN, and a remaining-time projection.
//
//   $ ./csv_progress [rows=500000]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/bounds.h"
#include "core/estimators.h"
#include "core/explain.h"
#include "core/pipeline.h"
#include "sql/planner.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"
#include "storage/csv.h"

using namespace qprog;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 500000;

  // 1. Fabricate an "export" the way an upstream system would hand it over.
  Table orders("orders_raw", Schema({{"order_id", TypeId::kInt64},
                                     {"region", TypeId::kString},
                                     {"amount", TypeId::kDouble},
                                     {"placed", TypeId::kDate}}));
  Rng rng(11);
  const char* regions[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < rows; ++i) {
    orders.AppendRow({Value::Int64(i),
                      Value::String(regions[rng.Uniform(4)]),
                      Value::Double(rng.UniformDouble(1, 500)),
                      Value::Date(static_cast<int32_t>(
                          rng.UniformInt(19000, 19365)))});
  }
  std::string path = "/tmp/qprog_orders.csv";
  QPROG_CHECK(WriteCsv(orders, path).ok());
  std::printf("wrote %lld rows to %s\n", static_cast<long long>(rows),
              path.c_str());

  // 2. Load it into a database and collect statistics.
  Database db;
  auto loaded = ReadCsv(path, "orders", orders.schema());
  QPROG_CHECK(loaded.ok());
  QPROG_CHECK(db.AddTable(std::move(loaded).value()).ok());
  HistogramStatisticsGenerator gen(32);
  db.SetStats("orders", gen.Generate(*db.GetTable("orders")));

  // 3. Plan SQL and run it with progress + ETA.
  auto plan = sql::PlanSql(
      "SELECT region, count(*), sum(amount) FROM orders "
      "WHERE amount > 100 GROUP BY region ORDER BY region",
      db);
  QPROG_CHECK(plan.ok());

  ExecContext ctx;
  BoundsTracker tracker(&plan.value());
  std::vector<Pipeline> pipelines = DecomposePipelines(plan.value());
  ProgressContext pc;
  pc.plan = &plan.value();
  pc.exec = &ctx;
  pc.pipelines = &pipelines;
  pc.scanned_leaf_cardinality = ScannedLeafCardinality(plan.value());
  // The factory accepts parameterized specs: "hybrid:2.5" tunes the mu
  // threshold at which the estimator switches from safe to pmax.
  auto hybrid_or = CreateEstimator("hybrid:2.5");
  QPROG_CHECK(hybrid_or.ok());
  std::unique_ptr<ProgressEstimator> hybrid = std::move(hybrid_or).value();

  auto start = std::chrono::steady_clock::now();
  bool printed_explain = false;
  std::printf("\n%-10s %-10s %-14s\n", "progress", "estimate", "eta_seconds");
  ctx.SetWorkObserver(static_cast<uint64_t>(rows) / 8, [&](uint64_t) {
    PlanBounds bounds = tracker.Compute(ctx);
    pc.bounds = &bounds;
    double est = hybrid->Estimate(pc);
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-10s %-10.3f %-14.4f\n", "...", est,
                EstimateRemainingSeconds(est, elapsed));
    pc.bounds = nullptr;
    if (!printed_explain) {
      printed_explain = true;
      std::printf("\nbounds-annotated explain at first checkpoint:\n%s\n",
                  ExplainWithBounds(plan.value(), ctx).c_str());
    }
  });
  std::vector<Row> results;
  exec::Drive(&plan.value(),
              {.ctx = &ctx,
               .sink = [&results](const Row& r) { results.push_back(r); }});

  std::printf("\nresults:\n");
  for (const Row& r : results) std::printf("  %s\n", RowToString(r).c_str());
  std::remove(path.c_str());
  return 0;
}
