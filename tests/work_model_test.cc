// Validates that the engine's getnext accounting reproduces the paper's
// worked examples exactly (Section 2.2, Examples 1 and 2).

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "index/ordered_index.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;

// Builds R1 with `n` rows of unique values 1..n in column A, except that the
// tuple at `special_pos` has value `special`.
Table MakeR1(int64_t n, int64_t special_pos, int64_t special) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({i == special_pos ? I(special) : I(i + 1)});
  }
  return testutil::MakeTable("r1", {"a"}, std::move(rows));
}

// R2 with `copies` rows of value `v` in column B.
Table MakeR2(int64_t copies, int64_t v) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < copies; ++i) rows.push_back({I(v)});
  return testutil::MakeTable("r2", {"b"}, std::move(rows));
}

// The Figure-2 plan: scan(R1) -> sigma(A = x OR A = y) -> INL join on
// R1.A = R2.B.
PhysicalPlan BuildFigure2Plan(const Table* r1, const OrderedIndex* idx,
                              int64_t x, int64_t y) {
  auto scan = std::make_unique<SeqScan>(r1);
  auto sigma = std::make_unique<Filter>(
      std::move(scan), eb::Or(eb::Eq(eb::Col(0, "a"), eb::Int(x)),
                              eb::Eq(eb::Col(0, "a"), eb::Int(y))));
  auto seek = std::make_unique<IndexSeek>(idx);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::move(sigma), std::move(seek), eb::Col(0, "a"));
  return PhysicalPlan(std::move(join));
}

// Example 1: |R2| has 9|R1|+9 rows of value y. When the special tuple's
// value is x (which matches nothing in R2), total = |R1| + 1; when it is y,
// total = 10|R1| + 10.
TEST(WorkModelTest, Example1TotalsDependOnOneTuple) {
  const int64_t n = 100;
  const int64_t x = 1000000, y = 2000000;
  Table r2 = MakeR2(9 * n + 9, y);
  OrderedIndex idx(&r2, 0);

  {
    Table r1 = MakeR1(n, /*special_pos=*/90, /*special=*/x);
    PhysicalPlan plan = BuildFigure2Plan(&r1, &idx, x, y);
    EXPECT_EQ(MeasureTotalWork(&plan), static_cast<uint64_t>(n + 1));
  }
  {
    Table r1 = MakeR1(n, /*special_pos=*/90, /*special=*/y);
    PhysicalPlan plan = BuildFigure2Plan(&r1, &idx, x, y);
    EXPECT_EQ(MeasureTotalWork(&plan), static_cast<uint64_t>(10 * n + 10));
  }
}

// Example 2: R1 and R2 both with N rows; exactly one R1 tuple passes the
// selection and joins with 10,000 rows of R2. total(Q) = N + 1 + 10000.
TEST(WorkModelTest, Example2Total) {
  const int64_t n = 2000;
  const int64_t match_val = 42;
  const int64_t matches = 500;  // scaled-down 10,000

  std::vector<Row> r1_rows;
  for (int64_t i = 0; i < n; ++i) r1_rows.push_back({I(i + 1000000)});
  r1_rows[n / 2] = {I(match_val)};
  Table r1 = testutil::MakeTable("r1", {"a"}, std::move(r1_rows));

  std::vector<Row> r2_rows;
  for (int64_t i = 0; i < matches; ++i) r2_rows.push_back({I(match_val)});
  for (int64_t i = matches; i < n; ++i) r2_rows.push_back({I(-i)});
  Table r2 = testutil::MakeTable("r2", {"b"}, std::move(r2_rows));
  OrderedIndex idx(&r2, 0);

  auto scan = std::make_unique<SeqScan>(&r1);
  auto sigma = std::make_unique<Filter>(
      std::move(scan), eb::Eq(eb::Col(0, "a"), eb::Int(match_val)));
  auto seek = std::make_unique<IndexSeek>(&idx);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::move(sigma), std::move(seek), eb::Col(0, "a"));
  PhysicalPlan plan(std::move(join));

  EXPECT_EQ(MeasureTotalWork(&plan), static_cast<uint64_t>(n + 1 + matches));
}

// Root production is excluded: a bare scan (root) does zero counted work.
TEST(WorkModelTest, RootRowsNotCounted) {
  Table t = testutil::MakeTable("t", {"a"}, {{I(1)}, {I(2)}, {I(3)}});
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::move(scan));
  ExecContext ctx;
  uint64_t rows = exec::Drive(&plan, {.ctx = &ctx}).root_rows;
  EXPECT_EQ(rows, 3u);
  EXPECT_EQ(ctx.work(), 0u);
}

// scan -> filter as root: only the scan's production counts.
TEST(WorkModelTest, FilterAboveScanCountsScanOnly) {
  Table t = testutil::MakeTable("t", {"a"}, {{I(1)}, {I(2)}, {I(3)}, {I(4)}});
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Gt(eb::Col(0, "a"), eb::Int(2)));
  PhysicalPlan plan(std::move(filter));
  ExecContext ctx;
  uint64_t rows = exec::Drive(&plan, {.ctx = &ctx}).root_rows;
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(ctx.work(), 4u);  // 4 scan rows crossed the scan->filter edge
}

// A predicate merged into the scan removes the separate sigma getnext for
// passing rows, but every examined base row still costs one getnext at the
// leaf (the paper's accounting: mu >= 1, LB >= sum of leaf cardinalities).
TEST(WorkModelTest, MergedScanPredicateChangesWork) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({I(i)});
  Table t = testutil::MakeTable("t", {"a"}, std::move(rows));

  // Separate filter node: work = 100 (scan) + 50 (filter) with agg root.
  auto scan1 = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan1),
                                         eb::Lt(eb::Col(0, "a"), eb::Int(50)));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg1 = std::make_unique<HashAggregate>(std::move(filter),
                                              std::vector<ExprPtr>{},
                                              std::vector<std::string>{},
                                              std::move(aggs));
  PhysicalPlan plan1(std::move(agg1));
  EXPECT_EQ(MeasureTotalWork(&plan1), 150u);

  // Merged predicate: work = 100 (one getnext per examined leaf row; the
  // 50 passing rows cost no additional sigma getnext).
  auto scan2 =
      std::make_unique<SeqScan>(&t, eb::Lt(eb::Col(0, "a"), eb::Int(50)));
  std::vector<AggregateDesc> aggs2;
  aggs2.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg2 = std::make_unique<HashAggregate>(std::move(scan2),
                                              std::vector<ExprPtr>{},
                                              std::vector<std::string>{},
                                              std::move(aggs2));
  PhysicalPlan plan2(std::move(agg2));
  EXPECT_EQ(MeasureTotalWork(&plan2), 100u);
}

// Hash join work: both sides scanned once; total = |build| + |probe| +
// join-output (join above is not root here; add a count agg on top).
TEST(WorkModelTest, HashJoinWorkAccounting) {
  Table r1 = testutil::MakeTable("r1", {"a"}, {{I(1)}, {I(2)}, {I(3)}});
  Table r2 = testutil::MakeTable("r2", {"b"}, {{I(2)}, {I(3)}, {I(4)}, {I(5)}});
  auto probe = std::make_unique<SeqScan>(&r2);
  auto build = std::make_unique<SeqScan>(&r1);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0, "b"));
  bk.push_back(eb::Col(0, "a"));
  auto join = std::make_unique<HashJoin>(std::move(probe), std::move(build),
                                         std::move(pk), std::move(bk));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(std::move(join),
                                             std::vector<ExprPtr>{},
                                             std::vector<std::string>{},
                                             std::move(aggs));
  PhysicalPlan plan(std::move(agg));
  // 3 (build scan) + 4 (probe scan) + 2 (join matches) = 9.
  EXPECT_EQ(MeasureTotalWork(&plan), 9u);
}

// NL join rescans the inner: inner scan rows are counted once per pass.
TEST(WorkModelTest, NestedLoopsRescanCountsEveryPass) {
  Table outer = testutil::MakeTable("o", {"a"}, {{I(1)}, {I(2)}});
  Table inner = testutil::MakeTable("i", {"b"}, {{I(7)}, {I(8)}, {I(9)}});
  auto o = std::make_unique<SeqScan>(&outer);
  auto i = std::make_unique<SeqScan>(&inner);
  auto join = std::make_unique<NestedLoopsJoin>(std::move(o), std::move(i),
                                                nullptr);  // cross join
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(std::move(join),
                                             std::vector<ExprPtr>{},
                                             std::vector<std::string>{},
                                             std::move(aggs));
  PhysicalPlan plan(std::move(agg));
  // outer 2 + inner 2*3 + join 6 = 14.
  EXPECT_EQ(MeasureTotalWork(&plan), 14u);
}

// The work observer fires at the requested granularity.
TEST(WorkModelTest, WorkObserverFires) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({I(i)});
  Table t = testutil::MakeTable("t", {"a"}, std::move(rows));
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0, "a"), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  ExecContext ctx;
  std::vector<uint64_t> observed;
  ctx.SetWorkObserver(10, [&](uint64_t w) { observed.push_back(w); });
  exec::Drive(&plan, {.ctx = &ctx});
  ASSERT_FALSE(observed.empty());
  EXPECT_EQ(observed.front(), 10u);
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GT(observed[i], observed[i - 1]);
  }
  EXPECT_GE(observed.size(), 9u);
}

}  // namespace
}  // namespace qprog
