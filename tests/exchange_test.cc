// Exchange-operator tests (DESIGN.md §16): byte-identical rows, counters and
// traces for partitioned pipelines across pool sizes {1,2,4,8} and partition
// counts {1,2,8}; skewed-key repartitioning; deterministic cancellation and
// fault splits mid-exchange; `Curr <= LB <= UB` through repartition
// buffering including spill; governor revocation mid-materialize; and SQL
// equivalence of planner-built partitioned aggregations against serial.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/fault_injector.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "obs/telemetry.h"
#include "sql/session.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::Sorted;

const int kPoolSizes[] = {1, 2, 4, 8};
const size_t kPartitionCounts[] = {1, 2, 8};

std::string MakeSpillDir(const std::string& tag) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("qprog_exchange_test_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// n rows of (i mod buckets, i) — integer values only, so partitioned SUMs
/// are exact and association-order-free.
Table Keyed(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) rows.push_back({I(i % buckets), I(i)});
  return testutil::MakeTable("k", {"k", "v"}, std::move(rows));
}

/// 90% of rows share key 0; the rest spread over [1, buckets).
Table Skewed(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t key = (i % 10 != 0) ? 0 : 1 + (i / 10) % (buckets - 1);
    rows.push_back({I(key), I(i)});
  }
  return testutil::MakeTable("s", {"k", "v"}, std::move(rows));
}

std::vector<AggregateDesc> CountSumAggs() {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "sv");
  aggs.emplace_back(AggFunc::kMin, eb::Col(1), "mn");
  aggs.emplace_back(AggFunc::kMax, eb::Col(1), "mx");
  return aggs;
}

/// Partitioned pipeline: `partitions` range scans -> partial aggregates ->
/// Exchange(hash on group key, `consumers` buckets) -> FinalAggregate.
PhysicalPlan PartitionedAggPlan(const Table* t, size_t partitions,
                                size_t consumers) {
  const uint64_t n = t->num_rows();
  std::vector<OperatorPtr> producers;
  for (size_t p = 0; p < partitions; ++p) {
    auto scan = std::make_unique<SeqScan>(t, nullptr, n * p / partitions,
                                          n * (p + 1) / partitions);
    std::vector<ExprPtr> groups;
    groups.push_back(eb::Col(0));
    producers.push_back(std::make_unique<PartialAggregate>(
        std::move(scan), std::move(groups), std::vector<std::string>{"k"},
        CountSumAggs()));
  }
  auto exchange = std::make_unique<Exchange>(
      std::move(producers), std::vector<size_t>{0}, consumers);
  return PhysicalPlan(std::make_unique<FinalAggregate>(
      std::move(exchange), 1, std::vector<std::string>{"k"}, CountSumAggs()));
}

/// Serial reference: one HashAggregate over a full scan. Its first-seen
/// output order differs from FinalAggregate's canonical sorted order, so
/// comparisons sort both sides.
PhysicalPlan SerialAggPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"k"}, CountSumAggs()));
}

// ---------------------------------------------------------------------------
// Byte-identity matrix
// ---------------------------------------------------------------------------

// Rows are identical across the FULL pool x partition matrix: the canonical
// sorted output of FinalAggregate does not depend on how the input was
// split, and the fold order does not depend on how tasks were scheduled.
TEST(ExchangeDeterminismTest, RowsIdenticalAcrossPoolAndPartitionMatrix) {
  Table t = Keyed(1200, 97);
  ExecContext ref_ctx;
  PhysicalPlan ref_plan = SerialAggPlan(&t);
  exec::DriveResult ref =
      exec::Drive(&ref_plan, {.ctx = &ref_ctx, .collect_rows = true});
  ASSERT_TRUE(ref.ok()) << ref.status.ToString();
  const std::string want = testutil::RowsToString(Sorted(ref.rows));
  ASSERT_EQ(ref.rows.size(), 97u);

  for (size_t partitions : kPartitionCounts) {
    for (int threads : kPoolSizes) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions) +
                   " threads=" + std::to_string(threads));
      WorkerPool pool(threads);
      ExecContext ctx;
      ctx.set_worker_pool(&pool);
      PhysicalPlan plan = PartitionedAggPlan(&t, partitions, partitions);
      exec::DriveResult got =
          exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
      ASSERT_TRUE(got.ok()) << got.status.ToString();
      EXPECT_EQ(testutil::RowsToString(Sorted(got.rows)), want);
    }
  }
}

// At a fixed partition count the whole observable run — typed trace,
// estimator scores, total(Q) — is byte-identical at every pool size.
TEST(ExchangeDeterminismTest, TracesAndCountersByteIdenticalAcrossPoolSizes) {
  Table t = Keyed(1500, 113);
  for (size_t partitions : kPartitionCounts) {
    std::string reference_trace;
    std::string reference_tsv;
    uint64_t reference_total = 0;
    for (int threads : kPoolSizes) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions) +
                   " threads=" + std::to_string(threads));
      WorkerPool pool(threads);
      PhysicalPlan plan = PartitionedAggPlan(&t, partitions, partitions);
      JsonlStringSink sink;
      TelemetryCollector collector(&sink);
      MonitorOptions mo;
      mo.worker_pool = &pool;
      mo.telemetry = &collector;
      ProgressMonitor m =
          ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, mo);
      ProgressReport r = m.Run(100);
      ASSERT_TRUE(r.completed()) << r.status.ToString();
      if (reference_trace.empty()) {
        reference_trace = sink.data();
        reference_tsv = r.ToTsv();
        reference_total = r.total_work;
        EXPECT_FALSE(reference_trace.empty());
        EXPECT_NE(reference_trace.find("exchange_begin"), std::string::npos);
        EXPECT_NE(reference_trace.find("partition_close"), std::string::npos);
      } else {
        EXPECT_EQ(sink.data(), reference_trace) << "trace diverged";
        EXPECT_EQ(r.ToTsv(), reference_tsv) << "estimator scores diverged";
        EXPECT_EQ(r.total_work, reference_total) << "total(Q) diverged";
      }
    }
  }
}

// Per-partition getnext sums at the exchange boundary: a partitioned scan's
// counters add up to exactly the serial scan's totals, so total(Q) does not
// depend on the partition count (the only extra work is the exchange's own
// replumbing, which scales with routed rows, not with partitions).
TEST(ExchangeDeterminismTest, PartitionedScanWorkSumsToSerialTotals) {
  Table t = Keyed(900, 30);
  for (size_t partitions : kPartitionCounts) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    ExecContext ctx;
    PhysicalPlan plan = PartitionedAggPlan(&t, partitions, partitions);
    exec::DriveResult r = exec::Drive(&plan, {.ctx = &ctx});
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    // Every base row is examined exactly once across all partitions.
    uint64_t scan_rows = 0;
    for (const PhysicalOperator* op : plan.nodes()) {
      if (op->kind() == OpKind::kSeqScan) {
        scan_rows += ctx.rows_produced(op->node_id());
      }
    }
    EXPECT_EQ(scan_rows, t.num_rows());
  }
}

// ---------------------------------------------------------------------------
// Skewed keys
// ---------------------------------------------------------------------------

TEST(ExchangeRepartitionTest, SkewedKeysRouteCorrectlyAtEveryPoolSize) {
  Table t = Skewed(2000, 16);
  ExecContext ref_ctx;
  PhysicalPlan ref_plan = SerialAggPlan(&t);
  exec::DriveResult ref =
      exec::Drive(&ref_plan, {.ctx = &ref_ctx, .collect_rows = true});
  ASSERT_TRUE(ref.ok());
  const std::string want = testutil::RowsToString(Sorted(ref.rows));

  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    WorkerPool pool(threads);
    ExecContext ctx;
    ctx.set_worker_pool(&pool);
    PhysicalPlan plan = PartitionedAggPlan(&t, 8, 8);
    exec::DriveResult got =
        exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    EXPECT_EQ(testutil::RowsToString(Sorted(got.rows)), want)
        << "skewed repartition diverged";
  }
}

// ---------------------------------------------------------------------------
// Cancellation and faults mid-exchange
// ---------------------------------------------------------------------------

// A work-indexed cancel lands at the same counted getnext at every pool
// size: the fold replays producer counters at scheduled crossings, so the
// guard sees the cancel at one deterministic point regardless of threads.
TEST(ExchangeFaultTest, WorkIndexedCancelSplitsAtTheSameWorkEverywhere) {
  Table t = Keyed(2000, 59);
  uint64_t reference_work = 0;
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    WorkerPool pool(threads);
    QueryGuard guard;
    guard.set_check_interval(1);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_worker_pool(&pool);
    ctx.SetWorkObserver(64, [&](uint64_t work) {
      if (work >= 1024) guard.RequestCancel();
    });
    PhysicalPlan plan = PartitionedAggPlan(&t, 4, 4);
    exec::DriveResult r = exec::Drive(&plan, {.ctx = &ctx});
    ASSERT_FALSE(r.ok()) << "cancellation ignored";
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << r.status.ToString();
    if (reference_work == 0) {
      reference_work = ctx.work();
      EXPECT_GE(reference_work, 1024u);
    } else {
      EXPECT_EQ(ctx.work(), reference_work)
          << "cancel point diverged across pool sizes";
    }
  }
}

// An exchange.send fault stops the producer at the exact armed hit; the
// partial row prefix is never delivered past the failure.
TEST(ExchangeFaultTest, SendFaultStopsAtTheExactRow) {
  Table t = Keyed(600, 20);
  // Each of the 2 producers emits 20 partial-group rows, so the send
  // site is consulted 40 times per run.
  for (uint64_t fail_on_hit : {uint64_t{1}, uint64_t{25}}) {
    SCOPED_TRACE("fail_on_hit=" + std::to_string(fail_on_hit));
    FaultInjector fi;
    FaultSpec spec;
    spec.site = faults::kExchangeSend;
    spec.fail_on_hit = fail_on_hit;
    fi.Arm(std::move(spec));
    ExecContext ctx;
    ctx.set_fault_injector(&fi);
    PhysicalPlan plan = PartitionedAggPlan(&t, 2, 2);
    exec::DriveResult r =
        exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
    ASSERT_FALSE(r.ok()) << "exchange.send fault ignored";
    EXPECT_EQ(r.status.code(), StatusCode::kInternal);
    EXPECT_NE(r.status.message().find(faults::kExchangeSend),
              std::string::npos)
        << r.status.ToString();
    EXPECT_TRUE(r.rows.empty()) << "rows delivered past a failed exchange";
    EXPECT_EQ(fi.hit_count(faults::kExchangeSend), fail_on_hit);

    // Disarmed, the same plan and context run clean.
    fi.Disarm(faults::kExchangeSend);
    exec::DriveResult retry =
        exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
    EXPECT_TRUE(retry.ok()) << retry.status.ToString();
    EXPECT_EQ(retry.rows.size(), 20u);
  }
}

TEST(ExchangeFaultTest, RecvFaultStopsTheDrain) {
  Table t = Keyed(400, 10);
  FaultInjector fi;
  FaultSpec spec;
  spec.site = faults::kExchangeRecv;
  spec.fail_on_hit = 3;
  fi.Arm(std::move(spec));
  ExecContext ctx;
  ctx.set_fault_injector(&fi);
  PhysicalPlan plan = PartitionedAggPlan(&t, 2, 2);
  exec::DriveResult r = exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_NE(r.status.message().find(faults::kExchangeRecv), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bounds through repartition buffering
// ---------------------------------------------------------------------------

// The paper's invariant holds at every checkpoint of a partitioned run whose
// exchange is forced to spill: Curr <= LB <= UB, all three monotone.
TEST(ExchangeBoundsTest, BoundsMonotoneThroughSpillingRepartition) {
  Table t = Keyed(1500, 101);
  std::string dir = MakeSpillDir("bounds");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(40);  // 101 routed groups must overflow
  WorkerPool pool(4);
  PhysicalPlan plan = PartitionedAggPlan(&t, 8, 8);
  MonitorOptions mo;
  mo.guard = &guard;
  mo.spill_manager = &spill;
  mo.worker_pool = &pool;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
  ProgressReport r = m.Run(64);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  ASSERT_FALSE(r.checkpoints.empty());
  EXPECT_GT(spill.stats().runs_created, 0u) << "exchange never spilled";
  EXPECT_EQ(spill.live_runs(), 0u);
  uint64_t prev_work = 0;
  double prev_lb = 0, prev_ub = 0;
  for (const Checkpoint& cp : r.checkpoints) {
    EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9)
        << "Curr > LB at work=" << cp.work;
    EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9) << "LB > UB at work=" << cp.work;
    EXPECT_GE(cp.work, prev_work);
    EXPECT_GE(cp.work_lb, prev_lb - 1e-9) << "LB regressed at " << cp.work;
    EXPECT_GE(cp.work_ub, prev_ub - 1e-9) << "UB regressed at " << cp.work;
    prev_work = cp.work;
    prev_lb = cp.work_lb;
    prev_ub = cp.work_ub;
  }
  std::filesystem::remove_all(dir);
}

// Spilled and in-memory exchanges produce identical rows; the spill only
// adds write/re-read work (the same dynamic-total(Q) revision as every
// other spilling operator).
TEST(ExchangeBoundsTest, SpilledExchangeMatchesInMemoryRows) {
  Table t = Keyed(1000, 73);
  ExecContext mem_ctx;
  PhysicalPlan mem_plan = PartitionedAggPlan(&t, 4, 4);
  exec::DriveResult mem =
      exec::Drive(&mem_plan, {.ctx = &mem_ctx, .collect_rows = true});
  ASSERT_TRUE(mem.ok());

  std::string dir = MakeSpillDir("rows");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(20);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  PhysicalPlan plan = PartitionedAggPlan(&t, 4, 4);
  exec::DriveResult got =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  EXPECT_GT(spill.stats().runs_created, 0u) << "budget never forced a spill";
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(testutil::RowsToString(got.rows),
            testutil::RowsToString(mem.rows));
  EXPECT_GT(ctx.work(), mem_ctx.work()) << "spill work not counted";
  EXPECT_EQ(ctx.buffered_rows(), 0u);
  std::filesystem::remove_all(dir);
}

// A governor revocation mid-materialize (soft budget shrunk underneath the
// exchange) flushes the buckets and completes with identical rows.
TEST(ExchangeBoundsTest, MidRunRevocationFlushesAndCompletes) {
  Table t = Keyed(1200, 89);
  ExecContext ref_ctx;
  PhysicalPlan ref_plan = PartitionedAggPlan(&t, 4, 4);
  exec::DriveResult ref =
      exec::Drive(&ref_plan, {.ctx = &ref_ctx, .collect_rows = true});
  ASSERT_TRUE(ref.ok());

  std::string dir = MakeSpillDir("revoke");
  SpillManager spill(dir);
  QueryGuard guard;  // starts unconstrained
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  bool revoked = false;
  ctx.SetWorkObserver(32, [&](uint64_t work) {
    if (!revoked && work >= 600) {
      guard.set_max_buffered_rows(10);  // revocation: spill headroom gone
      revoked = true;
    }
  });
  PhysicalPlan plan = PartitionedAggPlan(&t, 4, 4);
  exec::DriveResult got =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  EXPECT_TRUE(revoked);
  EXPECT_GT(spill.stats().runs_created, 0u) << "revocation never spilled";
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(testutil::RowsToString(got.rows),
            testutil::RowsToString(ref.rows));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SQL equivalence (planner-built partitioned pipelines)
// ---------------------------------------------------------------------------

class ExchangeSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t = Keyed(1000, 37);
    QPROG_CHECK(db_.AddTable(std::move(t)).ok());
    HistogramStatisticsGenerator gen(8);
    for (const std::string& name : db_.TableNames()) {
      db_.SetStats(name, gen.Generate(*db_.GetTable(name)));
    }
  }
  Database db_;
};

TEST_F(ExchangeSqlTest, PartitionedSessionMatchesSerialOnGroupBy) {
  const std::string query =
      "SELECT k, COUNT(*) AS c, SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx "
      "FROM k GROUP BY k";
  sql::SqlSession serial(&db_);
  StatusOr<std::vector<Row>> want = serial.Execute(query);
  ASSERT_TRUE(want.ok()) << want.status();

  WorkerPool pool(4);
  sql::SessionOptions opts;
  opts.partitions = 4;
  opts.worker_pool = &pool;
  sql::SqlSession partitioned(&db_, opts);
  StatusOr<std::vector<Row>> got = partitioned.Execute(query);
  ASSERT_TRUE(got.ok()) << got.status();
  // Serial HashAggregate emits first-seen order; FinalAggregate emits
  // key-sorted order — compare as sets.
  EXPECT_EQ(testutil::RowsToString(Sorted(got.value())),
            testutil::RowsToString(Sorted(want.value())));
}

TEST_F(ExchangeSqlTest, PartitionedPlanActuallyContainsAnExchange) {
  sql::PlanOptions popts;
  popts.partitions = 4;
  StatusOr<PhysicalPlan> plan =
      sql::PlanSql("SELECT k, COUNT(*) AS c FROM k GROUP BY k", db_, popts);
  ASSERT_TRUE(plan.ok()) << plan.status();
  bool has_exchange = false;
  size_t scans = 0;
  for (const PhysicalOperator* op : plan.value().nodes()) {
    if (op->kind() == OpKind::kExchange) has_exchange = true;
    if (op->kind() == OpKind::kSeqScan) ++scans;
  }
  EXPECT_TRUE(has_exchange) << plan.value().ToString();
  EXPECT_EQ(scans, 4u) << plan.value().ToString();
}

TEST_F(ExchangeSqlTest, NonDecomposableQueriesFallBackToSerialPlans) {
  sql::PlanOptions popts;
  popts.partitions = 4;
  // COUNT(DISTINCT) cannot split across an exchange.
  StatusOr<PhysicalPlan> plan = sql::PlanSql(
      "SELECT k, COUNT(DISTINCT v) AS c FROM k GROUP BY k", db_, popts);
  ASSERT_TRUE(plan.ok()) << plan.status();
  for (const PhysicalOperator* op : plan.value().nodes()) {
    EXPECT_NE(op->kind(), OpKind::kExchange) << plan.value().ToString();
  }
  sql::SqlSession serial(&db_);
  sql::SessionOptions popts2;
  popts2.partitions = 4;
  sql::SqlSession partitioned(&db_, popts2);
  const std::string q = "SELECT k, COUNT(DISTINCT v) AS c FROM k GROUP BY k";
  StatusOr<std::vector<Row>> want = serial.Execute(q);
  StatusOr<std::vector<Row>> got = partitioned.Execute(q);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(testutil::RowsToString(Sorted(got.value())),
            testutil::RowsToString(Sorted(want.value())));
}

}  // namespace
}  // namespace qprog
