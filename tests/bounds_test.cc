// Cardinality-bounds tracker invariants (Section 5.1), property-tested over
// a family of plan shapes:
//   (1) Curr <= LB at every checkpoint (pmax <= 1 and pmax >= progress);
//   (2) LB <= total(Q) <= UB at every checkpoint;
//   (3) at completion LB == UB == total(Q).

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/macros.h"
#include "common/random.h"
#include "core/bounds.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "tests/test_util.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

using testutil::I;

// Fixture tables shared across the plan builders.
class BoundsInvariantTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    std::vector<Row> a_rows, b_rows;
    Rng rng(99);
    for (int64_t i = 0; i < 400; ++i) {
      a_rows.push_back({I(rng.UniformInt(0, 50)), I(i)});
    }
    for (int64_t i = 0; i < 300; ++i) {
      b_rows.push_back({I(rng.UniformInt(0, 50)), I(-i)});
    }
    table_a_ = new Table(testutil::MakeTable("a", {"k", "v"}, std::move(a_rows)));
    table_b_ = new Table(testutil::MakeTable("b", {"k", "w"}, std::move(b_rows)));
    index_b_ = new OrderedIndex(table_b_, 0);
  }

  static PhysicalPlan BuildPlan(int which) {
    const Table* a = table_a_;
    const Table* b = table_b_;
    switch (which) {
      case 0: {  // scan -> filter -> scalar agg
        auto scan = std::make_unique<SeqScan>(a);
        auto f = std::make_unique<Filter>(std::move(scan),
                                          eb::Lt(eb::Col(0), eb::Int(25)));
        return PhysicalPlan(CountStar(std::move(f)));
      }
      case 1: {  // scan with merged predicate -> project
        auto scan = std::make_unique<SeqScan>(
            a, eb::Ge(eb::Col(0), eb::Int(10)));
        std::vector<ExprPtr> exprs;
        exprs.push_back(eb::Add(eb::Col(0), eb::Col(1)));
        return PhysicalPlan(std::make_unique<Project>(
            std::move(scan), std::move(exprs), std::vector<std::string>{"s"}));
      }
      case 2: {  // hash join (inner) -> agg
        std::vector<ExprPtr> pk, bk;
        pk.push_back(eb::Col(0));
        bk.push_back(eb::Col(0));
        auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(a),
                                               std::make_unique<SeqScan>(b),
                                               std::move(pk), std::move(bk));
        return PhysicalPlan(CountStar(std::move(join)));
      }
      case 3: {  // INL join -> agg
        auto seek = std::make_unique<IndexSeek>(index_b_);
        auto join = std::make_unique<IndexNestedLoopsJoin>(
            std::make_unique<SeqScan>(a), std::move(seek), eb::Col(0));
        return PhysicalPlan(CountStar(std::move(join)));
      }
      case 4: {  // sort -> limit
        std::vector<SortKey> keys;
        keys.emplace_back(eb::Col(1), true);
        auto sort = std::make_unique<Sort>(std::make_unique<SeqScan>(a),
                                           std::move(keys));
        return PhysicalPlan(std::make_unique<Limit>(std::move(sort), 10));
      }
      case 5: {  // group-by agg above filter
        auto scan = std::make_unique<SeqScan>(a);
        auto f = std::make_unique<Filter>(std::move(scan),
                                          eb::Lt(eb::Col(0), eb::Int(40)));
        std::vector<ExprPtr> groups;
        groups.push_back(eb::Col(0));
        std::vector<AggregateDesc> aggs;
        aggs.emplace_back(AggFunc::kSum, eb::Col(1), "s");
        return PhysicalPlan(std::make_unique<HashAggregate>(
            std::move(f), std::move(groups), std::vector<std::string>{"k"},
            std::move(aggs)));
      }
      case 6: {  // nested loops join with predicate -> agg
        auto join = std::make_unique<NestedLoopsJoin>(
            std::make_unique<SeqScan>(
                a, eb::Lt(eb::Col(1), eb::Int(30))),  // 30 outer rows
            std::make_unique<SeqScan>(b),
            eb::Eq(eb::Col(0), eb::Col(2)));
        return PhysicalPlan(CountStar(std::move(join)));
      }
      case 7: {  // merge join over sorts -> agg
        std::vector<SortKey> ka, kb;
        ka.emplace_back(eb::Col(0), false);
        kb.emplace_back(eb::Col(0), false);
        auto sa = std::make_unique<Sort>(std::make_unique<SeqScan>(a),
                                         std::move(ka));
        auto sb = std::make_unique<Sort>(std::make_unique<SeqScan>(b),
                                         std::move(kb));
        std::vector<ExprPtr> la, lb;
        la.push_back(eb::Col(0));
        lb.push_back(eb::Col(0));
        auto join = std::make_unique<MergeJoin>(std::move(sa), std::move(sb),
                                                std::move(la), std::move(lb));
        return PhysicalPlan(CountStar(std::move(join)));
      }
      case 8: {  // semi join -> agg
        std::vector<ExprPtr> pk, bk;
        pk.push_back(eb::Col(0));
        bk.push_back(eb::Col(0));
        auto join = std::make_unique<HashJoin>(
            std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b),
            std::move(pk), std::move(bk), JoinType::kLeftSemi);
        return PhysicalPlan(CountStar(std::move(join)));
      }
      case 9: {  // left outer join -> agg
        std::vector<ExprPtr> pk, bk;
        pk.push_back(eb::Col(0));
        bk.push_back(eb::Col(0));
        auto join = std::make_unique<HashJoin>(
            std::make_unique<SeqScan>(a),
            std::make_unique<SeqScan>(b, eb::Lt(eb::Col(1), eb::Int(0))),
            std::move(pk), std::move(bk), JoinType::kLeftOuter);
        return PhysicalPlan(CountStar(std::move(join)));
      }
      default:
        QPROG_CHECK(false);
    }
    __builtin_unreachable();
  }

  static OperatorPtr CountStar(OperatorPtr child) {
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
    return std::make_unique<HashAggregate>(std::move(child),
                                           std::vector<ExprPtr>{},
                                           std::vector<std::string>{},
                                           std::move(aggs));
  }

  static Table* table_a_;
  static Table* table_b_;
  static OrderedIndex* index_b_;
};

Table* BoundsInvariantTest::table_a_ = nullptr;
Table* BoundsInvariantTest::table_b_ = nullptr;
OrderedIndex* BoundsInvariantTest::index_b_ = nullptr;

TEST_P(BoundsInvariantTest, SandwichInvariantsHoldAtEveryCheckpoint) {
  const int which = GetParam();
  PhysicalPlan ground_truth = BuildPlan(which);
  const double total = static_cast<double>(MeasureTotalWork(&ground_truth));

  PhysicalPlan plan = BuildPlan(which);
  BoundsTracker tracker(&plan);
  ExecContext ctx;
  size_t checkpoints = 0;
  ctx.SetWorkObserver(7, [&](uint64_t work) {
    PlanBounds b = tracker.Compute(ctx);
    ++checkpoints;
    EXPECT_GE(b.work_lb, static_cast<double>(work))
        << "plan " << which << ": LB below Curr";
    EXPECT_LE(b.work_lb, total + 1e-6) << "plan " << which << ": LB above total";
    EXPECT_GE(b.work_ub, total - 1e-6) << "plan " << which << ": UB below total";
    EXPECT_LE(b.work_lb, b.work_ub);
  });
  exec::Drive(&plan, {.ctx = &ctx});
  ctx.ClearWorkObserver();
  EXPECT_GT(checkpoints, 0u);

  PlanBounds final_bounds = tracker.Compute(ctx);
  EXPECT_DOUBLE_EQ(final_bounds.work_lb, total) << "plan " << which;
  EXPECT_DOUBLE_EQ(final_bounds.work_ub, total) << "plan " << which;
}

INSTANTIATE_TEST_SUITE_P(AllPlanShapes, BoundsInvariantTest,
                         ::testing::Range(0, 10));

TEST(BoundsTest, UnfilteredScanBoundsExactFromCatalog) {
  Table t = testutil::MakeTable("t", {"v"}, {{I(1)}, {I(2)}, {I(3)}});
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  BoundsTracker tracker(&plan);
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  plan.root()->Open(&ctx);
  PlanBounds b = tracker.Compute(ctx);
  // Scan node is id 1: exactly 3 rows before anything has run.
  EXPECT_DOUBLE_EQ(b.node_bounds[1].lb, 3.0);
  EXPECT_DOUBLE_EQ(b.node_bounds[1].ub, 3.0);
  // Filter is root (excluded from work sums): work bounds = scan bounds.
  EXPECT_DOUBLE_EQ(b.work_lb, 3.0);
  EXPECT_DOUBLE_EQ(b.work_ub, 3.0);
}

TEST(BoundsTest, LinearFlagTightensHashJoinUpperBound) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({I(i)});
  Table a = testutil::MakeTable("a", {"k"}, std::move(rows));
  std::vector<Row> rows2;
  for (int64_t i = 0; i < 100; ++i) rows2.push_back({I(i)});
  Table b = testutil::MakeTable("b", {"k"}, std::move(rows2));

  auto build_plan = [&](bool linear) {
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&a),
                                           std::make_unique<SeqScan>(&b),
                                           std::move(pk), std::move(bk));
    join->set_is_linear(linear);
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kCount, nullptr, "c");
    return PhysicalPlan(std::make_unique<HashAggregate>(
        std::move(join), std::vector<ExprPtr>{}, std::vector<std::string>{},
        std::move(aggs)));
  };

  PhysicalPlan p_lin = build_plan(true);
  PhysicalPlan p_gen = build_plan(false);
  ExecContext c1, c2;
  c1.Reset(p_lin.num_nodes());
  c2.Reset(p_gen.num_nodes());
  p_lin.root()->Open(&c1);
  p_gen.root()->Open(&c2);
  PlanBounds b_lin = BoundsTracker(&p_lin).Compute(c1);
  PlanBounds b_gen = BoundsTracker(&p_gen).Compute(c2);
  EXPECT_LT(b_lin.work_ub, b_gen.work_ub);
  // Linear: join output <= max(100, 100); UB = 100+100+100 = 300.
  EXPECT_DOUBLE_EQ(b_lin.work_ub, 300.0);
  // General: 100*100 + 200.
  EXPECT_DOUBLE_EQ(b_gen.work_ub, 10200.0);
}

TEST(BoundsTest, ScanBasedPlanSatisfiesPropertySix) {
  // Property 6: for a scan-based linear plan with m internal (non-root,
  // non-leaf) nodes, UB <= (m+1) * LB at the start of execution.
  ZipfJoinConfig cfg;
  cfg.r1_rows = 2000;
  cfg.r2_rows = 2000;
  cfg.order = R1Order::kSkewLast;
  ZipfJoinData data(cfg);
  PhysicalPlan plan = data.BuildHashPlan(nullptr, /*linear=*/true);
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  plan.root()->Open(&ctx);
  PlanBounds b = BoundsTracker(&plan).Compute(ctx);
  // Count internal non-root nodes (join) — m = 1 here (agg is root).
  double m = 1;
  EXPECT_LE(b.work_ub, (m + 1) * b.work_lb + 1e-6);
  EXPECT_GE(b.work_lb, 4000.0);  // both scans known exactly
}

TEST(BoundsTest, StaticPerPassUpperBoundShapes) {
  Table t = testutil::MakeTable("t", {"v"}, {{I(1)}, {I(2)}});
  auto scan = std::make_unique<SeqScan>(&t);
  EXPECT_DOUBLE_EQ(StaticPerPassUpperBound(scan.get()), 2.0);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  EXPECT_DOUBLE_EQ(StaticPerPassUpperBound(filter.get()), 2.0);
  auto limit = std::make_unique<Limit>(std::move(filter), 1);
  EXPECT_DOUBLE_EQ(StaticPerPassUpperBound(limit.get()), 2.0);
}

TEST(BoundsTest, ScannedLeafCardinalityExcludesInlInner) {
  Table outer = testutil::MakeTable("o", {"k"}, {{I(1)}, {I(2)}, {I(3)}});
  Table inner = testutil::MakeTable("i", {"k"}, {{I(1)}, {I(2)}});
  OrderedIndex idx(&inner, 0);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::make_unique<SeqScan>(&outer), std::make_unique<IndexSeek>(&idx),
      eb::Col(0));
  PhysicalPlan plan(std::move(join));
  EXPECT_DOUBLE_EQ(ScannedLeafCardinality(plan), 3.0);
}

TEST(BoundsTest, ScannedLeafCardinalitySumsBothHashJoinSides) {
  Table a = testutil::MakeTable("a", {"k"}, {{I(1)}, {I(2)}, {I(3)}});
  Table b = testutil::MakeTable("b", {"k"}, {{I(1)}, {I(2)}});
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&a),
                                         std::make_unique<SeqScan>(&b),
                                         std::move(pk), std::move(bk));
  PhysicalPlan plan(std::move(join));
  EXPECT_DOUBLE_EQ(ScannedLeafCardinality(plan), 5.0);
}

}  // namespace
}  // namespace qprog
