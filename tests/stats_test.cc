#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::N;
using testutil::S;

Table UniformTable(int64_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(rng.UniformInt(0, domain - 1))});
  return testutil::MakeTable("t", {"a"}, std::move(rows));
}

TEST(HistogramTest, CountsAndNulls) {
  Table t = testutil::MakeTable("t", {"a"}, {{I(1)}, {I(2)}, {N()}, {I(2)}});
  Histogram h = Histogram::Build(t, 0, 4);
  EXPECT_EQ(h.total_rows(), 4u);
  EXPECT_EQ(h.null_rows(), 1u);
  uint64_t count = 0;
  for (size_t b = 0; b < h.num_buckets(); ++b) count += h.bucket(b).count;
  EXPECT_EQ(count, 3u);
}

TEST(HistogramTest, EqualsEstimateOnUniformData) {
  Table t = UniformTable(10000, 100, 42);
  Histogram h = Histogram::Build(t, 0, 20);
  // ~100 rows per value.
  double est = h.EstimateEquals(I(50));
  EXPECT_NEAR(est, 100.0, 60.0);
  EXPECT_EQ(h.EstimateEquals(I(1000)), 0.0);
}

TEST(HistogramTest, RangeEstimateOnUniformData) {
  Table t = UniformTable(10000, 100, 43);
  Histogram h = Histogram::Build(t, 0, 20);
  double est = h.EstimateRange(I(0), true, false, I(49), true, false);
  EXPECT_NEAR(est / 10000.0, 0.5, 0.05);
  est = h.EstimateRange(Value::Null(), false, true, Value::Null(), false, true);
  EXPECT_NEAR(est, 10000.0, 1.0);  // unbounded both sides = all non-null rows
}

TEST(HistogramTest, EquiDepthBucketsBalanced) {
  Table t = UniformTable(10000, 1000, 44);
  Histogram h = Histogram::Build(t, 0, 10);
  ASSERT_GE(h.num_buckets(), 8u);
  for (size_t b = 0; b < h.num_buckets(); ++b) {
    EXPECT_GT(h.bucket(b).count, 500u);
    EXPECT_LT(h.bucket(b).count, 2000u);
  }
}

TEST(HistogramTest, EqualValuesDoNotStraddleBuckets) {
  // 1000 copies of one value must land in a single bucket.
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({I(7)});
  for (int i = 0; i < 1000; ++i) rows.push_back({I(i + 100)});
  Table t = testutil::MakeTable("t", {"a"}, std::move(rows));
  Histogram h = Histogram::Build(t, 0, 16);
  EXPECT_NEAR(h.EstimateEquals(I(7)), 1000.0, 1.0);
}

TEST(HistogramTest, EmptyTable) {
  Table t = testutil::MakeTable("t", {"a"}, {});
  Histogram h = Histogram::Build(t, 0, 8);
  EXPECT_EQ(h.num_buckets(), 0u);
  EXPECT_EQ(h.EstimateEquals(I(1)), 0.0);
  EXPECT_EQ(h.EstimateRange(I(0), true, false, I(10), true, false), 0.0);
}

TEST(HistogramTest, StringColumn) {
  Table t = testutil::MakeTable("t", {"a"},
                                {{S("apple")}, {S("banana")}, {S("cherry")}});
  Histogram h = Histogram::Build(t, 0, 2);
  EXPECT_GT(h.EstimateEquals(S("banana")), 0.0);
  EXPECT_EQ(h.TotalDistinct(), 3u);
}

// The paper's lossiness requirement (Section 2.3): with a bounded bucket
// budget, one tuple's value can change within a bucket without changing the
// histogram's bucket boundaries/counts in a detectable way.
TEST(HistogramTest, LossyUnderBucketBudget) {
  Table t = UniformTable(10000, 10000, 45);
  Histogram h1 = Histogram::Build(t, 0, 8);
  // Change one row to another value inside the same bucket's range.
  const auto& b0 = h1.bucket(0);
  int64_t lo = b0.lower.int64_value();
  int64_t hi = b0.upper.int64_value();
  ASSERT_GT(hi, lo + 2);
  // Find a row in bucket 0 and nudge it within range.
  Table t2 = UniformTable(10000, 10000, 45);
  for (uint64_t i = 0; i < t2.num_rows(); ++i) {
    int64_t v = t2.at(i, 0).int64_value();
    if (v > lo && v < hi) {
      (*t2.mutable_row(i))[0] = I(v == lo + 1 ? lo + 2 : lo + 1);
      break;
    }
  }
  Histogram h2 = Histogram::Build(t2, 0, 8);
  ASSERT_EQ(h1.num_buckets(), h2.num_buckets());
  for (size_t b = 0; b < h1.num_buckets(); ++b) {
    EXPECT_EQ(h1.bucket(b).count, h2.bucket(b).count);
  }
}

TEST(StatsGeneratorTest, HistogramGeneratorBasics) {
  Table t = testutil::MakeTable("t", {"a", "b"},
                                {{I(1), S("x")}, {I(2), S("y")}, {N(), S("x")}});
  HistogramStatisticsGenerator gen(8);
  auto stats = gen.Generate(t);
  EXPECT_EQ(stats->row_count(), 3u);
  ASSERT_EQ(stats->num_columns(), 2u);
  EXPECT_EQ(stats->column(0).null_count, 1u);
  EXPECT_EQ(stats->column(0).distinct, 2u);
  EXPECT_EQ(stats->column(0).min.int64_value(), 1);
  EXPECT_EQ(stats->column(0).max.int64_value(), 2);
  EXPECT_EQ(stats->column(1).distinct, 2u);
  EXPECT_EQ(gen.name(), "histogram");
}

TEST(StatsGeneratorTest, SampleGeneratorReservoir) {
  Table t = UniformTable(5000, 100, 46);
  SampleStatisticsGenerator gen(100, /*seed=*/7);
  auto stats = gen.Generate(t);
  EXPECT_EQ(stats->row_count(), 5000u);
  EXPECT_EQ(stats->sample().size(), 100u);
  EXPECT_EQ(gen.name(), "sample");
  // Randomized generators are seed-deterministic.
  auto stats2 = SampleStatisticsGenerator(100, 7).Generate(t);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(RowEq()(stats->sample()[i], stats2->sample()[i]));
  }
}

TEST(StatsGeneratorTest, SampleSmallerTableTakesAll) {
  Table t = testutil::MakeTable("t", {"a"}, {{I(1)}, {I(2)}});
  SampleStatisticsGenerator gen(10, 1);
  auto stats = gen.Generate(t);
  EXPECT_EQ(stats->sample().size(), 2u);
}

TEST(SelectivityTest, EqualityFromHistogram) {
  Table t = UniformTable(10000, 100, 47);
  HistogramStatisticsGenerator gen(32);
  auto stats = gen.Generate(t);
  PredicateDesc pred{0, CompareOp::kEq, I(42)};
  double sel = EstimatePredicateSelectivity(*stats, pred);
  EXPECT_NEAR(sel, 0.01, 0.006);
}

TEST(SelectivityTest, RangeFromHistogram) {
  Table t = UniformTable(10000, 100, 48);
  HistogramStatisticsGenerator gen(32);
  auto stats = gen.Generate(t);
  PredicateDesc pred{0, CompareOp::kLt, I(25)};
  EXPECT_NEAR(EstimatePredicateSelectivity(*stats, pred), 0.25, 0.05);
  pred.op = CompareOp::kGe;
  EXPECT_NEAR(EstimatePredicateSelectivity(*stats, pred), 0.75, 0.05);
  pred.op = CompareOp::kNe;
  EXPECT_NEAR(EstimatePredicateSelectivity(*stats, pred), 0.99, 0.02);
}

TEST(SelectivityTest, ConjunctionIndependence) {
  Table t = UniformTable(10000, 100, 49);
  HistogramStatisticsGenerator gen(32);
  auto stats = gen.Generate(t);
  std::vector<PredicateDesc> preds = {{0, CompareOp::kLt, I(50)},
                                      {0, CompareOp::kGe, I(0)}};
  double sel = EstimateConjunctionSelectivity(*stats, preds);
  EXPECT_NEAR(sel, 0.5, 0.08);
}

TEST(SelectivityTest, JoinCardinalityFormula) {
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(1000, 100, 5000, 50), 50000.0);
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(10, 0, 10, 0), 100.0);  // min 1
}

TEST(SelectivityTest, GroupCountCappedByRows) {
  EXPECT_DOUBLE_EQ(EstimateGroupCount(100, {1000}), 100.0);
  EXPECT_DOUBLE_EQ(EstimateGroupCount(1000, {10, 5}), 50.0);
  EXPECT_DOUBLE_EQ(EstimateGroupCount(0, {10}), 1.0);
}

TEST(SelectivityTest, EmptyStatsZeroSelectivity) {
  TableStats stats;
  PredicateDesc pred{0, CompareOp::kEq, I(1)};
  EXPECT_EQ(EstimatePredicateSelectivity(stats, pred), 0.0);
}

}  // namespace
}  // namespace qprog
