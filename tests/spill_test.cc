// Memory-adaptive execution (spill) tests: result equivalence of the spilling
// operator paths against their in-memory counterparts, the dynamic-total work
// model (total(Q) revised upward by spill passes, bounds staying valid while
// it grows), transient-vs-permanent I/O fault handling with bounded retries,
// zero-leak cleanup on every exit path, and the fault-class taxonomy itself.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/explain.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/fault_injector.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "obs/explain_analyze.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::N;
using testutil::S;
using testutil::Sorted;

/// Every plan execution in this file goes through the unified driver;
/// this adapter keeps the StatusOr shape the assertions expect.
StatusOr<std::vector<Row>> DriveRows(PhysicalPlan* plan, ExecContext* ctx) {
  exec::DriveResult r = exec::Drive(plan, {.ctx = ctx, .collect_rows = true});
  if (!r.ok()) return r.status;
  return std::move(r.rows);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Fresh per-test directory for spill files so leak audits see only this
/// test's files.
std::string MakeSpillDir(const char* tag) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("qprog_spill_test_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Number of qprog-spill-* files currently present in `dir`.
int CountSpillFiles(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(SpillFile::kFilePrefix, 0) ==
        0) {
      ++n;
    }
  }
  return n;
}

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("t", {"v"}, std::move(rows));
}

/// n rows of (i mod buckets, i) — repeating keys for joins and group-bys.
Table Keyed(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i % buckets), I(i)});
  return testutil::MakeTable("k", {"k", "v"}, std::move(rows));
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(probe), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk)));
}

PhysicalPlan GroupCountPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "total");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"g"}, std::move(aggs)));
}

/// Runs `plan` twice — unconstrained in memory, then under a soft budget of
/// `soft_budget` buffered rows with a SpillManager attached — and asserts the
/// spilled run produces the same multiset of rows with nothing leaked.
/// Returns the (in-memory, spilled) work counters.
std::pair<uint64_t, uint64_t> ExpectSpillEquivalent(
    const std::function<PhysicalPlan()>& make_plan, uint64_t soft_budget,
    const char* tag, bool expect_same_order) {
  PhysicalPlan mem_plan = make_plan();
  ExecContext mem_ctx;
  StatusOr<std::vector<Row>> expected = DriveRows(&mem_plan, &mem_ctx);
  EXPECT_TRUE(expected.ok()) << expected.status();

  std::string dir = MakeSpillDir(tag);
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(soft_budget);
  PhysicalPlan plan = make_plan();
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  EXPECT_TRUE(got.ok()) << "spilling run failed: " << got.status();
  if (expected.ok() && got.ok()) {
    if (expect_same_order) {
      EXPECT_EQ(testutil::RowsToString(got.value()),
                testutil::RowsToString(expected.value()));
    } else {
      EXPECT_EQ(testutil::RowsToString(Sorted(got.value())),
                testutil::RowsToString(Sorted(expected.value())));
    }
  }
  EXPECT_GT(spill.stats().runs_created, 0u) << "budget never forced a spill";
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(ctx.buffered_rows(), 0u);
  EXPECT_EQ(CountSpillFiles(dir), 0);
  EXPECT_GT(ctx.total_spill_work(), 0u);
  std::filesystem::remove_all(dir);
  return {mem_ctx.work(), ctx.work()};
}

// ---------------------------------------------------------------------------
// Result equivalence: spilled == in-memory
// ---------------------------------------------------------------------------

TEST(SpillTest, ExternalSortMatchesInMemorySort) {
  // Anti-sorted input so the merge actually has to interleave runs.
  std::vector<Row> rows;
  for (int64_t i = 799; i >= 0; --i) rows.push_back({I(i % 97), I(i)});
  Table t = testutil::MakeTable("t", {"a", "b"}, std::move(rows));
  auto [mem_work, spill_work] = ExpectSpillEquivalent(
      [&] {
        std::vector<SortKey> keys;
        keys.emplace_back(eb::Col(0));
        return PhysicalPlan(std::make_unique<Sort>(
            std::make_unique<SeqScan>(&t), std::move(keys)));
      },
      /*soft_budget=*/100, "sort", /*expect_same_order=*/true);
  // Every materialized row was written once and re-read once.
  EXPECT_GT(spill_work, mem_work);
}

TEST(SpillTest, GraceHashJoinMatchesInMemoryJoin) {
  Table probe = Keyed(300, 50);
  Table build = Keyed(400, 50);
  ExpectSpillEquivalent([&] { return JoinPlan(&probe, &build); },
                        /*soft_budget=*/64, "join",
                        /*expect_same_order=*/false);
}

TEST(SpillTest, HashAggregatePartitionSpillMatchesInMemory) {
  Table t = Keyed(900, 300);  // 300 groups against a 60-group budget
  ExpectSpillEquivalent([&] { return GroupCountPlan(&t); },
                        /*soft_budget=*/60, "agg",
                        /*expect_same_order=*/false);
}

TEST(SpillTest, SpilledSortIsStable) {
  // Duplicate keys in a known arrival order: (key, arrival). A stable
  // external merge must preserve arrival order within each key.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 600; ++i) rows.push_back({I(i % 7), I(i)});
  Table t = testutil::MakeTable("t", {"k", "arrival"}, std::move(rows));
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                           std::move(keys)));
  std::string dir = MakeSpillDir("stable");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got.value().size(), 600u);
  int64_t prev_key = -1, prev_arrival = -1;
  for (const Row& r : got.value()) {
    int64_t key = r[0].int64_value(), arrival = r[1].int64_value();
    if (key == prev_key) {
      EXPECT_LT(prev_arrival, arrival) << "merge not stable at key " << key;
    } else {
      EXPECT_LT(prev_key, key);
    }
    prev_key = key;
    prev_arrival = arrival;
  }
  EXPECT_GT(spill.stats().runs_created, 1u);  // a real multi-run merge
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, NullKeysSurviveGracePartitioning) {
  // NULL join keys never match but outer-join semantics elsewhere depend on
  // probe rows being preserved through partitioning; here they must simply
  // not crash or pollute the output.
  std::vector<Row> prows, brows;
  for (int64_t i = 0; i < 200; ++i) {
    prows.push_back({i % 5 == 0 ? N() : I(i % 20), I(i)});
    brows.push_back({I(i % 20), I(i)});
  }
  Table probe = testutil::MakeTable("p", {"k", "v"}, std::move(prows));
  Table build = testutil::MakeTable("b", {"k", "v"}, std::move(brows));
  ExpectSpillEquivalent([&] { return JoinPlan(&probe, &build); },
                        /*soft_budget=*/48, "nulls",
                        /*expect_same_order=*/false);
}

TEST(SpillTest, GraceHashJoinSurvivesEmptyProbeInput) {
  // The build side spills into kSpillFanout runs before the probe child is
  // ever pulled; a zero-row probe input must still populate probe_parts_ so
  // the partition replay loop has something to index (regression: OOB read
  // on an empty probe_parts_ vector).
  Table probe = Keyed(0, 5);
  Table build = Keyed(400, 50);
  ExpectSpillEquivalent([&] { return JoinPlan(&probe, &build); },
                        /*soft_budget=*/64, "emptyprobe",
                        /*expect_same_order=*/false);
}

TEST(SpillTest, ScalarAggregateNeverSpills) {
  // A grouping-free aggregate holds O(1) state; there is nothing to spill
  // and the memory-adaptive path must leave it alone.
  Table t = Numbers(500);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(&t), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs)));
  std::string dir = MakeSpillDir("scalar");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(1000);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got.value().size(), 1u);
  EXPECT_EQ(got.value()[0][0].int64_value(), 500);
  EXPECT_EQ(spill.stats().runs_created, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Degradation contract: spill where the guard alone would abort
// ---------------------------------------------------------------------------

TEST(SpillTest, BudgetThatKillsWithoutSpillManagerCompletesWithOne) {
  Table t = Numbers(1000);
  {
    PhysicalPlan plan = SortPlan(&t);
    QueryGuard guard;
    guard.set_max_buffered_rows(100);
    ExecContext ctx;
    ctx.set_guard(&guard);
    EXPECT_EQ(exec::Drive(&plan, {.ctx = &ctx}).status.code(),
              StatusCode::kResourceExhausted);
  }
  {
    std::string dir = MakeSpillDir("degrade");
    SpillManager spill(dir);
    PhysicalPlan plan = SortPlan(&t);
    QueryGuard guard;
    guard.set_max_buffered_rows(100);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    Status s = exec::Drive(&plan, {.ctx = &ctx}).status;
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_GT(spill.stats().runs_created, 0u);
    EXPECT_EQ(spill.live_runs(), 0u);
    std::filesystem::remove_all(dir);
  }
}

TEST(SpillTest, KillThresholdStillAbortsASpillingQuery) {
  // Every build row carries the same key, so Grace partitioning cannot split
  // the data: the single partition's reload blows through the kill threshold
  // and the hard abort fires even though a spill manager is attached.
  std::vector<Row> brows;
  for (int64_t i = 0; i < 500; ++i) brows.push_back({I(7), I(i)});
  Table build = testutil::MakeTable("b", {"k", "v"}, std::move(brows));
  Table probe = Keyed(20, 10);
  std::string dir = MakeSpillDir("kill");
  SpillManager spill(dir);
  PhysicalPlan plan = JoinPlan(&probe, &build);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  guard.set_max_buffered_rows_kill(200);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
  // Even the hard abort cleans up: no runs, no files, no buffered charge.
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(ctx.buffered_rows(), 0u);
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Dynamic work model: total(Q) grows, bounds stay valid, estimators sane
// ---------------------------------------------------------------------------

TEST(SpillTest, TotalWorkStrictlyIncreasesUnderForcedSpill) {
  Table t = Numbers(800);
  PhysicalPlan base_plan = SortPlan(&t);
  ProgressMonitor base = ProgressMonitor::WithEstimators(&base_plan, {"dne"});
  ProgressReport base_report = base.Run(100);
  ASSERT_TRUE(base_report.completed());

  std::string dir = MakeSpillDir("dynamic");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(100);
  PhysicalPlan plan = SortPlan(&t);
  MonitorOptions mo;
  mo.guard = &guard;
  mo.spill_manager = &spill;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
  ProgressReport r = m.Run(100);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  EXPECT_EQ(r.root_rows, base_report.root_rows);
  EXPECT_GT(r.total_work, base_report.total_work)
      << "spill passes must revise total(Q) upward";
  // 800 rows spilled once and re-read once on top of the base scan work.
  EXPECT_EQ(r.total_work, base_report.total_work + 2 * 800);
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, BoundsStayValidWhileTotalGrows) {
  Table t = Keyed(600, 200);
  std::string dir = MakeSpillDir("bounds");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  PhysicalPlan plan = GroupCountPlan(&t);
  MonitorOptions mo;
  mo.guard = &guard;
  mo.spill_manager = &spill;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
  ProgressReport r = m.Run(64);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  ASSERT_FALSE(r.checkpoints.empty());
  EXPECT_GT(spill.stats().runs_created, 0u);
  for (const Checkpoint& cp : r.checkpoints) {
    // The paper's invariant Curr <= LB <= UB must hold at every checkpoint
    // even while spill passes move the goalposts between checkpoints.
    EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9)
        << "at work=" << cp.work;
    EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9) << "at work=" << cp.work;
    // LB can never promise more than the revised final total.
    EXPECT_LE(cp.work_lb,
              static_cast<double>(r.total_work) + 1e-9)
        << "at work=" << cp.work;
    for (double e : cp.estimates) {
      EXPECT_FALSE(std::isnan(e));
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
  // pmax = Curr/LB stays a (sanitized) overestimate of true progress at
  // every checkpoint — the bound it inherits from LB <= total.
  int pmax_idx = r.FindEstimator("pmax");
  ASSERT_GE(pmax_idx, 0);
  for (const Checkpoint& cp : r.checkpoints) {
    EXPECT_GE(cp.estimates[static_cast<size_t>(pmax_idx)],
              cp.true_progress - 1e-9)
        << "at work=" << cp.work;
  }
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, SpillWorkIsAttributedPerNode) {
  Table t = Numbers(400);
  std::string dir = MakeSpillDir("attrib");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(64);
  PhysicalPlan plan = SortPlan(&t);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ASSERT_TRUE(exec::Drive(&plan, {.ctx = &ctx}).ok());
  int sort_node = plan.root()->node_id();
  EXPECT_EQ(ctx.spill_work(sort_node), ctx.total_spill_work());
  EXPECT_EQ(ctx.total_spill_work(),
            spill.stats().rows_written + spill.stats().rows_read);
  EXPECT_EQ(spill.stats().rows_written, spill.stats().rows_read);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Observability: trace events and ExplainAnalyze
// ---------------------------------------------------------------------------

TEST(SpillTest, SpillTraceEventsAppearInOrder) {
  Table t = Numbers(500);
  std::string dir = MakeSpillDir("trace");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(100);
  PhysicalPlan plan = SortPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  MonitorOptions mo;
  mo.guard = &guard;
  mo.spill_manager = &spill;
  mo.telemetry = &collector;
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
  ProgressReport r = m.Run(100);
  ASSERT_TRUE(r.completed()) << r.status.ToString();

  StatusOr<std::vector<TraceEvent>> events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  int begins = 0, ends = 0;
  uint64_t spilled_rows = 0;
  for (const TraceEvent& ev : events.value()) {
    if (ev.kind == TraceEventKind::kSpillBegin) {
      ++begins;
      EXPECT_EQ(ev.name, "sort.run");
    }
    if (ev.kind == TraceEventKind::kSpillEnd) {
      ++ends;
      EXPECT_GE(begins, ends);  // every end follows its begin
      spilled_rows += static_cast<uint64_t>(ev.a);
      EXPECT_GT(ev.b, 0.0);  // bytes written
    }
  }
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(spilled_rows, 500u);  // every materialized row hit disk
  // Round trip: the v2 events survive serialization.
  for (const TraceEvent& ev : events.value()) {
    StatusOr<TraceEvent> back = ParseTraceEvent(TraceEventToJson(ev));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value(), ev);
  }
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, ExplainAnalyzeRendersSpillStats) {
  Table t = Numbers(300);
  std::string dir = MakeSpillDir("explain");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(64);
  PhysicalPlan plan = SortPlan(&t);
  TelemetryCollector collector;
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ctx.set_telemetry(&collector);
  ASSERT_TRUE(exec::Drive(&plan, {.ctx = &ctx}).ok());
  ExplainAnalyzeOptions opts;
  opts.telemetry = &collector;
  std::string rendered = ExplainAnalyze(plan, ctx, opts);
  EXPECT_NE(rendered.find("spills="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("spilled_rows=300"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("reread_rows=300"), std::string::npos) << rendered;
  // A clean run has no retries, and the token is suppressed entirely.
  EXPECT_EQ(rendered.find("io_retries="), std::string::npos) << rendered;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Retryable I/O: transient faults ride out, permanent faults fail cleanly
// ---------------------------------------------------------------------------

TEST(SpillTest, TransientWriteFaultIsRetriedToCompletion) {
  Table t = Numbers(600);
  std::string dir = MakeSpillDir("transient");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(100);
  FaultInjector fi(11);
  FaultSpec spec;
  spec.site = faults::kSpillWrite;
  spec.fail_on_hit = 37;
  spec.fault_class = FaultClass::kTransient;
  spec.transient_failures = 2;  // fails twice, recovers on the third try
  fi.Arm(std::move(spec));
  PhysicalPlan plan = SortPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ctx.set_fault_injector(&fi);
  ctx.set_telemetry(&collector);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_TRUE(got.ok()) << "transient fault not ridden out: " << got.status();
  EXPECT_EQ(got.value().size(), 600u);
  EXPECT_EQ(spill.stats().io_retries, 2u);
  EXPECT_NE(sink.data().find("\"io_retry\""), std::string::npos);
  EXPECT_NE(sink.data().find("spill.write"), std::string::npos);
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, TransientReadAndOpenFaultsAreRetriedToo) {
  for (const char* site : {faults::kSpillRead, faults::kSpillOpen}) {
    SCOPED_TRACE(site);
    Table t = Numbers(400);
    std::string dir = MakeSpillDir("transient2");
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    FaultInjector fi;
    FaultSpec spec;
    spec.site = site;
    spec.fail_on_hit = 2;
    spec.fault_class = FaultClass::kTransient;
    fi.Arm(std::move(spec));
    PhysicalPlan plan = SortPlan(&t);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_fault_injector(&fi);
    StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value().size(), 400u);
    EXPECT_EQ(spill.stats().io_retries, 1u);
    EXPECT_EQ(CountSpillFiles(dir), 0);
    std::filesystem::remove_all(dir);
  }
}

TEST(SpillTest, ExhaustedRetryBudgetSurfacesTheTransientStatus) {
  Table t = Numbers(600);
  std::string dir = MakeSpillDir("exhausted");
  SpillRetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_spins = 8;
  SpillManager spill(dir, policy);
  QueryGuard guard;
  guard.set_max_buffered_rows(100);
  FaultInjector fi;
  FaultSpec spec;
  spec.site = faults::kSpillWrite;
  spec.fail_on_hit = 10;
  spec.fault_class = FaultClass::kTransient;
  spec.transient_failures = 50;  // outlasts any sane retry budget
  fi.Arm(std::move(spec));
  PhysicalPlan plan = SortPlan(&t);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ctx.set_fault_injector(&fi);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(spill.stats().io_retries, 2u);  // max_attempts - 1
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(ctx.buffered_rows(), 0u);
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, PermanentFaultFailsCleanlyAtEverySpillSite) {
  for (const char* site :
       {faults::kSpillOpen, faults::kSpillWrite, faults::kSpillRead}) {
    SCOPED_TRACE(site);
    Table t = Numbers(500);
    std::string dir = MakeSpillDir("permanent");
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(100);
    FaultInjector fi;
    FaultSpec spec;
    spec.site = site;
    spec.fail_on_hit = 3;  // permanent by default
    fi.Arm(std::move(spec));
    PhysicalPlan plan = SortPlan(&t);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_fault_injector(&fi);
    StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
    ASSERT_FALSE(got.ok()) << "permanent fault at " << site << " ignored";
    EXPECT_EQ(got.status().code(), StatusCode::kInternal);
    EXPECT_NE(got.status().message().find(site), std::string::npos)
        << got.status();
    EXPECT_EQ(spill.stats().io_retries, 0u) << "permanent faults never retry";
    EXPECT_EQ(spill.live_runs(), 0u);
    EXPECT_EQ(ctx.buffered_rows(), 0u);
    EXPECT_EQ(CountSpillFiles(dir), 0);
    std::filesystem::remove_all(dir);
  }
}

TEST(SpillTest, ChecksumMismatchIsPermanentCorruption) {
  std::string dir = MakeSpillDir("checksum");
  auto file = SpillFile::Create(dir);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(file.value()->AppendRecord("hello", 5).ok());
  // SeekToStart flushes the stdio buffer, so the record is on disk before we
  // corrupt it behind the file's back.
  ASSERT_TRUE(file.value()->SeekToStart().ok());
  {
    std::FILE* raw = std::fopen(file.value()->path().c_str(), "rb+");
    ASSERT_NE(raw, nullptr);
    std::fseek(raw, 8, SEEK_SET);  // past [size][checksum]
    std::fputc('X', raw);
    std::fflush(raw);
    std::fclose(raw);
  }
  ASSERT_TRUE(file.value()->SeekToStart().ok());
  std::string payload;
  StatusOr<bool> read = file.value()->ReadRecord(&payload);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos)
      << read.status();
  file.value()->CloseAndDelete();
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(SpillTest, CorruptRecordLengthIsCleanCorruptionError) {
  // A torn/garbage length field must be rejected as kInternal corruption
  // before resize() attempts a multi-GiB allocation (regression: bad_alloc
  // on untrusted header length).
  std::string dir = MakeSpillDir("badlen");
  auto file = SpillFile::Create(dir);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(file.value()->AppendRecord("hello", 5).ok());
  ASSERT_TRUE(file.value()->SeekToStart().ok());
  {
    std::FILE* raw = std::fopen(file.value()->path().c_str(), "rb+");
    ASSERT_NE(raw, nullptr);
    uint32_t huge = 0xFFFFFFF0u;
    std::fseek(raw, 0, SEEK_SET);  // clobber the [size] field
    std::fwrite(&huge, sizeof(huge), 1, raw);
    std::fflush(raw);
    std::fclose(raw);
  }
  ASSERT_TRUE(file.value()->SeekToStart().ok());
  std::string payload;
  StatusOr<bool> read = file.value()->ReadRecord(&payload);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  EXPECT_NE(read.status().message().find("length corrupt"), std::string::npos)
      << read.status();
  file.value()->CloseAndDelete();
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault taxonomy unit tests
// ---------------------------------------------------------------------------

TEST(FaultClassTest, TransientWindowFailsThenRecovers) {
  FaultInjector fi;
  FaultSpec spec;
  spec.site = "taxonomy.site";
  spec.fail_on_hit = 2;
  spec.fault_class = FaultClass::kTransient;
  spec.transient_failures = 3;
  fi.Arm(std::move(spec));
  EXPECT_TRUE(fi.OnHit("taxonomy.site").ok());  // hit 1
  // Hits 2..4: the trigger plus the rest of the failing window.
  for (int i = 0; i < 3; ++i) {
    Status s = fi.OnHit("taxonomy.site");
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << "failing hit " << i;
  }
  // Recovered: the site stays healthy from here on.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fi.OnHit("taxonomy.site").ok()) << "post-recovery hit " << i;
  }
}

TEST(FaultClassTest, TransientCodeDefaultsToUnavailable) {
  FaultInjector fi;
  FaultSpec spec;
  spec.site = "coerce.site";
  spec.fail_on_hit = 1;
  spec.fault_class = FaultClass::kTransient;
  // spec.code left at the kInternal default: Arm must coerce it so retry
  // loops recognize the failure as retryable.
  fi.Arm(std::move(spec));
  EXPECT_EQ(fi.OnHit("coerce.site").code(), StatusCode::kUnavailable);

  // An explicit non-default code is preserved.
  FaultSpec custom;
  custom.site = "custom.site";
  custom.fail_on_hit = 1;
  custom.fault_class = FaultClass::kTransient;
  custom.code = StatusCode::kOutOfRange;
  fi.Arm(std::move(custom));
  EXPECT_EQ(fi.OnHit("custom.site").code(), StatusCode::kOutOfRange);
}

TEST(FaultClassTest, PermanentFaultLatchesUntilDisarm) {
  FaultInjector fi;
  FaultSpec spec;
  spec.site = "latch.site";
  spec.fail_on_hit = 2;
  fi.Arm(std::move(spec));
  EXPECT_TRUE(fi.OnHit("latch.site").ok());
  EXPECT_FALSE(fi.OnHit("latch.site").ok());  // fires
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(fi.OnHit("latch.site").ok()) << "latched hit " << i;
  }
  fi.Disarm("latch.site");
  EXPECT_TRUE(fi.OnHit("latch.site").ok());
}

TEST(FaultClassTest, ResetClosesTheTransientWindowAndUnlatches) {
  FaultInjector fi;
  FaultSpec transient;
  transient.site = "t.site";
  transient.fail_on_hit = 1;
  transient.fault_class = FaultClass::kTransient;
  transient.transient_failures = 100;
  fi.Arm(std::move(transient));
  EXPECT_FALSE(fi.OnHit("t.site").ok());
  EXPECT_FALSE(fi.OnHit("t.site").ok());
  fi.Reset();
  // The schedule replays from scratch: hit 1 triggers again.
  EXPECT_FALSE(fi.OnHit("t.site").ok());

  FaultSpec perm;
  perm.site = "p.site";
  perm.fail_on_hit = 1;
  fi.Arm(std::move(perm));
  EXPECT_FALSE(fi.OnHit("p.site").ok());
  fi.Reset();
  EXPECT_EQ(fi.hit_count("p.site"), 0u);
  EXPECT_FALSE(fi.OnHit("p.site").ok());  // fires fresh, not via the latch
}

// ---------------------------------------------------------------------------
// SpillFile record format
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RowSerializationRoundTripsEveryType) {
  Row row = {I(42),  testutil::D(3.25), S("spill \"me\"\n"),
             testutil::B(true), N(),    testutil::Dt("1995-03-15")};
  std::string bytes;
  AppendRowBytes(row, &bytes);
  Row back;
  Status s = ParseRowBytes(bytes, &back);
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(back.size(), row.size());
  EXPECT_EQ(RowToString(back), RowToString(row));
}

TEST(SpillFileTest, WriteReadRewindReadAgain) {
  std::string dir = MakeSpillDir("file");
  auto file = SpillFile::Create(dir);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(CountSpillFiles(dir), 1);
  for (int i = 0; i < 3; ++i) {
    std::string rec = "record-" + std::to_string(i);
    ASSERT_TRUE(file.value()->AppendRecord(rec.data(), rec.size()).ok());
  }
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(file.value()->SeekToStart().ok());
    std::string payload;
    for (int i = 0; i < 3; ++i) {
      StatusOr<bool> more = file.value()->ReadRecord(&payload);
      ASSERT_TRUE(more.ok()) << more.status();
      ASSERT_TRUE(more.value());
      EXPECT_EQ(payload, "record-" + std::to_string(i)) << "pass " << pass;
    }
    StatusOr<bool> eof = file.value()->ReadRecord(&payload);
    ASSERT_TRUE(eof.ok()) << eof.status();
    EXPECT_FALSE(eof.value());
  }
  file.value()->CloseAndDelete();
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace qprog
