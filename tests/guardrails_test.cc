// Execution-guardrail and fault-injection tests: cancellation honored at
// every checkpoint, work/deadline/buffer budgets, deterministic fault
// replay, Status propagation out of every operator type, and the monitor's
// estimate range invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "index/ordered_index.h"
#include "core/explain.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;

std::vector<SortKey> KeyOnCol0() {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return keys;
}

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("t", {"v"}, std::move(rows));
}

/// Scan -> Filter plan whose work is exactly the scan output (the root's
/// rows are not counted), so checkpoint arithmetic is easy to assert.
PhysicalPlan ScanFilterPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  return PhysicalPlan(std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0), eb::Int(1 << 30))));
}

PhysicalPlan CountAggPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

// A cancel requested from checkpoint k must stop execution at that same
// observation event: the partial report's total work equals the checkpoint's
// work, and no later checkpoint exists. Exercised at *every* checkpoint.
TEST(GuardrailsTest, CancelHonoredAtEveryCheckpoint) {
  Table t = Numbers(1000);
  const uint64_t kInterval = 100;
  const size_t kCheckpoints = 10;  // work == 1000 == scan rows
  for (size_t cancel_at = 0; cancel_at < kCheckpoints; ++cancel_at) {
    PhysicalPlan plan = ScanFilterPlan(&t);
    QueryGuard guard;
    size_t seen = 0;
    MonitorOptions mo;
    mo.guard = &guard;
    mo.checkpoint_listener = [&](const Checkpoint&) {
      if (seen++ == cancel_at) guard.RequestCancel();
    };
    ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
    ProgressReport r = m.Run(kInterval);
    EXPECT_EQ(r.termination, TerminationReason::kCancelled);
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(r.checkpoints.size(), cancel_at + 1);
    EXPECT_EQ(r.total_work, kInterval * (cancel_at + 1))
        << "cancel at checkpoint " << cancel_at
        << " was not honored within the same observation event";
    EXPECT_EQ(r.mu, 0.0);
    for (const Checkpoint& c : r.checkpoints) {
      EXPECT_EQ(c.true_progress, 0.0);  // unknowable for an unfinished query
    }
  }
}

TEST(GuardrailsTest, CancelBeforeRunStopsImmediately) {
  Table t = Numbers(100);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_check_interval(8);
  guard.RequestCancel();
  ExecContext ctx;
  ctx.set_guard(&guard);
  Status s = exec::Drive(&plan, {.ctx = &ctx}).status;
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_LE(ctx.work(), 8u);  // at most one amortized interval of extra work
  guard.ResetCancel();
  EXPECT_FALSE(guard.cancel_requested());
  Status again = exec::Drive(&plan, {.ctx = &ctx}).status;
  EXPECT_TRUE(again.ok()) << again.ToString();
}

// ---------------------------------------------------------------------------
// Budgets and deadlines
// ---------------------------------------------------------------------------

TEST(GuardrailsTest, WorkBudgetTripsExactlyAtLimit) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_max_work(500);
  MonitorOptions mo;
  mo.guard = &guard;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, mo);
  ProgressReport r = m.Run(100);
  EXPECT_EQ(r.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.total_work, 500u);  // the budget is a hard trip point
  EXPECT_EQ(r.checkpoints.size(), 5u);
}

TEST(GuardrailsTest, ExpiredDeadlineAborts) {
  Table t = Numbers(5000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_check_interval(16);
  guard.set_deadline(QueryGuard::Clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(guard.has_deadline());
  ExecContext ctx;
  ctx.set_guard(&guard);
  Status s = exec::Drive(&plan, {.ctx = &ctx}).status;
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(ctx.work(), 16u);
  guard.clear_deadline();
  EXPECT_FALSE(guard.has_deadline());
  EXPECT_TRUE(exec::Drive(&plan, {.ctx = &ctx}).ok());
}

TEST(GuardrailsTest, GenerousTimeoutDoesNotTrip) {
  Table t = Numbers(200);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_timeout(std::chrono::hours(1));
  ExecContext ctx;
  ctx.set_guard(&guard);
  EXPECT_TRUE(exec::Drive(&plan, {.ctx = &ctx}).ok());
  EXPECT_EQ(ctx.work(), 200u);
}

TEST(GuardrailsTest, BufferedRowBudgetStopsSort) {
  Table t = Numbers(1000);
  PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                           KeyOnCol0()));
  QueryGuard guard;
  guard.set_max_buffered_rows(100);
  ExecContext ctx;
  ctx.set_guard(&guard);
  Status s = exec::Drive(&plan, {.ctx = &ctx}).status;
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(TerminationFromStatus(s), TerminationReason::kBudgetExhausted);
  // Close() ran: the aborted sort returned its charge to the budget.
  EXPECT_EQ(ctx.buffered_rows(), 0u);
}

TEST(GuardrailsTest, BufferedRowBudgetStopsHashJoinBuild) {
  Table probe = Numbers(10);
  Table build = Numbers(1000);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  PhysicalPlan plan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(&probe), std::make_unique<SeqScan>(&build),
      std::move(pk), std::move(bk)));
  QueryGuard guard;
  guard.set_max_buffered_rows(64);
  ExecContext ctx;
  ctx.set_guard(&guard);
  EXPECT_EQ(exec::Drive(&plan, {.ctx = &ctx}).status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.buffered_rows(), 0u);
}

TEST(GuardrailsTest, BufferedRowBudgetStopsHashAggregateGroups) {
  Table t = Numbers(1000);  // every row its own group
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::move(scan), std::move(groups), std::vector<std::string>{"g"},
      std::move(aggs)));
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  ExecContext ctx;
  ctx.set_guard(&guard);
  EXPECT_EQ(exec::Drive(&plan, {.ctx = &ctx}).status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.buffered_rows(), 0u);
}

TEST(GuardrailsTest, SufficientBufferBudgetPasses) {
  Table t = Numbers(500);
  PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                           KeyOnCol0()));
  QueryGuard guard;
  guard.set_max_buffered_rows(500);
  ExecContext ctx;
  ctx.set_guard(&guard);
  EXPECT_TRUE(exec::Drive(&plan, {.ctx = &ctx}).ok());
  EXPECT_EQ(ctx.buffered_rows(), 0u);  // released on Close
}

// ---------------------------------------------------------------------------
// Fault injection: every operator type propagates a clean Status
// ---------------------------------------------------------------------------

struct FaultCase {
  std::string site;
  std::function<PhysicalPlan()> make_plan;
  // Spill-layer sites are only reached when the plan actually spills: run
  // these cases under a tight soft budget with a SpillManager attached.
  bool spilling = false;
};

/// Runs `plan` with a fault armed at `site` and asserts the error surfaces
/// as the execution Status with the injected code and site name.
void ExpectFaultStops(PhysicalPlan plan, const std::string& site,
                      uint64_t fail_on_hit, bool spilling = false) {
  FaultInjector fi(7);
  FaultSpec spec;
  spec.site = site;
  spec.fail_on_hit = fail_on_hit;
  spec.code = StatusCode::kInternal;
  fi.Arm(std::move(spec));
  QueryGuard guard;
  SpillManager spill;
  ExecContext ctx;
  if (spilling) {
    guard.set_max_buffered_rows(32);
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
  }
  ctx.set_fault_injector(&fi);
  exec::DriveResult result =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  ASSERT_FALSE(result.ok()) << "fault at " << site << " did not surface";
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find(site), std::string::npos)
      << result.status.ToString();
  EXPECT_EQ(TerminationFromStatus(result.status), TerminationReason::kFault);
  EXPECT_GE(fi.hit_count(site), fail_on_hit);

  // The same context and plan must be reusable after the fault is disarmed:
  // no operator may be left wedged in a failed state.
  fi.Disarm(site);
  exec::DriveResult retry =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  EXPECT_TRUE(retry.ok()) << "plan not rerunnable after fault at " << site
                          << ": " << retry.status.ToString();
  if (spilling) {
    // Both the aborted and the clean rerun must leave zero live spill runs.
    EXPECT_GT(spill.stats().runs_created, 0u)
        << "spill case for " << site << " never spilled";
    EXPECT_EQ(spill.live_runs(), 0u);
  }
}

TEST(GuardrailsTest, EveryFaultSiteStopsItsOperator) {
  Table small = Numbers(20);
  Table big = Numbers(200);
  OrderedIndex index(&small, 0);

  std::vector<FaultCase> cases;
  cases.push_back({faults::kSeqScanOpen, [&] {
                     return PhysicalPlan(std::make_unique<SeqScan>(&big));
                   }});
  cases.push_back({faults::kSeqScanNext, [&] {
                     return PhysicalPlan(std::make_unique<SeqScan>(&big));
                   }});
  cases.push_back({faults::kIndexSeekNext, [&] {
                     return PhysicalPlan(std::make_unique<IndexSeek>(
                         &index, Value::Null(), false, true, Value::Null(),
                         false, true));
                   }});
  cases.push_back({faults::kFilterNext, [&] {
                     return PhysicalPlan(std::make_unique<Filter>(
                         std::make_unique<SeqScan>(&big),
                         eb::Ge(eb::Col(0), eb::Int(0))));
                   }});
  cases.push_back({faults::kProjectNext, [&] {
                     std::vector<ExprPtr> exprs;
                     exprs.push_back(eb::Col(0));
                     return PhysicalPlan(std::make_unique<Project>(
                         std::make_unique<SeqScan>(&big), std::move(exprs),
                         std::vector<std::string>{"v"}));
                   }});
  cases.push_back({faults::kLimitNext, [&] {
                     return PhysicalPlan(std::make_unique<Limit>(
                         std::make_unique<SeqScan>(&big), 50));
                   }});
  cases.push_back({faults::kNestedLoopsJoinNext, [&] {
                     return PhysicalPlan(std::make_unique<NestedLoopsJoin>(
                         std::make_unique<SeqScan>(&small),
                         std::make_unique<SeqScan>(&small),
                         eb::Eq(eb::Col(0), eb::Col(1))));
                   }});
  cases.push_back({faults::kIndexNestedLoopsJoinNext, [&] {
                     return PhysicalPlan(std::make_unique<IndexNestedLoopsJoin>(
                         std::make_unique<SeqScan>(&small),
                         std::make_unique<IndexSeek>(&index), eb::Col(0)));
                   }});
  auto hash_join_plan = [&] {
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    return PhysicalPlan(std::make_unique<HashJoin>(
        std::make_unique<SeqScan>(&big), std::make_unique<SeqScan>(&small),
        std::move(pk), std::move(bk)));
  };
  cases.push_back({faults::kHashJoinOpen, hash_join_plan});
  cases.push_back({faults::kHashJoinBuild, hash_join_plan});
  cases.push_back({faults::kHashJoinProbe, hash_join_plan});
  cases.push_back({faults::kMergeJoinNext, [&] {
                     std::vector<ExprPtr> lk, rk;
                     lk.push_back(eb::Col(0));
                     rk.push_back(eb::Col(0));
                     return PhysicalPlan(std::make_unique<MergeJoin>(
                         std::make_unique<SeqScan>(&small),
                         std::make_unique<SeqScan>(&small), std::move(lk),
                         std::move(rk)));
                   }});
  auto sort_plan = [&] {
    return PhysicalPlan(std::make_unique<Sort>(
        std::make_unique<SeqScan>(&big), KeyOnCol0()));
  };
  cases.push_back({faults::kSortOpen, sort_plan});
  cases.push_back({faults::kSortBuild, sort_plan});
  cases.push_back({faults::kHashAggregateBuild, [&] {
                     std::vector<ExprPtr> groups;
                     groups.push_back(eb::Col(0));
                     std::vector<AggregateDesc> aggs;
                     aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
                     return PhysicalPlan(std::make_unique<HashAggregate>(
                         std::make_unique<SeqScan>(&big), std::move(groups),
                         std::vector<std::string>{"g"}, std::move(aggs)));
                   }});
  cases.push_back({faults::kStreamAggregateNext, [&] {
                     std::vector<ExprPtr> groups;
                     groups.push_back(eb::Col(0));
                     std::vector<AggregateDesc> aggs;
                     aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
                     return PhysicalPlan(std::make_unique<StreamAggregate>(
                         std::make_unique<SeqScan>(&big), std::move(groups),
                         std::vector<std::string>{"g"}, std::move(aggs)));
                   }});
  auto exchange_plan = [&] {
    std::vector<OperatorPtr> producers;
    producers.push_back(std::make_unique<SeqScan>(&big, nullptr, 0, 100));
    producers.push_back(std::make_unique<SeqScan>(&big, nullptr, 100, 200));
    return PhysicalPlan(std::make_unique<Exchange>(
        std::move(producers), std::vector<size_t>{0}, 2));
  };
  cases.push_back({faults::kExchangeSend, exchange_plan});
  cases.push_back({faults::kExchangeRecv, exchange_plan});
  // Spill-layer sites: the sort spills under the case's tight budget, so
  // every temp-file open, record write, and record read consults its site.
  cases.push_back({faults::kSpillOpen, sort_plan, /*spilling=*/true});
  cases.push_back({faults::kSpillWrite, sort_plan, /*spilling=*/true});
  cases.push_back({faults::kSpillRead, sort_plan, /*spilling=*/true});

  // The case table must cover every canonical site exactly once.
  std::set<std::string> covered;
  for (const FaultCase& c : cases) covered.insert(c.site);
  std::set<std::string> known(FaultInjector::KnownSites().begin(),
                              FaultInjector::KnownSites().end());
  EXPECT_EQ(covered, known);

  for (const FaultCase& c : cases) {
    SCOPED_TRACE(c.site);
    ExpectFaultStops(c.make_plan(), c.site, /*fail_on_hit=*/1, c.spilling);
    // Open-phase sites are hit once per run; Nth-hit faults only make sense
    // for the per-row sites (spill.open is per-run-file, so it qualifies).
    if (c.site.find(".open") == std::string::npos ||
        c.site == faults::kSpillOpen) {
      ExpectFaultStops(c.make_plan(), c.site, /*fail_on_hit=*/3, c.spilling);
    }
  }
}

TEST(GuardrailsTest, InjectedStatusCodeIsPreserved) {
  Table t = Numbers(100);
  PhysicalPlan plan = ScanFilterPlan(&t);
  FaultInjector fi;
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.fail_on_hit = 10;
  spec.code = StatusCode::kOutOfRange;
  spec.message = "simulated torn page";
  fi.Arm(std::move(spec));
  ExecContext ctx;
  ctx.set_fault_injector(&fi);
  Status s = exec::Drive(&plan, {.ctx = &ctx}).status;
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "simulated torn page");
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(GuardrailsTest, ProbabilisticFaultReplaysByteIdentically) {
  Table t = Numbers(4000);
  PhysicalPlan plan = CountAggPlan(&t);
  FaultInjector fi(123);
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.fail_probability = 0.001;
  spec.latency_spins = 50;  // deterministic busy-wait, no clock reads
  fi.Arm(std::move(spec));

  MonitorOptions mo;
  mo.fault_injector = &fi;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, mo);
  ProgressReport r1 = m.Run(64);
  ProgressReport r2 = m.Run(64);  // monitor resets the injector per run
  EXPECT_EQ(r1.ToTsv(), r2.ToTsv());
  EXPECT_EQ(r1.termination, r2.termination);
  EXPECT_EQ(r1.total_work, r2.total_work);
  EXPECT_EQ(r1.status.ToString(), r2.status.ToString());
  // With 4000 draws at p=0.001 and this seed the fault actually fires; the
  // assertion pins the interesting (aborted) path, not a trivial clean run.
  EXPECT_EQ(r1.termination, TerminationReason::kFault);
}

TEST(GuardrailsTest, FaultInjectorResetReplaysDrawSequence) {
  FaultInjector fi(99);
  FaultSpec spec;
  spec.site = "test.site";
  spec.fail_probability = 0.5;
  fi.Arm(std::move(spec));
  auto draw_pattern = [&] {
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += fi.OnHit("test.site").ok() ? '.' : 'X';
    }
    return pattern;
  };
  std::string first = draw_pattern();
  EXPECT_EQ(fi.hit_count("test.site"), 64u);
  fi.Reset();
  EXPECT_EQ(fi.hit_count("test.site"), 0u);
  EXPECT_EQ(draw_pattern(), first);
  EXPECT_NE(first.find('X'), std::string::npos);  // p=0.5 over 64 draws
}

// ---------------------------------------------------------------------------
// Estimator range invariants
// ---------------------------------------------------------------------------

/// Deliberately misbehaving estimator: cycles through NaN, a negative value,
/// a value above one, and +infinity.
class RogueEstimator : public ProgressEstimator {
 public:
  double Estimate(const ProgressContext&) const override {
    switch (calls_++ % 4) {
      case 0: return std::nan("");
      case 1: return -5.0;
      case 2: return 7.0;
      default: return std::numeric_limits<double>::infinity();
    }
  }
  std::string name() const override { return "rogue"; }

 private:
  mutable int calls_ = 0;
};

TEST(GuardrailsTest, MonitorSanitizesRogueEstimates) {
  Table t = Numbers(500);
  PhysicalPlan plan = ScanFilterPlan(&t);
  std::vector<std::unique_ptr<ProgressEstimator>> estimators;
  estimators.push_back(std::make_unique<RogueEstimator>());
  ProgressMonitor m(&plan, std::move(estimators));
  ProgressReport r = m.Run(100);
  ASSERT_EQ(r.checkpoints.size(), 5u);
  // NaN -> 0, -5 -> 0, 7 -> 1, inf -> 1, NaN -> 0.
  std::vector<double> expected = {0.0, 0.0, 1.0, 1.0, 0.0};
  for (size_t i = 0; i < r.checkpoints.size(); ++i) {
    ASSERT_EQ(r.checkpoints[i].estimates.size(), 1u);
    EXPECT_EQ(r.checkpoints[i].estimates[0], expected[i]) << "checkpoint " << i;
  }
}

TEST(GuardrailsTest, AllEstimatesInRangeOnAbortedRun) {
  Table t = Numbers(2000);
  PhysicalPlan plan = CountAggPlan(&t);
  QueryGuard guard;
  guard.set_max_work(1100);
  MonitorOptions mo;
  mo.guard = &guard;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, AllEstimatorNames(), mo);
  ProgressReport r = m.Run(97);
  EXPECT_EQ(r.termination, TerminationReason::kBudgetExhausted);
  ASSERT_FALSE(r.checkpoints.empty());
  for (const Checkpoint& c : r.checkpoints) {
    for (double e : c.estimates) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
      EXPECT_FALSE(std::isnan(e));
    }
  }
}

TEST(GuardrailsTest, EstimatesFiniteOnZeroWorkAndOneRowPlans) {
  // Zero work: an empty table produces no getnext calls, so no checkpoints
  // fire — the report must still be a sane "completed" report.
  Table empty = Numbers(0);
  PhysicalPlan zero_plan = ScanFilterPlan(&empty);
  ProgressMonitor m0 =
      ProgressMonitor::WithEstimators(&zero_plan, AllEstimatorNames());
  ProgressReport r0 = m0.Run(1);
  EXPECT_TRUE(r0.completed());
  EXPECT_EQ(r0.total_work, 0u);
  EXPECT_TRUE(r0.checkpoints.empty());

  // One row: a single unit of work, checkpointed at interval 1. Every
  // estimator must emit a finite value in [0, 1].
  Table one = Numbers(1);
  PhysicalPlan one_plan = ScanFilterPlan(&one);
  ProgressMonitor m1 =
      ProgressMonitor::WithEstimators(&one_plan, AllEstimatorNames());
  ProgressReport r1 = m1.Run(1);
  EXPECT_TRUE(r1.completed());
  EXPECT_EQ(r1.total_work, 1u);
  ASSERT_EQ(r1.checkpoints.size(), 1u);
  for (double e : r1.checkpoints[0].estimates) {
    EXPECT_FALSE(std::isnan(e));
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
  EXPECT_DOUBLE_EQ(r1.checkpoints[0].true_progress, 1.0);
}

// ---------------------------------------------------------------------------
// Work-observer batching (drift fix)
// ---------------------------------------------------------------------------

TEST(GuardrailsTest, ObserverFiresOncePerCrossedInterval) {
  ExecContext ctx;
  std::vector<uint64_t> fired;
  ctx.SetWorkObserver(10, [&](uint64_t work) { fired.push_back(work); });
  ctx.Reset(1);
  ctx.CountRows(0, 35, /*is_root=*/false);  // crosses 10, 20, 30 in one burst
  EXPECT_EQ(fired, (std::vector<uint64_t>{10, 20, 30}));
  ctx.CountRows(0, 5, false);  // reaches exactly 40
  EXPECT_EQ(fired, (std::vector<uint64_t>{10, 20, 30, 40}));
  for (int i = 0; i < 9; ++i) ctx.CountRow(0, false);
  EXPECT_EQ(fired.size(), 4u);
  ctx.CountRow(0, false);  // 50th unit
  EXPECT_EQ(fired.back(), 50u);
  EXPECT_EQ(ctx.rows_produced(0), 50u);
}

TEST(GuardrailsTest, RootRowsAreNotWorkButAreCounted) {
  ExecContext ctx;
  ctx.Reset(2);
  ctx.CountRows(0, 7, /*is_root=*/true);
  ctx.CountRows(1, 3, /*is_root=*/false);
  EXPECT_EQ(ctx.work(), 3u);
  EXPECT_EQ(ctx.rows_produced(0), 7u);
  EXPECT_EQ(ctx.rows_produced(1), 3u);
}

// ---------------------------------------------------------------------------
// RunWithApproxCheckpoints: rewind contract and guarded learning run
// ---------------------------------------------------------------------------

/// SeqScan that claims it cannot be re-executed (models an external stream).
class OneShotScan : public SeqScan {
 public:
  using SeqScan::SeqScan;
  bool SupportsRewind() const override { return false; }
};

TEST(GuardrailsTest, ApproxCheckpointsRejectsNonRewindablePlan) {
  Table t = Numbers(100);
  PhysicalPlan plan(std::make_unique<Filter>(std::make_unique<OneShotScan>(&t),
                                             eb::Ge(eb::Col(0), eb::Int(0))));
  EXPECT_FALSE(PlanSupportsRewind(plan));
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"});
  ProgressReport r = m.RunWithApproxCheckpoints(10);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(r.completed());
  EXPECT_TRUE(r.checkpoints.empty());
  EXPECT_EQ(r.total_work, 0u);
}

TEST(GuardrailsTest, ApproxCheckpointsHonorsGuardDuringLearningRun) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_max_work(300);
  MonitorOptions mo;
  mo.guard = &guard;
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
  ProgressReport r = m.RunWithApproxCheckpoints(10);
  EXPECT_EQ(r.termination, TerminationReason::kBudgetExhausted);
  EXPECT_TRUE(r.checkpoints.empty());  // the learning run itself was stopped
  EXPECT_EQ(r.total_work, 300u);
}

TEST(GuardrailsTest, ApproxCheckpointsStillWorksOnRewindablePlan) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  EXPECT_TRUE(PlanSupportsRewind(plan));
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"});
  ProgressReport r = m.RunWithApproxCheckpoints(10);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.total_work, 1000u);
  EXPECT_EQ(r.checkpoints.size(), 10u);
}

// ---------------------------------------------------------------------------
// Status plumbing
// ---------------------------------------------------------------------------

TEST(GuardrailsTest, NewStatusCodesRoundTrip) {
  EXPECT_EQ(Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(DeadlineExceeded("d").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhausted("r").code(), StatusCode::kResourceExhausted);
  EXPECT_NE(Cancelled("c").ToString().find("Cancelled"), std::string::npos);
  EXPECT_NE(DeadlineExceeded("d").ToString().find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_NE(ResourceExhausted("r").ToString().find("ResourceExhausted"),
            std::string::npos);
}

TEST(GuardrailsTest, TerminationReasonMapping) {
  EXPECT_EQ(TerminationFromStatus(OkStatus()), TerminationReason::kCompleted);
  EXPECT_EQ(TerminationFromStatus(Cancelled("")),
            TerminationReason::kCancelled);
  EXPECT_EQ(TerminationFromStatus(DeadlineExceeded("")),
            TerminationReason::kDeadlineExceeded);
  EXPECT_EQ(TerminationFromStatus(ResourceExhausted("")),
            TerminationReason::kBudgetExhausted);
  EXPECT_EQ(TerminationFromStatus(Internal("boom")), TerminationReason::kFault);
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kCompleted),
               "completed");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kCancelled),
               "cancelled");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kDeadlineExceeded),
               "deadline");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kBudgetExhausted),
               "budget");
  EXPECT_STREQ(TerminationReasonToString(TerminationReason::kFault), "fault");
}

TEST(GuardrailsTest, FirstErrorWinsOnContext) {
  ExecContext ctx;
  ctx.Reset(1);
  EXPECT_TRUE(ctx.ok());
  ctx.RaiseError(Cancelled("first"));
  ctx.RaiseError(Internal("cascade noise"));
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.status().message(), "first");
  ctx.Reset(1);  // Reset clears the sticky error
  EXPECT_TRUE(ctx.ok());
}

TEST(GuardrailsTest, SummarizeReportNamesTheTermination) {
  Table t = Numbers(300);
  PhysicalPlan plan = ScanFilterPlan(&t);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"});
  std::string done = SummarizeReport(m.Run(100));
  EXPECT_NE(done.find("completed"), std::string::npos) << done;
  EXPECT_NE(done.find("work=300"), std::string::npos) << done;

  // The environment is fixed at construction, so the budgeted run gets its
  // own monitor.
  QueryGuard guard;
  guard.set_max_work(100);
  MonitorOptions mo;
  mo.guard = &guard;
  ProgressMonitor budgeted =
      ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
  std::string stopped = SummarizeReport(budgeted.Run(100));
  EXPECT_NE(stopped.find("budget"), std::string::npos) << stopped;
  EXPECT_NE(stopped.find("ResourceExhausted"), std::string::npos) << stopped;
}

TEST(GuardrailsTest, DriveCollectRowsReturnsPrefixFreeErrors) {
  Table t = Numbers(100);
  PhysicalPlan plan = ScanFilterPlan(&t);
  FaultInjector fi;
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.fail_on_hit = 50;
  fi.Arm(std::move(spec));
  ExecContext ctx;
  ctx.set_fault_injector(&fi);
  // CollectRows surfaces the prefix; exec::Drive surfaces the Status.
  std::vector<Row> prefix = CollectRows(&plan, &ctx);
  EXPECT_LT(prefix.size(), 100u);
  EXPECT_FALSE(ctx.ok());
  fi.Reset();
  exec::DriveResult res =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  EXPECT_FALSE(res.ok());
  ctx.set_fault_injector(nullptr);
  exec::DriveResult clean =
      exec::Drive(&plan, {.ctx = &ctx, .collect_rows = true});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.rows.size(), 100u);
}

}  // namespace
}  // namespace qprog
