// Per-tuple work attribution, predictive orders (Theorem 4) and mu/variance.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/monitor.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "index/ordered_index.h"
#include "tests/test_util.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

using testutil::I;

TEST(PerTupleWorkTest, AttributesInlMatchesToOuterTuples) {
  // R1 = {1, 2, 3}; R2 holds one 1, two 2s, zero 3s.
  Table r1 = testutil::MakeTable("r1", {"a"}, {{I(1)}, {I(2)}, {I(3)}});
  Table r2 = testutil::MakeTable("r2", {"b"}, {{I(1)}, {I(2)}, {I(2)}});
  OrderedIndex idx(&r2, 0);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::make_unique<SeqScan>(&r1), std::make_unique<IndexSeek>(&idx),
      eb::Col(0, "a"));
  PhysicalPlan plan(std::move(join));
  // Driver = the scan, node id 1.
  PerTupleWork ptw = CollectPerTupleWork(&plan, 1);
  ASSERT_EQ(ptw.work.size(), 3u);
  // Tuple 1: its own getnext + 1 match; tuple 2: 1 + 2; tuple 3: 1 + 0.
  EXPECT_EQ(ptw.work[0], 2u);
  EXPECT_EQ(ptw.work[1], 3u);
  EXPECT_EQ(ptw.work[2], 1u);
  EXPECT_EQ(ptw.total_work, 6u);
  EXPECT_DOUBLE_EQ(ptw.Mean(), 2.0);
  EXPECT_NEAR(ptw.Variance(), 2.0 / 3.0, 1e-12);
}

TEST(PerTupleWorkTest, ConstantWorkHasZeroVariance) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 50; ++i) rows.push_back({I(i)});
  Table t = testutil::MakeTable("t", {"v"}, std::move(rows));
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  PerTupleWork ptw = CollectPerTupleWork(&plan, 1);
  ASSERT_EQ(ptw.work.size(), 50u);
  EXPECT_DOUBLE_EQ(ptw.Mean(), 1.0);
  EXPECT_DOUBLE_EQ(ptw.Variance(), 0.0);
}

TEST(PredictiveOrderTest, UniformWorkIsAlwaysPredictive) {
  std::vector<uint64_t> work(100, 3);
  EXPECT_TRUE(IsCPredictive(work, 1.0));
  EXPECT_TRUE(IsCPredictive(work, 2.0));
}

TEST(PredictiveOrderTest, SkewAtEndViolatesPredictivity) {
  // 99 tuples of work 1, then one of work 1000: at k = 50 the running
  // average is 1 but mu ~ 11: not 2-predictive.
  std::vector<uint64_t> work(99, 1);
  work.push_back(1000);
  EXPECT_FALSE(IsCPredictive(work, 2.0));
}

TEST(PredictiveOrderTest, SkewAtFrontAlsoViolates) {
  // The huge tuple first: prefix average at k = n/2 is ~21, mu ~ 11 — within
  // factor 2; but right after the first tuple prefix averages are fine since
  // checks start at half. Construct a violation: huge tuple first makes the
  // half-point average 1000/50 + ... ~ 21 vs mu ~ 11: ratio < 2 — so this
  // one IS 2-predictive; tighten c to show the violation.
  std::vector<uint64_t> work;
  work.push_back(1000);
  for (int i = 0; i < 99; ++i) work.push_back(1);
  EXPECT_FALSE(IsCPredictive(work, 1.5));
  EXPECT_TRUE(IsCPredictive(work, 2.0));
}

TEST(PredictiveOrderTest, Theorem4AtLeastHalfOfOrdersAre2Predictive) {
  Rng rng(1234);
  // Several adversarial work distributions.
  std::vector<std::vector<uint64_t>> distributions;
  {
    std::vector<uint64_t> w(200, 1);
    w[0] = 5000;  // one heavy element
    distributions.push_back(w);
  }
  {
    std::vector<uint64_t> w;
    for (int i = 0; i < 100; ++i) w.push_back(i < 10 ? 100 : 1);
    distributions.push_back(w);
  }
  {
    std::vector<uint64_t> w;
    for (int i = 0; i < 300; ++i) w.push_back(1 + (i % 7 == 0 ? 50 : 0));
    distributions.push_back(w);
  }
  for (const auto& w : distributions) {
    double frac = FractionCPredictive(w, 2.0, 400, &rng);
    EXPECT_GE(frac, 0.5) << "distribution size " << w.size();
  }
}

TEST(PredictiveOrderTest, EmptyAndZeroWork) {
  EXPECT_TRUE(IsCPredictive({}, 2.0));
  EXPECT_TRUE(IsCPredictive(std::vector<uint64_t>(10, 0), 2.0));
}

TEST(MuTest, MuMatchesHandComputation) {
  // Hash plan: total = |R1| + |R2| + matches; scanned leaves = |R1| + |R2|.
  ZipfJoinConfig cfg;
  cfg.r1_rows = 1000;
  cfg.r2_rows = 1000;
  cfg.order = R1Order::kRandom;
  ZipfJoinData data(cfg);
  uint64_t matches = 0;
  for (int64_t v = 0; v < static_cast<int64_t>(cfg.r1_rows); ++v) {
    matches += data.MatchCount(v);
  }
  PhysicalPlan plan = data.BuildHashPlan();
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"pmax"});
  ProgressReport r = m.RunWithApproxCheckpoints(20);
  EXPECT_EQ(r.total_work, cfg.r1_rows + cfg.r2_rows + matches);
  EXPECT_NEAR(r.mu,
              static_cast<double>(r.total_work) /
                  static_cast<double>(cfg.r1_rows + cfg.r2_rows),
              1e-12);
  // Every R2 draw comes from R1's domain, so matches == |R2| and mu = 1.5.
  EXPECT_DOUBLE_EQ(r.mu, 1.5);
}

}  // namespace
}  // namespace qprog
