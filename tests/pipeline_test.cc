// Pipeline decomposition and driver-node tests (Section 4 machinery).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;

Table Numbers(const char* name, int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable(name, {"v"}, std::move(rows));
}

const Pipeline* PipelineWithDriver(const std::vector<Pipeline>& ps,
                                   const PhysicalOperator* driver) {
  for (const Pipeline& p : ps) {
    for (const PhysicalOperator* d : p.drivers) {
      if (d == driver) return &p;
    }
  }
  return nullptr;
}

TEST(PipelineTest, SingleScanFilterIsOnePipeline) {
  Table t = Numbers("t", 10);
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 1u);
  ASSERT_EQ(ps[0].drivers.size(), 1u);
  EXPECT_EQ(ps[0].drivers[0]->kind(), OpKind::kSeqScan);
  EXPECT_EQ(ps[0].members.size(), 2u);
}

TEST(PipelineTest, SortSplitsPipelines) {
  Table t = Numbers("t", 10);
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0), false);
  auto sort = std::make_unique<Sort>(std::move(scan), std::move(keys));
  auto proj = std::make_unique<Project>(std::move(sort),
                                        [] {
                                          std::vector<ExprPtr> e;
                                          e.push_back(eb::Col(0));
                                          return e;
                                        }(),
                                        std::vector<std::string>{"v"});
  PhysicalPlan plan(std::move(proj));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 2u);
  // Pipeline 0: project driven by the sort node; pipeline 1: the scan.
  EXPECT_EQ(ps[0].drivers.size(), 1u);
  EXPECT_EQ(ps[0].drivers[0]->kind(), OpKind::kSort);
  EXPECT_EQ(ps[1].drivers[0]->kind(), OpKind::kSeqScan);
}

TEST(PipelineTest, HashJoinBuildSideIsSeparatePipeline) {
  Table probe = Numbers("p", 10);
  Table build = Numbers("b", 10);
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&probe),
                                         std::make_unique<SeqScan>(&build),
                                         std::move(pk), std::move(bk));
  PhysicalPlan plan(std::move(join));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 2u);
  const PhysicalOperator* probe_scan = plan.nodes()[1];
  const PhysicalOperator* build_scan = plan.nodes()[2];
  ASSERT_EQ(probe_scan->kind(), OpKind::kSeqScan);
  const Pipeline* probe_p = PipelineWithDriver(ps, probe_scan);
  const Pipeline* build_p = PipelineWithDriver(ps, build_scan);
  ASSERT_NE(probe_p, nullptr);
  ASSERT_NE(build_p, nullptr);
  EXPECT_NE(probe_p, build_p);
  // The join itself belongs to the probe pipeline.
  bool join_in_probe = false;
  for (const PhysicalOperator* m : probe_p->members) {
    if (m->kind() == OpKind::kHashJoin) join_in_probe = true;
  }
  EXPECT_TRUE(join_in_probe);
}

TEST(PipelineTest, InlJoinInnerStaysInOuterPipelineWithoutDriver) {
  Table outer = Numbers("o", 10);
  Table inner = Numbers("i", 10);
  OrderedIndex idx(&inner, 0);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::make_unique<SeqScan>(&outer), std::make_unique<IndexSeek>(&idx),
      eb::Col(0));
  PhysicalPlan plan(std::move(join));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 1u);
  ASSERT_EQ(ps[0].drivers.size(), 1u);
  EXPECT_EQ(ps[0].drivers[0]->kind(), OpKind::kSeqScan);
  EXPECT_EQ(ps[0].members.size(), 3u);  // join + scan + seek
}

TEST(PipelineTest, MergeJoinHasTwoDrivers) {
  Table l = Numbers("l", 5);
  Table r = Numbers("r", 5);
  std::vector<ExprPtr> lk, rk;
  lk.push_back(eb::Col(0));
  rk.push_back(eb::Col(0));
  auto join = std::make_unique<MergeJoin>(std::make_unique<SeqScan>(&l),
                                          std::make_unique<SeqScan>(&r),
                                          std::move(lk), std::move(rk));
  PhysicalPlan plan(std::move(join));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].drivers.size(), 2u);
}

TEST(PipelineTest, HashAggregateActsAsDriverOfParentPipeline) {
  Table t = Numbers("t", 10);
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "c");
  auto agg = std::make_unique<HashAggregate>(std::move(scan), std::move(groups),
                                             std::vector<std::string>{"g"},
                                             std::move(aggs));
  auto filter = std::make_unique<Filter>(std::move(agg),
                                         eb::Ge(eb::Col(1), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  auto ps = DecomposePipelines(plan);
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0].drivers[0]->kind(), OpKind::kHashAggregate);
  EXPECT_EQ(ps[1].drivers[0]->kind(), OpKind::kSeqScan);
}

TEST(DriverStatusTest, ScanReportsExaminedOverBase) {
  Table t = Numbers("t", 100);
  auto scan_ptr = std::make_unique<SeqScan>(
      &t, eb::Lt(eb::Col(0), eb::Int(10)));  // merged predicate
  PhysicalPlan plan(std::move(scan_ptr));
  const PhysicalOperator* scan = plan.nodes()[0];
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  plan.root()->Open(&ctx);
  Row out;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(plan.root()->Next(&ctx, &out));
  DriverStatus s = ComputeDriverStatus(scan, ctx);
  // 5 rows passed => 5 rows examined here (values 0..4 pass immediately).
  EXPECT_DOUBLE_EQ(s.rows_done, 5.0);
  EXPECT_DOUBLE_EQ(s.rows_total, 100.0);
  EXPECT_TRUE(s.total_exact);
}

TEST(DriverStatusTest, SortDriverRefinesToExactAfterBuild) {
  Table t = Numbers("t", 50);
  auto scan = std::make_unique<SeqScan>(&t, eb::Lt(eb::Col(0), eb::Int(20)));
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0), false);
  auto sort = std::make_unique<Sort>(std::move(scan), std::move(keys));
  sort->set_estimated_rows(5);  // deliberately wrong planner estimate
  PhysicalPlan plan(std::move(sort));
  const PhysicalOperator* sort_node = plan.nodes()[0];
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  plan.root()->Open(&ctx);
  DriverStatus before = ComputeDriverStatus(sort_node, ctx);
  EXPECT_FALSE(before.total_exact);
  EXPECT_DOUBLE_EQ(before.rows_total, 5.0);  // planner estimate
  Row out;
  ASSERT_TRUE(plan.root()->Next(&ctx, &out));  // forces materialization
  DriverStatus after = ComputeDriverStatus(sort_node, ctx);
  EXPECT_TRUE(after.total_exact);
  EXPECT_DOUBLE_EQ(after.rows_total, 20.0);  // actual row count
}

TEST(PipelineTest, ToStringSmoke) {
  Table t = Numbers("t", 5);
  PhysicalPlan plan(std::make_unique<SeqScan>(&t));
  auto ps = DecomposePipelines(plan);
  std::string s = PipelinesToString(ps);
  EXPECT_NE(s.find("pipeline 0"), std::string::npos);
  EXPECT_NE(s.find("SeqScan"), std::string::npos);
}

}  // namespace
}  // namespace qprog
