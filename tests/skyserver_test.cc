// SkyServer substitute: generator integrity and query smoke tests.

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "skyserver/skyserver.h"
#include "stats/table_stats.h"

namespace qprog {
namespace skyserver {
namespace {

class SkyServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SkyServerConfig config;
    config.num_photoobj = 8000;
    Status s = GenerateSkyServer(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* SkyServerTest::db_ = nullptr;

TEST_F(SkyServerTest, TablesPresent) {
  EXPECT_EQ(db_->GetTable("photoobj")->num_rows(), 8000u);
  EXPECT_EQ(db_->GetTable("photoz")->num_rows(), 8000u);
  uint64_t spec = db_->GetTable("specobj")->num_rows();
  EXPECT_GT(spec, 8000u / 20);  // ~10% of objects
  EXPECT_LT(spec, 8000u / 5);
  EXPECT_GT(db_->GetTable("neighbors")->num_rows(), 0u);
  EXPECT_NE(db_->GetStats("photoobj"), nullptr);
}

TEST_F(SkyServerTest, SpecObjForeignKeysValid) {
  const Table* spec = db_->GetTable("specobj");
  for (uint64_t i = 0; i < spec->num_rows(); ++i) {
    int64_t objid = spec->at(i, 1).int64_value();
    EXPECT_GE(objid, 1);
    EXPECT_LE(objid, 8000);
    const std::string& cls = spec->at(i, 2).string_value();
    EXPECT_TRUE(cls == "GALAXY" || cls == "STAR" || cls == "QSO") << cls;
  }
}

TEST_F(SkyServerTest, TypesAreGalaxyOrStar) {
  const Table* photo = db_->GetTable("photoobj");
  uint64_t galaxies = 0;
  for (uint64_t i = 0; i < photo->num_rows(); ++i) {
    int64_t type = photo->at(i, 3).int64_value();
    EXPECT_TRUE(type == 3 || type == 6);
    galaxies += type == 3;
  }
  // ~60% galaxies by construction.
  EXPECT_NEAR(static_cast<double>(galaxies) / 8000.0, 0.6, 0.05);
}

TEST_F(SkyServerTest, RejectsBadConfig) {
  Database db;
  SkyServerConfig config;
  config.num_photoobj = 0;
  EXPECT_FALSE(GenerateSkyServer(config, &db).ok());
}

TEST_F(SkyServerTest, UnknownQueryRejected) {
  EXPECT_FALSE(BuildSkyQuery(1, *db_).ok());
  EXPECT_FALSE(BuildSkyQuery(99, *db_).ok());
  EXPECT_EQ(AvailableSkyQueries().size(), 7u);
}

class SkyQuerySmokeTest : public SkyServerTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(SkyQuerySmokeTest, ExecutesWithSaneMuAndSoundPmax) {
  auto plan = BuildSkyQuery(GetParam(), *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), {"pmax", "safe"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(40);
  EXPECT_GT(report.total_work, 0u);
  EXPECT_GE(report.mu, 1.0);
  EXPECT_LT(report.mu, 3.0);
  int pmax = report.FindEstimator("pmax");
  for (const Checkpoint& c : report.checkpoints) {
    ASSERT_GE(c.estimates[pmax], c.true_progress - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSkyQueries, SkyQuerySmokeTest,
                         ::testing::ValuesIn(AvailableSkyQueries()));

TEST_F(SkyServerTest, Sq28GroupsByType) {
  auto plan = BuildSkyQuery(28, *db_);
  ASSERT_TRUE(plan.ok());
  auto rows = CollectRows(&plan.value());
  EXPECT_GE(rows.size(), 1u);
  EXPECT_LE(rows.size(), 2u);  // at most galaxy + star groups
}

TEST_F(SkyServerTest, Sq22JoinCountsMatchSpecObjCount) {
  // photoz |x| specobj on objid is a key join: one output per spectrum.
  auto plan = BuildSkyQuery(22, *db_);
  ASSERT_TRUE(plan.ok());
  auto rows = CollectRows(&plan.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].int64_value(),
            static_cast<int64_t>(db_->GetTable("specobj")->num_rows()));
}

}  // namespace
}  // namespace skyserver
}  // namespace qprog
