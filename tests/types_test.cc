#include <gtest/gtest.h>

#include "types/compare_op.h"
#include "types/date.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_EQ(Value::Date(100).date_value(), 100);
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Date(10).AsDouble(), 10.0);
  EXPECT_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int64(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, LargeInt64ComparedExactly) {
  // Beyond double's 53-bit mantissa; int64 path must stay exact.
  int64_t big = (int64_t{1} << 60) + 1;
  EXPECT_GT(Value::Int64(big).Compare(Value::Int64(big - 1)), 0);
  EXPECT_EQ(Value::Int64(big).Compare(Value::Int64(big)), 0);
}

TEST(ValueTest, GroupingEqualityTreatsNullEqual) {
  EXPECT_TRUE(Value::Null().EqualsForGrouping(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsForGrouping(Value::Int64(0)));
  EXPECT_TRUE(Value::Int64(1).EqualsForGrouping(Value::Double(1.0)));
  EXPECT_FALSE(Value::String("1").EqualsForGrouping(Value::Int64(1)));
}

TEST(ValueTest, HashConsistentWithGroupingEquality) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  EXPECT_EQ(Value::String("q").Hash(), Value::String("q").Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
}

TEST(RowTest, RowHashAndEquality) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Double(1.0), Value::String("x")};
  Row c = {Value::Int64(2), Value::String("x")};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  EXPECT_FALSE(RowEq()(a, c));
  EXPECT_FALSE(RowEq()(a, Row{Value::Int64(1)}));
}

TEST(RowTest, RowToString) {
  Row r = {Value::Int64(1), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, NULL)");
}

TEST(DateTest, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  int y, m, d;
  CivilFromDays(0, &y, &m, &d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripManyDates) {
  for (int32_t days = -20000; days <= 40000; days += 137) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, ParseAndFormat) {
  auto d = ParseDate("1995-03-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatDate(d.value()), "1995-03-15");
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1995-13-01").ok());
  EXPECT_FALSE(ParseDate("1995-02-30").ok());
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(ParseDate("2000-02-29").ok());   // 400-divisible
  EXPECT_FALSE(ParseDate("1900-02-29").ok());  // 100 not 400
  EXPECT_TRUE(ParseDate("1996-02-29").ok());
}

TEST(DateTest, AddMonthsClampsDay) {
  int32_t jan31 = ParseDate("1995-01-31").value();
  EXPECT_EQ(FormatDate(AddMonths(jan31, 1)), "1995-02-28");
  EXPECT_EQ(FormatDate(AddMonths(jan31, -1)), "1994-12-31");
  int32_t d = ParseDate("1995-06-15").value();
  EXPECT_EQ(FormatDate(AddMonths(d, 3)), "1995-09-15");
  EXPECT_EQ(FormatDate(AddMonths(d, 12)), "1996-06-15");
}

TEST(DateTest, AddYears) {
  int32_t feb29 = ParseDate("1996-02-29").value();
  EXPECT_EQ(FormatDate(AddYears(feb29, 1)), "1997-02-28");
  EXPECT_EQ(FormatDate(AddYears(feb29, 4)), "2000-02-29");
}

TEST(SchemaTest, FindField) {
  Schema s({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  EXPECT_EQ(s.FindField("a"), 0);
  EXPECT_EQ(s.FindField("b"), 1);
  EXPECT_EQ(s.FindField("c"), -1);
  EXPECT_EQ(s.num_fields(), 2u);
}

TEST(SchemaTest, Concat) {
  Schema l({{"a", TypeId::kInt64}});
  Schema r({{"b", TypeId::kDouble}, {"c", TypeId::kString}});
  Schema joined = Schema::Concat(l, r);
  EXPECT_EQ(joined.num_fields(), 3u);
  EXPECT_EQ(joined.field(2).name, "c");
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", TypeId::kInt64}});
  EXPECT_EQ(s.ToString(), "a:BIGINT");
}

TEST(CompareOpTest, EvalAllOps) {
  EXPECT_TRUE(EvalCompareOp(CompareOp::kEq, 0));
  EXPECT_FALSE(EvalCompareOp(CompareOp::kEq, 1));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kNe, -1));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kLt, -1));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kLe, 0));
  EXPECT_FALSE(EvalCompareOp(CompareOp::kLe, 1));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kGt, 1));
  EXPECT_TRUE(EvalCompareOp(CompareOp::kGe, 0));
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kNe), "<>");
}

}  // namespace
}  // namespace qprog
