// Deterministic fuzzing of the SQL frontend: random byte soup, token soup,
// and mutated valid queries must never crash or hang — they either parse/plan
// or return a Status (the engine is exception-free, so every failure path is
// an explicit return).

#include <gtest/gtest.h>

#include <memory>

#include <string>

#include "common/random.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "tests/test_util.h"

namespace qprog {
namespace sql {
namespace {

using testutil::I;
using testutil::S;

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  Table t = testutil::MakeTable(
      "t", {"a", "b", "c"},
      {{I(1), S("x"), I(10)}, {I(2), S("y"), I(20)}, {I(3), S("z"), I(30)}});
  Table u = testutil::MakeTable("u", {"a", "d"}, {{I(1), I(7)}, {I(3), I(9)}});
  QPROG_CHECK(db->AddTable(std::move(t)).ok());
  QPROG_CHECK(db->AddTable(std::move(u)).ok());
  return db;
}

TEST(SqlFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(0xF00D);
  std::unique_ptr<Database> db = MakeDb();
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.Uniform(80);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.UniformInt(1, 126));
    }
    // Must return, not crash; result status is irrelevant.
    auto plan = PlanSql(input, *db);
    (void)plan;
  }
}

TEST(SqlFuzzTest, TokenSoupNeverCrashes) {
  Rng rng(0xBEEF);
  std::unique_ptr<Database> db = MakeDb();
  const char* tokens[] = {"select", "from",  "where", "group", "by",
                          "order",  "limit", "join",  "on",    "and",
                          "or",     "not",   "like",  "in",    "between",
                          "is",     "null",  "count", "sum",   "(",
                          ")",      ",",     "*",     "=",     "<",
                          ">",      "+",     "-",     "/",     "t",
                          "u",      "a",     "b",     "c",     "d",
                          "1",      "2.5",   "'s'",   "date",  "'1995-01-01'"};
  for (int trial = 0; trial < 3000; ++trial) {
    size_t len = 1 + rng.Uniform(25);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += tokens[rng.Uniform(std::size(tokens))];
      input += " ";
    }
    auto plan = PlanSql(input, *db);
    if (plan.ok()) {
      // If it planned, it must also execute without crashing.
      auto rows = CollectRows(&plan.value());
      (void)rows;
    }
  }
}

TEST(SqlFuzzTest, MutatedValidQueriesNeverCrash) {
  Rng rng(0xCAFE);
  std::unique_ptr<Database> db = MakeDb();
  const std::string base =
      "SELECT a, count(*) FROM t JOIN u ON t.a = u.a "
      "WHERE b LIKE 'x%' AND c BETWEEN 5 AND 25 "
      "GROUP BY a ORDER BY a DESC LIMIT 2";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // delete
          mutated.erase(pos, 1);
          break;
        case 1:  // replace
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto plan = PlanSql(mutated, *db);
    if (plan.ok()) {
      auto rows = CollectRows(&plan.value());
      (void)rows;
    }
  }
}

TEST(SqlFuzzTest, LexerHandlesPathologicalInputs) {
  EXPECT_TRUE(Lex(std::string(10000, ' ')).ok());
  EXPECT_TRUE(Lex(std::string(5000, '(')).ok());
  EXPECT_FALSE(Lex(std::string("'") + std::string(5000, 'a')).ok());
  EXPECT_TRUE(Lex("").ok());
  std::string deep = "select a from t where ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "1=1";
  for (int i = 0; i < 200; ++i) deep += ")";
  // Deeply nested parens: the recursive-descent parser must return (either
  // result) without smashing the stack at this depth.
  std::unique_ptr<Database> db = MakeDb();
  auto plan = PlanSql(deep, *db);
  (void)plan;
}

}  // namespace
}  // namespace sql
}  // namespace qprog
