#include <gtest/gtest.h>

#include "common/random.h"
#include "index/hash_index.h"
#include "index/ordered_index.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::S;

TEST(TableTest, AppendAndAccess) {
  Table t = testutil::MakeTable("t", {"a", "b"}, {{I(1), S("x")}, {I(2), S("y")}});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0).int64_value(), 1);
  EXPECT_EQ(t.at(1, 1).string_value(), "y");
  EXPECT_EQ(t.name(), "t");
}

TEST(TableTest, ReorderPermutesRows) {
  Table t = testutil::MakeTable("t", {"a"}, {{I(10)}, {I(20)}, {I(30)}});
  t.Reorder({2, 0, 1});
  EXPECT_EQ(t.at(0, 0).int64_value(), 30);
  EXPECT_EQ(t.at(1, 0).int64_value(), 10);
  EXPECT_EQ(t.at(2, 0).int64_value(), 20);
}

TEST(TableTest, SortByColumn) {
  Table t = testutil::MakeTable(
      "t", {"a"}, {{I(3)}, {I(1)}, {testutil::N()}, {I(2)}});
  t.SortByColumn(0);
  EXPECT_TRUE(t.at(0, 0).is_null());  // NULLs first
  EXPECT_EQ(t.at(1, 0).int64_value(), 1);
  EXPECT_EQ(t.at(3, 0).int64_value(), 3);
}

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  auto created = db.CreateTable("t", Schema({{"a", TypeId::kInt64}}));
  ASSERT_TRUE(created.ok());
  EXPECT_NE(db.GetTable("t"), nullptr);
  EXPECT_EQ(db.GetTable("missing"), nullptr);
  EXPECT_FALSE(db.CreateTable("t", Schema({})).ok());  // duplicate
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_EQ(db.GetTable("t"), nullptr);
  EXPECT_FALSE(db.DropTable("t").ok());
}

TEST(DatabaseTest, AddTableMoves) {
  Database db;
  Table t = testutil::MakeTable("x", {"a"}, {{I(5)}});
  auto added = db.AddTable(std::move(t));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(db.GetTable("x")->num_rows(), 1u);
  EXPECT_EQ(db.TableNames().size(), 1u);
}

TEST(DatabaseTest, BuildAndGetIndex) {
  Database db;
  Table t = testutil::MakeTable("t", {"a", "b"}, {{I(1), I(10)}, {I(2), I(20)}});
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  auto idx = db.BuildOrderedIndex("t", "b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(db.GetOrderedIndex("t", "b"), idx.value());
  EXPECT_EQ(db.GetOrderedIndex("t", "a"), nullptr);
  EXPECT_FALSE(db.BuildOrderedIndex("t", "zz").ok());
  EXPECT_FALSE(db.BuildOrderedIndex("nope", "a").ok());
}

TEST(DatabaseTest, DropTableRemovesIndexesAndStats) {
  Database db;
  ASSERT_TRUE(db.AddTable(testutil::MakeTable("t", {"a"}, {{I(1)}})).ok());
  ASSERT_TRUE(db.BuildOrderedIndex("t", "a").ok());
  HistogramStatisticsGenerator gen;
  db.SetStats("t", gen.Generate(*db.GetTable("t")));
  EXPECT_NE(db.GetStats("t"), nullptr);
  ASSERT_TRUE(db.DropTable("t").ok());
  EXPECT_EQ(db.GetOrderedIndex("t", "a"), nullptr);
  EXPECT_EQ(db.GetStats("t"), nullptr);
}

TEST(OrderedIndexTest, EqualRange) {
  Table t = testutil::MakeTable(
      "t", {"k"}, {{I(5)}, {I(3)}, {I(5)}, {I(1)}, {I(5)}, {testutil::N()}});
  OrderedIndex idx(&t, 0);
  EXPECT_EQ(idx.num_entries(), 5u);  // NULL excluded
  auto r = idx.EqualRange(I(5));
  EXPECT_EQ(r.size(), 3u);
  for (const uint64_t* p = r.begin; p != r.end; ++p) {
    EXPECT_EQ(t.at(*p, 0).int64_value(), 5);
  }
  EXPECT_EQ(idx.EqualRange(I(2)).size(), 0u);
  EXPECT_EQ(idx.EqualRange(testutil::N()).size(), 0u);
  EXPECT_EQ(idx.max_key_multiplicity(), 3u);
}

TEST(OrderedIndexTest, RangeQueries) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({I(i)});
  Table t = testutil::MakeTable("t", {"k"}, std::move(rows));
  OrderedIndex idx(&t, 0);

  auto r = idx.Range(I(10), true, false, I(20), true, false);
  EXPECT_EQ(r.size(), 11u);
  r = idx.Range(I(10), false, false, I(20), false, false);
  EXPECT_EQ(r.size(), 9u);
  r = idx.Range(Value::Null(), false, true, I(5), true, false);
  EXPECT_EQ(r.size(), 6u);
  r = idx.Range(I(95), true, false, Value::Null(), false, true);
  EXPECT_EQ(r.size(), 5u);
  r = idx.Range(I(50), true, false, I(40), true, false);
  EXPECT_EQ(r.size(), 0u);
}

TEST(OrderedIndexTest, RandomizedAgainstNaive) {
  Rng rng(77);
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) rows.push_back({I(rng.UniformInt(0, 50))});
  Table t = testutil::MakeTable("t", {"k"}, std::move(rows));
  OrderedIndex idx(&t, 0);
  for (int64_t key = -1; key <= 51; ++key) {
    size_t naive = 0;
    for (uint64_t i = 0; i < t.num_rows(); ++i) {
      if (t.at(i, 0).int64_value() == key) ++naive;
    }
    EXPECT_EQ(idx.EqualRange(I(key)).size(), naive) << "key " << key;
  }
}

TEST(HashIndexTest, LookupMatchesNaive) {
  Rng rng(78);
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) rows.push_back({I(rng.UniformInt(0, 30))});
  Table t = testutil::MakeTable("t", {"k"}, std::move(rows));
  HashIndex idx(&t, 0);
  for (int64_t key = 0; key <= 30; ++key) {
    size_t naive = 0;
    for (uint64_t i = 0; i < t.num_rows(); ++i) {
      if (t.at(i, 0).int64_value() == key) ++naive;
    }
    EXPECT_EQ(idx.Lookup(I(key)).size(), naive);
  }
  EXPECT_TRUE(idx.Lookup(testutil::N()).empty());
  EXPECT_GE(idx.max_key_multiplicity(), 1u);
  EXPECT_LE(idx.num_distinct_keys(), 31u);
}

TEST(HashIndexTest, StringKeys) {
  Table t = testutil::MakeTable("t", {"k"}, {{S("a")}, {S("b")}, {S("a")}});
  HashIndex idx(&t, 0);
  EXPECT_EQ(idx.Lookup(S("a")).size(), 2u);
  EXPECT_EQ(idx.Lookup(S("c")).size(), 0u);
}

}  // namespace
}  // namespace qprog
