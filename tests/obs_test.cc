// Observability-layer tests: trace schema stability (golden JSONL), ring
// buffer semantics, the replay-equals-live invariant, zero-sink overhead
// accounting, per-node stats identities against the work model, accuracy
// telemetry, and ExplainAnalyze rendering (golden for TPC-H Q1).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/explain.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "obs/accuracy.h"
#include "obs/explain_analyze.h"
#include "obs/metrics_registry.h"
#include "obs/replay.h"
#include "obs/run_summary.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace qprog {
namespace {

using testutil::I;

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("t", {"v"}, std::move(rows));
}

/// scan(100) -> filter(v < 50) -> COUNT(*): work = 100 + 50 = 150.
PhysicalPlan SmallPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  scan->set_estimated_rows(100);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Lt(eb::Col(0), eb::Int(50)));
  filter->set_estimated_rows(80);  // deliberately wrong (actual: 50)
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(filter), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  agg->set_estimated_rows(1);
  return PhysicalPlan(std::move(agg));
}

// ---------------------------------------------------------------------------
// TraceEvent serialization
// ---------------------------------------------------------------------------

TEST(TraceEventTest, RoundTripsEveryKind) {
  // Serialization keeps only each kind's meaningful payload, so the
  // round-trip contract is serialize -> parse -> serialize unchanged.
  for (TraceEventKind kind :
       {TraceEventKind::kRunBegin, TraceEventKind::kOperatorOpen,
        TraceEventKind::kOperatorClose, TraceEventKind::kCheckpoint,
        TraceEventKind::kEstimatorEvaluated, TraceEventKind::kBoundRefined,
        TraceEventKind::kGuardTrip, TraceEventKind::kFaultFired,
        TraceEventKind::kRunEnd}) {
    TraceEvent ev;
    ev.kind = kind;
    ev.seq = 42;
    ev.work = 123456789;
    ev.node = 3;
    ev.name = "dne,pmax";
    ev.detail = "quote \" backslash \\ newline \n tab \t done";
    ev.a = 1.0 / 3.0;  // needs all 17 digits to round-trip
    ev.b = 12345.678901234567;
    std::string json = TraceEventToJson(ev);
    auto parsed = ParseTraceEvent(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(TraceEventToJson(parsed.value()), json)
        << TraceEventKindToString(kind);
    // The universal fields always survive.
    EXPECT_EQ(parsed.value().kind, kind);
    EXPECT_EQ(parsed.value().seq, ev.seq);
    EXPECT_EQ(parsed.value().work, ev.work);
  }
  // Full-field round trip for the kinds the replay invariant rests on.
  TraceEvent cp;
  cp.kind = TraceEventKind::kCheckpoint;
  cp.seq = 7;
  cp.work = 600;
  cp.a = 1.0 / 3.0;
  cp.b = 0.1 + 0.2;  // != 0.3: must survive bit-exactly
  auto cp2 = ParseTraceEvent(TraceEventToJson(cp));
  ASSERT_TRUE(cp2.ok()) << cp2.status();
  EXPECT_EQ(cp2.value(), cp);

  TraceEvent trip;
  trip.kind = TraceEventKind::kGuardTrip;
  trip.seq = 8;
  trip.work = 601;
  trip.node = 2;
  trip.name = "ResourceExhausted";
  trip.detail = "tricky \"detail\"\nwith\tcontrol \x01 chars";
  auto trip2 = ParseTraceEvent(TraceEventToJson(trip));
  ASSERT_TRUE(trip2.ok()) << trip2.status();
  EXPECT_EQ(trip2.value(), trip);
}

TEST(TraceEventTest, ReaderRejectsGarbageAndUnknownVersion) {
  EXPECT_FALSE(ParseTraceEvent("not json at all").ok());
  EXPECT_FALSE(ParseTraceEvent("{\"event\":\"checkpoint\"}").ok());  // no v
  EXPECT_FALSE(
      ParseTraceEvent("{\"v\":999,\"event\":\"checkpoint\",\"seq\":0,\"work\":0}")
          .ok());
  auto multi = ParseTraceJsonl("{\"v\":1,\"event\":\"checkpoint\",\"seq\":0,"
                               "\"work\":5,\"work_lb\":1,\"work_ub\":2}\n"
                               "garbage\n");
  EXPECT_FALSE(multi.ok());
  EXPECT_NE(multi.status().message().find("line 2"), std::string::npos)
      << multi.status();
}

TEST(TraceSinkTest, RingBufferWraparoundKeepsNewestOldestFirst) {
  RingBufferSink ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kCheckpoint;
    ev.seq = static_cast<uint64_t>(i);
    ev.work = static_cast<uint64_t>(i * 100);
    ring.Append(ev);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_appended(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // oldest surviving is #6
  }
}

// ---------------------------------------------------------------------------
// Golden JSONL schema
// ---------------------------------------------------------------------------

TEST(TraceSchemaTest, GoldenJsonlForFixedPlan) {
  Table t = Numbers(100);
  PhysicalPlan plan = SmallPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  MonitorOptions mo;
  mo.telemetry = &collector;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax"}, mo);
  ProgressReport r = m.Run(60);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(sink.data(), R"json({"v":5,"seq":0,"event":"run_begin","work":0,"estimators":"dne,pmax","leaf_cardinality":100,"interval":60}
{"v":5,"seq":1,"event":"operator_open","work":0,"node":2,"op":"SeqScan(t)"}
{"v":5,"seq":2,"event":"operator_open","work":0,"node":1,"op":"Filter(($0 < 50))"}
{"v":5,"seq":3,"event":"operator_open","work":0,"node":0,"op":"HashAggregate(0 groups cols, 1 aggs)"}
{"v":5,"seq":4,"event":"bound_refined","work":60,"node":0,"lb":1,"ub":1}
{"v":5,"seq":5,"event":"bound_refined","work":60,"node":1,"lb":30,"ub":101}
{"v":5,"seq":6,"event":"bound_refined","work":60,"node":2,"lb":100,"ub":100}
{"v":5,"seq":7,"event":"checkpoint","work":60,"work_lb":130,"work_ub":201}
{"v":5,"seq":8,"event":"estimator","work":60,"name":"dne","estimate":0.29702970297029702}
{"v":5,"seq":9,"event":"estimator","work":60,"name":"pmax","estimate":0.46153846153846156}
{"v":5,"seq":10,"event":"bound_refined","work":120,"node":1,"lb":50,"ub":82}
{"v":5,"seq":11,"event":"checkpoint","work":120,"work_lb":150,"work_ub":182}
{"v":5,"seq":12,"event":"estimator","work":120,"name":"dne","estimate":0.69306930693069302}
{"v":5,"seq":13,"event":"estimator","work":120,"name":"pmax","estimate":0.80000000000000004}
{"v":5,"seq":14,"event":"operator_close","work":150,"node":2,"op":"SeqScan(t)"}
{"v":5,"seq":15,"event":"operator_close","work":150,"node":1,"op":"Filter(($0 < 50))"}
{"v":5,"seq":16,"event":"operator_close","work":150,"node":0,"op":"HashAggregate(0 groups cols, 1 aggs)"}
{"v":5,"seq":17,"event":"run_end","work":150,"termination":"completed","message":"","root_rows":1,"mu":1.5}
)json");
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

TEST(ReplayTest, ReplayEqualsLiveBitForBit) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  MonitorOptions mo;
  mo.telemetry = &collector;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
  ProgressReport live = m.Run(97);
  ASSERT_TRUE(live.completed());
  ASSERT_FALSE(live.checkpoints.empty());

  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  auto replay = ReplayTrace(events.value());
  ASSERT_TRUE(replay.ok()) << replay.status();
  const ProgressReport& rep = replay.value().report;

  EXPECT_EQ(rep.names, live.names);
  EXPECT_EQ(rep.total_work, live.total_work);
  EXPECT_EQ(rep.root_rows, live.root_rows);
  EXPECT_EQ(rep.mu, live.mu);  // bitwise, not NEAR
  EXPECT_EQ(rep.scanned_leaf_cardinality, live.scanned_leaf_cardinality);
  ASSERT_EQ(rep.checkpoints.size(), live.checkpoints.size());
  for (size_t c = 0; c < live.checkpoints.size(); ++c) {
    const Checkpoint& lc = live.checkpoints[c];
    const Checkpoint& rc = rep.checkpoints[c];
    EXPECT_EQ(rc.work, lc.work);
    EXPECT_EQ(rc.true_progress, lc.true_progress);
    EXPECT_EQ(rc.work_lb, lc.work_lb);
    EXPECT_EQ(rc.work_ub, lc.work_ub);
    ASSERT_EQ(rc.estimates.size(), lc.estimates.size());
    for (size_t i = 0; i < lc.estimates.size(); ++i) {
      EXPECT_EQ(rc.estimates[i], lc.estimates[i]);
    }
  }
  // The acceptance bar: estimator metrics from the replayed report are
  // bit-identical to the live ones.
  for (size_t i = 0; i < live.names.size(); ++i) {
    EstimatorMetrics lm = live.Metrics(i);
    EstimatorMetrics rm = rep.Metrics(i);
    EXPECT_EQ(rm.max_abs_err, lm.max_abs_err) << live.names[i];
    EXPECT_EQ(rm.avg_abs_err, lm.avg_abs_err) << live.names[i];
    EXPECT_EQ(rm.max_ratio_err, lm.max_ratio_err) << live.names[i];
    EXPECT_EQ(rm.avg_ratio_err, lm.avg_ratio_err) << live.names[i];
  }
}

TEST(ReplayTest, ReevaluatedBoundEstimatorsMatchRecorded) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  MonitorOptions mo;
  mo.telemetry = &collector;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"pmax", "safe"}, mo);
  ProgressReport live = m.Run(111);
  ASSERT_TRUE(live.completed());

  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  auto rr = ReplayTrace(events.value());
  ASSERT_TRUE(rr.ok()) << rr.status();
  ReevaluatedEstimates re = ReevaluateBoundEstimators(rr.value());
  ASSERT_EQ(re.names.size(), 2u);
  ASSERT_EQ(re.estimates.size(), live.checkpoints.size());
  for (size_t c = 0; c < live.checkpoints.size(); ++c) {
    // Recorded column order is {"pmax", "safe"} in both.
    EXPECT_EQ(re.estimates[c][0], live.checkpoints[c].estimates[0]);
    EXPECT_EQ(re.estimates[c][1], live.checkpoints[c].estimates[1]);
  }
}

TEST(ReplayTest, RejectsTruncatedTrace) {
  Table t = Numbers(100);
  PhysicalPlan plan = SmallPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  MonitorOptions mo;
  mo.telemetry = &collector;
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne"}, mo);
  (void)m.Run(60);

  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  std::vector<TraceEvent> cut = events.value();
  cut.pop_back();  // drop run_end
  EXPECT_FALSE(ReplayTrace(cut).ok());
  EXPECT_FALSE(ReplayTrace({}).ok());  // no run_begin
}

TEST(ReplayTest, FileSinkRoundTrip) {
  Table t = Numbers(500);
  PhysicalPlan plan = SmallPlan(&t);
  std::string path = ::testing::TempDir() + "/obs_test_trace.jsonl";
  {
    JsonlFileSink file(path);
    ASSERT_TRUE(file.ok()) << file.status();
    TelemetryCollector collector(&file);
    MonitorOptions mo;
    mo.telemetry = &collector;
    ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
    ProgressReport live = m.Run(100);
    ASSERT_TRUE(live.completed());
    file.Close();
    ASSERT_TRUE(file.ok()) << file.status();

    auto rr = ReplayTraceFile(path);
    ASSERT_TRUE(rr.ok()) << rr.status();
    EXPECT_EQ(rr.value().report.total_work, live.total_work);
    EXPECT_EQ(rr.value().checkpoint_interval, 100u);
    ASSERT_EQ(rr.value().report.checkpoints.size(), live.checkpoints.size());
    EXPECT_EQ(rr.value().report.checkpoints.back().estimates[0],
              live.checkpoints.back().estimates[0]);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Telemetry stats and the zero-sink path
// ---------------------------------------------------------------------------

TEST(TelemetryTest, ZeroSinkPathLeavesWorkModelUntouched) {
  Table t = Numbers(1000);
  // Reference run: no telemetry at all.
  PhysicalPlan plan = SmallPlan(&t);
  ExecContext bare;
  uint64_t bare_rows = exec::Drive(&plan, {.ctx = &bare}).root_rows;
  ASSERT_TRUE(bare.ok());

  // Stats-only telemetry (collector, no sink) must not change any counter.
  TelemetryCollector collector;  // no sink
  ExecContext ctx;
  ctx.set_telemetry(&collector);
  uint64_t rows = exec::Drive(&plan, {.ctx = &ctx}).root_rows;
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(rows, bare_rows);
  EXPECT_EQ(ctx.work(), bare.work());
  for (const PhysicalOperator* op : plan.nodes()) {
    EXPECT_EQ(ctx.rows_produced(op->node_id()),
              bare.rows_produced(op->node_id()));
  }
  // And with no sink attached no events exist, but stats do.
  EXPECT_GT(collector.stats(0).next_calls, 0u);
}

TEST(TelemetryTest, PerNodeStatsIdentitiesMatchWorkModel) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  TelemetryCollector collector;
  ExecContext ctx;
  ctx.set_telemetry(&collector);
  uint64_t root_rows = exec::Drive(&plan, {.ctx = &ctx}).root_rows;
  ASSERT_TRUE(ctx.ok());

  // Identity 1 (the work model): work == sum of non-root rows returned.
  // Holds for this plan because no scan merges a predicate (every examined
  // row is emitted).
  uint64_t non_root_rows = 0;
  for (const PhysicalOperator* op : plan.nodes()) {
    const OperatorStats& s = collector.stats(op->node_id());
    if (!op->is_root()) non_root_rows += s.rows_returned;
    // Identity 2: telemetry row counts equal the exec counters.
    EXPECT_EQ(s.rows_returned, ctx.rows_produced(op->node_id()));
    // Identity 3: every operator opened and closed exactly once here, and
    // was driven one Next past its last row to see end-of-stream.
    EXPECT_EQ(s.opens, 1u);
    EXPECT_EQ(s.closes, 1u);
    EXPECT_EQ(s.next_calls, s.rows_returned + 1);
    if (s.rows_returned > 0) {
      EXPECT_GT(s.first_row_ns, 0u);
      EXPECT_GE(s.last_row_ns, s.first_row_ns);
    }
  }
  EXPECT_EQ(non_root_rows, ctx.work());
  EXPECT_EQ(collector.stats(plan.root()->node_id()).rows_returned, root_rows);
}

TEST(TelemetryTest, GuardTripAttributedToDrivingNode) {
  Table t = Numbers(10000);
  PhysicalPlan plan = SmallPlan(&t);
  QueryGuard guard;
  guard.set_max_work(500);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_telemetry(&collector);
  exec::Drive(&plan, {.ctx = &ctx});
  ASSERT_FALSE(ctx.ok());

  uint64_t trips = 0;
  int attributed_node = -1;
  for (const PhysicalOperator* op : plan.nodes()) {
    if (collector.stats(op->node_id()).guard_trips > 0) {
      trips += collector.stats(op->node_id()).guard_trips;
      attributed_node = op->node_id();
    }
  }
  EXPECT_EQ(trips, 1u);
  EXPECT_GE(attributed_node, 0);
  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  bool saw_trip = false;
  for (const TraceEvent& ev : events.value()) {
    if (ev.kind == TraceEventKind::kGuardTrip) {
      saw_trip = true;
      EXPECT_EQ(ev.node, attributed_node);
      EXPECT_EQ(ev.name, "ResourceExhausted");
    }
  }
  EXPECT_TRUE(saw_trip);
}

TEST(TelemetryTest, FaultAttributedToFaultingNode) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  FaultInjector fi(7);
  FaultSpec spec;
  spec.site = faults::kFilterNext;
  spec.fail_on_hit = 5;
  fi.Arm(spec);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  ExecContext ctx;
  ctx.set_fault_injector(&fi);
  ctx.set_telemetry(&collector);
  exec::Drive(&plan, {.ctx = &ctx});
  ASSERT_FALSE(ctx.ok());

  // Node 1 is the Filter in this pre-order plan (0=agg root, 1=filter,
  // 2=scan).
  EXPECT_EQ(collector.stats(1).faults, 1u);
  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  bool saw_fault = false;
  for (const TraceEvent& ev : events.value()) {
    if (ev.kind == TraceEventKind::kFaultFired) {
      saw_fault = true;
      EXPECT_EQ(ev.node, 1);
      EXPECT_EQ(ev.name, faults::kFilterNext);
    }
  }
  EXPECT_TRUE(saw_fault);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, MonitorRecordsCheckpointAndEstimatorCost) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  MetricsRegistry registry;
  MonitorOptions mo;
  mo.metrics_registry = &registry;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax"}, mo);
  ProgressReport r = m.Run(100);
  ASSERT_TRUE(r.completed());

  EXPECT_EQ(registry.counter("checkpoints"), r.checkpoints.size());
  EXPECT_EQ(registry.counter("runs"), 1u);
  const LatencyHistogram* cp = registry.FindHistogram("checkpoint_ns");
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->count(), r.checkpoints.size());
  const LatencyHistogram* ev = registry.FindHistogram("estimator_eval_ns");
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->count(), r.checkpoints.size() * 2);  // two estimators
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBasics) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(10);
  h.Record(1000);
  h.Record(100000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 100000.0);
  EXPECT_NEAR(h.mean(), (10.0 + 1000.0 + 100000.0) / 3.0, 1e-9);
  EXPECT_GE(h.ApproxPercentile(0.99), 100000.0 / 2);  // factor-of-2 bucket
}

// ---------------------------------------------------------------------------
// Accuracy telemetry
// ---------------------------------------------------------------------------

TEST(AccuracyTest, LogScaleErrorMatchesPgTrackOptimizerShape) {
  EXPECT_EQ(LogScaleError(100, 100), 0.0);
  EXPECT_NEAR(LogScaleError(1000, 100), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogScaleError(100, 1000), std::log(10.0), 1e-12);  // symmetric
  EXPECT_EQ(LogScaleError(0, 0.5), 0.0);  // both clamp to 1 row
  EXPECT_EQ(LogScaleError(100, -1), -1.0);  // unknown estimate
}

TEST(AccuracyTest, RunTelemetryRanksWorstOffenders) {
  Table t = Numbers(1000);
  PhysicalPlan plan = SmallPlan(&t);
  TelemetryCollector collector;
  MonitorOptions mo;
  mo.telemetry = &collector;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax"}, mo);
  ProgressReport r = m.Run(100);
  ASSERT_TRUE(r.completed());

  // BuildRunTelemetry needs the run's ExecContext; re-execute with a fresh
  // one to get identical counters (the engine is deterministic). A second
  // collector is used so the re-run does not wipe the monitored run's bounds
  // history out of `collector`.
  TelemetryCollector stats_collector;
  ExecContext ctx;
  ctx.set_telemetry(&stats_collector);
  exec::Drive(&plan, {.ctx = &ctx});
  RunTelemetry rt = BuildRunTelemetry(plan, ctx, r, &collector);

  EXPECT_EQ(rt.summary, SummarizeReport(r));  // one formatting path
  ASSERT_EQ(rt.nodes.size(), 3u);
  // SmallPlan estimates: agg exact (1), scan exact (1000 vs est 100 — note
  // SmallPlan sets est 100 for a 1000-row table here), filter wrong.
  for (const NodeAccuracy& n : rt.nodes) {
    EXPECT_GE(n.log_error, 0.0) << n.label;
  }
  ASSERT_FALSE(rt.worst_nodes.empty());
  // Worst-first ordering.
  for (size_t i = 1; i < rt.worst_nodes.size(); ++i) {
    EXPECT_GE(rt.nodes[static_cast<size_t>(rt.worst_nodes[i - 1])].log_error,
              rt.nodes[static_cast<size_t>(rt.worst_nodes[i])].log_error);
  }
  ASSERT_EQ(rt.estimators.size(), 2u);
  for (const EstimatorAccuracy& e : rt.estimators) {
    EXPECT_EQ(e.residuals.size(), r.checkpoints.size());
    EXPECT_GE(e.max_abs_residual, e.avg_abs_residual);
    EXPECT_LE(e.max_abs_residual, 1.0);
  }
  // Bounds history came from the monitor's checkpoints.
  EXPECT_TRUE(rt.nodes[2].has_bounds);

  std::string json = rt.ToJson();
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"worst_estimators\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_log_error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Remaining-time formatting and ExplainAnalyze
// ---------------------------------------------------------------------------

TEST(ExplainAnalyzeTest, RemainingSecondsInfinityRendersAsDashes) {
  // Pin the underlying behavior: p <= 0 projects to +infinity...
  double inf = EstimateRemainingSeconds(0.0, 10.0);
  EXPECT_TRUE(std::isinf(inf));
  EXPECT_GT(inf, 0);
  // ...and the renderer shows "--", never "inf".
  EXPECT_EQ(FormatRemainingSeconds(inf), "--");
  EXPECT_EQ(FormatRemainingSeconds(std::numeric_limits<double>::quiet_NaN()),
            "--");
  EXPECT_EQ(FormatRemainingSeconds(-1.0), "--");
  EXPECT_EQ(FormatRemainingSeconds(EstimateRemainingSeconds(0.5, 10.0)),
            "10.0s");
  EXPECT_EQ(FormatRemainingSeconds(EstimateRemainingSeconds(1.0, 10.0)),
            "0ms");

  Table t = Numbers(100);
  PhysicalPlan plan = SmallPlan(&t);
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  ExplainAnalyzeOptions opts;
  opts.progress_estimate = 0.0;  // nothing has run: remaining is unknowable
  opts.elapsed_seconds = 10.0;
  std::string out = ExplainAnalyze(plan, ctx, opts);
  EXPECT_NE(out.find("remaining=--"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;
}

TEST(ExplainAnalyzeTest, GoldenTpchQ1) {
  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  Status s = tpch::GenerateTpch(config, &db);
  ASSERT_TRUE(s.ok()) << s;
  auto plan = tpch::BuildQuery(1, db);
  ASSERT_TRUE(plan.ok()) << plan.status();

  TelemetryCollector collector;
  ExecContext ctx;
  ctx.set_telemetry(&collector);
  exec::Drive(&plan.value(), {.ctx = &ctx});
  ASSERT_TRUE(ctx.ok());

  ExplainAnalyzeOptions opts;
  opts.telemetry = &collector;
  opts.include_timing = false;  // deterministic rendering
  EXPECT_EQ(ExplainAnalyze(plan.value(), ctx, opts),
            R"golden(work=23938  root_rows=4
#0 Sort($0, $1)  rows=4 (est=6 logerr=0.41) calls=5  (root, excluded from work)
  #1 HashAggregate(2 groups cols, 8 aggs)  rows=4 (est=6 logerr=0.41) work=0.0% calls=5
    #2 Filter(($10 <= DATE '1998-09-02'))  rows=11886 work=49.7% calls=11887
      #3 SeqScan(lineitem)  rows=12048 (est=12048 logerr=0.00) work=50.3% calls=12049
)golden");

  // With the ETA column enabled but no model sample yet (the options' bands
  // default to +inf, as before the first checkpoint), every component
  // renders "--" exactly like the remaining-work column.
  opts.show_eta = true;
  EXPECT_EQ(ExplainAnalyze(plan.value(), ctx, opts),
            R"golden(work=23938  root_rows=4  eta=-- band=[--,--]
#0 Sort($0, $1)  rows=4 (est=6 logerr=0.41) calls=5  (root, excluded from work)
  #1 HashAggregate(2 groups cols, 8 aggs)  rows=4 (est=6 logerr=0.41) work=0.0% calls=5
    #2 Filter(($10 <= DATE '1998-09-02'))  rows=11886 work=49.7% calls=11887
      #3 SeqScan(lineitem)  rows=12048 (est=12048 logerr=0.00) work=50.3% calls=12049
)golden");

  // A finite band renders in duration units.
  opts.eta_seconds = 1.5;
  opts.eta_lo_seconds = 0.9;
  opts.eta_hi_seconds = 2.25;
  std::string with_band = ExplainAnalyze(plan.value(), ctx, opts);
  EXPECT_NE(with_band.find("eta=1.5s band=[900ms,2.2s]"), std::string::npos)
      << with_band;
}

TEST(RunSummaryTest, SummarizeReportDelegatesToSharedFormatter) {
  ProgressReport r;
  r.total_work = 110001;
  r.root_rows = 10;
  r.checkpoints.resize(11);
  r.mu = 1.1;
  EXPECT_EQ(SummarizeReport(r), FormatRunSummary(r));
  EXPECT_EQ(SummarizeReport(r),
            "completed: work=110001 root_rows=10 checkpoints=11 mu=1.10");

  ProgressReport aborted;
  aborted.termination = TerminationReason::kCancelled;
  aborted.status = Cancelled("killed by test");
  aborted.total_work = 300;
  EXPECT_EQ(SummarizeReport(aborted), FormatRunSummary(aborted));
  EXPECT_NE(SummarizeReport(aborted).find("cancelled"), std::string::npos);
}

}  // namespace
}  // namespace qprog
