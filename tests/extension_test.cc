// Extensions beyond the paper's core: the sliding-window estimator
// (Section 6.4's future-work direction), the bounds-annotated explain, the
// remaining-time projection, and broad parameterized invariant sweeps over
// skew x order x plan.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/explain.h"
#include "core/monitor.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "tests/test_util.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

using testutil::I;

// ---------------------------------------------------------------------------
// WindowEstimator

TEST(WindowEstimatorTest, StaysInFeasibleInterval) {
  ZipfJoinConfig config;
  config.r1_rows = 3000;
  config.r2_rows = 3000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildInlPlan(nullptr, true);
  ProgressMonitor monitor = ProgressMonitor::WithEstimators(&plan, {"window"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(150);
  for (const Checkpoint& c : report.checkpoints) {
    double lo = c.work_ub > 0 ? static_cast<double>(c.work) / c.work_ub : 0;
    double hi = c.work_lb > 0 ? static_cast<double>(c.work) / c.work_lb : 1;
    ASSERT_GE(c.estimates[0], lo - 1e-9);
    ASSERT_LE(c.estimates[0], std::min(1.0, hi) + 1e-9);
  }
}

TEST(WindowEstimatorTest, AdaptsToSkewFirstFasterThanDne) {
  // With the heavy tuples first, dne assumes the horrific early per-tuple
  // cost continues... no: dne assumes the average-so-far is the overall
  // average, underestimating progress. The window estimator extrapolates
  // from *recent* (cheap) tuples, so once past the head it recovers faster.
  ZipfJoinConfig config;
  config.r1_rows = 5000;
  config.r2_rows = 5000;
  config.z = 2.0;
  config.order = R1Order::kSkewFirst;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildInlPlan(nullptr, true);
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "window"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(200);
  auto m_dne = report.Metrics(0);
  auto m_win = report.Metrics(1);
  EXPECT_LT(m_win.avg_abs_err, m_dne.avg_abs_err);
}

TEST(WindowEstimatorTest, MatchesDneOnUniformWork) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 4000; ++i) rows.push_back({I(i)});
  Table t = testutil::MakeTable("t", {"v"}, std::move(rows));
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "window"});
  ProgressReport report = monitor.Run(100);
  for (const Checkpoint& c : report.checkpoints) {
    EXPECT_NEAR(c.estimates[0], c.estimates[1], 0.02);
  }
}

// ---------------------------------------------------------------------------
// ExplainWithBounds / EstimateRemainingSeconds

TEST(ExplainTest, AnnotatesEveryNode) {
  ZipfJoinConfig config;
  config.r1_rows = 500;
  config.r2_rows = 500;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildHashPlan();
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  plan.root()->Open(&ctx);
  Row out;
  plan.root()->Next(&ctx, &out);
  std::string explain = ExplainWithBounds(plan, ctx);
  EXPECT_NE(explain.find("HashJoin"), std::string::npos);
  EXPECT_NE(explain.find("bounds=["), std::string::npos);
  EXPECT_NE(explain.find("(root, excluded from work)"), std::string::npos);
  EXPECT_NE(explain.find("LB="), std::string::npos);
  // One line per node plus the summary line.
  size_t lines = 0;
  for (char c : explain) lines += c == '\n';
  EXPECT_EQ(lines, plan.num_nodes() + 1);
}

TEST(EtaTest, ProjectionFormula) {
  EXPECT_DOUBLE_EQ(EstimateRemainingSeconds(0.5, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(EstimateRemainingSeconds(0.25, 30.0), 90.0);
  EXPECT_DOUBLE_EQ(EstimateRemainingSeconds(1.0, 42.0), 0.0);
  EXPECT_TRUE(std::isinf(EstimateRemainingSeconds(0.0, 5.0)));
}

// ---------------------------------------------------------------------------
// Invariant sweep: every estimator stays in [0,1] and the sound estimators
// keep their guarantees across skew x order x plan combinations.

using SweepParam = std::tuple<double, R1Order, bool>;  // z, order, hash?

class EstimatorSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EstimatorSweepTest, GuaranteesHoldEverywhere) {
  auto [z, order, hash] = GetParam();
  ZipfJoinConfig config;
  config.r1_rows = 2000;
  config.r2_rows = 2000;
  config.z = z;
  config.order = order;
  ZipfJoinData data(config);
  PhysicalPlan plan = hash ? data.BuildHashPlan(nullptr, true)
                           : data.BuildInlPlan(nullptr, true);
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, AllEstimatorNames());
  ProgressReport report = monitor.RunWithApproxCheckpoints(60);
  int pmax = report.FindEstimator("pmax");
  int safe = report.FindEstimator("safe");
  for (const Checkpoint& c : report.checkpoints) {
    for (size_t e = 0; e < c.estimates.size(); ++e) {
      ASSERT_GE(c.estimates[e], 0.0) << report.names[e];
      ASSERT_LE(c.estimates[e], 1.0) << report.names[e];
    }
    ASSERT_GE(c.estimates[pmax], c.true_progress - 1e-9);
    if (c.true_progress > 0 && c.estimates[safe] > 0) {
      double ratio = std::max(c.estimates[safe] / c.true_progress,
                              c.true_progress / c.estimates[safe]);
      ASSERT_LE(ratio,
                std::sqrt(c.work_ub / std::max(1.0, c.work_lb)) * (1 + 1e-9));
    }
    ASSERT_LE(c.work_lb, c.work_ub);
    ASSERT_GE(c.work_lb, static_cast<double>(c.work));
  }
  // Completion: bounds met the truth.
  const Checkpoint& last = report.checkpoints.back();
  ASSERT_LE(last.work_lb, static_cast<double>(report.total_work) + 1e-6);
  ASSERT_GE(last.work_ub, static_cast<double>(last.work) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SkewOrderPlan, EstimatorSweepTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0),
                       ::testing::Values(R1Order::kSkewFirst,
                                         R1Order::kSkewLast,
                                         R1Order::kRandom),
                       ::testing::Bool()));

}  // namespace
}  // namespace qprog
