// Deep correctness validation of the hand-built TPC-H plans: each query that
// the SQL subset can express is recomputed through the independent SQL
// frontend/planner path and the answers are cross-checked. A bug in either
// the hand-built plan, the planner, or any operator shows up as a mismatch.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sql/planner.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace qprog {
namespace {

class TpchEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.003;
    config.z = 2.0;
    Status s = tpch::GenerateTpch(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static Database* db_;
};

Database* TpchEquivalenceTest::db_ = nullptr;

TEST_F(TpchEquivalenceTest, Q3TopRowsAgreeWithSql) {
  // Full (un-limited) SQL result, keyed by orderkey.
  auto sql_rows = sql::ExecuteSql(
      "SELECT l_orderkey, o_orderdate, o_shippriority, "
      "sum(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM customer c, orders o, lineitem l "
      "WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey "
      "AND l.l_orderkey = o.o_orderkey "
      "AND o.o_orderdate < DATE '1995-03-15' "
      "AND l.l_shipdate > DATE '1995-03-15' "
      "GROUP BY l_orderkey, o_orderdate, o_shippriority",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();
  std::map<int64_t, double> revenue_by_order;
  for (const Row& r : *sql_rows) {
    revenue_by_order[r[0].int64_value()] = r[3].double_value();
  }

  auto hand = tpch::BuildQuery(3, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_LE(hand_rows.size(), 10u);
  ASSERT_FALSE(hand_rows.empty());
  double prev_revenue = 1e300;
  for (const Row& r : hand_rows) {
    int64_t orderkey = r[0].int64_value();
    auto it = revenue_by_order.find(orderkey);
    ASSERT_NE(it, revenue_by_order.end()) << "orderkey " << orderkey;
    EXPECT_NEAR(r[3].double_value(), it->second, 1e-6);
    // Descending revenue ordering.
    EXPECT_LE(r[3].double_value(), prev_revenue + 1e-9);
    prev_revenue = r[3].double_value();
  }
}

TEST_F(TpchEquivalenceTest, Q5NationRevenueAgreesWithSql) {
  auto sql_rows = sql::ExecuteSql(
      "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM customer c, orders o, lineitem l, supplier s, nation n, region r "
      "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
      "AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey "
      "AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey "
      "AND r.r_name = 'ASIA' "
      "AND o.o_orderdate >= DATE '1994-01-01' "
      "AND o.o_orderdate < DATE '1995-01-01' "
      "GROUP BY n_name ORDER BY revenue DESC",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();

  auto hand = tpch::BuildQuery(5, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_EQ(hand_rows.size(), sql_rows->size());
  for (size_t i = 0; i < hand_rows.size(); ++i) {
    EXPECT_EQ(hand_rows[i][0].string_value(), (*sql_rows)[i][0].string_value());
    EXPECT_NEAR(hand_rows[i][1].double_value(), (*sql_rows)[i][1].double_value(),
                1e-6);
  }
}

TEST_F(TpchEquivalenceTest, Q10TopCustomersAgreeWithSql) {
  auto sql_rows = sql::ExecuteSql(
      "SELECT c_custkey, sum(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM orders o, customer c, lineitem l, nation n "
      "WHERE o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_orderkey "
      "AND c.c_nationkey = n.n_nationkey "
      "AND o.o_orderdate >= DATE '1993-10-01' "
      "AND o.o_orderdate < DATE '1994-01-01' "
      "AND l.l_returnflag = 'R' GROUP BY c_custkey",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();
  std::map<int64_t, double> revenue_by_cust;
  for (const Row& r : *sql_rows) {
    revenue_by_cust[r[0].int64_value()] = r[1].double_value();
  }

  auto hand = tpch::BuildQuery(10, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_FALSE(hand_rows.empty());
  for (const Row& r : hand_rows) {
    int64_t custkey = r[0].int64_value();
    auto it = revenue_by_cust.find(custkey);
    ASSERT_NE(it, revenue_by_cust.end()) << "custkey " << custkey;
    EXPECT_NEAR(r[7].double_value(), it->second, 1e-6);
  }
}

TEST_F(TpchEquivalenceTest, Q19RevenueAgreesWithSql) {
  auto sql_rows = sql::ExecuteSql(
      "SELECT sum(l_extendedprice * (1 - l_discount)) FROM lineitem l, part p "
      "WHERE l.l_partkey = p.p_partkey "
      "AND l.l_shipinstruct = 'DELIVER IN PERSON' "
      "AND l.l_shipmode IN ('AIR', 'REG AIR') AND ("
      "(p.p_brand = 'Brand#12' AND p.p_container IN ('SM CASE', 'SM BOX', "
      "'SM PACK', 'SM PKG') AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size "
      "BETWEEN 1 AND 5) OR "
      "(p.p_brand = 'Brand#23' AND p.p_container IN ('MED BAG', 'MED BOX', "
      "'MED PKG', 'MED PACK') AND l.l_quantity BETWEEN 10 AND 20 AND p.p_size "
      "BETWEEN 1 AND 10) OR "
      "(p.p_brand = 'Brand#34' AND p.p_container IN ('LG CASE', 'LG BOX', "
      "'LG PACK', 'LG PKG') AND l.l_quantity BETWEEN 20 AND 30 AND p.p_size "
      "BETWEEN 1 AND 15))",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();

  auto hand = tpch::BuildQuery(19, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_EQ(hand_rows.size(), 1u);
  ASSERT_EQ(sql_rows->size(), 1u);
  const Value& sql_v = (*sql_rows)[0][0];
  const Value& hand_v = hand_rows[0][0];
  if (sql_v.is_null()) {
    EXPECT_TRUE(hand_v.is_null());
  } else {
    EXPECT_NEAR(sql_v.double_value(), hand_v.double_value(), 1e-6);
  }
}

TEST_F(TpchEquivalenceTest, Q12ShipmodeCountsAgreeWithSql) {
  // The CASE aggregation is beyond the SQL subset; cross-check the total
  // qualifying lineitem count per shipmode instead.
  auto sql_rows = sql::ExecuteSql(
      "SELECT l_shipmode, count(*) FROM lineitem l, orders o "
      "WHERE l.l_orderkey = o.o_orderkey "
      "AND l.l_shipmode IN ('MAIL', 'SHIP') "
      "AND l.l_commitdate < l.l_receiptdate "
      "AND l.l_shipdate < l.l_commitdate "
      "AND l.l_receiptdate >= DATE '1994-01-01' "
      "AND l.l_receiptdate < DATE '1995-01-01' "
      "GROUP BY l_shipmode ORDER BY l_shipmode",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();

  auto hand = tpch::BuildQuery(12, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_EQ(hand_rows.size(), sql_rows->size());
  for (size_t i = 0; i < hand_rows.size(); ++i) {
    EXPECT_EQ(hand_rows[i][0].string_value(), (*sql_rows)[i][0].string_value());
    // high_line_count + low_line_count == count(*).
    double total = hand_rows[i][1].double_value() +
                   hand_rows[i][2].double_value();
    EXPECT_NEAR(total, static_cast<double>((*sql_rows)[i][1].int64_value()),
                1e-9);
  }
}

TEST_F(TpchEquivalenceTest, GeneratorIsSeedDeterministic) {
  Database a, b;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  config.z = 1.5;
  config.seed = 777;
  config.build_indexes = false;
  config.collect_stats = false;
  ASSERT_TRUE(tpch::GenerateTpch(config, &a).ok());
  ASSERT_TRUE(tpch::GenerateTpch(config, &b).ok());
  const Table* la = a.GetTable("lineitem");
  const Table* lb = b.GetTable("lineitem");
  ASSERT_EQ(la->num_rows(), lb->num_rows());
  for (uint64_t i = 0; i < la->num_rows(); i += 97) {
    ASSERT_TRUE(RowEq()(la->row(i), lb->row(i))) << "row " << i;
  }
  // A different seed produces different data.
  Database c;
  config.seed = 778;
  ASSERT_TRUE(tpch::GenerateTpch(config, &c).ok());
  const Table* lc = c.GetTable("lineitem");
  bool any_diff = lc->num_rows() != la->num_rows();
  for (uint64_t i = 0; !any_diff && i < std::min(la->num_rows(),
                                                 lc->num_rows()); ++i) {
    any_diff = !RowEq()(la->row(i), lc->row(i));
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace qprog
