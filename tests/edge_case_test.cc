// Failure-injection / degenerate-input sweeps: every TPC-H plan over a
// completely empty database, zero-work monitoring, and single-row tables —
// the inputs where division guards and empty-phase handling break first.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/monitor.h"
#include "sql/planner.h"
#include "tpch/queries.h"
#include "tpch/schema.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

// A TPC-H catalog whose tables all have zero rows.
class EmptyTpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    QPROG_CHECK(db_->AddTable(Table("region", tpch::RegionSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("nation", tpch::NationSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("supplier", tpch::SupplierSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("part", tpch::PartSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("partsupp", tpch::PartsuppSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("customer", tpch::CustomerSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("orders", tpch::OrdersSchema())).ok());
    QPROG_CHECK(db_->AddTable(Table("lineitem", tpch::LineitemSchema())).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* EmptyTpchTest::db_ = nullptr;

class EmptyTpchQueryTest : public EmptyTpchTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(EmptyTpchQueryTest, RunsToCompletionOverEmptyTables) {
  auto plan = tpch::BuildQuery(GetParam(), *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ExecContext ctx;
  uint64_t rows = exec::Drive(&plan.value(), {.ctx = &ctx}).root_rows;
  // Scalar-aggregate queries still yield one row; the rest yield none.
  EXPECT_LE(rows, 1u);
  // No base rows means (almost) no getnexts — except a non-root scalar
  // aggregate, which emits its single empty-input row.
  EXPECT_LE(ctx.work(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllQueriesEmpty, EmptyTpchQueryTest,
                         ::testing::Range(1, 23));

TEST_F(EmptyTpchTest, MonitorHandlesZeroWorkQueries) {
  auto plan = tpch::BuildQuery(1, *db_);
  ASSERT_TRUE(plan.ok());
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), AllEstimatorNames());
  ProgressReport report = monitor.Run(10);
  EXPECT_EQ(report.total_work, 0u);
  EXPECT_TRUE(report.checkpoints.empty());  // no work, no checkpoints
  // Metrics over an empty trace must not divide by zero.
  EstimatorMetrics m = report.Metrics(0);
  EXPECT_EQ(m.max_abs_err, 0.0);
}

TEST_F(EmptyTpchTest, ExplainOnUnstartedPlan) {
  auto plan = tpch::BuildQuery(21, *db_);
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  ctx.Reset(plan.value().num_nodes());
  std::string s = ExplainWithBounds(plan.value(), ctx);
  EXPECT_NE(s.find("work=0"), std::string::npos);
}

TEST_F(EmptyTpchTest, SqlOverEmptyTables) {
  auto rows = sql::ExecuteSql(
      "SELECT count(*), sum(l_quantity) FROM lineitem", *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int64_value(), 0);
  EXPECT_TRUE((*rows)[0][1].is_null());

  auto grouped = sql::ExecuteSql(
      "SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag",
      *db_);
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE(grouped->empty());
}

TEST(EdgeCaseTest, SingleRowJoinWorkloads) {
  ZipfJoinConfig config;
  config.r1_rows = 1;
  config.r2_rows = 1;
  config.z = 0.0;
  ZipfJoinData data(config);
  PhysicalPlan inl = data.BuildInlPlan();
  PhysicalPlan hash = data.BuildHashPlan();
  auto r1 = CollectRows(&inl);
  auto r2 = CollectRows(&hash);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0][0].int64_value(), 1);
  EXPECT_EQ(r2[0][0].int64_value(), 1);
}

TEST(EdgeCaseTest, MonitorIntervalLargerThanTotalWork) {
  ZipfJoinConfig config;
  config.r1_rows = 50;
  config.r2_rows = 50;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressMonitor monitor = ProgressMonitor::WithEstimators(&plan, {"safe"});
  ProgressReport report = monitor.Run(1000000);
  EXPECT_TRUE(report.checkpoints.empty());
  EXPECT_GT(report.total_work, 0u);
  EXPECT_GE(report.mu, 1.0);
}

TEST(EdgeCaseTest, EstimatorsOnFirstWorkUnit) {
  // Checkpoint at the very first getnext: no division blowups, sane values.
  ZipfJoinConfig config;
  config.r1_rows = 100;
  config.r2_rows = 100;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, AllEstimatorNames());
  ProgressReport report = monitor.Run(1);
  ASSERT_FALSE(report.checkpoints.empty());
  const Checkpoint& first = report.checkpoints.front();
  EXPECT_EQ(first.work, 1u);
  for (double e : first.estimates) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

}  // namespace
}  // namespace qprog
