// Multi-session soak: TPC-H queries run through the QueryServer fleet under
// a matrix of disruption scenarios — deterministic work-indexed cancellation,
// expired deadlines, tight memory, transient spill I/O — crossed with intra-
// query worker pools {0, 4} and seeds. The contract under test is execution
// *identity*: whatever the rest of the fleet is doing, a session pinned to an
// explicit soft budget produces rows and telemetry traces byte-identical to a
// solo run of the same query in the same environment, disrupted sessions
// fail exactly as their solo twins do (cross-query fault isolation), and no
// run leaves spill residue behind. A separate test drives the governor into
// real revocation under concurrency and checks every checkpoint of every
// session still satisfies Curr <= LB <= UB with sane estimates.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "server/query_server.h"
#include "sql/session.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"
#include "tpch/dbgen.h"

namespace qprog {
namespace {

enum class Scenario {
  kClean,        // tight-ish budgets only: everything completes by spilling
  kCancel,       // odd queries cancelled at a fixed work index
  kDeadline,     // odd queries start with an already-expired deadline
  kTightMemory,  // odd queries get a much tighter soft budget
  kTransientIo,  // odd queries ride out transient spill I/O faults
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kClean: return "clean";
    case Scenario::kCancel: return "cancel";
    case Scenario::kDeadline: return "deadline";
    case Scenario::kTightMemory: return "tight-memory";
    case Scenario::kTransientIo: return "transient-io";
  }
  return "?";
}

// Blocking-operator-heavy SQL over the TPC-H catalog, so tight budgets bite.
const char* kQueries[] = {
    "SELECT l_returnflag, l_linestatus, sum(l_quantity), count(*) "
    "FROM lineitem GROUP BY l_returnflag, l_linestatus "
    "ORDER BY l_returnflag, l_linestatus",
    "SELECT count(*) FROM lineitem l JOIN orders o "
    "ON l.l_orderkey = o.o_orderkey",
    "SELECT o_orderpriority, count(*) FROM orders "
    "GROUP BY o_orderpriority ORDER BY o_orderpriority",
    "SELECT l_orderkey, sum(l_extendedprice) FROM lineitem "
    "GROUP BY l_orderkey",
};
constexpr size_t kNumQueries = std::size(kQueries);
const std::vector<std::string> kEstimators = {"dne", "pmax", "safe"};
constexpr uint64_t kInterval = 64;
constexpr uint64_t kCancelAt = 256;

// Scratch dirs carry the pid so concurrent runs of this binary (e.g. the
// ASan and TSan suites on one CI host) never race on each other's cleanup.
std::filesystem::path ScratchDir(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("qprog_server_soak_" + std::to_string(::getpid()) + "_" + tag);
}

int CountSpillFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  int n = 0;
  for (const auto& entry : it) {
    if (entry.path().filename().string().rfind(SpillFile::kFilePrefix, 0) ==
        0) {
      ++n;
    }
  }
  return n;
}

// Arms the transient-IO schedule identically for solo and fleet runs.
void ArmTransientIo(FaultInjector* fi, uint64_t seed) {
  int i = 0;
  for (const char* site :
       {faults::kSpillOpen, faults::kSpillWrite, faults::kSpillRead}) {
    FaultSpec spec;
    spec.site = site;
    spec.fail_on_hit = 1 + (seed + static_cast<uint64_t>(i++)) % 100;
    spec.fault_class = FaultClass::kTransient;
    spec.transient_failures = 1 + seed % 2;
    fi->Arm(std::move(spec));
  }
}

struct CellConfig {
  Scenario scenario;
  int threads;  // intra-query worker pool size (0 = serial)
  uint64_t seed;
};

// Everything one query needs for a run the fleet must reproduce exactly.
struct QuerySetup {
  std::string sql;
  uint64_t soft_budget = 0;
  bool disrupted = false;  // scenario applies to this query
};

std::vector<QuerySetup> MakeSetups(const CellConfig& cell) {
  std::vector<QuerySetup> setups(kNumQueries);
  for (size_t qi = 0; qi < kNumQueries; ++qi) {
    QuerySetup& s = setups[qi];
    s.sql = kQueries[qi];
    // Tight enough to spill on the bigger queries, varied by seed and query
    // so the matrix covers different spill shapes.
    s.soft_budget = 32 + 8 * qi + cell.seed % 16;
    s.disrupted = (qi % 2 == 1) && cell.scenario != Scenario::kClean;
    if (s.disrupted && cell.scenario == Scenario::kTightMemory) {
      s.soft_budget = 16;
    }
  }
  return setups;
}

class ServerSoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    Status s = tpch::GenerateTpch(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* ServerSoakTest::db_ = nullptr;

// One solo monitored run of `setup` in the exact environment the server
// builds per ticket; returns the trace and the report.
ProgressReport SoloMonitored(const Database* db, const QuerySetup& setup,
                             const CellConfig& cell, WorkerPool* pool,
                             const std::string& dir, std::string* trace) {
  QueryGuard guard;
  guard.set_max_buffered_rows(setup.soft_budget);
  SpillManager spill(dir);
  JsonlStringSink sink;
  TelemetryCollector telemetry(&sink);
  FaultInjector fi(cell.seed);
  sql::SessionOptions so;
  so.estimators = kEstimators;
  so.checkpoint_interval = kInterval;
  so.guard = &guard;
  so.spill_manager = &spill;
  so.worker_pool = pool;
  so.telemetry = &telemetry;
  sql::QueryOptions qo;
  if (setup.disrupted) {
    switch (cell.scenario) {
      case Scenario::kCancel:
        qo.checkpoint_listener = [&guard](const Checkpoint& cp) {
          if (cp.work >= kCancelAt) guard.RequestCancel();
        };
        break;
      case Scenario::kDeadline:
        guard.set_timeout(std::chrono::nanoseconds(1));
        break;
      case Scenario::kTransientIo:
        ArmTransientIo(&fi, cell.seed);
        so.fault_injector = &fi;
        break;
      default:
        break;
    }
  }
  sql::SqlSession session(db, so);
  StatusOr<ProgressReport> report = session.ExecuteMonitored(setup.sql, qo);
  QPROG_CHECK(report.ok());
  *trace = sink.data();
  return std::move(report).value();
}

TEST_F(ServerSoakTest, FleetRunsAreByteIdenticalToSoloRuns) {
  const Scenario kScenarios[] = {Scenario::kClean, Scenario::kCancel,
                                 Scenario::kDeadline, Scenario::kTightMemory,
                                 Scenario::kTransientIo};
  for (int threads : {0, 4}) {
    for (uint64_t seed : {17u, 42u}) {
      for (Scenario scenario : kScenarios) {
        CellConfig cell{scenario, threads, seed};
        SCOPED_TRACE(std::string("scenario=") + ScenarioName(scenario) +
                     " threads=" + std::to_string(threads) +
                     " seed=" + std::to_string(seed));
        std::vector<QuerySetup> setups = MakeSetups(cell);

        std::filesystem::path dir =
            ScratchDir(std::string(ScenarioName(scenario)) + "_t" +
                       std::to_string(threads) + "_s" + std::to_string(seed));
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);

        std::unique_ptr<WorkerPool> solo_pool;
        if (threads > 0) solo_pool = std::make_unique<WorkerPool>(threads);

        // Solo references: monitored traces/reports and plain rows.
        std::vector<std::string> solo_traces(kNumQueries);
        std::vector<ProgressReport> solo_reports;
        std::vector<std::string> solo_rows(kNumQueries);
        for (size_t qi = 0; qi < kNumQueries; ++qi) {
          solo_reports.push_back(SoloMonitored(db_, setups[qi], cell,
                                               solo_pool.get(), dir.string(),
                                               &solo_traces[qi]));
          QueryGuard guard;
          guard.set_max_buffered_rows(setups[qi].soft_budget);
          SpillManager spill(dir.string());
          sql::SessionOptions so;
          so.checkpoint_interval = kInterval;
          so.guard = &guard;
          so.spill_manager = &spill;
          so.worker_pool = solo_pool.get();
          sql::SqlSession session(db_, so);
          StatusOr<std::vector<Row>> rows = session.Execute(setups[qi].sql);
          ASSERT_TRUE(rows.ok()) << rows.status();
          solo_rows[qi] = testutil::RowsToString(rows.value());
        }
        ASSERT_EQ(CountSpillFiles(dir.string()), 0);

        // Fleet run: 8 sessions, one monitored + one plain submission per
        // query, all in flight together. Explicit soft budgets + an
        // unconstrained pool pin every ticket's memory envelope to its solo
        // twin, so the only thing that could diverge is cross-session
        // interference — which is exactly what must not exist.
        ServerOptions opts;
        opts.sessions = 8;
        opts.estimators = kEstimators;
        opts.checkpoint_interval = kInterval;
        opts.spill_dir = dir.string();
        QueryServer server(db_, opts);

        std::vector<std::unique_ptr<WorkerPool>> pools;
        std::vector<std::unique_ptr<JsonlStringSink>> sinks;
        std::vector<std::unique_ptr<TelemetryCollector>> collectors;
        std::vector<std::unique_ptr<FaultInjector>> injectors;
        std::vector<uint64_t> monitored_tickets(kNumQueries);
        std::vector<uint64_t> plain_tickets(kNumQueries);
        for (size_t qi = 0; qi < kNumQueries; ++qi) {
          SubmitOptions so;
          so.soft_budget_rows = setups[qi].soft_budget;
          if (threads > 0) {
            pools.push_back(std::make_unique<WorkerPool>(threads));
            so.worker_pool = pools.back().get();
          }
          sinks.push_back(std::make_unique<JsonlStringSink>());
          collectors.push_back(
              std::make_unique<TelemetryCollector>(sinks.back().get()));
          so.telemetry = collectors.back().get();
          if (setups[qi].disrupted) {
            switch (scenario) {
              case Scenario::kCancel: {
                // Deterministic work-indexed cancel, same index as solo. The
                // gate blocks the listener until the submitter has published
                // the ticket id (the query can reach kCancelAt units before
                // Submit even returns on the submitting thread).
                struct CancelGate {
                  std::mutex mu;
                  std::condition_variable cv;
                  uint64_t ticket = 0;
                  bool fired = false;
                };
                auto gate = std::make_shared<CancelGate>();
                auto server_ptr = &server;
                so.checkpoint_listener = [server_ptr,
                                          gate](const Checkpoint& cp) {
                  if (cp.work < kCancelAt) return;
                  std::unique_lock<std::mutex> lock(gate->mu);
                  if (gate->fired) return;
                  gate->fired = true;
                  gate->cv.wait(lock, [&] { return gate->ticket != 0; });
                  server_ptr->Cancel(gate->ticket);
                };
                monitored_tickets[qi] =
                    server.Submit("soak", setups[qi].sql, so);
                {
                  std::lock_guard<std::mutex> lock(gate->mu);
                  gate->ticket = monitored_tickets[qi];
                }
                gate->cv.notify_all();
                break;
              }
              case Scenario::kDeadline:
                so.timeout = std::chrono::nanoseconds(1);
                break;
              case Scenario::kTransientIo:
                injectors.push_back(std::make_unique<FaultInjector>(cell.seed));
                ArmTransientIo(injectors.back().get(), cell.seed);
                so.fault_injector = injectors.back().get();
                break;
              default:
                break;
            }
          }
          if (monitored_tickets[qi] == 0) {
            monitored_tickets[qi] = server.Submit("soak", setups[qi].sql, so);
          }

          SubmitOptions plain;
          plain.monitored = false;
          plain.soft_budget_rows = setups[qi].soft_budget;
          if (threads > 0) {
            pools.push_back(std::make_unique<WorkerPool>(threads));
            plain.worker_pool = pools.back().get();
          }
          plain_tickets[qi] = server.Submit("soak", setups[qi].sql, plain);
        }

        for (size_t qi = 0; qi < kNumQueries; ++qi) {
          SCOPED_TRACE("query " + std::to_string(qi));
          QueryResult mr = server.Wait(monitored_tickets[qi]);
          ASSERT_TRUE(mr.status.code() == solo_reports[qi].status.code())
              << "fleet status " << mr.status << " vs solo "
              << solo_reports[qi].status;
          EXPECT_EQ(mr.report.termination, solo_reports[qi].termination);
          EXPECT_EQ(mr.report.total_work, solo_reports[qi].total_work);
          EXPECT_EQ(mr.report.root_rows, solo_reports[qi].root_rows);
          EXPECT_EQ(mr.report.spill_work, solo_reports[qi].spill_work);
          EXPECT_EQ(mr.report.checkpoints.size(),
                    solo_reports[qi].checkpoints.size());
          EXPECT_EQ(sinks[qi]->data(), solo_traces[qi])
              << "fleet trace diverged from the solo run";
          for (const Checkpoint& cp : mr.report.checkpoints) {
            EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
            EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
            for (double e : cp.estimates) {
              EXPECT_FALSE(std::isnan(e));
              EXPECT_GE(e, 0.0);
              EXPECT_LE(e, 1.0);
            }
          }

          QueryResult pr = server.Wait(plain_tickets[qi]);
          ASSERT_TRUE(pr.status.ok()) << pr.status;
          EXPECT_EQ(testutil::RowsToString(pr.rows), solo_rows[qi])
              << "fleet rows diverged from the solo run";
        }

        server.Shutdown();
        EXPECT_EQ(CountSpillFiles(dir.string()), 0)
            << "fleet run leaked spill temp files";
        std::filesystem::remove_all(dir);
      }
    }
  }
}

// Governor revocation under real concurrency: a pool far smaller than the
// fleet's combined appetite forces Acquire to revoke headroom from running
// victims. Victims spill earlier but must still complete, return the right
// row counts, and keep Curr <= LB <= UB at every checkpoint.
TEST_F(ServerSoakTest, RevocationUnderLoadKeepsBoundsAndResults) {
  // Solo row counts for the result check.
  std::vector<uint64_t> solo_root_rows;
  for (const char* sql : kQueries) {
    StatusOr<std::vector<Row>> rows = sql::ExecuteSql(sql, *db_);
    ASSERT_TRUE(rows.ok()) << rows.status();
    solo_root_rows.push_back(rows->size());
  }

  std::filesystem::path dir = ScratchDir("revoke");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServerOptions opts;
  opts.sessions = 4;
  opts.estimators = kEstimators;
  opts.checkpoint_interval = kInterval;
  opts.spill_dir = dir.string();
  opts.governor.pool_rows = 256;  // well below the fleet's combined asks
  opts.governor.min_grant_rows = 16;
  opts.admission.fallback_peak_rows = 200;
  QueryServer server(db_, opts);

  // Slow every query down a little so executions genuinely overlap and the
  // governor has live victims to revoke from.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  struct Observed {
    std::mutex mu;
    std::vector<Checkpoint> checkpoints;
  };
  std::vector<std::unique_ptr<Observed>> observed;
  std::vector<uint64_t> tickets;
  for (int round = 0; round < 2; ++round) {
    for (size_t qi = 0; qi < kNumQueries; ++qi) {
      injectors.push_back(std::make_unique<FaultInjector>(7 * round + qi));
      FaultSpec spec;
      spec.site = faults::kSeqScanNext;
      spec.latency_spins = 500;
      injectors.back()->Arm(std::move(spec));
      observed.push_back(std::make_unique<Observed>());
      Observed* obs = observed.back().get();
      SubmitOptions so;
      so.fault_injector = injectors.back().get();
      so.checkpoint_listener = [obs](const Checkpoint& cp) {
        std::lock_guard<std::mutex> lock(obs->mu);
        obs->checkpoints.push_back(cp);
      };
      tickets.push_back(server.Submit("soak", kQueries[qi], so));
    }
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    QueryResult r = server.Wait(tickets[i]);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_TRUE(r.report.completed());
    EXPECT_EQ(r.report.root_rows, solo_root_rows[i % kNumQueries]);
    EXPECT_GT(r.granted_rows, 0u);
    EXPECT_LE(r.granted_rows, opts.governor.pool_rows);
    std::lock_guard<std::mutex> lock(observed[i]->mu);
    EXPECT_FALSE(observed[i]->checkpoints.empty());
    for (const Checkpoint& cp : observed[i]->checkpoints) {
      EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
      EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
      for (double e : cp.estimates) {
        EXPECT_FALSE(std::isnan(e));
        EXPECT_GE(e, 0.0);
        EXPECT_LE(e, 1.0);
      }
    }
  }
  // The pool genuinely arbitrated: grants were revoked to seat newcomers,
  // and every grant was returned.
  EXPECT_EQ(server.governor().granted_rows(), 0u);
  FleetReport fleet = server.Fleet();
  EXPECT_GT(fleet.revocations, 0u) << "no concurrent arbitration happened";
  EXPECT_EQ(fleet.done, tickets.size());
  server.Shutdown();
  EXPECT_EQ(CountSpillFiles(dir.string()), 0);
  std::filesystem::remove_all(dir);
}


// Exchange leg: the whole fleet plans decomposable GROUP BYs as partitioned
// scan -> partial-agg -> exchange -> final-agg pipelines (ServerOptions::
// partitions on the ExecutionConfig spine), under a governor pool small
// enough to revoke mid-exchange. Every run must complete with the serial
// row count and keep Curr <= LB <= UB at every checkpoint.
TEST_F(ServerSoakTest, PartitionedFleetKeepsBoundsAndResultsUnderRevocation) {
  std::vector<uint64_t> solo_root_rows;
  for (const char* sql : kQueries) {
    StatusOr<std::vector<Row>> rows = sql::ExecuteSql(sql, *db_);
    ASSERT_TRUE(rows.ok()) << rows.status();
    solo_root_rows.push_back(rows->size());
  }

  std::filesystem::path dir = ScratchDir("exchange");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  WorkerPool pool(4);
  ServerOptions opts;
  opts.sessions = 4;
  opts.partitions = 4;       // fleet-wide partitioned planning
  opts.worker_pool = &pool;  // fleet-wide default intra-query pool
  opts.estimators = kEstimators;
  opts.checkpoint_interval = kInterval;
  opts.spill_dir = dir.string();
  opts.governor.pool_rows = 256;
  opts.governor.min_grant_rows = 16;
  opts.admission.fallback_peak_rows = 200;
  QueryServer server(db_, opts);
  EXPECT_EQ(server.options().partitions, 4u);

  struct Observed {
    std::mutex mu;
    std::vector<Checkpoint> checkpoints;
  };
  std::vector<std::unique_ptr<Observed>> observed;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<uint64_t> tickets;
  for (int round = 0; round < 2; ++round) {
    for (size_t qi = 0; qi < kNumQueries; ++qi) {
      injectors.push_back(std::make_unique<FaultInjector>(13 * round + qi));
      FaultSpec spec;
      spec.site = faults::kSeqScanNext;
      spec.latency_spins = 500;
      injectors.back()->Arm(std::move(spec));
      observed.push_back(std::make_unique<Observed>());
      Observed* obs = observed.back().get();
      SubmitOptions so;
      so.fault_injector = injectors.back().get();
      so.checkpoint_listener = [obs](const Checkpoint& cp) {
        std::lock_guard<std::mutex> lock(obs->mu);
        obs->checkpoints.push_back(cp);
      };
      tickets.push_back(server.Submit("exch", kQueries[qi], so));
    }
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    SCOPED_TRACE("submission " + std::to_string(i));
    QueryResult r = server.Wait(tickets[i]);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_TRUE(r.report.completed());
    EXPECT_EQ(r.report.root_rows, solo_root_rows[i % kNumQueries])
        << "partitioned fleet run changed the result";
    std::lock_guard<std::mutex> lock(observed[i]->mu);
    EXPECT_FALSE(observed[i]->checkpoints.empty());
    for (const Checkpoint& cp : observed[i]->checkpoints) {
      EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
      EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
      for (double e : cp.estimates) {
        EXPECT_FALSE(std::isnan(e));
        EXPECT_GE(e, 0.0);
        EXPECT_LE(e, 1.0);
      }
    }
  }
  EXPECT_EQ(server.governor().granted_rows(), 0u);
  FleetReport fleet = server.Fleet();
  EXPECT_EQ(fleet.done, tickets.size());
  // The fleet report surfaces the estimator catalog (ListEstimatorSpecs).
  EXPECT_FALSE(fleet.estimator_specs.empty());
  bool has_auto = false;
  for (const EstimatorSpecInfo& info : fleet.estimator_specs) {
    if (info.name == "auto") has_auto = true;
  }
  EXPECT_TRUE(has_auto);
  server.Shutdown();
  EXPECT_EQ(CountSpillFiles(dir.string()), 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace qprog
