// Randomized guardrail soak: TPC-H-style plans run under a seed matrix of
// disruption scenarios — cancellation, expired deadlines, work budgets,
// forced spilling, and transient spill I/O faults — all with a tight
// buffered-row budget and a SpillManager attached, so every disruption lands
// in the middle of memory-adaptive execution. Whatever the outcome, the
// structural invariants must hold: no leaked temp files, zero live spill
// runs, the buffered-row account drained to zero, every estimate sanitized
// into [0, 1], and completed runs result-identical to an unconstrained run.
// The whole matrix runs twice: single-threaded and with a 4-thread worker
// pool, so every disruption also lands inside parallel merges, batched
// partition writes, and concurrent partition joins (DESIGN.md §10).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/fault_injector.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace qprog {
namespace {

/// Every plan execution in this file goes through the unified driver;
/// this adapter keeps the StatusOr shape the assertions expect.
StatusOr<std::vector<Row>> DriveRows(PhysicalPlan* plan, ExecContext* ctx) {
  exec::DriveResult r = exec::Drive(plan, {.ctx = ctx, .collect_rows = true});
  if (!r.ok()) return r.status;
  return std::move(r.rows);
}

enum class Scenario {
  kSpillOnly,     // tight budget, no disruption: must complete by spilling
  kCancel,        // cancel requested mid-run
  kDeadline,      // already-expired deadline
  kWorkBudget,    // hard work cap
  kTransientIo,   // transient faults at every spill site, ridden out
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kSpillOnly: return "spill";
    case Scenario::kCancel: return "cancel";
    case Scenario::kDeadline: return "deadline";
    case Scenario::kWorkBudget: return "work-budget";
    case Scenario::kTransientIo: return "transient-io";
  }
  return "?";
}

int CountSpillFiles(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(SpillFile::kFilePrefix, 0) ==
        0) {
      ++n;
    }
  }
  return n;
}

class SoakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    Status s = tpch::GenerateTpch(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* SoakTest::db_ = nullptr;

// Queries whose plans contain blocking operators (sort / hash join / hash
// aggregate), so a tight buffered-row budget actually bites.
const int kQueries[] = {1, 3, 6, 10};
const uint64_t kSeeds[] = {17, 42, 271};

TEST_F(SoakTest, DisruptionMatrixLeavesNoResidue) {
  const Scenario kScenarios[] = {
      Scenario::kSpillOnly, Scenario::kCancel, Scenario::kDeadline,
      Scenario::kWorkBudget, Scenario::kTransientIo};

  // Unconstrained baselines, once per query, for result equivalence.
  std::vector<std::string> baselines;
  for (int q : kQueries) {
    StatusOr<PhysicalPlan> plan = tpch::BuildQuery(q, *db_);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ExecContext ctx;
    StatusOr<std::vector<Row>> rows = DriveRows(&plan.value(), &ctx);
    ASSERT_TRUE(rows.ok()) << "Q" << q << ": " << rows.status();
    baselines.push_back(testutil::RowsToString(rows.value()));
  }

  uint64_t total_spilled_runs = 0;
  for (int threads : {0, 4}) {
    std::unique_ptr<WorkerPool> pool;
    if (threads > 0) pool = std::make_unique<WorkerPool>(threads);
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    for (uint64_t seed : kSeeds) {
      for (Scenario scenario : kScenarios) {
        const int q = kQueries[qi];
        SCOPED_TRACE(std::string("Q") + std::to_string(q) + " seed=" +
                     std::to_string(seed) + " scenario=" +
                     ScenarioName(scenario) + " threads=" +
                     std::to_string(threads));
        Rng rng(seed * 1000003 + static_cast<uint64_t>(q));

        std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            ("qprog_soak_" + std::to_string(q) + "_" + std::to_string(seed) +
             "_" + ScenarioName(scenario) + "_t" + std::to_string(threads));
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);

        SpillManager spill(dir.string());
        QueryGuard guard;
        guard.set_check_interval(64);
        // Tight enough that the bigger queries spill, loose enough that the
        // clean scenarios still complete.
        guard.set_max_buffered_rows(16 + rng.Uniform(64));
        FaultInjector fi(seed);

        std::set<StatusCode> allowed = {StatusCode::kOk};
        uint64_t cancel_at = 0;
        switch (scenario) {
          case Scenario::kSpillOnly:
            break;
          case Scenario::kCancel:
            cancel_at = 64 * (1 + rng.Uniform(40));
            allowed.insert(StatusCode::kCancelled);
            break;
          case Scenario::kDeadline:
            guard.set_deadline(QueryGuard::Clock::now() -
                               std::chrono::seconds(1));
            allowed = {StatusCode::kDeadlineExceeded};
            break;
          case Scenario::kWorkBudget:
            guard.set_max_work(256 * (1 + rng.Uniform(32)));
            allowed.insert(StatusCode::kResourceExhausted);
            break;
          case Scenario::kTransientIo:
            for (const char* site : {faults::kSpillOpen, faults::kSpillWrite,
                                     faults::kSpillRead}) {
              FaultSpec spec;
              spec.site = site;
              spec.fail_on_hit = 1 + rng.Uniform(200);
              spec.fault_class = FaultClass::kTransient;
              spec.transient_failures = 1 + rng.Uniform(2);
              fi.Arm(std::move(spec));
            }
            break;
        }

        // Direct run: exposes the ExecContext for the drained-account check.
        {
          StatusOr<PhysicalPlan> plan = tpch::BuildQuery(q, *db_);
          ASSERT_TRUE(plan.ok()) << plan.status();
          ExecContext ctx;
          ctx.set_guard(&guard);
          ctx.set_spill_manager(&spill);
          ctx.set_fault_injector(&fi);
          ctx.set_worker_pool(pool.get());
          fi.Reset();
          if (cancel_at > 0) {
            ctx.SetWorkObserver(64, [&](uint64_t work) {
              if (work >= cancel_at) guard.RequestCancel();
            });
          }
          StatusOr<std::vector<Row>> rows =
              DriveRows(&plan.value(), &ctx);
          StatusCode code =
              rows.ok() ? StatusCode::kOk : rows.status().code();
          EXPECT_TRUE(allowed.count(code))
              << "unexpected outcome: "
              << (rows.ok() ? "OK" : rows.status().ToString());
          if (rows.ok()) {
            EXPECT_EQ(testutil::RowsToString(rows.value()), baselines[qi])
                << "degraded run changed the result";
          }
          EXPECT_EQ(ctx.buffered_rows(), 0u)
              << "buffered-row account not drained";
          EXPECT_EQ(spill.live_runs(), 0u) << "live spill runs leaked";
          EXPECT_TRUE(spill.live_files().empty())
              << "live-file registry not drained: " << spill.live_files()[0];
          EXPECT_EQ(CountSpillFiles(dir.string()), 0)
              << "temp spill files leaked";
          guard.ResetCancel();
        }

        // Monitored run: the same configuration sampled by the estimators.
        {
          StatusOr<PhysicalPlan> plan = tpch::BuildQuery(q, *db_);
          ASSERT_TRUE(plan.ok()) << plan.status();
          MonitorOptions mo;
          mo.guard = &guard;
          mo.spill_manager = &spill;
          mo.fault_injector = &fi;
          mo.worker_pool = pool.get();
          if (cancel_at > 0) {
            mo.checkpoint_listener = [&](const Checkpoint& cp) {
              if (cp.work >= cancel_at) guard.RequestCancel();
            };
          }
          ProgressMonitor m = ProgressMonitor::WithEstimators(
              &plan.value(), {"dne", "pmax", "safe"}, mo);
          ProgressReport r = m.Run(64);
          EXPECT_TRUE(allowed.count(r.completed() ? StatusCode::kOk
                                                  : r.status.code()))
              << "unexpected monitored outcome: " << r.status.ToString();
          for (const Checkpoint& cp : r.checkpoints) {
            EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
            EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
            for (double e : cp.estimates) {
              EXPECT_FALSE(std::isnan(e));
              EXPECT_GE(e, 0.0);
              EXPECT_LE(e, 1.0);
            }
          }
          EXPECT_EQ(spill.live_runs(), 0u);
          EXPECT_TRUE(spill.live_files().empty())
              << "live-file registry not drained: " << spill.live_files()[0];
          EXPECT_EQ(CountSpillFiles(dir.string()), 0);
          guard.ResetCancel();
        }

        total_spilled_runs += spill.stats().runs_created;
        std::filesystem::remove_all(dir);
      }
    }
  }
  }
  // The matrix must actually exercise the memory-adaptive path: across all
  // queries, seeds, and scenarios, plenty of spill runs were created.
  EXPECT_GT(total_spilled_runs, 0u);
}

// Tight-memory recursive-Grace scenario: every build key hashes into one
// depth-0 partition, so under a kill threshold below the partition size the
// join can only complete by re-splitting with fresh salts — twice, since one
// re-split still leaves oversized children. Serial and 4-thread runs must
// produce identical rows and leave no residue.
TEST(SoakRecursionTest, TightMemoryRecursiveGraceLeavesNoResidue) {
  std::vector<int64_t> keys;
  for (int64_t k = 0; keys.size() < 200; ++k) {
    if (RowHash()(Row{Value::Int64(k)}) %
            static_cast<size_t>(HashJoin::kSpillFanout) ==
        0) {
      keys.push_back(k);
    }
  }
  std::vector<Row> brows, prows;
  for (int64_t k : keys) {
    for (int64_t i = 0; i < 8; ++i) {
      brows.push_back({Value::Int64(k), Value::Int64(i)});
    }
    prows.push_back({Value::Int64(k), Value::Int64(100)});
  }
  Table build = testutil::MakeTable("b", {"k", "v"}, std::move(brows));
  Table probe = testutil::MakeTable("p", {"k", "v"}, std::move(prows));

  std::string expected;
  for (int threads : {0, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::filesystem::path dir = std::filesystem::temp_directory_path() /
                                ("qprog_soak_grace_t" + std::to_string(threads));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SpillManager spill(dir.string());
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    guard.set_max_buffered_rows_kill(150);
    std::unique_ptr<WorkerPool> pool;
    if (threads > 0) pool = std::make_unique<WorkerPool>(threads);
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    PhysicalPlan plan(std::make_unique<HashJoin>(
        std::make_unique<SeqScan>(&probe), std::make_unique<SeqScan>(&build),
        std::move(pk), std::move(bk)));
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_worker_pool(pool.get());
    StatusOr<std::vector<Row>> rows = DriveRows(&plan, &ctx);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows.value().size(), 200u * 8);
    EXPECT_GT(spill.stats().runs_created,
              static_cast<uint64_t>(2 * HashJoin::kSpillFanout))
        << "no recursive re-split happened";
    EXPECT_EQ(ctx.buffered_rows(), 0u) << "buffered-row account not drained";
    EXPECT_EQ(spill.live_runs(), 0u) << "live spill runs leaked";
    EXPECT_TRUE(spill.live_files().empty())
        << "live-file registry not drained: " << spill.live_files()[0];
    EXPECT_EQ(CountSpillFiles(dir.string()), 0) << "temp spill files leaked";
    if (expected.empty()) {
      expected = testutil::RowsToString(rows.value());
    } else {
      EXPECT_EQ(testutil::RowsToString(rows.value()), expected)
          << "parallel recursion changed the result";
    }
    std::filesystem::remove_all(dir);
  }
}


// Exchange soak (DESIGN.md §16): a partitioned scan -> partial-agg ->
// exchange -> final-agg pipeline run under the same disruption style as the
// matrix above — forced repartition spill, a mid-run governor revocation,
// work-indexed cancellation, and transient I/O faults under spill — at both
// serial and 4-thread pool configurations. Completed runs must match the
// unconstrained result; every run must drain its accounts.
TEST(SoakExchangeTest, SpillAndRevocationLegsLeaveNoResidue) {
  const int64_t kRows = 1600, kKeys = 97;
  std::vector<Row> trows;
  trows.reserve(kRows);
  for (int64_t i = kRows - 1; i >= 0; --i) {
    trows.push_back({Value::Int64(i % kKeys), Value::Int64(i)});
  }
  Table t = testutil::MakeTable("x", {"k", "v"}, std::move(trows));

  auto make_plan = [&](size_t partitions) {
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
    aggs.emplace_back(AggFunc::kSum, eb::Col(1), "sv");
    const uint64_t n = t.num_rows();
    std::vector<OperatorPtr> producers;
    for (size_t p = 0; p < partitions; ++p) {
      std::vector<ExprPtr> groups;
      groups.push_back(eb::Col(0));
      std::vector<AggregateDesc> paggs;
      paggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
      paggs.emplace_back(AggFunc::kSum, eb::Col(1), "sv");
      producers.push_back(std::make_unique<PartialAggregate>(
          std::make_unique<SeqScan>(&t, nullptr, n * p / partitions,
                                    n * (p + 1) / partitions),
          std::move(groups), std::vector<std::string>{"k"},
          std::move(paggs)));
    }
    auto exchange = std::make_unique<Exchange>(
        std::move(producers), std::vector<size_t>{0}, partitions);
    return PhysicalPlan(std::make_unique<FinalAggregate>(
        std::move(exchange), 1, std::vector<std::string>{"k"},
        std::move(aggs)));
  };

  // Unconstrained baseline.
  std::string baseline;
  {
    PhysicalPlan plan = make_plan(4);
    ExecContext ctx;
    StatusOr<std::vector<Row>> rows = DriveRows(&plan, &ctx);
    ASSERT_TRUE(rows.ok()) << rows.status();
    baseline = testutil::RowsToString(rows.value());
  }

  enum class Leg { kSpill, kRevocation, kCancel, kTransientIo };
  const Leg kLegs[] = {Leg::kSpill, Leg::kRevocation, Leg::kCancel,
                       Leg::kTransientIo};
  auto leg_name = [](Leg l) {
    switch (l) {
      case Leg::kSpill: return "spill";
      case Leg::kRevocation: return "revocation";
      case Leg::kCancel: return "cancel";
      case Leg::kTransientIo: return "transient-io";
    }
    return "?";
  };

  uint64_t total_spill_runs = 0;
  for (int threads : {0, 4}) {
    std::unique_ptr<WorkerPool> pool;
    if (threads > 0) pool = std::make_unique<WorkerPool>(threads);
    for (uint64_t seed : kSeeds) {
      for (Leg leg : kLegs) {
        SCOPED_TRACE(std::string("leg=") + leg_name(leg) + " seed=" +
                     std::to_string(seed) + " threads=" +
                     std::to_string(threads));
        Rng rng(seed * 7919 + static_cast<uint64_t>(leg));
        std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            ("qprog_soak_exchange_" + std::string(leg_name(leg)) + "_" +
             std::to_string(seed) + "_t" + std::to_string(threads));
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        SpillManager spill(dir.string());
        QueryGuard guard;
        guard.set_check_interval(64);
        FaultInjector fi(seed);

        std::set<StatusCode> allowed = {StatusCode::kOk};
        uint64_t cancel_at = 0;
        bool revoke = false;
        switch (leg) {
          case Leg::kSpill:
            guard.set_max_buffered_rows(16 + rng.Uniform(32));
            break;
          case Leg::kRevocation:
            revoke = true;  // starts unconstrained, shrinks mid-run
            break;
          case Leg::kCancel:
            guard.set_max_buffered_rows(16 + rng.Uniform(32));
            cancel_at = 64 * (1 + rng.Uniform(20));
            allowed.insert(StatusCode::kCancelled);
            break;
          case Leg::kTransientIo:
            guard.set_max_buffered_rows(16 + rng.Uniform(32));
            for (const char* site : {faults::kSpillOpen, faults::kSpillWrite,
                                     faults::kSpillRead}) {
              FaultSpec spec;
              spec.site = site;
              spec.fail_on_hit = 1 + rng.Uniform(100);
              spec.fault_class = FaultClass::kTransient;
              spec.transient_failures = 1 + rng.Uniform(2);
              fi.Arm(std::move(spec));
            }
            break;
        }

        PhysicalPlan plan = make_plan(4);
        ExecContext ctx;
        ctx.set_guard(&guard);
        ctx.set_spill_manager(&spill);
        ctx.set_fault_injector(&fi);
        ctx.set_worker_pool(pool.get());
        fi.Reset();
        bool revoked = false;
        if (cancel_at > 0 || revoke) {
          ctx.SetWorkObserver(64, [&](uint64_t work) {
            if (cancel_at > 0 && work >= cancel_at) guard.RequestCancel();
            if (revoke && !revoked && work >= 512) {
              guard.set_max_buffered_rows(8 + rng.Uniform(16));
              revoked = true;
            }
          });
        }
        StatusOr<std::vector<Row>> rows = DriveRows(&plan, &ctx);
        StatusCode code = rows.ok() ? StatusCode::kOk : rows.status().code();
        EXPECT_TRUE(allowed.count(code))
            << "unexpected outcome: "
            << (rows.ok() ? "OK" : rows.status().ToString());
        if (rows.ok()) {
          EXPECT_EQ(testutil::RowsToString(rows.value()), baseline)
              << "degraded exchange run changed the result";
        }
        EXPECT_EQ(ctx.buffered_rows(), 0u)
            << "buffered-row account not drained";
        EXPECT_EQ(spill.live_runs(), 0u) << "live spill runs leaked";
        EXPECT_EQ(CountSpillFiles(dir.string()), 0)
            << "temp spill files leaked";
        if (leg == Leg::kRevocation && rows.ok()) {
          EXPECT_TRUE(revoked) << "revocation leg never revoked";
        }
        total_spill_runs += spill.stats().runs_created;
        guard.ResetCancel();
        std::filesystem::remove_all(dir);
      }
    }
  }
  EXPECT_GT(total_spill_runs, 0u)
      << "exchange soak never exercised repartition spill";
}

}  // namespace
}  // namespace qprog
