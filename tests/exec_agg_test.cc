// Aggregation operator tests (HashAggregate, StreamAggregate).

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::D;
using testutil::I;
using testutil::N;
using testutil::S;

Table SalesTable() {
  // group, amount
  return testutil::MakeTable(
      "sales", {"grp", "amt"},
      {{S("a"), I(10)},
       {S("b"), I(5)},
       {S("a"), I(20)},
       {S("b"), N()},
       {S("c"), I(7)},
       {S("a"), I(30)}});
}

std::vector<AggregateDesc> StdAggs() {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(1, "amt"), "total");
  aggs.emplace_back(AggFunc::kAvg, eb::Col(1, "amt"), "mean");
  aggs.emplace_back(AggFunc::kMin, eb::Col(1, "amt"), "lo");
  aggs.emplace_back(AggFunc::kMax, eb::Col(1, "amt"), "hi");
  return aggs;
}

PhysicalPlan HashAggPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0, "grp"));
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::move(scan), std::move(groups), std::vector<std::string>{"grp"},
      StdAggs()));
}

PhysicalPlan StreamAggPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0, "grp"), false);
  auto sort = std::make_unique<Sort>(std::move(scan), std::move(keys));
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0, "grp"));
  return PhysicalPlan(std::make_unique<StreamAggregate>(
      std::move(sort), std::move(groups), std::vector<std::string>{"grp"},
      StdAggs()));
}

void CheckSalesAggregates(const std::vector<Row>& rows) {
  ASSERT_EQ(rows.size(), 3u);
  for (const Row& r : rows) {
    const std::string& g = r[0].string_value();
    if (g == "a") {
      EXPECT_EQ(r[1].int64_value(), 3);  // COUNT(*)
      EXPECT_DOUBLE_EQ(r[2].double_value(), 60.0);
      EXPECT_DOUBLE_EQ(r[3].double_value(), 20.0);
      EXPECT_EQ(r[4].int64_value(), 10);
      EXPECT_EQ(r[5].int64_value(), 30);
    } else if (g == "b") {
      EXPECT_EQ(r[1].int64_value(), 2);  // COUNT(*) counts the NULL-amt row
      EXPECT_DOUBLE_EQ(r[2].double_value(), 5.0);  // SUM skips NULL
      EXPECT_DOUBLE_EQ(r[3].double_value(), 5.0);
      EXPECT_EQ(r[4].int64_value(), 5);
      EXPECT_EQ(r[5].int64_value(), 5);
    } else {
      EXPECT_EQ(g, "c");
      EXPECT_EQ(r[1].int64_value(), 1);
    }
  }
}

TEST(HashAggregateTest, GroupedAggregates) {
  Table t = SalesTable();
  PhysicalPlan plan = HashAggPlan(&t);
  CheckSalesAggregates(CollectRows(&plan));
}

TEST(StreamAggregateTest, GroupedAggregatesMatchHash) {
  Table t = SalesTable();
  PhysicalPlan plan = StreamAggPlan(&t);
  CheckSalesAggregates(CollectRows(&plan));
}

TEST(HashAggregateTest, GroupsEmittedInFirstSeenOrder) {
  Table t = SalesTable();
  PhysicalPlan plan = HashAggPlan(&t);
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].string_value(), "a");
  EXPECT_EQ(rows[1][0].string_value(), "b");
  EXPECT_EQ(rows[2][0].string_value(), "c");
}

TEST(HashAggregateTest, ScalarAggregateOverEmptyInput) {
  Table t = testutil::MakeTable("t", {"v"}, {});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(0), "s");
  aggs.emplace_back(AggFunc::kMin, eb::Col(0), "mn");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
}

TEST(StreamAggregateTest, ScalarAggregateOverEmptyInput) {
  Table t = testutil::MakeTable("t", {"v"}, {});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  PhysicalPlan plan(std::make_unique<StreamAggregate>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 0);
}

TEST(HashAggregateTest, GroupByEmptyInputYieldsNoGroups) {
  Table t = testutil::MakeTable("t", {"g", "v"}, {});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::move(scan), std::move(groups), std::vector<std::string>{"g"},
      std::move(aggs)));
  EXPECT_TRUE(CollectRows(&plan).empty());
}

TEST(HashAggregateTest, CountDistinct) {
  Table t = testutil::MakeTable(
      "t", {"v"}, {{I(1)}, {I(2)}, {I(1)}, {N()}, {I(3)}, {I(2)}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCountDistinct, eb::Col(0), "d");
  aggs.emplace_back(AggFunc::kCount, eb::Col(0), "c");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int64_value(), 3);  // distinct non-null
  EXPECT_EQ(rows[0][1].int64_value(), 5);  // COUNT(v) skips NULL
}

TEST(HashAggregateTest, NullGroupKeyFormsItsOwnGroup) {
  Table t = testutil::MakeTable("t", {"g"}, {{I(1)}, {N()}, {N()}, {I(1)}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  PhysicalPlan plan(std::make_unique<HashAggregate>(
      std::move(scan), std::move(groups), std::vector<std::string>{"g"},
      std::move(aggs)));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& r : rows) EXPECT_EQ(r[1].int64_value(), 2);
}

TEST(AggAccumulatorTest, MinMaxOnStrings) {
  AggAccumulator mn(AggFunc::kMin), mx(AggFunc::kMax);
  for (const char* s : {"pear", "apple", "zucchini"}) {
    mn.Add(Value::String(s));
    mx.Add(Value::String(s));
  }
  EXPECT_EQ(mn.Result().string_value(), "apple");
  EXPECT_EQ(mx.Result().string_value(), "zucchini");
}

TEST(AggAccumulatorTest, AvgOfInts) {
  AggAccumulator avg(AggFunc::kAvg);
  avg.Add(Value::Int64(1));
  avg.Add(Value::Int64(2));
  EXPECT_DOUBLE_EQ(avg.Result().double_value(), 1.5);
}

}  // namespace
}  // namespace qprog
