// Tests for scan, index-seek, filter, project, limit and sort operators.

#include <gtest/gtest.h>

#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "index/ordered_index.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::D;
using testutil::I;
using testutil::N;
using testutil::S;

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("numbers", {"v"}, std::move(rows));
}

TEST(SeqScanTest, ScansAllRows) {
  Table t = Numbers(10);
  PhysicalPlan plan(std::make_unique<SeqScan>(&t));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0][0].int64_value(), 0);
  EXPECT_EQ(rows[9][0].int64_value(), 9);
}

TEST(SeqScanTest, MergedPredicate) {
  Table t = Numbers(10);
  PhysicalPlan plan(std::make_unique<SeqScan>(
      &t, eb::Ge(eb::Col(0, "v"), eb::Int(7))));
  auto rows = CollectRows(&plan);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(SeqScanTest, EmptyTable) {
  Table t = Numbers(0);
  PhysicalPlan plan(std::make_unique<SeqScan>(&t));
  EXPECT_TRUE(CollectRows(&plan).empty());
}

TEST(SeqScanTest, RerunnableAfterReopen) {
  Table t = Numbers(5);
  PhysicalPlan plan(std::make_unique<SeqScan>(&t));
  EXPECT_EQ(CollectRows(&plan).size(), 5u);
  EXPECT_EQ(CollectRows(&plan).size(), 5u);
}

TEST(IndexSeekTest, StaticRange) {
  Table t = Numbers(100);
  OrderedIndex idx(&t, 0);
  PhysicalPlan plan(std::make_unique<IndexSeek>(
      &idx, I(10), true, false, I(19), true, false));
  auto rows = CollectRows(&plan);
  EXPECT_EQ(rows.size(), 10u);
}

TEST(IndexSeekTest, RebindableEquality) {
  Table t = testutil::MakeTable("t", {"k"}, {{I(1)}, {I(2)}, {I(2)}, {I(3)}});
  OrderedIndex idx(&t, 0);
  IndexSeek seek(&idx);
  ExecContext ctx;
  ctx.Reset(1);
  seek.set_node_id(0);
  seek.Open(&ctx);
  Row out;
  seek.Rebind(I(2));
  int n = 0;
  while (seek.Next(&ctx, &out)) ++n;
  EXPECT_EQ(n, 2);
  seek.Rebind(I(99));
  EXPECT_FALSE(seek.Next(&ctx, &out));
  seek.Rebind(I(1));
  EXPECT_TRUE(seek.Next(&ctx, &out));
}

TEST(FilterTest, PassesMatchingRows) {
  Table t = Numbers(100);
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0, "v"), eb::Int(30))));
  EXPECT_EQ(CollectRows(&plan).size(), 30u);
}

TEST(FilterTest, NullPredicateResultRejects) {
  Table t = testutil::MakeTable("t", {"v"}, {{I(1)}, {N()}, {I(3)}});
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::make_unique<Filter>(
      std::move(scan), eb::Gt(eb::Col(0, "v"), eb::Int(0))));
  EXPECT_EQ(CollectRows(&plan).size(), 2u);  // NULL comparison rejected
}

TEST(ProjectTest, ComputesExpressions) {
  Table t = testutil::MakeTable("t", {"a", "b"}, {{I(2), I(3)}, {I(5), I(7)}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<ExprPtr> exprs;
  exprs.push_back(eb::Mul(eb::Col(0), eb::Col(1)));
  exprs.push_back(eb::Col(0));
  PhysicalPlan plan(std::make_unique<Project>(
      std::move(scan), std::move(exprs),
      std::vector<std::string>{"prod", "a"}));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int64_value(), 6);
  EXPECT_EQ(rows[1][0].int64_value(), 35);
  EXPECT_EQ(plan.root()->output_schema().FindField("prod"), 0);
}

TEST(LimitTest, StopsEarly) {
  Table t = Numbers(1000);
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::make_unique<Limit>(std::move(scan), 7));
  ExecContext ctx;
  auto rows = CollectRows(&plan, &ctx);
  EXPECT_EQ(rows.size(), 7u);
  // The scan fed exactly 7 rows (+0: limit root's own rows not counted).
  EXPECT_EQ(ctx.work(), 7u);
}

TEST(LimitTest, LimitLargerThanInput) {
  Table t = Numbers(3);
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::make_unique<Limit>(std::move(scan), 10));
  EXPECT_EQ(CollectRows(&plan).size(), 3u);
}

TEST(LimitTest, LimitZero) {
  Table t = Numbers(3);
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan(std::make_unique<Limit>(std::move(scan), 0));
  EXPECT_TRUE(CollectRows(&plan).empty());
}

TEST(SortTest, AscendingAndDescending) {
  Table t = testutil::MakeTable("t", {"v"}, {{I(3)}, {I(1)}, {I(2)}});
  {
    auto scan = std::make_unique<SeqScan>(&t);
    std::vector<SortKey> keys;
    keys.emplace_back(eb::Col(0, "v"), false);
    PhysicalPlan plan(std::make_unique<Sort>(std::move(scan), std::move(keys)));
    auto rows = CollectRows(&plan);
    EXPECT_EQ(rows[0][0].int64_value(), 1);
    EXPECT_EQ(rows[2][0].int64_value(), 3);
  }
  {
    auto scan = std::make_unique<SeqScan>(&t);
    std::vector<SortKey> keys;
    keys.emplace_back(eb::Col(0, "v"), true);
    PhysicalPlan plan(std::make_unique<Sort>(std::move(scan), std::move(keys)));
    auto rows = CollectRows(&plan);
    EXPECT_EQ(rows[0][0].int64_value(), 3);
    EXPECT_EQ(rows[2][0].int64_value(), 1);
  }
}

TEST(SortTest, MultiKeyWithTieBreak) {
  Table t = testutil::MakeTable(
      "t", {"a", "b"},
      {{I(1), S("z")}, {I(1), S("a")}, {I(0), S("m")}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0, "a"), false);
  keys.emplace_back(eb::Col(1, "b"), false);
  PhysicalPlan plan(std::make_unique<Sort>(std::move(scan), std::move(keys)));
  auto rows = CollectRows(&plan);
  EXPECT_EQ(rows[0][1].string_value(), "m");
  EXPECT_EQ(rows[1][1].string_value(), "a");
  EXPECT_EQ(rows[2][1].string_value(), "z");
}

TEST(SortTest, NullsOrderLowest) {
  Table t = testutil::MakeTable("t", {"v"}, {{I(1)}, {N()}, {I(0)}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0, "v"), false);
  PhysicalPlan plan(std::make_unique<Sort>(std::move(scan), std::move(keys)));
  auto rows = CollectRows(&plan);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_EQ(rows[1][0].int64_value(), 0);
}

TEST(SortTest, SortIsStable) {
  // Equal keys preserve input order.
  Table t = testutil::MakeTable(
      "t", {"k", "tag"},
      {{I(1), S("first")}, {I(1), S("second")}, {I(1), S("third")}});
  auto scan = std::make_unique<SeqScan>(&t);
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0, "k"), false);
  PhysicalPlan plan(std::make_unique<Sort>(std::move(scan), std::move(keys)));
  auto rows = CollectRows(&plan);
  EXPECT_EQ(rows[0][1].string_value(), "first");
  EXPECT_EQ(rows[2][1].string_value(), "third");
}

TEST(PlanTest, NodeIdsArePreOrder) {
  Table t = Numbers(1);
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  auto limit = std::make_unique<Limit>(std::move(filter), 1);
  PhysicalPlan plan(std::move(limit));
  ASSERT_EQ(plan.num_nodes(), 3u);
  EXPECT_EQ(plan.nodes()[0]->kind(), OpKind::kLimit);
  EXPECT_EQ(plan.nodes()[1]->kind(), OpKind::kFilter);
  EXPECT_EQ(plan.nodes()[2]->kind(), OpKind::kSeqScan);
  EXPECT_TRUE(plan.nodes()[0]->is_root());
  EXPECT_FALSE(plan.nodes()[1]->is_root());
  EXPECT_EQ(plan.nodes()[2]->node_id(), 2);
}

TEST(PlanTest, ToStringRendersTree) {
  Table t = Numbers(1);
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0, "v"), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  std::string s = plan.ToString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("SeqScan(numbers)"), std::string::npos);
}

}  // namespace
}  // namespace qprog
