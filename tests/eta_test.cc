// Wall-clock ETA tests (DESIGN.md §13): band sanitization (the
// 0 <= eta_lo <= eta <= eta_hi invariant, including on cancellation and
// deadline partial reports), EWMA rate math, trace schema v4 round trips
// (bit-identical through ReplayTrace, byte-identical across worker pool
// sizes with a deterministic clock), the table-driven version gate, the
// calibration scorer, and the Prometheus metrics exposition.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "obs/eta_model.h"
#include "obs/explain_analyze.h"
#include "obs/metrics_registry.h"
#include "obs/replay.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;

constexpr double kInf = std::numeric_limits<double>::infinity();

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("t", {"v"}, std::move(rows));
}

/// scan(n) -> filter(v < n/2) -> COUNT(*).
PhysicalPlan SmallPlan(const Table* t, int64_t n) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0), eb::Int(n / 2)));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(filter), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  return PhysicalPlan(std::move(agg));
}

Table Keyed(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) rows.push_back({I(i % buckets), I(i)});
  return testutil::MakeTable("k", {"k", "v"}, std::move(rows));
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

std::string MakeSpillDir(const std::string& tag) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("qprog_eta_test_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Deterministic clock: each call advances exactly 1ms, so every band is a
/// pure function of the checkpoint sequence (which is pool-invariant).
EtaModelOptions DeterministicOptions(bool trace = false) {
  EtaModelOptions o;
  o.trace = trace;
  auto t = std::make_shared<uint64_t>(0);
  o.now_fn = [t]() { return *t += 1000000; };
  return o;
}

void ExpectBandInvariant(double eta, double lo, double hi) {
  if (std::isinf(eta)) {
    // All-infinite "unknowable" band, never a mix.
    EXPECT_TRUE(std::isinf(lo) && std::isinf(hi))
        << "mixed band: " << eta << " [" << lo << ", " << hi << "]";
    return;
  }
  EXPECT_TRUE(std::isfinite(lo) && std::isfinite(hi));
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(lo, eta);
  EXPECT_LE(eta, hi);
}

// ---------------------------------------------------------------------------
// Sanitization
// ---------------------------------------------------------------------------

TEST(SanitizeEtaBandTest, NanAnywhereCollapsesToInfinite) {
  for (int which = 0; which < 3; ++which) {
    EtaBand b;
    b.eta_s = 1.0;
    b.eta_lo_s = 0.5;
    b.eta_hi_s = 2.0;
    (which == 0 ? b.eta_s : which == 1 ? b.eta_lo_s : b.eta_hi_s) =
        std::nan("");
    EtaBand s = SanitizeEtaBand(b);
    EXPECT_FALSE(s.finite());
    EXPECT_TRUE(std::isinf(s.eta_s) && std::isinf(s.eta_lo_s) &&
                std::isinf(s.eta_hi_s));
  }
}

TEST(SanitizeEtaBandTest, InfinitePointEstimateCollapses) {
  EtaBand b;
  b.eta_s = kInf;
  b.eta_lo_s = 1.0;
  b.eta_hi_s = 2.0;
  EXPECT_FALSE(SanitizeEtaBand(b).finite());
}

TEST(SanitizeEtaBandTest, ClampsNegativeAndReorders) {
  EtaBand b;
  b.eta_s = -3.0;  // clamps to 0
  b.eta_lo_s = -1.0;
  b.eta_hi_s = -0.5;
  EtaBand s = SanitizeEtaBand(b);
  EXPECT_TRUE(s.finite());
  ExpectBandInvariant(s.eta_s, s.eta_lo_s, s.eta_hi_s);
  EXPECT_EQ(s.eta_s, 0.0);

  EtaBand crossed;
  crossed.eta_s = 5.0;
  crossed.eta_lo_s = 9.0;  // above the point estimate
  crossed.eta_hi_s = 1.0;  // below it
  s = SanitizeEtaBand(crossed);
  ExpectBandInvariant(s.eta_s, s.eta_lo_s, s.eta_hi_s);
  EXPECT_EQ(s.eta_lo_s, 5.0);
  EXPECT_EQ(s.eta_hi_s, 5.0);
}

// ---------------------------------------------------------------------------
// EWMA rate math
// ---------------------------------------------------------------------------

TEST(RateEstimateTest, MatchesWestRecurrenceAndConstantHasZeroVariance) {
  RateEstimate r;
  EXPECT_FALSE(r.warm());
  const double alpha = 0.3;
  const double samples[] = {10.0, 14.0, 9.0, 11.5, 30.0};
  double mean = 0.0, var = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    r.Observe(samples[i], alpha);
    if (i == 0) {
      mean = samples[i];
      var = 0.0;
    } else {
      double delta = samples[i] - mean;
      double incr = alpha * delta;
      mean += incr;
      var = (1.0 - alpha) * (var + delta * incr);
    }
    EXPECT_DOUBLE_EQ(r.mean, mean);
    EXPECT_DOUBLE_EQ(r.var, var);
  }
  EXPECT_TRUE(r.warm());
  EXPECT_EQ(r.samples, 5u);
  EXPECT_DOUBLE_EQ(r.stddev(), std::sqrt(var));

  RateEstimate flat;
  for (int i = 0; i < 50; ++i) flat.Observe(7.0, alpha);
  EXPECT_DOUBLE_EQ(flat.mean, 7.0);
  EXPECT_DOUBLE_EQ(flat.var, 0.0);
}

TEST(RateTrackerTest, ZeroWorkDeltaIsIgnoredAndSpillRatesSeed) {
  RateTracker tracker(0.5);
  tracker.Reset(2);
  tracker.ObserveWork(0, 12345);  // no work bought: not a rate sample
  EXPECT_FALSE(tracker.work_rate().warm());
  tracker.ObserveWork(100, 200);  // 2 ns per unit
  EXPECT_TRUE(tracker.work_rate().warm());
  EXPECT_DOUBLE_EQ(tracker.work_rate().mean, 2.0);

  EXPECT_FALSE(tracker.spill_write_rate().warm());
  tracker.SeedSpillRates(3.5, 1.25);
  EXPECT_DOUBLE_EQ(tracker.spill_write_rate().mean, 3.5);
  EXPECT_DOUBLE_EQ(tracker.spill_read_rate().mean, 1.25);
}

// ---------------------------------------------------------------------------
// EtaModel band production
// ---------------------------------------------------------------------------

TEST(EtaModelTest, InfiniteBeforeFirstCheckpointFiniteAfter) {
  EtaModel model(DeterministicOptions());
  model.OnRunStart(3);
  EXPECT_FALSE(model.latest().finite());

  // First checkpoint: 500 of [1000, 2000] work units, 1ms elapsed.
  EtaBand band = model.OnCheckpoint(500, 1000, 2000, 0, 0, nullptr);
  EXPECT_TRUE(band.finite());
  ExpectBandInvariant(band.eta_s, band.eta_lo_s, band.eta_hi_s);
  // 1ms bought 500 units -> 2000 ns/unit; remaining mid =
  // sqrt(1000*2000) - 500 ~ 914.2 units -> ~1.83ms.
  EXPECT_NEAR(band.eta_s, (std::sqrt(1000.0 * 2000.0) - 500.0) * 2000.0 / 1e9,
              1e-12);
  // Structural interval + calibration floor keep the band around the point.
  EXPECT_GE(band.eta_hi_s, band.eta_s * 1.25 - 1e-12);

  // Work complete: remaining collapses to zero everywhere.
  band = model.OnCheckpoint(2000, 2000, 2000, 0, 0, nullptr);
  EXPECT_EQ(band.eta_s, 0.0);
  EXPECT_EQ(band.eta_lo_s, 0.0);
  EXPECT_EQ(band.eta_hi_s, 0.0);
}

TEST(EtaModelTest, SpillSurchargeOnlyWhenDeviceModelSeeded) {
  EtaModel plain(DeterministicOptions());
  plain.OnRunStart(1);
  EtaBand no_device = plain.OnCheckpoint(100, 200, 400, 50, 1e6, nullptr);

  EtaModel seeded(DeterministicOptions());
  seeded.OnRunStart(1);
  seeded.SeedSpillDeviceRates(2.0, 4.0);  // 4 ns per re-read byte
  EtaBand with_device = seeded.OnCheckpoint(100, 200, 400, 50, 1e6, nullptr);

  // Same work observations, so the point estimate matches; only the upper
  // band pays the pending re-read debt (1e6 bytes * 4 ns = 4ms).
  EXPECT_DOUBLE_EQ(no_device.eta_s, with_device.eta_s);
  EXPECT_NEAR(with_device.eta_hi_s - no_device.eta_hi_s, 4e-3, 1e-9);
  ExpectBandInvariant(with_device.eta_s, with_device.eta_lo_s,
                      with_device.eta_hi_s);
}

// ---------------------------------------------------------------------------
// Monitored runs: checkpoints, reports, partial reports
// ---------------------------------------------------------------------------

TEST(EtaMonitorTest, EveryCheckpointAndReportSatisfyTheInvariant) {
  Table t = Numbers(500);
  PhysicalPlan plan = SmallPlan(&t, 500);
  EtaModel model(DeterministicOptions());
  MonitorOptions mo;
  mo.eta_model = &model;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, std::move(mo));
  ProgressReport r = m.Run(50);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  ASSERT_FALSE(r.checkpoints.empty());
  for (const Checkpoint& cp : r.checkpoints) {
    ExpectBandInvariant(cp.eta_seconds, cp.eta_lo_seconds, cp.eta_hi_seconds);
    // A model was attached, so every checkpoint has a finite band.
    EXPECT_TRUE(std::isfinite(cp.eta_seconds)) << "at work=" << cp.work;
  }
  const Checkpoint& last = r.checkpoints.back();
  EXPECT_EQ(r.eta_seconds, last.eta_seconds);
  EXPECT_EQ(r.eta_lo_seconds, last.eta_lo_seconds);
  EXPECT_EQ(r.eta_hi_seconds, last.eta_hi_seconds);
}

TEST(EtaMonitorTest, WithoutModelBandsStayInfinite) {
  Table t = Numbers(200);
  PhysicalPlan plan = SmallPlan(&t, 200);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne"});
  ProgressReport r = m.Run(50);
  ASSERT_TRUE(r.completed());
  EXPECT_TRUE(std::isinf(r.eta_seconds));
  for (const Checkpoint& cp : r.checkpoints) {
    EXPECT_TRUE(std::isinf(cp.eta_seconds) && std::isinf(cp.eta_lo_seconds) &&
                std::isinf(cp.eta_hi_seconds));
  }
}

TEST(EtaMonitorTest, CancellationPartialReportCarriesSanitizedBand) {
  Table t = Numbers(2000);
  PhysicalPlan plan = SmallPlan(&t, 2000);
  QueryGuard guard;
  EtaModel model(DeterministicOptions());
  MonitorOptions mo;
  mo.guard = &guard;
  mo.eta_model = &model;
  int seen = 0;
  mo.checkpoint_listener = [&](const Checkpoint&) {
    if (++seen == 2) guard.RequestCancel();
  };
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, std::move(mo));
  ProgressReport r = m.Run(100);
  ASSERT_FALSE(r.completed());
  EXPECT_EQ(r.termination, TerminationReason::kCancelled);
  ASSERT_FALSE(r.checkpoints.empty());
  // The partial report still carries the last claimed band, sanitized.
  ExpectBandInvariant(r.eta_seconds, r.eta_lo_seconds, r.eta_hi_seconds);
  EXPECT_TRUE(std::isfinite(r.eta_seconds));
  EXPECT_EQ(r.eta_seconds, r.checkpoints.back().eta_seconds);
}

TEST(EtaMonitorTest, DeadlinePartialReportKeepsTheInvariant) {
  Table t = Numbers(2000);
  PhysicalPlan plan = SmallPlan(&t, 2000);
  QueryGuard guard;
  guard.set_deadline(QueryGuard::Clock::now() - std::chrono::seconds(1));
  EtaModel model(DeterministicOptions());
  MonitorOptions mo;
  mo.guard = &guard;
  mo.eta_model = &model;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne"}, std::move(mo));
  ProgressReport r = m.Run(100);
  ASSERT_FALSE(r.completed());
  EXPECT_EQ(r.termination, TerminationReason::kDeadlineExceeded);
  // Whatever was sampled before the stop, the report's band is sanitized:
  // either the last checkpoint's finite band, or all-infinite.
  ExpectBandInvariant(r.eta_seconds, r.eta_lo_seconds, r.eta_hi_seconds);
  if (r.checkpoints.empty()) {
    EXPECT_TRUE(std::isinf(r.eta_seconds));
  } else {
    EXPECT_EQ(r.eta_seconds, r.checkpoints.back().eta_seconds);
  }
}

TEST(EtaMonitorTest, AbortBeforeFirstCheckpointLeavesInfiniteBand) {
  Table t = Numbers(2000);
  PhysicalPlan plan = SmallPlan(&t, 2000);
  QueryGuard guard;
  guard.set_max_work(10);  // exhausts before the first checkpoint at 1000
  EtaModel model(DeterministicOptions());
  MonitorOptions mo;
  mo.guard = &guard;
  mo.eta_model = &model;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne"}, std::move(mo));
  ProgressReport r = m.Run(1000);
  ASSERT_FALSE(r.completed());
  EXPECT_EQ(r.termination, TerminationReason::kBudgetExhausted);
  EXPECT_TRUE(r.checkpoints.empty());
  // No checkpoint landed, so the band is the all-infinite "unknowable" one —
  // never a partially-populated mix.
  ExpectBandInvariant(r.eta_seconds, r.eta_lo_seconds, r.eta_hi_seconds);
  EXPECT_TRUE(std::isinf(r.eta_seconds));
}

// ---------------------------------------------------------------------------
// Trace schema v4
// ---------------------------------------------------------------------------

TEST(EtaTraceSchemaTest, TableDrivenVersionGateAcceptsOneThroughCurrent) {
  EXPECT_EQ(kTraceSchemaVersion, 5);
  EXPECT_FALSE(TraceSchemaAccepted(0));
  for (int v = 1; v <= kTraceSchemaVersion; ++v) {
    EXPECT_TRUE(TraceSchemaAccepted(v)) << "v" << v;
  }
  EXPECT_FALSE(TraceSchemaAccepted(kTraceSchemaVersion + 1));
  EXPECT_FALSE(TraceSchemaAccepted(-1));

  // The reader enforces the same gate: older versions parse, future ones
  // are refused.
  EXPECT_TRUE(
      ParseTraceEvent("{\"v\":1,\"event\":\"checkpoint\",\"seq\":0,"
                      "\"work\":5,\"work_lb\":1,\"work_ub\":2}")
          .ok());
  EXPECT_FALSE(
      ParseTraceEvent("{\"v\":6,\"event\":\"checkpoint\",\"seq\":0,"
                      "\"work\":5}")
          .ok());
}

TEST(EtaTraceSchemaTest, EtaEventRoundTripsBitExactly) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kEtaSample;
  ev.seq = 11;
  ev.work = 4242;
  ev.a = 1.0 / 3.0;          // eta: needs all 17 digits
  ev.b = 0.1 + 0.2;          // eta_lo: != 0.3 exactly
  ev.c = 12345.678901234567;  // eta_hi
  std::string json = TraceEventToJson(ev);
  EXPECT_NE(json.find("\"event\":\"eta\""), std::string::npos) << json;
  auto parsed = ParseTraceEvent(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), ev);
  EXPECT_EQ(TraceEventToJson(parsed.value()), json);
}

TEST(EtaTraceTest, ReplayReconstructsBandsBitIdentically) {
  Table t = Numbers(600);
  PhysicalPlan plan = SmallPlan(&t, 600);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  EtaModel model(DeterministicOptions(/*trace=*/true));
  MonitorOptions mo;
  mo.telemetry = &collector;
  mo.eta_model = &model;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, std::move(mo));
  ProgressReport live = m.Run(60);
  ASSERT_TRUE(live.completed()) << live.status.ToString();
  ASSERT_FALSE(live.checkpoints.empty());
  EXPECT_NE(sink.data().find("\"event\":\"eta\""), std::string::npos);

  auto events = ParseTraceJsonl(sink.data());
  ASSERT_TRUE(events.ok()) << events.status();
  auto replay = ReplayTrace(events.value());
  ASSERT_TRUE(replay.ok()) << replay.status();
  const ProgressReport& rr = replay.value().report;
  ASSERT_EQ(rr.checkpoints.size(), live.checkpoints.size());
  for (size_t i = 0; i < live.checkpoints.size(); ++i) {
    // Bitwise equality: %.17g serialization is lossless for doubles.
    EXPECT_EQ(rr.checkpoints[i].eta_seconds, live.checkpoints[i].eta_seconds);
    EXPECT_EQ(rr.checkpoints[i].eta_lo_seconds,
              live.checkpoints[i].eta_lo_seconds);
    EXPECT_EQ(rr.checkpoints[i].eta_hi_seconds,
              live.checkpoints[i].eta_hi_seconds);
  }
  EXPECT_EQ(rr.eta_seconds, live.eta_seconds);
  EXPECT_EQ(rr.eta_lo_seconds, live.eta_lo_seconds);
  EXPECT_EQ(rr.eta_hi_seconds, live.eta_hi_seconds);
}

TEST(EtaTraceTest, TracesByteIdenticalAcrossPoolSizes) {
  // With a deterministic clock the band is a pure function of the checkpoint
  // sequence, and the checkpoint sequence is pool-invariant — so the full
  // v4 trace, ETA samples included, must not move by a byte across pools.
  Table t = Keyed(800, 97);
  std::string reference;
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::string dir = MakeSpillDir("pool" + std::to_string(threads));
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    WorkerPool pool(threads);
    PhysicalPlan plan = SortPlan(&t);
    JsonlStringSink sink;
    TelemetryCollector collector(&sink);
    EtaModel model(DeterministicOptions(/*trace=*/true));
    MonitorOptions mo;
    mo.guard = &guard;
    mo.spill_manager = &spill;
    mo.worker_pool = &pool;
    mo.telemetry = &collector;
    mo.eta_model = &model;
    ProgressMonitor m = ProgressMonitor::WithEstimators(
        &plan, {"dne", "pmax", "safe"}, std::move(mo));
    ProgressReport r = m.Run(100);
    ASSERT_TRUE(r.completed()) << r.status.ToString();
    EXPECT_GT(spill.stats().runs_created, 0u);
    if (reference.empty()) {
      reference = sink.data();
      EXPECT_NE(reference.find("\"event\":\"eta\""), std::string::npos);
    } else {
      EXPECT_EQ(sink.data(), reference) << "trace diverged";
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(EtaTraceTest, TraceOffByDefaultKeepsV3StreamShape) {
  // Merely attaching a model must not perturb existing byte-identical trace
  // contracts: without opting in, no eta event reaches the sink.
  Table t = Numbers(300);
  PhysicalPlan plan = SmallPlan(&t, 300);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  EtaModel model(DeterministicOptions(/*trace=*/false));
  MonitorOptions mo;
  mo.telemetry = &collector;
  mo.eta_model = &model;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne"}, std::move(mo));
  ProgressReport r = m.Run(60);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(sink.data().find("\"event\":\"eta\""), std::string::npos);
  // The report still gets its band — tracing and reporting are independent.
  EXPECT_TRUE(std::isfinite(r.eta_seconds));
}

// ---------------------------------------------------------------------------
// Calibration scorer
// ---------------------------------------------------------------------------

TEST(EtaCalibrationTest, CoverageBucketsAndJson) {
  EtaCalibration cal;
  auto sample = [](double progress, double lo, double mid, double hi,
                   double actual) {
    EtaCalibrationSample s;
    s.progress = progress;
    s.band.eta_s = mid;
    s.band.eta_lo_s = lo;
    s.band.eta_hi_s = hi;
    s.actual_remaining_s = actual;
    return s;
  };
  cal.Add(sample(0.05, 1.0, 2.0, 3.0, 2.5));   // decile 0, covered
  cal.Add(sample(0.08, 1.0, 2.0, 3.0, 5.0));   // decile 0, missed
  cal.Add(sample(0.95, 0.1, 0.2, 0.4, 0.15));  // decile 9, covered
  cal.Add(sample(1.0, 0.0, 0.0, 0.1, 0.0));    // progress 1.0 clamps to 9
  EtaCalibrationSample inf_band;
  inf_band.progress = 0.5;
  cal.Add(inf_band);  // unknowable: counted, never covered

  EXPECT_EQ(cal.decile(0).samples, 2u);
  EXPECT_DOUBLE_EQ(cal.decile(0).coverage(), 0.5);
  EXPECT_EQ(cal.decile(9).samples, 2u);
  EXPECT_DOUBLE_EQ(cal.decile(9).coverage(), 1.0);
  EXPECT_EQ(cal.infinite_bands(), 1u);
  EXPECT_EQ(cal.Overall().samples, 4u);
  EXPECT_DOUBLE_EQ(cal.Overall().coverage(), 0.75);
  EXPECT_NEAR(cal.decile(0).mean_abs_err_s(), (0.5 + 3.0) / 2.0, 1e-12);

  std::string json = cal.ToJson();
  EXPECT_NE(json.find("\"claimed\":0.9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"overall\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deciles\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"infinite_bands\":1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Rendering + Prometheus exposition
// ---------------------------------------------------------------------------

TEST(EtaRenderingTest, InfiniteBandRendersDashesLikeRemaining) {
  EXPECT_EQ(FormatRemainingSeconds(kInf), "--");
  EXPECT_EQ(FormatRemainingSeconds(-kInf), "--");
  EXPECT_EQ(FormatRemainingSeconds(std::nan("")), "--");
  EXPECT_EQ(FormatRemainingSeconds(1.5), "1.5s");
  EXPECT_EQ(FormatRemainingSeconds(0.25), "250ms");

  Table t = Numbers(10);
  PhysicalPlan plan = SmallPlan(&t, 10);
  ExecContext ctx;
  ctx.Reset(plan.num_nodes());
  ExplainAnalyzeOptions opts;
  opts.show_eta = true;  // bands default to +inf: pre-first-checkpoint state
  std::string out = ExplainAnalyze(plan, ctx, opts);
  EXPECT_NE(out.find("eta=-- band=[--,--]"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;

  opts.eta_seconds = 2.0;
  opts.eta_lo_seconds = 1.5;
  opts.eta_hi_seconds = 3.5;
  out = ExplainAnalyze(plan, ctx, opts);
  EXPECT_NE(out.find("eta=2.0s band=[1.5s,3.5s]"), std::string::npos) << out;
}

TEST(MetricsRegistryTest, DumpPrometheusSanitizesAndOrdersDeterministically) {
  MetricsRegistry reg;
  reg.IncrementCounter("queries.done", 3);  // '.' must sanitize to '_'
  reg.IncrementCounter("aborted", 1);
  reg.histogram("query_wall_ns")->Record(1000.0);
  reg.histogram("query_wall_ns")->Record(3000.0);
  std::string text = reg.DumpPrometheus();
  // Counters first (sorted), then histograms as summaries.
  EXPECT_NE(text.find("# TYPE qprog_aborted counter\nqprog_aborted 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("# TYPE qprog_queries_done counter\nqprog_queries_done 3\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE qprog_query_wall_ns summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("qprog_query_wall_ns_count 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("qprog_query_wall_ns_sum 4000"), std::string::npos)
      << text;
  EXPECT_LT(text.find("qprog_aborted"), text.find("qprog_queries_done"));
  // Deterministic: a second dump is byte-identical.
  EXPECT_EQ(reg.DumpPrometheus(), text);
}

}  // namespace
}  // namespace qprog
