// Multi-tenant server layer: memory-governor arbitration (grants, revocation
// order, floors, cancellation), admission-controller predictions and
// decisions (deterministic under a fixed seed), template fingerprints, and
// QueryServer end-to-end behavior — shed queries with sanitized reports,
// per-tenant isolation, cancellation of queued and running work, fleet
// reporting, graceful drain, and the Curr <= LB <= UB invariant under a
// mid-run soft-budget revocation.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "exec/spill.h"
#include "server/admission.h"
#include "server/memory_governor.h"
#include "server/query_server.h"
#include "server/tenant.h"
#include "sql/fingerprint.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "stats/table_stats.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;

// ---------------------------------------------------------------------------
// MemoryGovernor

TEST(MemoryGovernorTest, GrantsWithinPoolAndInstallsSoftBudget) {
  GovernorOptions opts;
  opts.pool_rows = 1000;
  opts.min_grant_rows = 10;
  MemoryGovernor gov(opts);
  QueryGuard guard;
  MemoryGovernor::Grant g = gov.Acquire(&guard, 300);
  EXPECT_EQ(g.rows, 300u);
  EXPECT_EQ(guard.max_buffered_rows(), 300u);
  EXPECT_EQ(gov.granted_rows(), 300u);
  EXPECT_EQ(gov.free_rows(), 700u);
  gov.Release(g);
  EXPECT_EQ(gov.granted_rows(), 0u);
  EXPECT_EQ(gov.active_grants(), 0u);
}

TEST(MemoryGovernorTest, ClampsAskToPoolAndFloor) {
  GovernorOptions opts;
  opts.pool_rows = 100;
  opts.min_grant_rows = 16;
  MemoryGovernor gov(opts);
  QueryGuard big, small;
  MemoryGovernor::Grant g1 = gov.Acquire(&big, 5000);
  EXPECT_EQ(g1.rows, 100u);  // clamped to the pool
  gov.Release(g1);
  MemoryGovernor::Grant g2 = gov.Acquire(&small, 1);
  EXPECT_EQ(g2.rows, 16u);  // raised to the floor
  gov.Release(g2);
}

TEST(MemoryGovernorTest, RevokesHeadroomLargestFirst) {
  GovernorOptions opts;
  opts.pool_rows = 100;
  opts.min_grant_rows = 10;
  MemoryGovernor gov(opts);
  QueryGuard a, b, c;
  MemoryGovernor::Grant ga = gov.Acquire(&a, 60);
  MemoryGovernor::Grant gb = gov.Acquire(&b, 30);
  EXPECT_EQ(gov.free_rows(), 10u);
  // c wants 50: free 10, needs 40 more. a (60, the largest) is shrunk first
  // — it has 50 of headroom, so b is untouched.
  MemoryGovernor::Grant gc = gov.Acquire(&c, 50);
  EXPECT_EQ(gc.rows, 50u);
  EXPECT_EQ(a.max_buffered_rows(), 20u);   // 60 - 40 revoked
  EXPECT_EQ(b.max_buffered_rows(), 30u);   // untouched
  EXPECT_EQ(c.max_buffered_rows(), 50u);
  EXPECT_EQ(gov.revocations(), 1u);
  EXPECT_EQ(gov.granted_rows(), 100u);
  gov.Release(ga);
  gov.Release(gb);
  gov.Release(gc);
  EXPECT_EQ(gov.granted_rows(), 0u);
}

TEST(MemoryGovernorTest, RevocationStopsAtTheFloor) {
  GovernorOptions opts;
  opts.pool_rows = 100;
  opts.min_grant_rows = 30;
  MemoryGovernor gov(opts);
  QueryGuard a;
  MemoryGovernor::Grant ga = gov.Acquire(&a, 100);
  // Only 70 of headroom exists above a's floor; a newcomer asking for the
  // whole pool gets what revocation can produce, not its full ask.
  QueryGuard b;
  MemoryGovernor::Grant gb = gov.Acquire(&b, 100);
  EXPECT_EQ(a.max_buffered_rows(), 30u);
  EXPECT_EQ(gb.rows, 70u);
  gov.Release(ga);
  gov.Release(gb);
}

TEST(MemoryGovernorTest, WaitsAtFullFloorsUntilRelease) {
  GovernorOptions opts;
  opts.pool_rows = 100;
  opts.min_grant_rows = 60;
  MemoryGovernor gov(opts);
  QueryGuard a;
  MemoryGovernor::Grant ga = gov.Acquire(&a, 100);
  // Revocation can only reach 100 - 60 = 40 < the 60-row floor, so b must
  // wait for a's release.
  QueryGuard b;
  std::atomic<bool> granted{false};
  MemoryGovernor::Grant gb;
  std::thread waiter([&] {
    gb = gov.Acquire(&b, 60);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  gov.Release(ga);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(gb.rows, 60u);
  gov.Release(gb);
}

TEST(MemoryGovernorTest, CancelledWaiterReturnsZeroGrant) {
  GovernorOptions opts;
  opts.pool_rows = 100;
  opts.min_grant_rows = 100;
  MemoryGovernor gov(opts);
  QueryGuard a;
  MemoryGovernor::Grant ga = gov.Acquire(&a, 100);
  QueryGuard b;
  MemoryGovernor::Grant gb;
  std::thread waiter([&] { gb = gov.Acquire(&b, 100); });
  b.RequestCancel();
  gov.Poke();
  waiter.join();
  EXPECT_EQ(gb.id, 0u);
  EXPECT_EQ(gb.rows, 0u);
  gov.Release(gb);  // zero grant: no-op
  gov.Release(ga);
}

TEST(MemoryGovernorTest, UnlimitedPoolPassesAsksThrough) {
  MemoryGovernor gov(GovernorOptions{});  // pool = kNoLimit
  QueryGuard guard;
  MemoryGovernor::Grant g = gov.Acquire(&guard, QueryGuard::kNoLimit);
  EXPECT_EQ(guard.max_buffered_rows(), QueryGuard::kNoLimit);
  gov.Release(g);
  MemoryGovernor::Grant g2 = gov.Acquire(&guard, 40);
  EXPECT_EQ(guard.max_buffered_rows(), 40u);
  gov.Release(g2);
}

// ---------------------------------------------------------------------------
// Template fingerprints (the admission predictor's key)

TEST(FingerprintTest, LiteralsDoNotChangeTheTemplate) {
  uint64_t a = sql::TemplateFingerprint("SELECT v FROM t WHERE k = 5");
  uint64_t b = sql::TemplateFingerprint("SELECT v FROM t WHERE k = 99");
  uint64_t c = sql::TemplateFingerprint("select V  from T where K = 'x'");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);  // case and whitespace normalize too
  uint64_t d = sql::TemplateFingerprint("SELECT v FROM t WHERE k > 5");
  EXPECT_NE(a, d);  // shape differs
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionTest, ColdPredictionIsDeterministicPerSeed) {
  AdmissionOptions opts;
  opts.seed = 7;
  opts.fallback_peak_rows = 256;
  AdmissionController ctrl(opts, nullptr);
  AdmissionController again(opts, nullptr);
  uint64_t fp = sql::TemplateFingerprint("SELECT v FROM t");
  bool from_prior = true;
  uint64_t p = ctrl.PredictPeakRows(fp, &from_prior);
  EXPECT_FALSE(from_prior);
  EXPECT_EQ(p, again.PredictPeakRows(fp));  // fixed (seed, template)
  EXPECT_GE(p, opts.fallback_peak_rows / 2);
  EXPECT_LT(p, opts.fallback_peak_rows + opts.fallback_peak_rows / 2);
  AdmissionOptions other = opts;
  other.seed = 8;
  AdmissionController reseeded(other, nullptr);
  // Different seed, (almost surely) different prior — no herd prediction.
  EXPECT_NE(p, reseeded.PredictPeakRows(fp));
}

TEST(AdmissionTest, PriorPredictionUsesMaxPeakWithHeadroom) {
  WorkloadStatsRegistry priors;
  uint64_t fp = sql::TemplateFingerprint("SELECT v FROM t WHERE k = 1");
  WorkloadObservation obs;
  obs.completed = true;
  obs.peak_buffered_rows = 100;
  priors.Record(fp, obs);
  obs.peak_buffered_rows = 400;
  priors.Record(fp, obs);
  AdmissionOptions opts;
  opts.headroom = 1.25;
  AdmissionController ctrl(opts, &priors);
  bool from_prior = false;
  EXPECT_EQ(ctrl.PredictPeakRows(fp, &from_prior), 500u);  // 400 * 1.25
  EXPECT_TRUE(from_prior);
}

TEST(AdmissionTest, DecisionMatrix) {
  AdmissionOptions opts;
  opts.fallback_peak_rows = 100;
  opts.max_queue = 2;
  opts.retry_after_base_ms = 10;
  AdmissionController ctrl(opts, nullptr);
  uint64_t fp = sql::TemplateFingerprint("SELECT v FROM t");
  TenantQuota quota;

  AdmissionController::Load load;
  load.pool_rows = QueryGuard::kNoLimit;
  AdmissionDecision d = ctrl.Decide(fp, quota, load);
  EXPECT_EQ(d.action, AdmissionAction::kAdmit);

  // Anything already queued forces later arrivals to queue behind it.
  load.queued = 1;
  d = ctrl.Decide(fp, quota, load);
  EXPECT_EQ(d.action, AdmissionAction::kQueue);
  EXPECT_EQ(d.queue_position, 1u);

  // Full queue sheds with a backlog-scaled retry hint.
  load.queued = 2;
  load.running = 3;
  d = ctrl.Decide(fp, quota, load);
  EXPECT_EQ(d.action, AdmissionAction::kShed);
  EXPECT_STREQ(d.reason, "queue-full");
  EXPECT_EQ(d.retry_after_ms, 10u * (2 + 3 + 1));

  // Tenant quota beats global state: shed even with an empty queue.
  quota.max_concurrent = 1;
  load = AdmissionController::Load{};
  load.pool_rows = QueryGuard::kNoLimit;
  load.tenant_inflight = 1;
  d = ctrl.Decide(fp, quota, load);
  EXPECT_EQ(d.action, AdmissionAction::kShed);
  EXPECT_STREQ(d.reason, "tenant-quota");

  // A full predicted-row ledger queues (the governor will make room).
  quota = TenantQuota{};
  load = AdmissionController::Load{};
  load.pool_rows = 100;
  load.inflight_predicted_rows = 90;
  d = ctrl.Decide(fp, quota, load);
  EXPECT_EQ(d.action, AdmissionAction::kQueue);
}

// ---------------------------------------------------------------------------
// QueryServer end-to-end

class QueryServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    std::vector<Row> rows;
    // Group keys arrive gradually (one new group every 40 rows), so blocking
    // operators keep charging new buffered rows throughout the scan — a
    // mid-run budget revocation then has later charges to bite on.
    for (int64_t i = 0; i < 2000; ++i) {
      rows.push_back({I(i / 40), I(i)});
    }
    Table t = testutil::MakeTable("t", {"k", "v"}, std::move(rows));
    QPROG_CHECK(db_->AddTable(std::move(t)).ok());
    HistogramStatisticsGenerator gen(8);
    db_->SetStats("t", gen.Generate(*db_->GetTable("t")));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* QueryServerTest::db_ = nullptr;

const char kGroupQuery[] = "SELECT k, count(*), sum(v) FROM t GROUP BY k";

TEST_F(QueryServerTest, MonitoredQueryCompletesAndFeedsPriors) {
  ServerOptions opts;
  opts.sessions = 2;
  opts.checkpoint_interval = 100;
  opts.estimators = {"dne", "safe"};
  QueryServer server(db_, opts);
  uint64_t ticket = server.Submit("acme", kGroupQuery);
  QueryResult r = server.Wait(ticket);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_TRUE(r.report.completed());
  EXPECT_EQ(r.report.root_rows, 50u);
  EXPECT_FALSE(r.report.checkpoints.empty());
  EXPECT_EQ(r.admission.action, AdmissionAction::kAdmit);
  EXPECT_FALSE(r.admission.predicted_from_prior);  // cold template
  EXPECT_EQ(server.workload_stats().num_templates(), 1u);

  // The same template again: predicted from the recorded prior now.
  uint64_t second = server.Submit("acme", kGroupQuery);
  QueryResult r2 = server.Wait(second);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_TRUE(r2.admission.predicted_from_prior);
  EXPECT_GE(r2.admission.predicted_peak_rows, r.report.peak_buffered_rows);
}

TEST_F(QueryServerTest, PlainRowsMatchDirectExecution) {
  StatusOr<std::vector<Row>> direct = sql::ExecuteSql(kGroupQuery, *db_);
  ASSERT_TRUE(direct.ok());
  ServerOptions opts;
  opts.sessions = 2;
  QueryServer server(db_, opts);
  SubmitOptions so;
  so.monitored = false;
  QueryResult r = server.Wait(server.Submit("acme", kGroupQuery, so));
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(testutil::RowsToString(testutil::Sorted(r.rows)),
            testutil::RowsToString(testutil::Sorted(direct.value())));
}

TEST_F(QueryServerTest, ShedQueryGetsSanitizedReportAndRetryHint) {
  ServerOptions opts;
  opts.sessions = 1;
  QueryServer server(db_, opts);
  TenantQuota strict;
  strict.max_concurrent = 0;  // everything this tenant submits is shed
  server.RegisterTenant("noisy", strict);

  uint64_t ticket = server.Submit("noisy", kGroupQuery);
  QueryResult r = server.Wait(ticket);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.admission.action, AdmissionAction::kShed);
  EXPECT_STREQ(r.admission.reason, "tenant-quota");
  EXPECT_GT(r.admission.retry_after_ms, 0u);
  // Sanitized partial report: estimator names + termination + status only.
  EXPECT_EQ(r.report.names, (std::vector<std::string>{"dne", "safe"}));
  EXPECT_TRUE(r.report.checkpoints.empty());
  EXPECT_EQ(r.report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(r.report.total_work, 0u);
  EXPECT_EQ(r.report.root_rows, 0u);
  EXPECT_EQ(server.shed_total(), 1u);

  // The other tenant is untouched by the noisy tenant's quota.
  QueryResult ok = server.Wait(server.Submit("quiet", kGroupQuery));
  EXPECT_TRUE(ok.status.ok()) << ok.status;
}

TEST_F(QueryServerTest, PerQueryEstimatorSpecsReachTheReport) {
  ServerOptions opts;
  opts.sessions = 1;
  opts.checkpoint_interval = 100;
  QueryServer server(db_, opts);
  SubmitOptions so;
  so.estimators = {"hybrid:2.5", "window:32", "dne_bounded"};
  QueryResult r = server.Wait(server.Submit("acme", kGroupQuery, so));
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.report.names,
            (std::vector<std::string>{"hybrid", "window", "dne_bounded"}));

  // A malformed spec fails the query, not the server.
  SubmitOptions bad;
  bad.estimators = {"hybrid:not-a-number"};
  QueryResult rb = server.Wait(server.Submit("acme", kGroupQuery, bad));
  EXPECT_EQ(rb.status.code(), StatusCode::kInvalidArgument);
  QueryResult after = server.Wait(server.Submit("acme", kGroupQuery));
  EXPECT_TRUE(after.status.ok()) << after.status;
}

TEST_F(QueryServerTest, CancelsQueuedAndRunningQueries) {
  ServerOptions opts;
  opts.sessions = 1;
  opts.checkpoint_interval = 64;
  QueryServer server(db_, opts);

  // A latency fault makes the running query deterministically slow, holding
  // the single session while the rest of the batch sits queued.
  FaultInjector slow(1);
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.latency_spins = 20000;
  slow.Arm(std::move(spec));
  SubmitOptions blocker;
  blocker.fault_injector = &slow;
  uint64_t running = server.Submit("acme", kGroupQuery, blocker);

  std::vector<uint64_t> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(server.Submit("acme", kGroupQuery));
  }
  for (uint64_t id : queued) server.Cancel(id);
  server.Cancel(running);

  QueryResult r = server.Wait(running);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.report.termination, TerminationReason::kCancelled);
  for (uint64_t id : queued) {
    QueryResult q = server.Wait(id);
    EXPECT_EQ(q.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(q.report.checkpoints.empty()) << "queued cancel never ran";
  }
}

TEST_F(QueryServerTest, FleetReportTracksQueueAndProgress) {
  ServerOptions opts;
  opts.sessions = 1;
  opts.checkpoint_interval = 64;
  QueryServer server(db_, opts);

  FaultInjector slow(1);
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.latency_spins = 20000;
  slow.Arm(std::move(spec));
  SubmitOptions blocker;
  blocker.fault_injector = &slow;
  uint64_t t1 = server.Submit("acme", kGroupQuery, blocker);
  uint64_t t2 = server.Submit("acme", kGroupQuery);
  uint64_t t3 = server.Submit("beta", kGroupQuery);

  // Wait until t1 is observably running and has checkpointed.
  FleetReport fleet;
  for (int spins = 0; spins < 10000; ++spins) {
    fleet = server.Fleet();
    if (fleet.running == 1 && fleet.queries.size() == 3 &&
        fleet.queries[0].work > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(fleet.queries.size(), 3u);
  EXPECT_EQ(fleet.sessions, 1u);
  EXPECT_EQ(fleet.queries[0].ticket, t1);
  EXPECT_EQ(fleet.queries[0].state, FleetQueryInfo::State::kRunning);
  EXPECT_GT(fleet.queries[0].work, 0u);
  EXPECT_EQ(fleet.queries[0].estimator_names,
            (std::vector<std::string>{"dne", "safe"}));
  EXPECT_EQ(fleet.queries[1].ticket, t2);
  EXPECT_EQ(fleet.queries[1].state, FleetQueryInfo::State::kQueued);
  EXPECT_EQ(fleet.queries[1].queue_position, 0u);
  EXPECT_EQ(fleet.queries[2].state, FleetQueryInfo::State::kQueued);
  EXPECT_EQ(fleet.queries[2].queue_position, 1u);
  EXPECT_EQ(fleet.queued, 2u);

  server.Wait(t1);
  server.Wait(t2);
  server.Wait(t3);
  fleet = server.Fleet();
  EXPECT_EQ(fleet.done, 3u);
  EXPECT_EQ(fleet.queued, 0u);
  EXPECT_EQ(fleet.running, 0u);
  for (const FleetQueryInfo& q : fleet.queries) {
    EXPECT_EQ(q.state, FleetQueryInfo::State::kDone);
    EXPECT_TRUE(q.status.ok()) << q.status;
  }
}

TEST_F(QueryServerTest, DrainFinishesAcceptedWorkAndRejectsNew) {
  ServerOptions opts;
  opts.sessions = 2;
  QueryServer server(db_, opts);
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(server.Submit("acme", kGroupQuery));
  }
  server.Shutdown();
  for (uint64_t id : tickets) {
    QueryResult r = server.Wait(id);
    EXPECT_TRUE(r.status.ok()) << r.status;  // accepted work finished
  }
  QueryResult late = server.Wait(server.Submit("acme", kGroupQuery));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
}

TEST_F(QueryServerTest, DeterministicAdmissionSequenceUnderFixedSeed) {
  // The same submission burst against two identically-seeded servers must
  // produce the same admission actions and predictions, whatever the session
  // threads are doing concurrently.
  const char* queries[] = {
      "SELECT k, count(*) FROM t GROUP BY k",
      "SELECT sum(v) FROM t",
      "SELECT v FROM t WHERE k = 3",
      "SELECT k, count(*) FROM t GROUP BY k",  // repeat of template 0
      "SELECT max(v), min(v) FROM t GROUP BY k",
      "SELECT count(*) FROM t",
  };
  auto run_burst = [&](std::vector<AdmissionDecision>* out) {
    ServerOptions opts;
    opts.sessions = 2;
    opts.admission.seed = 42;
    opts.admission.max_queue = 3;
    opts.governor.pool_rows = 400;
    opts.governor.min_grant_rows = 16;
    TenantQuota quota;
    quota.max_concurrent = 4;
    QueryServer server(db_, opts);
    server.RegisterTenant("acme", quota);
    // Pin both session threads with slow blockers so no burst query starts
    // or finishes mid-burst: every admission decision then depends only on
    // the submission sequence, making the run-to-run comparison exact.
    FaultInjector slow1(1), slow2(2);
    for (FaultInjector* fi : {&slow1, &slow2}) {
      FaultSpec spec;
      spec.site = faults::kSeqScanNext;
      spec.latency_spins = 20000;
      fi->Arm(std::move(spec));
    }
    SubmitOptions b1, b2;
    b1.fault_injector = &slow1;
    b2.fault_injector = &slow2;
    uint64_t blocker1 = server.Submit("blk", kGroupQuery, b1);
    uint64_t blocker2 = server.Submit("blk", kGroupQuery, b2);
    for (int spins = 0; spins < 10000 && server.Fleet().running < 2;
         ++spins) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ASSERT_EQ(server.Fleet().running, 2u);
    std::vector<uint64_t> tickets;
    for (const char* q : queries) tickets.push_back(server.Submit("acme", q));
    server.Wait(blocker1);
    server.Wait(blocker2);
    for (uint64_t id : tickets) out->push_back(server.Wait(id).admission);
  };
  std::vector<AdmissionDecision> first, second;
  run_burst(&first);
  run_burst(&second);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].action, second[i].action) << "query " << i;
    EXPECT_EQ(first[i].predicted_peak_rows, second[i].predicted_peak_rows)
        << "query " << i;
    EXPECT_EQ(first[i].queue_position, second[i].queue_position)
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Revocation invariant: shrinking a victim's soft budget mid-run (exactly
// what the governor does to make room) changes when it spills, never its
// result or the Curr <= LB <= UB invariant.

TEST_F(QueryServerTest, MidRunRevocationKeepsBoundsAndResult) {
  StatusOr<std::vector<Row>> baseline = sql::ExecuteSql(kGroupQuery, *db_);
  ASSERT_TRUE(baseline.ok());

  QueryGuard guard;
  guard.set_max_buffered_rows(1000);
  SpillManager spill;
  sql::SessionOptions so;
  so.guard = &guard;
  so.spill_manager = &spill;
  so.checkpoint_interval = 64;
  so.estimators = {"dne", "safe"};
  sql::SqlSession session(db_, so);
  sql::QueryOptions qo;
  bool revoked = false;
  qo.checkpoint_listener = [&](const Checkpoint& cp) {
    if (!revoked && cp.work >= 256) {
      guard.set_max_buffered_rows(4);  // the governor's revocation path
      revoked = true;
    }
  };
  StatusOr<ProgressReport> report = session.ExecuteMonitored(kGroupQuery, qo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->completed()) << report->status;
  EXPECT_TRUE(revoked);
  EXPECT_GT(report->spill_work, 0u) << "revocation did not force a spill";
  EXPECT_EQ(report->root_rows, baseline->size());
  for (const Checkpoint& cp : report->checkpoints) {
    EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
    EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
    for (double e : cp.estimates) {
      EXPECT_FALSE(std::isnan(e));
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_TRUE(spill.live_files().empty());
}

// ---------------------------------------------------------------------------
// WorkloadStatsRegistry under concurrency (run under TSan in CI)

TEST(WorkloadStatsConcurrencyTest, SnapshotIsConsistentUnderConcurrentFeedback) {
  // Sessions record feedback while the admission path snapshots: every
  // Snapshot() must observe internally consistent aggregates (no torn
  // WorkloadStats), and the final state must contain every record.
  WorkloadStatsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 500;
  constexpr uint64_t kTemplates = 8;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        WorkloadObservation obs;
        obs.completed = (i % 3) != 0;
        obs.work = 100;
        obs.peak_buffered_rows = 10;
        obs.wall_ns = 1000;
        registry.Record(static_cast<uint64_t>(w * kRecordsPerWriter + i) %
                            kTemplates,
                        obs);
      }
    });
  }
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<WorkloadStatsRegistry::SnapshotEntry> snap =
          registry.Snapshot();
      uint64_t prev_fp = 0;
      bool first = true;
      for (const auto& entry : snap) {
        // Sorted, and every aggregate self-consistent: a torn read would
        // break runs >= completed_runs or the fixed per-record figures.
        if (!first) EXPECT_GT(entry.fingerprint, prev_fp);
        first = false;
        prev_fp = entry.fingerprint;
        EXPECT_GE(entry.stats.runs, entry.stats.completed_runs);
        EXPECT_EQ(entry.stats.total_work, entry.stats.runs * 100);
        EXPECT_EQ(entry.stats.total_peak_buffered_rows,
                  entry.stats.runs * 10);
      }
      registry.Lookup(0);  // concurrent point reads too
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  std::vector<WorkloadStatsRegistry::SnapshotEntry> final_snap =
      registry.Snapshot();
  ASSERT_EQ(final_snap.size(), kTemplates);
  uint64_t total_runs = 0;
  for (const auto& entry : final_snap) total_runs += entry.stats.runs;
  EXPECT_EQ(total_runs, static_cast<uint64_t>(kWriters) * kRecordsPerWriter);
}

// ---------------------------------------------------------------------------
// Fleet ETA + metrics exposition

TEST_F(QueryServerTest, FleetCarriesEtaBandsMetricsAndDrainHint) {
  ServerOptions opts;
  opts.sessions = 1;
  opts.checkpoint_interval = 64;
  QueryServer server(db_, opts);

  FaultInjector slow(1);
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.latency_spins = 20000;
  slow.Arm(std::move(spec));
  SubmitOptions blocker;
  blocker.fault_injector = &slow;
  uint64_t t1 = server.Submit("acme", kGroupQuery, blocker);
  uint64_t t2 = server.Submit("acme", kGroupQuery);

  // Wait until t1 is running with a checkpointed (finite) ETA band.
  FleetReport fleet;
  bool saw_band = false;
  for (int spins = 0; spins < 10000 && !saw_band; ++spins) {
    fleet = server.Fleet();
    for (const FleetQueryInfo& q : fleet.queries) {
      if (q.state == FleetQueryInfo::State::kRunning &&
          std::isfinite(q.eta_seconds)) {
        saw_band = true;
        // The fleet mirror preserves the sanitized invariant.
        EXPECT_GE(q.eta_lo_seconds, 0.0);
        EXPECT_LE(q.eta_lo_seconds, q.eta_seconds);
        EXPECT_LE(q.eta_seconds, q.eta_hi_seconds);
        // A finite running band feeds the drain projection.
        EXPECT_GE(fleet.predicted_drain_seconds, q.eta_hi_seconds);
      }
    }
    if (!saw_band) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_TRUE(saw_band) << "no running query ever exposed a finite ETA band";

  server.Wait(t1);
  server.Wait(t2);
  fleet = server.Fleet();
  // Done queries drop out of the projection; an idle fleet drains in ~0.
  EXPECT_EQ(fleet.predicted_drain_seconds, 0.0);
  // The Prometheus page reflects the server's own counters.
  EXPECT_NE(fleet.metrics_text.find(
                "# TYPE qprog_queries_submitted counter\n"
                "qprog_queries_submitted 2\n"),
            std::string::npos)
      << fleet.metrics_text;
  EXPECT_NE(fleet.metrics_text.find("qprog_queries_done 2"),
            std::string::npos)
      << fleet.metrics_text;
  EXPECT_NE(fleet.metrics_text.find("qprog_query_wall_ns_count 2"),
            std::string::npos)
      << fleet.metrics_text;
}

}  // namespace
}  // namespace qprog
