#include <gtest/gtest.h>

#include "expr/expr.h"
#include "tests/test_util.h"
#include "types/date.h"

namespace qprog {
namespace {

using testutil::B;
using testutil::D;
using testutil::I;
using testutil::N;
using testutil::S;

Row EmptyRow() { return {}; }

TEST(ExprTest, ColumnRefAndLiteral) {
  Row row = {I(7), S("x")};
  EXPECT_EQ(eb::Col(0)->Eval(row).int64_value(), 7);
  EXPECT_EQ(eb::Col(1)->Eval(row).string_value(), "x");
  EXPECT_EQ(eb::Int(3)->Eval(row).int64_value(), 3);
  EXPECT_EQ(eb::Dbl(1.5)->Eval(row).double_value(), 1.5);
  EXPECT_EQ(eb::Str("q")->Eval(row).string_value(), "q");
}

TEST(ExprTest, Comparisons) {
  Row row = {I(5)};
  EXPECT_TRUE(eb::Eq(eb::Col(0), eb::Int(5))->Eval(row).bool_value());
  EXPECT_FALSE(eb::Ne(eb::Col(0), eb::Int(5))->Eval(row).bool_value());
  EXPECT_TRUE(eb::Lt(eb::Col(0), eb::Int(6))->Eval(row).bool_value());
  EXPECT_TRUE(eb::Le(eb::Col(0), eb::Int(5))->Eval(row).bool_value());
  EXPECT_TRUE(eb::Gt(eb::Col(0), eb::Int(4))->Eval(row).bool_value());
  EXPECT_TRUE(eb::Ge(eb::Col(0), eb::Int(5))->Eval(row).bool_value());
}

TEST(ExprTest, ComparisonWithNullIsNull) {
  Row row = {N()};
  EXPECT_TRUE(eb::Eq(eb::Col(0), eb::Int(5))->Eval(row).is_null());
  EXPECT_TRUE(eb::Lt(eb::Int(1), eb::Col(0))->Eval(row).is_null());
}

TEST(ExprTest, Arithmetic) {
  Row row = {I(10), I(3)};
  EXPECT_EQ(eb::Add(eb::Col(0), eb::Col(1))->Eval(row).int64_value(), 13);
  EXPECT_EQ(eb::Sub(eb::Col(0), eb::Col(1))->Eval(row).int64_value(), 7);
  EXPECT_EQ(eb::Mul(eb::Col(0), eb::Col(1))->Eval(row).int64_value(), 30);
  // Division always yields double.
  EXPECT_NEAR(eb::Div(eb::Col(0), eb::Col(1))->Eval(row).double_value(),
              10.0 / 3.0, 1e-12);
}

TEST(ExprTest, MixedArithmeticIsDouble) {
  Row row = {I(2), D(0.5)};
  Value v = eb::Mul(eb::Col(0), eb::Col(1))->Eval(row);
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_EQ(v.double_value(), 1.0);
}

TEST(ExprTest, DivisionByZeroIsNull) {
  Row row = {I(1), I(0)};
  EXPECT_TRUE(eb::Div(eb::Col(0), eb::Col(1))->Eval(row).is_null());
}

TEST(ExprTest, ArithmeticWithNullIsNull) {
  Row row = {N(), I(2)};
  EXPECT_TRUE(eb::Add(eb::Col(0), eb::Col(1))->Eval(row).is_null());
}

TEST(ExprTest, KleeneAnd) {
  Row t = {B(true)}, f = {B(false)}, n = {N()};
  auto and_tc = [](Row r1v, Value c2) {
    std::vector<ExprPtr> ch;
    ch.push_back(eb::Col(0));
    ch.push_back(eb::Lit(c2));
    return AndExpr(std::move(ch)).Eval(r1v);
  };
  EXPECT_TRUE(and_tc(t, Value::Bool(true)).bool_value());
  EXPECT_FALSE(and_tc(t, Value::Bool(false)).bool_value());
  EXPECT_TRUE(and_tc(t, Value::Null()).is_null());
  EXPECT_FALSE(and_tc(f, Value::Null()).bool_value());  // false AND null = false
  EXPECT_TRUE(and_tc(n, Value::Bool(true)).is_null());
  EXPECT_FALSE(and_tc(n, Value::Bool(false)).bool_value());
}

TEST(ExprTest, KleeneOr) {
  Row f = {B(false)}, n = {N()};
  auto or_tc = [](Row r1v, Value c2) {
    std::vector<ExprPtr> ch;
    ch.push_back(eb::Col(0));
    ch.push_back(eb::Lit(c2));
    return OrExpr(std::move(ch)).Eval(r1v);
  };
  EXPECT_TRUE(or_tc(f, Value::Bool(true)).bool_value());
  EXPECT_FALSE(or_tc(f, Value::Bool(false)).bool_value());
  EXPECT_TRUE(or_tc(f, Value::Null()).is_null());
  EXPECT_TRUE(or_tc(n, Value::Bool(true)).bool_value());  // null OR true = true
  EXPECT_TRUE(or_tc(n, Value::Bool(false)).is_null());
}

TEST(ExprTest, NotExpr) {
  EXPECT_FALSE(eb::Not(eb::Lit(Value::Bool(true)))->Eval(EmptyRow()).bool_value());
  EXPECT_TRUE(eb::Not(eb::Lit(Value::Bool(false)))->Eval(EmptyRow()).bool_value());
  EXPECT_TRUE(eb::Not(eb::Lit(Value::Null()))->Eval(EmptyRow()).is_null());
}

TEST(ExprTest, LikeMatcher) {
  EXPECT_TRUE(LikeExpr::Matches("hello", "hello"));
  EXPECT_TRUE(LikeExpr::Matches("hello", "h%"));
  EXPECT_TRUE(LikeExpr::Matches("hello", "%llo"));
  EXPECT_TRUE(LikeExpr::Matches("hello", "%ell%"));
  EXPECT_TRUE(LikeExpr::Matches("hello", "h_llo"));
  EXPECT_FALSE(LikeExpr::Matches("hello", "h_y%"));
  EXPECT_TRUE(LikeExpr::Matches("", "%"));
  EXPECT_FALSE(LikeExpr::Matches("", "_"));
  EXPECT_TRUE(LikeExpr::Matches("abcabc", "%abc"));
  EXPECT_TRUE(LikeExpr::Matches("green metallic", "%green%"));
  EXPECT_FALSE(LikeExpr::Matches("gree", "%green%"));
  EXPECT_TRUE(LikeExpr::Matches("xxyxx", "%x_x%"));
  EXPECT_TRUE(LikeExpr::Matches("a", "%%%a%%"));
}

TEST(ExprTest, LikeAndNotLike) {
  Row row = {S("PROMO BRUSHED")};
  EXPECT_TRUE(eb::Like(eb::Col(0), "PROMO%")->Eval(row).bool_value());
  EXPECT_FALSE(eb::NotLike(eb::Col(0), "PROMO%")->Eval(row).bool_value());
  Row null_row = {N()};
  EXPECT_TRUE(eb::Like(eb::Col(0), "x%")->Eval(null_row).is_null());
}

TEST(ExprTest, InList) {
  Row row = {S("FRANCE")};
  std::vector<Value> list = {S("FRANCE"), S("GERMANY")};
  EXPECT_TRUE(eb::In(eb::Col(0), list)->Eval(row).bool_value());
  EXPECT_FALSE(eb::NotIn(eb::Col(0), list)->Eval(row).bool_value());
  Row miss = {S("KENYA")};
  EXPECT_FALSE(eb::In(eb::Col(0), list)->Eval(miss).bool_value());
  Row null_row = {N()};
  EXPECT_TRUE(eb::In(eb::Col(0), list)->Eval(null_row).is_null());
}

TEST(ExprTest, IsNull) {
  Row row = {N(), I(1)};
  EXPECT_TRUE(eb::IsNull(eb::Col(0))->Eval(row).bool_value());
  EXPECT_FALSE(eb::IsNull(eb::Col(1))->Eval(row).bool_value());
  EXPECT_FALSE(eb::IsNotNull(eb::Col(0))->Eval(row).bool_value());
  EXPECT_TRUE(eb::IsNotNull(eb::Col(1))->Eval(row).bool_value());
}

TEST(ExprTest, Between) {
  Row row = {I(5)};
  EXPECT_TRUE(eb::Between(eb::Col(0), eb::Int(5), eb::Int(10))
                  ->Eval(row)
                  .bool_value());
  EXPECT_TRUE(eb::Between(eb::Col(0), eb::Int(1), eb::Int(5))
                  ->Eval(row)
                  .bool_value());
  EXPECT_FALSE(eb::Between(eb::Col(0), eb::Int(6), eb::Int(10))
                   ->Eval(row)
                   .bool_value());
}

TEST(ExprTest, CaseExpr) {
  std::vector<CaseExpr::Branch> branches;
  branches.push_back({eb::Gt(eb::Col(0), eb::Int(10)), eb::Str("big")});
  branches.push_back({eb::Gt(eb::Col(0), eb::Int(5)), eb::Str("mid")});
  CaseExpr c(std::move(branches), eb::Str("small"));
  EXPECT_EQ(c.Eval({I(20)}).string_value(), "big");
  EXPECT_EQ(c.Eval({I(7)}).string_value(), "mid");
  EXPECT_EQ(c.Eval({I(1)}).string_value(), "small");
}

TEST(ExprTest, CaseWithoutElseIsNull) {
  std::vector<CaseExpr::Branch> branches;
  branches.push_back({eb::Gt(eb::Col(0), eb::Int(10)), eb::Str("big")});
  CaseExpr c(std::move(branches), nullptr);
  EXPECT_TRUE(c.Eval({I(1)}).is_null());
}

TEST(ExprTest, ExtractYear) {
  Row row = {testutil::Dt("1995-03-15")};
  EXPECT_EQ(eb::Year(eb::Col(0))->Eval(row).int64_value(), 1995);
  EXPECT_TRUE(eb::Year(eb::Col(0))->Eval({N()}).is_null());
}

TEST(ExprTest, Substring) {
  Row row = {S("13-555-7890")};
  EXPECT_EQ(eb::Substr(eb::Col(0), 1, 2)->Eval(row).string_value(), "13");
  EXPECT_EQ(eb::Substr(eb::Col(0), 4, 3)->Eval(row).string_value(), "555");
  EXPECT_EQ(eb::Substr(eb::Col(0), 100, 2)->Eval(row).string_value(), "");
}

TEST(ExprTest, DateLiteralAndComparison) {
  Row row = {testutil::Dt("1994-01-01")};
  EXPECT_TRUE(
      eb::Lt(eb::Col(0), eb::DateLit("1995-01-01"))->Eval(row).bool_value());
  EXPECT_FALSE(
      eb::Lt(eb::Col(0), eb::DateLit("1993-06-01"))->Eval(row).bool_value());
}

TEST(ExprTest, CloneIsDeep) {
  ExprPtr e = eb::And(eb::Gt(eb::Col(0), eb::Int(1)),
                      eb::Like(eb::Col(1), "x%"));
  ExprPtr c = e->Clone();
  Row row = {I(2), S("xyz")};
  EXPECT_TRUE(c->Eval(row).bool_value());
  EXPECT_EQ(e->ToString(), c->ToString());
}

TEST(ExprTest, ToStringRenders) {
  ExprPtr e = eb::Ge(eb::Col(0, "l_quantity"), eb::Int(24));
  EXPECT_EQ(e->ToString(), "(l_quantity >= 24)");
  EXPECT_EQ(eb::Str("x")->ToString(), "'x'");
  EXPECT_EQ(eb::DateLit("1995-01-01")->ToString(), "DATE '1995-01-01'");
  EXPECT_EQ(eb::Col(3)->ToString(), "$3");
}

}  // namespace
}  // namespace qprog
