// Shared helpers for qprog tests: compact table/row construction and
// result-set comparison.

#ifndef QPROG_TESTS_TEST_UTIL_H_
#define QPROG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "storage/table.h"
#include "types/date.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace testutil {

inline Value I(int64_t v) { return Value::Int64(v); }
inline Value D(double v) { return Value::Double(v); }
inline Value S(std::string v) { return Value::String(std::move(v)); }
inline Value B(bool v) { return Value::Bool(v); }
inline Value N() { return Value::Null(); }
inline Value Dt(const char* ymd) { return Value::Date(ParseDate(ymd).value()); }

/// Builds a table whose columns are all typed from the first row's values
/// (NULL-typed when the name list is longer than the first row, which is fine
/// for the dynamically typed engine).
inline Table MakeTable(std::string name, std::vector<std::string> columns,
                       std::vector<Row> rows) {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    TypeId type = TypeId::kNull;
    if (!rows.empty() && i < rows[0].size()) type = rows[0][i].type();
    fields.emplace_back(columns[i], type);
  }
  Table table(std::move(name), Schema(std::move(fields)));
  for (Row& row : rows) table.AppendRow(std::move(row));
  return table;
}

/// Sorts rows lexically by ToString for order-insensitive comparison.
inline std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return RowToString(a) < RowToString(b);
  });
  return rows;
}

inline std::string RowsToString(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    out += RowToString(r);
    out += "\n";
  }
  return out;
}

}  // namespace testutil
}  // namespace qprog

#endif  // QPROG_TESTS_TEST_UTIL_H_
