// TPC-H generator integrity and query-plan smoke/sanity tests.

#include <gtest/gtest.h>

#include <set>

#include "core/monitor.h"
#include "index/ordered_index.h"
#include "stats/table_stats.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace qprog {
namespace tpch {
namespace {

// One small database shared by all tests in this binary.
class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;  // ~3000 orders, ~12000 lineitems
    config.z = 2.0;
    Status s = GenerateTpch(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* TpchTest::db_ = nullptr;

TEST_F(TpchTest, AllTablesPresentWithExpectedCounts) {
  EXPECT_EQ(db_->GetTable("region")->num_rows(), 5u);
  EXPECT_EQ(db_->GetTable("nation")->num_rows(), 25u);
  EXPECT_EQ(db_->GetTable("supplier")->num_rows(), ExpectedSuppliers(0.002));
  EXPECT_EQ(db_->GetTable("part")->num_rows(), ExpectedParts(0.002));
  EXPECT_EQ(db_->GetTable("customer")->num_rows(), ExpectedCustomers(0.002));
  EXPECT_EQ(db_->GetTable("orders")->num_rows(), ExpectedOrders(0.002));
  EXPECT_EQ(db_->GetTable("partsupp")->num_rows(),
            ExpectedParts(0.002) * 4);
  uint64_t lines = db_->GetTable("lineitem")->num_rows();
  EXPECT_GE(lines, ExpectedOrders(0.002));      // >= 1 per order
  EXPECT_LE(lines, ExpectedOrders(0.002) * 7);  // <= 7 per order
}

TEST_F(TpchTest, ForeignKeysAreValid) {
  const Table* lineitem = db_->GetTable("lineitem");
  const uint64_t orders = db_->GetTable("orders")->num_rows();
  const uint64_t parts = db_->GetTable("part")->num_rows();
  const uint64_t supps = db_->GetTable("supplier")->num_rows();
  for (uint64_t i = 0; i < lineitem->num_rows(); i += 7) {
    int64_t ok = lineitem->at(i, l::kOrderkey).int64_value();
    int64_t pk = lineitem->at(i, l::kPartkey).int64_value();
    int64_t sk = lineitem->at(i, l::kSuppkey).int64_value();
    ASSERT_GE(ok, 1);
    ASSERT_LE(ok, static_cast<int64_t>(orders));
    ASSERT_GE(pk, 1);
    ASSERT_LE(pk, static_cast<int64_t>(parts));
    ASSERT_GE(sk, 1);
    ASSERT_LE(sk, static_cast<int64_t>(supps));
  }
  const Table* nation = db_->GetTable("nation");
  for (uint64_t i = 0; i < nation->num_rows(); ++i) {
    int64_t rk = nation->at(i, n::kRegionkey).int64_value();
    EXPECT_GE(rk, 0);
    EXPECT_LE(rk, 4);
  }
}

TEST_F(TpchTest, DateRelationshipsHold) {
  const Table* lineitem = db_->GetTable("lineitem");
  for (uint64_t i = 0; i < lineitem->num_rows(); i += 13) {
    int32_t ship = lineitem->at(i, l::kShipdate).date_value();
    int32_t receipt = lineitem->at(i, l::kReceiptdate).date_value();
    EXPECT_GT(receipt, ship);
  }
}

TEST_F(TpchTest, SkewProducesHotKeys) {
  // With z=2, the most frequent l_partkey should cover a large share.
  const Table* lineitem = db_->GetTable("lineitem");
  std::map<int64_t, uint64_t> counts;
  for (uint64_t i = 0; i < lineitem->num_rows(); ++i) {
    ++counts[lineitem->at(i, l::kPartkey).int64_value()];
  }
  uint64_t max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(static_cast<double>(max_count) /
                static_cast<double>(lineitem->num_rows()),
            0.3);
}

TEST_F(TpchTest, IndexesAndStatsCollected) {
  EXPECT_NE(db_->GetOrderedIndex("lineitem", "l_orderkey"), nullptr);
  EXPECT_NE(db_->GetOrderedIndex("orders", "o_orderkey"), nullptr);
  EXPECT_NE(db_->GetStats("lineitem"), nullptr);
  EXPECT_GT(db_->GetStats("lineitem")->num_columns(), 0u);
}

TEST_F(TpchTest, UniformGeneratorWhenZZero) {
  Database db;
  TpchConfig config;
  config.scale_factor = 0.001;
  config.z = 0.0;
  config.build_indexes = false;
  config.collect_stats = false;
  ASSERT_TRUE(GenerateTpch(config, &db).ok());
  EXPECT_EQ(db.GetTable("supplier")->num_rows(), ExpectedSuppliers(0.001));
}

TEST_F(TpchTest, GeneratorRejectsBadConfig) {
  Database db;
  TpchConfig config;
  config.scale_factor = 0;
  EXPECT_FALSE(GenerateTpch(config, &db).ok());
  config.scale_factor = 0.01;
  config.z = -1;
  EXPECT_FALSE(GenerateTpch(config, &db).ok());
}

TEST_F(TpchTest, BuildQueryRejectsUnknownNumbers) {
  EXPECT_FALSE(BuildQuery(0, *db_).ok());
  EXPECT_FALSE(BuildQuery(23, *db_).ok());
  EXPECT_EQ(AvailableQueries().size(), 22u);
}

class TpchQuerySmokeTest : public TpchTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(TpchQuerySmokeTest, ExecutesAndHasSaneMu) {
  int q = GetParam();
  auto plan = BuildQuery(q, *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), {"pmax", "safe"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(30);
  EXPECT_GT(report.total_work, 0u) << "Q" << q;
  // mu >= 1 by construction (every scanned leaf row is one getnext), and
  // single digits for all TPC-H plans (Table 2 tops out at 2.78).
  EXPECT_GE(report.mu, 1.0) << "Q" << q;
  EXPECT_LT(report.mu, 6.0) << "Q" << q;
  // pmax never under-reports progress (Property 4).
  int pmax = report.FindEstimator("pmax");
  for (const Checkpoint& c : report.checkpoints) {
    ASSERT_GE(c.estimates[pmax], c.true_progress - 1e-9) << "Q" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQuerySmokeTest,
                         ::testing::Range(1, 23));

TEST_F(TpchTest, Q1ReturnsSmallGroupCountAndQ6OneRow) {
  auto q1 = BuildQuery(1, *db_);
  ASSERT_TRUE(q1.ok());
  auto rows1 = CollectRows(&q1.value());
  EXPECT_GE(rows1.size(), 3u);
  EXPECT_LE(rows1.size(), 6u);

  auto q6 = BuildQuery(6, *db_);
  ASSERT_TRUE(q6.ok());
  auto rows6 = CollectRows(&q6.value());
  ASSERT_EQ(rows6.size(), 1u);
}

TEST_F(TpchTest, Q1MuMatchesPaperShape) {
  // Figure 3 / Table 2: mu just under 2 for Q1 (scan + ~98%-selective
  // filter + tiny aggregate).
  auto q1 = BuildQuery(1, *db_);
  ASSERT_TRUE(q1.ok());
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&q1.value(), {"dne"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(50);
  EXPECT_GT(report.mu, 1.8);
  EXPECT_LT(report.mu, 2.05);
  // And dne is nearly exact on Q1 (the paper's Figure 3).
  auto m = report.Metrics(0);
  EXPECT_LT(m.avg_abs_err, 0.02);
}

TEST_F(TpchTest, Q13CountsCustomersWithoutOrders) {
  auto q13 = BuildQuery(13, *db_);
  ASSERT_TRUE(q13.ok());
  auto rows = CollectRows(&q13.value());
  ASSERT_FALSE(rows.empty());
  // Total customers across the distribution equals the customer count.
  int64_t total = 0;
  for (const Row& r : rows) total += r[1].int64_value();
  EXPECT_EQ(total,
            static_cast<int64_t>(db_->GetTable("customer")->num_rows()));
}

}  // namespace
}  // namespace tpch
}  // namespace qprog
