// Join operator tests: each algorithm and join type is checked against a
// naive reference evaluator on randomized inputs, plus targeted edge cases.

#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "index/ordered_index.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::N;
using testutil::S;
using testutil::Sorted;

// Reference implementation of an equi-join on column 0 == column 0 with the
// "left" (first) table preserved per JoinType.
std::vector<Row> ReferenceJoin(const Table& left, const Table& right,
                               JoinType type) {
  std::vector<Row> out;
  for (uint64_t i = 0; i < left.num_rows(); ++i) {
    const Row& l = left.row(i);
    bool matched = false;
    for (uint64_t j = 0; j < right.num_rows(); ++j) {
      const Row& r = right.row(j);
      if (l[0].is_null() || r[0].is_null()) continue;
      if (l[0].Compare(r[0]) != 0) continue;
      matched = true;
      if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
        Row joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        out.push_back(std::move(joined));
      }
    }
    if (type == JoinType::kLeftSemi && matched) out.push_back(l);
    if (type == JoinType::kLeftAnti && !matched) out.push_back(l);
    if (type == JoinType::kLeftOuter && !matched) {
      Row joined = l;
      for (size_t c = 0; c < right.schema().num_fields(); ++c) {
        joined.push_back(Value::Null());
      }
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Table RandomTable(const std::string& name, int rows, int64_t domain,
                  uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    Value key = (with_nulls && rng.Bernoulli(0.1))
                    ? Value::Null()
                    : I(rng.UniformInt(0, domain - 1));
    data.push_back({key, I(i)});
  }
  return testutil::MakeTable(name, {"k", "tag"}, std::move(data));
}

// Builds each join implementation for left ⋈ right on k = k.
enum class Algo { kNL, kINL, kHash, kMerge };

PhysicalPlan BuildJoinPlan(Algo algo, const Table* left, const Table* right,
                           const OrderedIndex* right_idx, JoinType type) {
  auto lscan = std::make_unique<SeqScan>(left);
  auto rscan = std::make_unique<SeqScan>(right);
  switch (algo) {
    case Algo::kNL: {
      // Predicate over concatenated (left ++ right): k columns are 0 and 2.
      auto join = std::make_unique<NestedLoopsJoin>(
          std::move(lscan), std::move(rscan),
          eb::Eq(eb::Col(0, "l.k"), eb::Col(2, "r.k")), type);
      return PhysicalPlan(std::move(join));
    }
    case Algo::kINL: {
      auto seek = std::make_unique<IndexSeek>(right_idx);
      auto join = std::make_unique<IndexNestedLoopsJoin>(
          std::move(lscan), std::move(seek), eb::Col(0, "l.k"), type);
      return PhysicalPlan(std::move(join));
    }
    case Algo::kHash: {
      std::vector<ExprPtr> pk, bk;
      pk.push_back(eb::Col(0, "l.k"));
      bk.push_back(eb::Col(0, "r.k"));
      auto join = std::make_unique<HashJoin>(std::move(lscan), std::move(rscan),
                                             std::move(pk), std::move(bk), type);
      return PhysicalPlan(std::move(join));
    }
    case Algo::kMerge: {
      std::vector<SortKey> lk, rk;
      lk.emplace_back(eb::Col(0, "l.k"), false);
      rk.emplace_back(eb::Col(0, "r.k"), false);
      auto lsort = std::make_unique<Sort>(std::move(lscan), std::move(lk));
      auto rsort = std::make_unique<Sort>(std::move(rscan), std::move(rk));
      std::vector<ExprPtr> lke, rke;
      lke.push_back(eb::Col(0, "l.k"));
      rke.push_back(eb::Col(0, "r.k"));
      auto join = std::make_unique<MergeJoin>(std::move(lsort), std::move(rsort),
                                              std::move(lke), std::move(rke));
      return PhysicalPlan(std::move(join));
    }
  }
  __builtin_unreachable();
}

struct JoinCase {
  Algo algo;
  JoinType type;
};

class JoinConformanceTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinConformanceTest, MatchesReferenceOnRandomData) {
  const JoinCase c = GetParam();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Table left = RandomTable("l", 60, 20, seed, /*with_nulls=*/true);
    Table right = RandomTable("r", 80, 20, seed + 100, /*with_nulls=*/true);
    OrderedIndex idx(&right, 0);
    PhysicalPlan plan = BuildJoinPlan(c.algo, &left, &right, &idx, c.type);
    auto expected = ReferenceJoin(left, right, c.type);
    auto actual = CollectRows(&plan);
    EXPECT_EQ(testutil::RowsToString(Sorted(actual)),
              testutil::RowsToString(Sorted(expected)))
        << "algo=" << static_cast<int>(c.algo)
        << " type=" << JoinTypeToString(c.type) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndTypes, JoinConformanceTest,
    ::testing::Values(JoinCase{Algo::kNL, JoinType::kInner},
                      JoinCase{Algo::kNL, JoinType::kLeftOuter},
                      JoinCase{Algo::kNL, JoinType::kLeftSemi},
                      JoinCase{Algo::kNL, JoinType::kLeftAnti},
                      JoinCase{Algo::kINL, JoinType::kInner},
                      JoinCase{Algo::kINL, JoinType::kLeftOuter},
                      JoinCase{Algo::kINL, JoinType::kLeftSemi},
                      JoinCase{Algo::kINL, JoinType::kLeftAnti},
                      JoinCase{Algo::kHash, JoinType::kInner},
                      JoinCase{Algo::kHash, JoinType::kLeftOuter},
                      JoinCase{Algo::kHash, JoinType::kLeftSemi},
                      JoinCase{Algo::kHash, JoinType::kLeftAnti},
                      JoinCase{Algo::kMerge, JoinType::kInner}));

TEST(JoinTest, CrossJoinViaNLWithoutPredicate) {
  Table a = testutil::MakeTable("a", {"x"}, {{I(1)}, {I(2)}});
  Table b = testutil::MakeTable("b", {"y"}, {{I(10)}, {I(20)}, {I(30)}});
  auto join = std::make_unique<NestedLoopsJoin>(
      std::make_unique<SeqScan>(&a), std::make_unique<SeqScan>(&b), nullptr);
  PhysicalPlan plan(std::move(join));
  EXPECT_EQ(CollectRows(&plan).size(), 6u);
}

TEST(JoinTest, EmptyInputs) {
  Table empty = testutil::MakeTable("e", {"k"}, {});
  Table full = testutil::MakeTable("f", {"k"}, {{I(1)}});
  {
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&full),
                                           std::make_unique<SeqScan>(&empty),
                                           std::move(pk), std::move(bk));
    PhysicalPlan plan(std::move(join));
    EXPECT_TRUE(CollectRows(&plan).empty());
  }
  {
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    auto join = std::make_unique<HashJoin>(
        std::make_unique<SeqScan>(&empty), std::make_unique<SeqScan>(&full),
        std::move(pk), std::move(bk), JoinType::kLeftAnti);
    PhysicalPlan plan(std::move(join));
    EXPECT_TRUE(CollectRows(&plan).empty());
  }
}

TEST(JoinTest, AntiJoinAgainstEmptyBuildKeepsAllProbe) {
  Table empty = testutil::MakeTable("e", {"k"}, {});
  Table full = testutil::MakeTable("f", {"k"}, {{I(1)}, {I(2)}});
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  auto join = std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(&full), std::make_unique<SeqScan>(&empty),
      std::move(pk), std::move(bk), JoinType::kLeftAnti);
  PhysicalPlan plan(std::move(join));
  EXPECT_EQ(CollectRows(&plan).size(), 2u);
}

TEST(JoinTest, HashJoinResidualPredicate) {
  Table l = testutil::MakeTable("l", {"k", "v"}, {{I(1), I(10)}, {I(1), I(30)}});
  Table r = testutil::MakeTable("r", {"k", "w"}, {{I(1), I(20)}});
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  // residual over (probe ++ build): v < w means col1 < col3.
  auto join = std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(&l), std::make_unique<SeqScan>(&r),
      std::move(pk), std::move(bk), JoinType::kInner,
      eb::Lt(eb::Col(1), eb::Col(3)));
  PhysicalPlan plan(std::move(join));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].int64_value(), 10);
}

TEST(JoinTest, MergeJoinDuplicateKeysBothSides) {
  Table l = testutil::MakeTable("l", {"k"}, {{I(1)}, {I(2)}, {I(2)}, {I(3)}});
  Table r = testutil::MakeTable("r", {"k"}, {{I(2)}, {I(2)}, {I(2)}, {I(4)}});
  std::vector<ExprPtr> lk, rk;
  lk.push_back(eb::Col(0));
  rk.push_back(eb::Col(0));
  auto join = std::make_unique<MergeJoin>(std::make_unique<SeqScan>(&l),
                                          std::make_unique<SeqScan>(&r),
                                          std::move(lk), std::move(rk));
  PhysicalPlan plan(std::move(join));
  EXPECT_EQ(CollectRows(&plan).size(), 6u);  // 2 left dups x 3 right dups
}

TEST(JoinTest, INLJoinResidualPredicate) {
  Table l = testutil::MakeTable("l", {"k", "v"}, {{I(1), I(5)}});
  Table r = testutil::MakeTable("r", {"k", "w"},
                                {{I(1), I(1)}, {I(1), I(9)}, {I(1), I(6)}});
  OrderedIndex idx(&r, 0);
  auto join = std::make_unique<IndexNestedLoopsJoin>(
      std::make_unique<SeqScan>(&l), std::make_unique<IndexSeek>(&idx),
      eb::Col(0), JoinType::kInner,
      eb::Gt(eb::Col(3), eb::Col(1)));  // w > v
  PhysicalPlan plan(std::move(join));
  EXPECT_EQ(CollectRows(&plan).size(), 2u);
}

TEST(JoinTest, SemiJoinEmitsProbeSchemaOnly) {
  Table l = testutil::MakeTable("l", {"k", "v"}, {{I(1), I(5)}});
  Table r = testutil::MakeTable("r", {"k"}, {{I(1)}, {I(1)}});
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  auto join = std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(&l), std::make_unique<SeqScan>(&r),
      std::move(pk), std::move(bk), JoinType::kLeftSemi);
  PhysicalPlan plan(std::move(join));
  auto rows = CollectRows(&plan);
  ASSERT_EQ(rows.size(), 1u);  // one output despite two matches
  EXPECT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(plan.root()->output_schema().num_fields(), 2u);
}

}  // namespace
}  // namespace qprog
