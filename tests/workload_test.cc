// Synthetic workload generators: zipf join data and the adversarial pair.

#include <gtest/gtest.h>

#include <set>

#include "workload/adversarial.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

TEST(ZipfJoinDataTest, R1HasUniqueValuesInRequestedOrder) {
  ZipfJoinConfig config;
  config.r1_rows = 1000;
  config.r2_rows = 1000;
  config.order = R1Order::kSkewFirst;
  ZipfJoinData data(config);
  EXPECT_EQ(data.r1().num_rows(), 1000u);
  std::set<int64_t> seen;
  for (uint64_t i = 0; i < data.r1().num_rows(); ++i) {
    seen.insert(data.r1().at(i, 0).int64_value());
  }
  EXPECT_EQ(seen.size(), 1000u);
  // Skew-first: value 0 (the most frequent join key) comes first.
  EXPECT_EQ(data.r1().at(0, 0).int64_value(), 0);

  config.order = R1Order::kSkewLast;
  ZipfJoinData last(config);
  EXPECT_EQ(last.r1().at(999, 0).int64_value(), 0);
}

TEST(ZipfJoinDataTest, MatchCountsFollowZipf) {
  ZipfJoinConfig config;
  config.r1_rows = 2000;
  config.r2_rows = 4000;
  config.z = 2.0;
  ZipfJoinData data(config);
  uint64_t m0 = data.MatchCount(0);
  uint64_t m1 = data.MatchCount(1);
  EXPECT_GT(m0, 4000u / 3);  // head value dominates at z=2
  EXPECT_GT(m0, m1);
  uint64_t total = 0;
  for (int64_t v = 0; v < 2000; ++v) total += data.MatchCount(v);
  EXPECT_EQ(total, 4000u);  // every R2 row joins exactly one R1 value
}

TEST(ZipfJoinDataTest, PlansComputeIdenticalCounts) {
  ZipfJoinConfig config;
  config.r1_rows = 500;
  config.r2_rows = 700;
  config.z = 1.0;
  ZipfJoinData data(config);
  PhysicalPlan inl = data.BuildInlPlan();
  PhysicalPlan hash = data.BuildHashPlan();
  auto r_inl = CollectRows(&inl);
  auto r_hash = CollectRows(&hash);
  ASSERT_EQ(r_inl.size(), 1u);
  ASSERT_EQ(r_hash.size(), 1u);
  EXPECT_EQ(r_inl[0][0].int64_value(), r_hash[0][0].int64_value());
  EXPECT_EQ(r_inl[0][0].int64_value(), 700);  // all R2 rows match
}

TEST(ZipfJoinDataTest, FilterPlanRemovesSkewedMatches) {
  ZipfJoinConfig config;
  config.r1_rows = 1000;
  config.r2_rows = 1000;
  config.z = 2.0;
  ZipfJoinData data(config);
  PhysicalPlan plain = data.BuildInlPlan();
  PhysicalPlan filtered =
      data.BuildInlPlan(eb::Ge(eb::Col(0, "a"), eb::Int(100)));
  auto all = CollectRows(&plain);
  auto f = CollectRows(&filtered);
  EXPECT_LT(f[0][0].int64_value(), all[0][0].int64_value() / 2);
}

TEST(ZipfJoinDataTest, TotalWorkAccounting) {
  // INL: total = |R1| (scan) + matches (seek) + matches (join output).
  ZipfJoinConfig config;
  config.r1_rows = 300;
  config.r2_rows = 500;
  config.z = 1.0;
  ZipfJoinData data(config);
  PhysicalPlan inl = data.BuildInlPlan();
  EXPECT_EQ(MeasureTotalWork(&inl), 300u + 500u + 500u);
  // Hash: total = |R1| (build) + |R2| (probe) + matches (join output).
  PhysicalPlan hash = data.BuildHashPlan();
  EXPECT_EQ(MeasureTotalWork(&hash), 300u + 500u + 500u);
}

TEST(AdversarialPairTest, TotalsMatchExampleOne) {
  AdversarialPair pair(500);
  PhysicalPlan px = pair.BuildPlan(false);
  PhysicalPlan py = pair.BuildPlan(true);
  EXPECT_EQ(MeasureTotalWork(&px), 501u);        // |R1| + 1
  EXPECT_EQ(MeasureTotalWork(&py), 5010u);       // 10|R1| + 10
}

TEST(AdversarialPairTest, InstancesDifferInExactlyOneTuple) {
  AdversarialPair pair(200);
  const Table& a = pair.r1_with_x();
  const Table& b = pair.r1_with_y();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  size_t diffs = 0;
  for (uint64_t i = 0; i < a.num_rows(); ++i) {
    if (!a.at(i, 0).EqualsForGrouping(b.at(i, 0))) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(a.at(pair.special_position(), 0).int64_value(), pair.x());
  EXPECT_EQ(b.at(pair.special_position(), 0).int64_value(), pair.y());
}

TEST(AdversarialPairTest, SpecialValuesAbsentFromBackground) {
  AdversarialPair pair(300);
  const Table& a = pair.r1_with_x();
  for (uint64_t i = 0; i < a.num_rows(); ++i) {
    if (i == pair.special_position()) continue;
    int64_t v = a.at(i, 0).int64_value();
    EXPECT_NE(v, pair.x());
    EXPECT_NE(v, pair.y());
  }
}

}  // namespace
}  // namespace qprog
