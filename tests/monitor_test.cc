// End-to-end ProgressMonitor tests.

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "tests/test_util.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

using testutil::I;

PhysicalPlan ScanFilterAggPlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Lt(eb::Col(0), eb::Int(500)));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::move(filter), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
}

Table Numbers(int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i)});
  return testutil::MakeTable("t", {"v"}, std::move(rows));
}

TEST(MonitorTest, ReportBasics) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterAggPlan(&t);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne", "pmax"});
  ProgressReport r = m.Run(100);
  EXPECT_EQ(r.names.size(), 2u);
  EXPECT_EQ(r.total_work, 1500u);  // 1000 scan + 500 filter
  EXPECT_EQ(r.root_rows, 1u);
  EXPECT_DOUBLE_EQ(r.scanned_leaf_cardinality, 1000.0);
  EXPECT_DOUBLE_EQ(r.mu, 1.5);
  ASSERT_FALSE(r.checkpoints.empty());
  EXPECT_EQ(r.checkpoints.size(), 15u);
}

TEST(MonitorTest, CheckpointsMonotoneAndTrueProgressCorrect) {
  Table t = Numbers(2000);
  PhysicalPlan plan = ScanFilterAggPlan(&t);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"});
  ProgressReport r = m.Run(57);
  uint64_t prev = 0;
  for (const Checkpoint& c : r.checkpoints) {
    EXPECT_GT(c.work, prev);
    prev = c.work;
    EXPECT_NEAR(c.true_progress,
                static_cast<double>(c.work) /
                    static_cast<double>(r.total_work),
                1e-12);
    EXPECT_GE(c.work_ub, c.work_lb);
    ASSERT_EQ(c.estimates.size(), 1u);
    EXPECT_GE(c.estimates[0], 0.0);
    EXPECT_LE(c.estimates[0], 1.0);
  }
}

TEST(MonitorTest, MetricsForPerfectEstimatorAreZero) {
  // dne on a constant-work-per-tuple single pipeline is essentially exact.
  Table t = Numbers(5000);
  auto scan = std::make_unique<SeqScan>(&t);
  auto filter = std::make_unique<Filter>(std::move(scan),
                                         eb::Ge(eb::Col(0), eb::Int(0)));
  PhysicalPlan plan(std::move(filter));
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne"});
  ProgressReport r = m.Run(100);
  auto metrics = r.Metrics(0);
  EXPECT_LT(metrics.max_abs_err, 0.001);
  EXPECT_LT(metrics.max_ratio_err, 1.001);
}

TEST(MonitorTest, RunWithApproxCheckpointsHitsTargetCount) {
  Table t = Numbers(3000);
  PhysicalPlan plan = ScanFilterAggPlan(&t);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"pmax"});
  ProgressReport r = m.RunWithApproxCheckpoints(100);
  EXPECT_NEAR(static_cast<double>(r.checkpoints.size()), 100.0, 15.0);
}

TEST(MonitorTest, FindEstimator) {
  Table t = Numbers(100);
  PhysicalPlan plan = ScanFilterAggPlan(&t);
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe", "pmax"});
  ProgressReport r = m.Run(50);
  EXPECT_EQ(r.FindEstimator("safe"), 1);
  EXPECT_EQ(r.FindEstimator("nope"), -1);
}

TEST(MonitorTest, TsvDumpShape) {
  Table t = Numbers(500);
  PhysicalPlan plan = ScanFilterAggPlan(&t);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne"});
  ProgressReport r = m.Run(100);
  std::string tsv = r.ToTsv();
  EXPECT_EQ(tsv.substr(0, 14), "work\ttrue\tdne\n");
  size_t lines = 0;
  for (char ch : tsv) lines += (ch == '\n');
  EXPECT_EQ(lines, r.checkpoints.size() + 1);
}

TEST(MonitorTest, MetricsCaptureKnownSkewError) {
  ZipfJoinConfig cfg;
  cfg.r1_rows = 2000;
  cfg.r2_rows = 2000;
  cfg.order = R1Order::kSkewLast;
  ZipfJoinData data(cfg);
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne"});
  ProgressReport r = m.RunWithApproxCheckpoints(100);
  auto metrics = r.Metrics(0);
  EXPECT_GT(metrics.max_abs_err, 0.2);
  EXPECT_GT(metrics.max_ratio_err, 1.2);
  EXPECT_GE(metrics.max_abs_err, metrics.avg_abs_err);
}

}  // namespace
}  // namespace qprog
