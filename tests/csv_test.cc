// CSV import/export round trips and error handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::D;
using testutil::Dt;
using testutil::I;
using testutil::N;
using testutil::S;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Schema MixedSchema() {
  return Schema({{"id", TypeId::kInt64},
                 {"price", TypeId::kDouble},
                 {"day", TypeId::kDate},
                 {"note", TypeId::kString},
                 {"flag", TypeId::kBool}});
}

TEST(CsvTest, SplitRecordBasics) {
  auto fields = SplitCsvRecord("a,b,,d", ',');
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[2], "");
}

TEST(CsvTest, SplitRecordQuoting) {
  auto fields = SplitCsvRecord("\"a,b\",\"he said \"\"hi\"\"\",c", ',');
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a,b");
  EXPECT_EQ((*fields)[1], "he said \"hi\"");
}

TEST(CsvTest, SplitRecordErrors) {
  EXPECT_FALSE(SplitCsvRecord("\"unterminated", ',').ok());
  EXPECT_FALSE(SplitCsvRecord("ab\"cd", ',').ok());
}

TEST(CsvTest, RoundTripPreservesValues) {
  Table t = testutil::MakeTable(
      "t", {"id", "price", "day", "note", "flag"},
      {{I(1), D(9.5), Dt("1995-03-15"), S("plain"), testutil::B(true)},
       {I(-2), D(0.25), Dt("1970-01-01"), S("with, comma"), testutil::B(false)},
       {I(3), N(), Dt("2000-02-29"), S("quote \" inside"), N()}});
  // Rebuild with a typed schema so ReadCsv knows what to parse.
  Table typed("t", MixedSchema());
  for (uint64_t i = 0; i < t.num_rows(); ++i) typed.AppendRow(t.row(i));

  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(typed, path).ok());
  auto back = ReadCsv(path, "t2", MixedSchema());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(RowEq()(back->row(i), typed.row(i))) << "row " << i << ": "
        << RowToString(back->row(i)) << " vs " << RowToString(typed.row(i));
  }
}

TEST(CsvTest, HeaderWrittenAndSkipped) {
  Table t("t", Schema({{"a", TypeId::kInt64}}));
  t.AppendRow({I(7)});
  std::string path = TempPath("header.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "a");
  auto back = ReadCsv(path, "t", Schema({{"a", TypeId::kInt64}}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1u);
}

TEST(CsvTest, NoHeaderOption) {
  std::string path = TempPath("noheader.csv");
  {
    std::ofstream out(path);
    out << "1,x\n2,y\n";
  }
  CsvOptions options;
  options.has_header = false;
  auto t = ReadCsv(path, "t",
                   Schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}}),
                   options);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->at(1, 1).string_value(), "y");
}

TEST(CsvTest, NullTextOption) {
  std::string path = TempPath("nulls.csv");
  {
    std::ofstream out(path);
    out << "a\nNA\n5\n";
  }
  CsvOptions options;
  options.null_text = "NA";
  auto t = ReadCsv(path, "t", Schema({{"a", TypeId::kInt64}}), options);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, 0).is_null());
  EXPECT_EQ(t->at(1, 0).int64_value(), 5);
}

TEST(CsvTest, ParseErrorsReportLine) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "a\n1\nnot_an_int\n";
  }
  auto t = ReadCsv(path, "t", Schema({{"a", TypeId::kInt64}}));
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  std::string path = TempPath("arity.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1,2,3\n";
  }
  auto t = ReadCsv(path, "t",
                   Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}));
  EXPECT_FALSE(t.ok());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto t = ReadCsv("/nonexistent/nope.csv", "t",
                   Schema({{"a", TypeId::kInt64}}));
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, CustomDelimiter) {
  Table t("t", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}}));
  t.AppendRow({I(1), S("x|y")});
  std::string path = TempPath("pipe.csv");
  CsvOptions options;
  options.delimiter = '|';
  ASSERT_TRUE(WriteCsv(t, path, options).ok());
  auto back = ReadCsv(path, "t",
                      Schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}}),
                      options);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->at(0, 1).string_value(), "x|y");
}

}  // namespace
}  // namespace qprog
