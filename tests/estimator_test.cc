// Estimator-level tests of the paper's theorems and properties:
//   Property 4 / Theorem 5: prog <= pmax <= mu * prog.
//   Theorem 6 machinery:    safe ratio error <= sqrt(UB/LB) pointwise.
//   Theorem 3:              dne expected-accurate under random input order.
//   Property 6:             scan-based plans give mu <= m+1 and bounded safe.
//   Theorem 1 setup:        the adversarial pair is statistics-identical yet
//                           has ~10x different total work.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bounds.h"
#include "core/monitor.h"
#include "core/pipeline.h"
#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "stats/table_stats.h"
#include "tests/test_util.h"
#include "workload/adversarial.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

ZipfJoinConfig SmallConfig(R1Order order) {
  ZipfJoinConfig cfg;
  cfg.r1_rows = 3000;
  cfg.r2_rows = 3000;
  cfg.z = 2.0;
  cfg.order = order;
  cfg.seed = 7;
  return cfg;
}

ProgressReport RunAll(PhysicalPlan* plan, size_t checkpoints = 100) {
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(plan, AllEstimatorNames());
  return monitor.RunWithApproxCheckpoints(checkpoints);
}

class EstimatorOrderTest : public ::testing::TestWithParam<R1Order> {};

TEST_P(EstimatorOrderTest, PmaxIsAlwaysAnUpperBoundOnProgress) {
  ZipfJoinData data(SmallConfig(GetParam()));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan);
  int pmax = report.FindEstimator("pmax");
  ASSERT_GE(pmax, 0);
  for (const Checkpoint& c : report.checkpoints) {
    EXPECT_GE(c.estimates[pmax], c.true_progress - 1e-9)
        << "at work " << c.work;
  }
}

TEST_P(EstimatorOrderTest, PmaxWithinMuOfProgress) {
  ZipfJoinData data(SmallConfig(GetParam()));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan);
  int pmax = report.FindEstimator("pmax");
  for (const Checkpoint& c : report.checkpoints) {
    if (c.true_progress <= 0) continue;
    EXPECT_LE(c.estimates[pmax], report.mu * c.true_progress + 1e-6)
        << "at work " << c.work << " (mu = " << report.mu << ")";
  }
}

TEST_P(EstimatorOrderTest, SafeRatioBoundedBySqrtUbOverLb) {
  ZipfJoinData data(SmallConfig(GetParam()));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan);
  int safe = report.FindEstimator("safe");
  for (const Checkpoint& c : report.checkpoints) {
    if (c.true_progress <= 0 || c.estimates[safe] <= 0) continue;
    double ratio = std::max(c.estimates[safe] / c.true_progress,
                            c.true_progress / c.estimates[safe]);
    double bound = std::sqrt(c.work_ub / std::max(1.0, c.work_lb));
    EXPECT_LE(ratio, bound * (1 + 1e-9)) << "at work " << c.work;
  }
}

TEST_P(EstimatorOrderTest, BoundedDneStaysInFeasibleInterval) {
  ZipfJoinData data(SmallConfig(GetParam()));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan);
  int bdne = report.FindEstimator("dne_bounded");
  for (const Checkpoint& c : report.checkpoints) {
    double lo = c.work_ub > 0 ? static_cast<double>(c.work) / c.work_ub : 0;
    double hi = c.work_lb > 0 ? static_cast<double>(c.work) / c.work_lb : 1;
    EXPECT_GE(c.estimates[bdne], lo - 1e-9);
    EXPECT_LE(c.estimates[bdne], std::min(1.0, hi) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, EstimatorOrderTest,
                         ::testing::Values(R1Order::kSkewFirst,
                                           R1Order::kSkewLast,
                                           R1Order::kRandom));

// Theorem 3: with tuples retrieved in random order, dne tracks the true
// progress closely. Convergence additionally needs bounded per-tuple-work
// variance (Section 4's var/N term), so this test uses moderate skew —
// under z=2 a single tuple carries ~40% of the work and even a random order
// cannot converge, which SkewStillHurtsRandomOrder pins down below.
TEST(EstimatorTest, DneAccurateUnderRandomOrder) {
  ZipfJoinConfig cfg = SmallConfig(R1Order::kRandom);
  cfg.z = 1.0;
  cfg.r1_rows = 8000;
  cfg.r2_rows = 8000;
  ZipfJoinData data(cfg);
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan, 200);
  auto m = report.Metrics(static_cast<size_t>(report.FindEstimator("dne")));
  EXPECT_LT(m.avg_abs_err, 0.05);
}

// Under extreme skew (z=2) one tuple dominates total work, so dne retains
// substantial error even in random order — exactly why the paper cannot
// strengthen Theorem 3 beyond expectation.
TEST(EstimatorTest, SkewStillHurtsRandomOrder) {
  ZipfJoinData data(SmallConfig(R1Order::kRandom));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan, 200);
  auto m = report.Metrics(static_cast<size_t>(report.FindEstimator("dne")));
  EXPECT_GT(m.max_abs_err, 0.05);
}

// Figure 4's phenomenon: with the skewed element first, dne grossly
// underestimates while pmax stays within its mu guarantee.
TEST(EstimatorTest, SkewFirstMakesDneUnderestimate) {
  ZipfJoinData data(SmallConfig(R1Order::kSkewFirst));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan, 200);
  int dne = report.FindEstimator("dne");
  int pmax = report.FindEstimator("pmax");
  // Early in execution the true progress races ahead of dne.
  const Checkpoint& early =
      report.checkpoints[report.checkpoints.size() / 10];
  EXPECT_LT(early.estimates[dne], early.true_progress * 0.5);
  auto m_dne = report.Metrics(static_cast<size_t>(dne));
  auto m_pmax = report.Metrics(static_cast<size_t>(pmax));
  EXPECT_LT(m_pmax.max_abs_err, m_dne.max_abs_err);
}

// Figure 5's phenomenon: with the skewed element last, dne overestimates
// badly near the end; safe roughly halves the maximum error.
TEST(EstimatorTest, SkewLastMakesDneOverestimateAndSafeHelps) {
  ZipfJoinData data(SmallConfig(R1Order::kSkewLast));
  PhysicalPlan plan = data.BuildInlPlan();
  ProgressReport report = RunAll(&plan, 200);
  int dne = report.FindEstimator("dne");
  int safe = report.FindEstimator("safe");
  auto m_dne = report.Metrics(static_cast<size_t>(dne));
  auto m_safe = report.Metrics(static_cast<size_t>(safe));
  EXPECT_GT(m_dne.max_abs_err, 0.3);
  EXPECT_LT(m_safe.max_abs_err, m_dne.max_abs_err);
}

// Section 5.4: the scan-based (hash) variant improves every estimator.
// R1's join column is unique, so both joins are linear (key joins), the
// setting of the paper's Example 3 / Table 1.
TEST(EstimatorTest, HashPlanImprovesAllEstimators) {
  ZipfJoinData data(SmallConfig(R1Order::kSkewLast));
  PhysicalPlan inl = data.BuildInlPlan(nullptr, /*linear=*/true);
  PhysicalPlan hash = data.BuildHashPlan(nullptr, /*linear=*/true);
  ProgressReport r_inl = RunAll(&inl, 200);
  ProgressReport r_hash = RunAll(&hash, 200);
  for (const char* name : {"dne", "pmax", "safe"}) {
    auto mi = r_inl.Metrics(static_cast<size_t>(r_inl.FindEstimator(name)));
    auto mh = r_hash.Metrics(static_cast<size_t>(r_hash.FindEstimator(name)));
    EXPECT_LT(mh.max_abs_err, mi.max_abs_err) << name;
  }
}

// Property 6 consequence: hash (scan-based, linear) plan has small mu.
TEST(EstimatorTest, ScanBasedPlanHasSmallMu) {
  ZipfJoinData data(SmallConfig(R1Order::kSkewLast));
  PhysicalPlan plan = data.BuildHashPlan(nullptr, /*linear=*/true);
  ProgressReport report = RunAll(&plan, 50);
  // m = 1 internal node (the join; agg is root): mu <= 2.
  EXPECT_LE(report.mu, 2.0 + 1e-9);
  EXPECT_GE(report.mu, 1.0);
}

// Hybrid behaves like pmax when mu's observable upper bound is small and
// like safe when it is not.
TEST(EstimatorTest, HybridSwitchesOnMuBound) {
  ZipfJoinData data(SmallConfig(R1Order::kSkewLast));
  {
    PhysicalPlan plan = data.BuildHashPlan(nullptr, /*linear=*/true);
    ProgressReport report = RunAll(&plan, 50);
    int hybrid = report.FindEstimator("hybrid");
    int pmax = report.FindEstimator("pmax");
    for (const Checkpoint& c : report.checkpoints) {
      EXPECT_NEAR(c.estimates[hybrid], c.estimates[pmax], 1e-12);
    }
  }
  {
    PhysicalPlan plan = data.BuildInlPlan();  // non-linear INL: huge UB
    ProgressReport report = RunAll(&plan, 50);
    int hybrid = report.FindEstimator("hybrid");
    int safe = report.FindEstimator("safe");
    const Checkpoint& first = report.checkpoints.front();
    EXPECT_NEAR(first.estimates[hybrid], first.estimates[safe], 1e-12);
  }
}

TEST(EstimatorTest, FactoryResolvesAllNamesAndRejectsUnknown) {
  for (const std::string& name : AllEstimatorNames()) {
    auto e = CreateEstimator(name);
    ASSERT_TRUE(e.ok()) << name;
    EXPECT_EQ(e.value()->name(), name);
  }
  EXPECT_FALSE(CreateEstimator("oracle").ok());
}

TEST(EstimatorTest, FactoryAcceptsParameterizedSpecs) {
  for (const char* spec : {"hybrid:2.5", "hybrid:3", "hybrid:0.5"}) {
    auto e = CreateEstimator(spec);
    ASSERT_TRUE(e.ok()) << spec << ": " << e.status();
    EXPECT_EQ(e.value()->name(), "hybrid") << spec;
  }
  for (const char* spec : {"window:32", "window:1"}) {
    auto e = CreateEstimator(spec);
    ASSERT_TRUE(e.ok()) << spec << ": " << e.status();
    EXPECT_EQ(e.value()->name(), "window") << spec;
  }
}

TEST(EstimatorTest, FactoryRejectsMalformedSpecsWithInvalidArgument) {
  const char* kBad[] = {
      // Empty / structural garbage.
      "", ":", ":5", "hybrid:2:5",
      // hybrid needs a positive finite double consumed in full.
      "hybrid:", "hybrid:abc", "hybrid:0", "hybrid:-1", "hybrid:2.5x",
      "hybrid:nan", "hybrid:inf", "hybrid:1e999",
      // window needs a positive unsigned integer consumed in full.
      "window:", "window:0", "window:-4", "window:+8", "window:3.5",
      "window:99999999999999999999999",
      // Parameter on a non-parameterized estimator.
      "dne:2", "pmax:1", "safe:0", "dne_bounded:1", "dne_pessimistic:1",
      // Unknown names, with and without parameter.
      "oracle", "oracle:2"};
  for (const char* spec : kBad) {
    auto e = CreateEstimator(spec);
    EXPECT_FALSE(e.ok()) << "accepted malformed spec '" << spec << "'";
    if (!e.ok()) {
      EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument)
          << spec << ": " << e.status();
    }
  }
}

// dne_pessimistic folds the engine's outstanding spill debt into dne's
// denominator before passing through the same feasible-interval clamp as
// dne_bounded. The raw fraction can only shrink relative to dne and the
// clamp is monotone, so at every checkpoint of a spilling run the
// pessimistic estimate is bounded above by dne_bounded — and like every
// estimate stays inside [0, 1].
TEST(EstimatorTest, PessimisticDneNeverExceedsBoundedDneUnderSpill) {
  std::vector<Row> rows;
  for (int64_t i = 899; i >= 0; --i) {
    rows.push_back({testutil::I(i % 97), testutil::I(i)});
  }
  Table t = testutil::MakeTable("t", {"k", "v"}, std::move(rows));
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                           std::move(keys)));
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "qprog_estimator_spill";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SpillManager spill(dir.string());
  QueryGuard guard;
  guard.set_max_buffered_rows(60);
  MonitorOptions options;
  options.guard = &guard;
  options.spill_manager = &spill;
  ProgressMonitor m = ProgressMonitor::WithEstimators(
      &plan, {"dne", "dne_bounded", "dne_pessimistic"}, std::move(options));
  ProgressReport r = m.Run(40);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  ASSERT_FALSE(r.checkpoints.empty());
  EXPECT_GT(spill.stats().runs_created, 0u) << "budget never forced a spill";
  int bounded = r.FindEstimator("dne_bounded");
  int pess = r.FindEstimator("dne_pessimistic");
  ASSERT_GE(bounded, 0);
  ASSERT_GE(pess, 0);
  for (const Checkpoint& c : r.checkpoints) {
    EXPECT_GE(c.estimates[pess], 0.0) << "at work " << c.work;
    EXPECT_LE(c.estimates[pess], 1.0) << "at work " << c.work;
    EXPECT_LE(c.estimates[pess], c.estimates[bounded] + 1e-12)
        << "pessimistic exceeded dne_bounded at work " << c.work;
  }
  std::filesystem::remove_all(dir);
}

// The strict discount itself. The monitor's clamp floors every estimate at
// Curr/UB, and in a live spilling run the raw driver fraction sits below
// that floor (dne's fallback totals and the work upper bound grow from the
// same per-pass cardinalities while Curr also counts the spill I/O the
// drivers cannot see) — so the end-to-end checkpoints above show the two
// estimators agreeing at the clamp, not the discount. Pin the discount down
// where the API makes it observable: a mid-scan context with a
// caller-chosen feasible interval and an explicit SpillSnapshot.
TEST(EstimatorTest, PessimisticDneDiscountsPendingSpillWork) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 900; ++i) rows.push_back({testutil::I(i)});
  Table t = testutil::MakeTable("t", {"k"}, std::move(rows));
  // The root's production is not work, so give the scan a streaming parent;
  // the scan stays the pipeline's only driver.
  std::vector<ExprPtr> exprs;
  exprs.push_back(eb::Col(0));
  PhysicalPlan plan(std::make_unique<Project>(std::make_unique<SeqScan>(&t),
                                              std::move(exprs),
                                              std::vector<std::string>{"k"}));
  ExecContext ctx;
  std::vector<Pipeline> pipelines = DecomposePipelines(plan);
  BoundedDneEstimator bounded;
  PessimisticDneEstimator pessimistic;
  bool checked = false;
  ctx.SetWorkObserver(100, [&](uint64_t work) {
    if (checked) return;
    checked = true;
    double curr = static_cast<double>(work);
    ProgressContext pc;
    pc.plan = &plan;
    pc.exec = &ctx;
    pc.pipelines = &pipelines;
    // A wide feasible interval that admits the raw fractions, so the clamp
    // passes them through instead of collapsing both to a bound.
    PlanBounds bounds;
    bounds.work_lb = 2 * curr;   // hi = 1/2
    bounds.work_ub = 40 * curr;  // lo = 1/40
    pc.bounds = &bounds;
    DriverStatus ds = ComputeDriverStatus(pipelines[0].drivers[0], ctx);
    ASSERT_GT(ds.rows_done, 0.0);
    ASSERT_EQ(ds.rows_total, 900.0);

    // Without a snapshot the two estimators are the same function.
    EXPECT_DOUBLE_EQ(pessimistic.Estimate(pc), bounded.Estimate(pc));

    // Two full replay passes still owed: the denominator grows, the
    // estimate strictly drops below dne_bounded.
    SpillSnapshot spill;
    spill.spill_rows_pending = 1800;
    pc.spill = &spill;
    double b = bounded.Estimate(pc);
    double p = pessimistic.Estimate(pc);
    EXPECT_DOUBLE_EQ(b, ds.rows_done / ds.rows_total);
    EXPECT_DOUBLE_EQ(p, ds.rows_done / (ds.rows_total + 1800));
    EXPECT_LT(p, b);

    // An absurd debt cannot push the estimate below the feasible floor.
    spill.spill_rows_pending = uint64_t{1} << 40;
    EXPECT_DOUBLE_EQ(pessimistic.Estimate(pc), curr / bounds.work_ub);
  });
  EXPECT_EQ(exec::Drive(&plan, {.ctx = &ctx}).root_rows, 900u);
  EXPECT_TRUE(checked);
}

// Theorem 1's construction: the two adversarial instances have identical
// histograms but ~10x different total work, and any estimator's value at the
// decision point is identical on both (here: checked for all five).
TEST(EstimatorTest, AdversarialPairIndistinguishableYetDifferent) {
  AdversarialPair pair(1000);

  // (a) identical single-relation statistics.
  HistogramStatisticsGenerator gen(16);
  auto sx = gen.Generate(pair.r1_with_x());
  auto sy = gen.Generate(pair.r1_with_y());
  const Histogram& hx = *sx->column(0).histogram;
  const Histogram& hy = *sy->column(0).histogram;
  ASSERT_EQ(hx.num_buckets(), hy.num_buckets());
  for (size_t b = 0; b < hx.num_buckets(); ++b) {
    EXPECT_EQ(hx.bucket(b).count, hy.bucket(b).count);
    EXPECT_EQ(hx.bucket(b).lower.int64_value(),
              hy.bucket(b).lower.int64_value());
    EXPECT_EQ(hx.bucket(b).upper.int64_value(),
              hy.bucket(b).upper.int64_value());
  }

  // (b) ~10x different total work.
  PhysicalPlan px = pair.BuildPlan(/*use_y_instance=*/false);
  PhysicalPlan py = pair.BuildPlan(/*use_y_instance=*/true);
  uint64_t tx = MeasureTotalWork(&px);
  uint64_t ty = MeasureTotalWork(&py);
  EXPECT_EQ(tx, 1001u);
  EXPECT_EQ(ty, 10010u);

  // (c) every estimator returns the same value on both instances at the
  // instant just before the special tuple is read (work = 900 here, since
  // the first 900 scan rows produce 900 getnexts and fail the selection).
  PhysicalPlan px2 = pair.BuildPlan(false);
  PhysicalPlan py2 = pair.BuildPlan(true);
  auto run_until = [](PhysicalPlan* plan, uint64_t stop_work) {
    ProgressMonitor m = ProgressMonitor::WithEstimators(plan,
                                                        AllEstimatorNames());
    ProgressReport r = m.Run(stop_work);
    return r.checkpoints.front().estimates;  // first checkpoint at stop_work
  };
  auto ex = run_until(&px2, 900);
  auto ey = run_until(&py2, 900);
  ASSERT_EQ(ex.size(), ey.size());
  for (size_t i = 0; i < ex.size(); ++i) {
    EXPECT_NEAR(ex[i], ey[i], 1e-12) << "estimator " << i;
  }
}

}  // namespace
}  // namespace qprog
