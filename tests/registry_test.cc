// Crash-safety and robustness tests for the cross-run estimator registry:
// the RegistryLog corruption matrix (torn tail, bit rot, unframeable
// garbage, empty file), fault injection at the registry.* sites, a real
// kill-9 crash-recovery harness (the binary re-execs itself as a child that
// appends + fsyncs + acks until the parent SIGKILLs it mid-stream), and the
// registry-level guarantees built on top: deterministic estimator
// selection, guarded prior feedback, and workload-prior persistence.
//
// This test has a custom main (no gtest_main): `registry_test --crash-child
// <path>` runs the crash-child protocol instead of the test suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/macros.h"
#include "core/estimators.h"
#include "core/monitor.h"
#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "obs/cross_run_registry.h"
#include "obs/metrics_registry.h"
#include "obs/workload_stats.h"
#include "server/query_server.h"
#include "sql/fingerprint.h"
#include "sql/session.h"
#include "storage/registry_log.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/registry_test_" + name + ".log";
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Opens `path` and collects every recovered payload.
std::vector<std::string> Recover(const std::string& path,
                                 RegistryRecoveryReport* report = nullptr,
                                 RegistryLogOptions options = {}) {
  std::vector<std::string> payloads;
  auto log = RegistryLog::Open(
      path, std::move(options),
      [&](const std::string& p) { payloads.push_back(p); }, report);
  EXPECT_TRUE(log.ok()) << log.status();
  return payloads;
}

Table Numbers(int64_t n) {
  Table table("t", Schema({Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < n; ++i) table.AppendRow({Value::Int64(i)});
  return table;
}

PhysicalPlan ScanFilterPlan(const Table* t, int64_t threshold = 500) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0), eb::Int(threshold)));
  return PhysicalPlan(std::move(filter));
}

/// Hand-built observation: one node per plan operator with `actual_rows`
/// produced, plus one error sample per (estimator, avg error) pair.
CrossRunObservation MakeObs(
    uint64_t fingerprint, const PhysicalPlan& plan, uint64_t actual_rows,
    const std::vector<std::pair<std::string, double>>& estimator_errs = {}) {
  CrossRunObservation obs;
  obs.fingerprint = fingerprint;
  obs.plan_signature = PlanSignature(plan);
  obs.completed = true;
  obs.workload.completed = true;
  obs.workload.work = 100;
  obs.workload.peak_buffered_rows = 10;
  obs.workload.root_rows = actual_rows;
  obs.workload.wall_ns = 5000;
  for (const PhysicalOperator* op : plan.nodes()) {
    CrossRunObservation::Node node;
    node.node_id = op->node_id();
    node.actual_rows = actual_rows;
    node.estimated_rows = static_cast<double>(actual_rows);  // perfect est
    obs.nodes.push_back(node);
  }
  for (const auto& [name, err] : estimator_errs) {
    CrossRunObservation::Estimator e;
    e.name = name;
    e.avg_abs_err = err;
    e.max_abs_err = err;
    for (double& d : e.decile_err) d = err;
    obs.estimators.push_back(std::move(e));
  }
  return obs;
}

// ---------------------------------------------------------------------------
// RegistryLog: framing, recovery, corruption matrix
// ---------------------------------------------------------------------------

TEST(RegistryLogTest, AppendSyncReopenRoundTrip) {
  std::string path = TempPath("roundtrip");
  std::filesystem::remove(path);
  {
    auto log = RegistryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(log.value()->Append("alpha").ok());
    ASSERT_TRUE(log.value()->Append(std::string(1000, 'b')).ok());
    ASSERT_TRUE(log.value()->Append("").ok());  // empty payload is a record
    ASSERT_TRUE(log.value()->Sync().ok());
    EXPECT_EQ(log.value()->records_appended(), 3u);
    EXPECT_GT(log.value()->bytes(), 1000u);
  }
  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], std::string(1000, 'b'));
  EXPECT_EQ(payloads[2], "");
  EXPECT_EQ(report.records_recovered, 3u);
  EXPECT_EQ(report.corrupt_records_skipped, 0u);
  EXPECT_FALSE(report.truncated);
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, EmptyFileOpensClean) {
  std::string path = TempPath("empty");
  WriteFileBytes(path, "");
  RegistryRecoveryReport report;
  EXPECT_TRUE(Recover(path, &report).empty());
  EXPECT_EQ(report.records_recovered, 0u);
  EXPECT_FALSE(report.truncated);
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, TornTailTruncatedBackToLastFullRecord) {
  std::string path = TempPath("torn");
  std::string bytes;
  AppendRegistryFrame("first", &bytes);
  AppendRegistryFrame("second", &bytes);
  std::string torn;
  AppendRegistryFrame("half-written-victim", &torn);
  size_t intact = bytes.size();
  bytes += torn.substr(0, torn.size() / 2);  // crash mid-payload
  WriteFileBytes(path, bytes);

  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[1], "second");
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.torn_tail_bytes, torn.size() / 2);
  // The repair is physical: the file shrank back to the intact prefix, so
  // the next append continues from a clean record boundary.
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, BitFlippedRecordSkippedOverIntactFraming) {
  std::string path = TempPath("bitflip");
  std::string bytes;
  AppendRegistryFrame("record-zero", &bytes);
  size_t second_at = bytes.size();
  AppendRegistryFrame("record-one", &bytes);
  AppendRegistryFrame("record-two", &bytes);
  bytes[second_at + 8 + 3] ^= 0x40;  // flip one payload bit of record-one

  WriteFileBytes(path, bytes);
  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  // The corrupt record is skipped, not fatal — the length framing still
  // locates record-two behind it.
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "record-zero");
  EXPECT_EQ(payloads[1], "record-two");
  EXPECT_EQ(report.corrupt_records_skipped, 1u);
  EXPECT_FALSE(report.truncated);
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, OversizedLengthHeaderTreatedAsUnframeable) {
  std::string path = TempPath("oversized");
  std::string bytes;
  AppendRegistryFrame("good", &bytes);
  size_t intact = bytes.size();
  // A length header above kRegistryMaxRecordBytes cannot be trusted to
  // frame anything — not even an allocation.
  uint32_t bogus = kRegistryMaxRecordBytes + 1;
  bytes.append(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  bytes.append("garbage-that-looks-like-a-checksum-and-payload");
  WriteFileBytes(path, bytes);

  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "good");
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, AppendAfterRecoveryExtendsTheRepairedPrefix) {
  std::string path = TempPath("append_after");
  std::string bytes;
  AppendRegistryFrame("kept", &bytes);
  bytes += "torn";  // unframeable tail
  WriteFileBytes(path, bytes);
  {
    auto log = RegistryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(log.value()->Append("appended-after-repair").ok());
    ASSERT_TRUE(log.value()->Sync().ok());
  }
  std::vector<std::string> payloads = Recover(path);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "kept");
  EXPECT_EQ(payloads[1], "appended-after-repair");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Fault injection at the registry.* sites
// ---------------------------------------------------------------------------

TEST(RegistryFaultTest, TransientAppendFaultRetriedDeterministically) {
  std::string path = TempPath("transient");
  std::filesystem::remove(path);
  FaultInjector fi(7);
  FaultSpec spec;
  spec.site = faults::kRegistryAppend;
  spec.fail_on_hit = 1;
  spec.fault_class = FaultClass::kTransient;  // Arm defaults to kUnavailable
  spec.transient_failures = 2;
  fi.Arm(std::move(spec));

  RegistryLogOptions options;
  options.fault_hook = [&](const char* site) { return fi.OnHit(site); };
  auto log = RegistryLog::Open(path, options);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(log.value()->Append("survived").ok());
  EXPECT_EQ(log.value()->io_retries(), 2u);  // rode out both failing hits
  ASSERT_TRUE(log.value()->Sync().ok());

  EXPECT_EQ(Recover(path).size(), 1u);
  std::filesystem::remove(path);
}

TEST(RegistryFaultTest, PermanentAppendFaultRollsBackTheFile) {
  std::string path = TempPath("permanent");
  std::filesystem::remove(path);
  FaultInjector fi;
  {
    RegistryLogOptions options;
    options.fault_hook = [&](const char* site) { return fi.OnHit(site); };
    auto log = RegistryLog::Open(path, options);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE(log.value()->Append("before-the-fault").ok());
    ASSERT_TRUE(log.value()->Sync().ok());
    uint64_t bytes_before = log.value()->bytes();

    FaultSpec spec;
    spec.site = faults::kRegistryAppend;
    spec.fail_on_hit = 2;  // hit 1 was the successful append above
    spec.message = "disk died";
    fi.Arm(std::move(spec));
    Status failed = log.value()->Append("never-lands");
    EXPECT_FALSE(failed.ok());
    // Rollback: no partial record for the next Open() to trip over.
    EXPECT_EQ(log.value()->bytes(), bytes_before);
  }
  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "before-the-fault");
  EXPECT_FALSE(report.truncated);
  std::filesystem::remove(path);
}

TEST(RegistryFaultTest, PermanentOpenFaultSurfacesCleanly) {
  std::string path = TempPath("openfault");
  FaultInjector fi;
  FaultSpec spec;
  spec.site = faults::kRegistryOpen;
  spec.fail_on_hit = 1;
  fi.Arm(std::move(spec));
  RegistryLogOptions options;
  options.fault_hook = [&](const char* site) { return fi.OnHit(site); };
  auto log = RegistryLog::Open(path, options);
  EXPECT_FALSE(log.ok());
  std::filesystem::remove(path);
}

TEST(RegistryFaultTest, CompactFaultLeavesOriginalLogUntouched) {
  std::string path = TempPath("compactfault");
  std::filesystem::remove(path);
  FaultInjector fi;
  RegistryLogOptions options;
  options.fault_hook = [&](const char* site) { return fi.OnHit(site); };
  auto log = RegistryLog::Open(path, options);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(log.value()->Append("one").ok());
  ASSERT_TRUE(log.value()->Append("two").ok());
  ASSERT_TRUE(log.value()->Sync().ok());

  FaultSpec spec;
  spec.site = faults::kRegistryCompact;
  spec.fail_on_hit = 1;
  fi.Arm(std::move(spec));
  EXPECT_FALSE(log.value()->Compact({"merged"}).ok());

  // The atomic-rename protocol never published the failed rewrite.
  std::vector<std::string> payloads = Recover(path);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[1], "two");
  std::filesystem::remove(path);
}

TEST(RegistryLogTest, CompactReplacesContentsAtomically) {
  std::string path = TempPath("compact");
  std::filesystem::remove(path);
  auto log = RegistryLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log.value()->Append("run-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(log.value()->Sync().ok());
  uint64_t before = log.value()->bytes();
  ASSERT_TRUE(log.value()->Compact({"aggregate-a", "aggregate-b"}).ok());
  EXPECT_LT(log.value()->bytes(), before);
  // The log stays appendable after the rename swap.
  ASSERT_TRUE(log.value()->Append("post-compact").ok());
  ASSERT_TRUE(log.value()->Sync().ok());

  std::vector<std::string> payloads = Recover(path);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "aggregate-a");
  EXPECT_EQ(payloads[1], "aggregate-b");
  EXPECT_EQ(payloads[2], "post-compact");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Kill-9 crash recovery: a real child process, killed mid-append
// ---------------------------------------------------------------------------

std::string CrashChildPayload(int i) {
  // Big enough that a kill lands mid-record often; content is a function of
  // the index so the parent can verify every acked record byte for byte.
  return "crash-record-" + std::to_string(i) + "-" +
         std::string(256, static_cast<char>('a' + (i % 26)));
}

TEST(CrashRecoveryTest, KillNineMidAppendKeepsEveryAckedRecord) {
  std::string path = TempPath("kill9");
  std::filesystem::remove(path);

  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: become the crash-child protocol via re-exec, acks on stdout.
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    execl("/proc/self/exe", "registry_test", "--crash-child", path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(pipefd[1]);

  // Read acks until the child has durably written a decent prefix, then
  // kill -9 while it is still appending.
  std::FILE* acks = fdopen(pipefd[0], "r");
  ASSERT_NE(acks, nullptr);
  int last_acked = -1;
  char line[64];
  while (last_acked < 40 && std::fgets(line, sizeof(line), acks) != nullptr) {
    int n = -1;
    if (std::sscanf(line, "ACK %d", &n) == 1) last_acked = n;
  }
  ASSERT_GE(last_acked, 40);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  std::fclose(acks);

  // Recovery: every record acked before the kill must survive, in order.
  // A torn tail (the record in flight at kill time) is allowed and repaired.
  RegistryRecoveryReport report;
  std::vector<std::string> payloads = Recover(path, &report);
  ASSERT_GE(payloads.size(), static_cast<size_t>(last_acked + 1));
  for (int i = 0; i <= last_acked; ++i) {
    EXPECT_EQ(payloads[static_cast<size_t>(i)], CrashChildPayload(i))
        << "acked record " << i << " lost or corrupted";
  }
  EXPECT_EQ(report.corrupt_records_skipped, 0u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(WireFormatTest, ObservationRoundTrip) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunObservation obs =
      MakeObs(0xfeed, plan, 500, {{"dne", 0.12}, {"safe", 0.05}});
  obs.nodes[0].next_ns = 98765;

  CrossRunObservation back;
  ASSERT_TRUE(DecodeCrossRunObservation(EncodeCrossRunObservation(obs), &back));
  EXPECT_EQ(back.fingerprint, obs.fingerprint);
  EXPECT_EQ(back.plan_signature, obs.plan_signature);
  EXPECT_EQ(back.completed, obs.completed);
  EXPECT_EQ(back.workload.work, obs.workload.work);
  EXPECT_EQ(back.workload.wall_ns, obs.workload.wall_ns);
  ASSERT_EQ(back.nodes.size(), obs.nodes.size());
  EXPECT_EQ(back.nodes[0].next_ns, 98765u);
  EXPECT_EQ(back.nodes[0].actual_rows, 500u);
  ASSERT_EQ(back.estimators.size(), 2u);
  EXPECT_EQ(back.estimators[0].name, "dne");
  EXPECT_DOUBLE_EQ(back.estimators[1].avg_abs_err, 0.05);
  EXPECT_DOUBLE_EQ(back.estimators[1].decile_err[9], 0.05);
}

TEST(WireFormatTest, DecodeRejectsTruncatedAndGarbage) {
  Table t = Numbers(100);
  PhysicalPlan plan = ScanFilterPlan(&t);
  std::string good = EncodeCrossRunObservation(MakeObs(1, plan, 50));
  CrossRunObservation out;
  EXPECT_FALSE(DecodeCrossRunObservation(good.substr(0, good.size() / 2),
                                         &out));
  EXPECT_FALSE(DecodeCrossRunObservation("", &out));
  EXPECT_FALSE(DecodeCrossRunObservation("\x07\x01junk", &out));
}

TEST(WireFormatTest, UnknownRecordTypeCountedAsDecodeSkip) {
  std::string path = TempPath("unknown_type");
  std::filesystem::remove(path);
  {
    auto log = RegistryLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    // Intact checksum, undecodable payload: a future record type.
    ASSERT_TRUE(log.value()->Append("\x09\x01future-type").ok());
    ASSERT_TRUE(log.value()->Sync().ok());
  }
  CrossRunRegistry registry;
  ASSERT_TRUE(registry.OpenLog(path).ok());
  EXPECT_EQ(registry.decode_skipped(), 1u);
  EXPECT_EQ(registry.num_templates(), 0u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// CrossRunRegistry: folding, persistence, selection, priors
// ---------------------------------------------------------------------------

TEST(CrossRunRegistryTest, BuildObservationFromMonitoredRun) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  plan.nodes()[1]->set_estimated_rows(1000);  // the scan, perfectly known
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne", "safe"});
  ProgressReport r = m.Run(100);
  ASSERT_TRUE(r.completed());

  CrossRunObservation obs = BuildCrossRunObservation(0xabc, r, 1234567);
  EXPECT_TRUE(obs.completed);
  EXPECT_EQ(obs.plan_signature, PlanSignature(plan));
  EXPECT_EQ(obs.workload.work, r.total_work);
  EXPECT_EQ(obs.workload.wall_ns, 1234567u);
  ASSERT_EQ(obs.nodes.size(), plan.num_nodes());
  ASSERT_EQ(obs.estimators.size(), 2u);
  EXPECT_EQ(obs.estimators[0].name, "dne");
  // A completed 10-checkpoint run covers the decile grid.
  int covered = 0;
  for (double d : obs.estimators[0].decile_err) {
    if (d >= 0) ++covered;
  }
  EXPECT_GT(covered, 0);
}

TEST(CrossRunRegistryTest, AbortedRunContributesWorkloadOnly) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  QueryGuard guard;
  guard.set_max_work(300);
  MonitorOptions mo;
  mo.guard = &guard;
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"safe"}, mo);
  ProgressReport r = m.Run(100);
  ASSERT_FALSE(r.completed());

  CrossRunObservation obs = BuildCrossRunObservation(0xabc, r, 99);
  EXPECT_FALSE(obs.completed);
  EXPECT_TRUE(obs.nodes.empty());       // partial rows are a lower bound
  EXPECT_TRUE(obs.estimators.empty());  // true progress unknowable
  EXPECT_EQ(obs.workload.work, r.total_work);
}

TEST(CrossRunRegistryTest, PersistsAcrossReopen) {
  std::string path = TempPath("reopen");
  std::filesystem::remove(path);
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  const uint64_t kFp = 0x5eed;
  {
    CrossRunRegistry registry;
    ASSERT_TRUE(registry.OpenLog(path).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          registry.RecordRun(MakeObs(kFp, plan, 500, {{"pmax", 0.08}})).ok());
    }
  }
  CrossRunRegistry reopened;
  RegistryRecoveryReport report;
  ASSERT_TRUE(reopened.OpenLog(path, {}, &report).ok());
  EXPECT_EQ(report.records_recovered, 4u);
  EXPECT_EQ(reopened.decode_skipped(), 0u);
  bool found = false;
  CrossRunTemplateStats stats = reopened.Lookup(kFp, &found);
  ASSERT_TRUE(found);
  EXPECT_EQ(stats.runs, 4u);
  EXPECT_EQ(stats.completed_runs, 4u);
  EXPECT_EQ(stats.plan_signature, PlanSignature(plan));
  ASSERT_EQ(stats.estimators.count("pmax"), 1u);
  EXPECT_EQ(stats.estimators.at("pmax").runs, 4u);
  EXPECT_NEAR(stats.estimators.at("pmax").RmsError(), 0.08, 1e-12);
  EXPECT_EQ(stats.workload.runs, 4u);
  std::filesystem::remove(path);
}

TEST(CrossRunRegistryTest, CompactCollapsesRunsAndPreservesAggregates) {
  std::string path = TempPath("registry_compact");
  std::filesystem::remove(path);
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  ASSERT_TRUE(registry.OpenLog(path).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        registry.RecordRun(MakeObs(11, plan, 400, {{"dne", 0.2}})).ok());
    ASSERT_TRUE(
        registry.RecordRun(MakeObs(22, plan, 700, {{"safe", 0.1}})).ok());
  }
  uint64_t before = registry.log_bytes();
  ASSERT_TRUE(registry.Compact().ok());
  EXPECT_LT(registry.log_bytes(), before);

  CrossRunRegistry reopened;
  RegistryRecoveryReport report;
  ASSERT_TRUE(reopened.OpenLog(path, {}, &report).ok());
  EXPECT_EQ(report.records_recovered, 2u);  // one aggregate per template
  EXPECT_EQ(reopened.num_templates(), 2u);
  CrossRunTemplateStats a = reopened.Lookup(11);
  CrossRunTemplateStats b = reopened.Lookup(22);
  EXPECT_EQ(a.runs, 10u);
  EXPECT_EQ(b.runs, 10u);
  EXPECT_NEAR(a.estimators.at("dne").AvgError(), 0.2, 1e-12);
  EXPECT_NEAR(b.estimators.at("safe").AvgError(), 0.1, 1e-12);
  EXPECT_NEAR(a.nodes.begin()->second.MeanActualRows(), 400.0, 1e-9);
  EXPECT_EQ(a.workload.runs, 10u);
  std::filesystem::remove(path);
}

TEST(CrossRunRegistryTest, ConcurrentRecordDuringCompactLosesNothing) {
  std::string path = TempPath("concurrent");
  std::filesystem::remove(path);
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  ASSERT_TRUE(registry.OpenLog(path).ok());

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 25;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      uint64_t fp = 100 + static_cast<uint64_t>(w);
      for (int i = 0; i < kRunsPerThread; ++i) {
        ASSERT_TRUE(registry
                        .RecordRun(MakeObs(fp, plan, 500,
                                           {{"dne", 0.1 + 0.01 * w}}))
                        .ok());
      }
    });
  }
  // Compact concurrently with the appends — the snapshot-and-rename must
  // never drop a recorded run.
  for (int c = 0; c < 5; ++c) ASSERT_TRUE(registry.Compact().ok());
  for (std::thread& w : workers) w.join();
  ASSERT_TRUE(registry.Compact().ok());

  CrossRunRegistry reopened;
  ASSERT_TRUE(reopened.OpenLog(path).ok());
  for (int w = 0; w < kThreads; ++w) {
    uint64_t fp = 100 + static_cast<uint64_t>(w);
    EXPECT_EQ(registry.Lookup(fp).runs,
              static_cast<uint64_t>(kRunsPerThread));
    EXPECT_EQ(reopened.Lookup(fp).runs,
              static_cast<uint64_t>(kRunsPerThread));
  }
  std::filesystem::remove(path);
}

TEST(CrossRunRegistryTest, SelectEstimatorPicksLowestHistoricalRms) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  const uint64_t kFp = 77;
  for (int i = 0; i < 3; ++i) {
    registry.Record(MakeObs(kFp, plan, 500,
                            {{"dne", 0.30},
                             {"dne_pessimistic", 0.25},
                             {"pmax", 0.04},
                             {"safe", 0.10},
                             {"hybrid", 0.15}}));
  }
  EXPECT_EQ(registry.SelectEstimator(kFp), "pmax");
  // Deterministic: the same state always yields the same pick.
  EXPECT_EQ(registry.SelectEstimator(kFp), "pmax");
}

TEST(CrossRunRegistryTest, SelectEstimatorColdFallback) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  EXPECT_EQ(registry.SelectEstimator(999), CrossRunRegistry::kColdFallback);
  // Two completed runs is below the default warmth gate of three.
  registry.Record(MakeObs(999, plan, 500, {{"pmax", 0.01}}));
  registry.Record(MakeObs(999, plan, 500, {{"pmax", 0.01}}));
  EXPECT_EQ(registry.SelectEstimator(999), CrossRunRegistry::kColdFallback);
  registry.Record(MakeObs(999, plan, 500, {{"pmax", 0.01}}));
  EXPECT_EQ(registry.SelectEstimator(999), "pmax");
}

TEST(CrossRunRegistryTest, SelectEstimatorTieBreaksOnCanonicalOrder) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  std::vector<std::pair<std::string, double>> tied;
  for (const std::string& name : CrossRunRegistry::SelectionCandidates()) {
    tied.emplace_back(name, 0.2);
  }
  for (int i = 0; i < 3; ++i) registry.Record(MakeObs(5, plan, 500, tied));
  EXPECT_EQ(registry.SelectEstimator(5),
            CrossRunRegistry::SelectionCandidates().front());
}

TEST(CrossRunRegistryTest, SignatureDriftRelearnsNodesKeepsWorkload) {
  Table t = Numbers(1000);
  PhysicalPlan plan_a = ScanFilterPlan(&t);
  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan plan_b{std::move(scan)};  // different shape, same template
  ASSERT_NE(PlanSignature(plan_a), PlanSignature(plan_b));

  CrossRunRegistry registry;
  for (int i = 0; i < 3; ++i) {
    registry.Record(MakeObs(1, plan_a, 500, {{"pmax", 0.01}}));
  }
  registry.Record(MakeObs(1, plan_b, 900));
  CrossRunTemplateStats stats = registry.Lookup(1);
  // Node and estimator history described the old tree — relearned.
  EXPECT_EQ(stats.plan_signature, PlanSignature(plan_b));
  EXPECT_EQ(stats.estimators.count("pmax"), 0u);
  EXPECT_NEAR(stats.nodes.begin()->second.MeanActualRows(), 900.0, 1e-9);
  // Workload history keys on the template's resource profile, not the plan
  // shape; admission priors survive the drift.
  EXPECT_EQ(stats.workload.runs, 4u);
  EXPECT_EQ(registry.SelectEstimator(1), CrossRunRegistry::kColdFallback);
}

TEST(CrossRunRegistryTest, ApplyPriorsReseedsEstimatedRows) {
  Table t = Numbers(1000);
  PhysicalPlan learned = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  for (int i = 0; i < 3; ++i) registry.Record(MakeObs(9, learned, 500));

  PhysicalPlan fresh = ScanFilterPlan(&t);
  for (const PhysicalOperator* op : fresh.nodes()) {
    ASSERT_LT(op->estimated_rows(), 0) << "fresh plan should be unseeded";
  }
  CrossRunPriorReport report = registry.ApplyPriors(9, &fresh);
  EXPECT_TRUE(report.had_history);
  EXPECT_FALSE(report.signature_mismatch);
  EXPECT_EQ(report.nodes_reseeded, static_cast<int>(fresh.num_nodes()));
  EXPECT_EQ(report.priors_rejected, 0);
  for (const PhysicalOperator* op : fresh.nodes()) {
    EXPECT_DOUBLE_EQ(op->estimated_rows(), 500.0);
  }
}

TEST(CrossRunRegistryTest, ApplyPriorsRejectsSignatureMismatch) {
  Table t = Numbers(1000);
  PhysicalPlan learned = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  for (int i = 0; i < 3; ++i) registry.Record(MakeObs(9, learned, 500));

  auto scan = std::make_unique<SeqScan>(&t);
  PhysicalPlan drifted{std::move(scan)};
  CrossRunPriorReport report = registry.ApplyPriors(9, &drifted);
  EXPECT_TRUE(report.signature_mismatch);
  EXPECT_FALSE(report.had_history);
  EXPECT_EQ(report.nodes_reseeded, 0);
  for (const PhysicalOperator* op : drifted.nodes()) {
    EXPECT_LT(op->estimated_rows(), 0) << "mismatched priors must not land";
  }
}

TEST(CrossRunRegistryTest, ApplyPriorsRejectsPoisonedPrior) {
  Table t = Numbers(1000);
  PhysicalPlan learned = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  // An "observed" cardinality far above what the plan can statically produce
  // in one pass — a poisoned or stale record must not be trusted.
  for (int i = 0; i < 3; ++i) {
    registry.Record(MakeObs(9, learned, 50'000'000));
  }
  PhysicalPlan fresh = ScanFilterPlan(&t);
  CrossRunPriorReport report = registry.ApplyPriors(9, &fresh);
  EXPECT_TRUE(report.had_history);
  EXPECT_EQ(report.nodes_reseeded, 0);
  EXPECT_EQ(report.priors_rejected, static_cast<int>(fresh.num_nodes()));
  for (const PhysicalOperator* op : fresh.nodes()) {
    EXPECT_LT(op->estimated_rows(), 0);
  }
}

TEST(CrossRunRegistryTest, ApplyPriorsColdTemplateIsANoOp) {
  Table t = Numbers(1000);
  PhysicalPlan fresh = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  CrossRunPriorReport report = registry.ApplyPriors(424242, &fresh);
  EXPECT_FALSE(report.had_history);
  EXPECT_EQ(report.nodes_reseeded, 0);
}

TEST(CrossRunRegistryTest, WorkloadStatsRoundTripMatchesDirectRecording) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  WorkloadStatsRegistry direct;
  for (int i = 0; i < 5; ++i) {
    CrossRunObservation obs = MakeObs(3, plan, 100 + 10 * i);
    obs.workload.work = 1000 + static_cast<uint64_t>(i);
    obs.workload.peak_buffered_rows = 64 + static_cast<uint64_t>(8 * i);
    registry.Record(obs);
    direct.Record(3, obs.workload);
  }
  WorkloadStatsRegistry exported;
  registry.ExportWorkloadStats(&exported);

  WorkloadStats want = direct.Lookup(3);
  WorkloadStats got = exported.Lookup(3);
  // The admission controller predicts from these aggregates; recovery must
  // reproduce them exactly, figure for figure.
  EXPECT_EQ(got.runs, want.runs);
  EXPECT_EQ(got.completed_runs, want.completed_runs);
  EXPECT_EQ(got.total_work, want.total_work);
  EXPECT_EQ(got.total_peak_buffered_rows, want.total_peak_buffered_rows);
  EXPECT_EQ(got.max_peak_buffered_rows, want.max_peak_buffered_rows);
  EXPECT_EQ(got.max_work, want.max_work);
  EXPECT_EQ(got.MeanPeakBufferedRows(), want.MeanPeakBufferedRows());
}

TEST(CrossRunRegistryTest, WorstOffendersRankedByRmsLogError) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  // Template 1 estimates perfectly; template 2 is off by 10x on every node.
  CrossRunObservation good = MakeObs(1, plan, 500);
  CrossRunObservation bad = MakeObs(2, plan, 500);
  for (auto& node : bad.nodes) node.estimated_rows = 50;
  registry.Record(good);
  registry.Record(bad);

  std::vector<CrossRunRegistry::Offender> offenders =
      registry.WorstOffenders(4);
  ASSERT_EQ(offenders.size(), 4u);
  // Both of the bad template's nodes outrank both of the good template's.
  EXPECT_EQ(offenders[0].fingerprint, 2u);
  EXPECT_EQ(offenders[1].fingerprint, 2u);
  EXPECT_GT(offenders[1].rms_log_error, offenders[2].rms_log_error);
  EXPECT_EQ(offenders[3].fingerprint, 1u);
  EXPECT_DOUBLE_EQ(offenders[3].rms_log_error, 0.0);
}

TEST(CrossRunRegistryTest, ToJsonIsDeterministic) {
  Table t = Numbers(1000);
  PhysicalPlan plan = ScanFilterPlan(&t);
  CrossRunRegistry registry;
  registry.Record(MakeObs(0xb, plan, 500, {{"dne", 0.2}}));
  registry.Record(MakeObs(0xa, plan, 300, {{"safe", 0.1}}));
  std::string json = registry.ToJson();
  EXPECT_EQ(json, registry.ToJson());
  EXPECT_NE(json.find("\"templates\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Auto selection end to end: session and server
// ---------------------------------------------------------------------------

class RegistrySqlTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    std::vector<Row> rows;
    for (int64_t i = 0; i < 2000; ++i) {
      rows.push_back({testutil::I(i / 40), testutil::I(i)});
    }
    Table t = testutil::MakeTable("t", {"k", "v"}, std::move(rows));
    QPROG_CHECK(db_->AddTable(std::move(t)).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* RegistrySqlTest::db_ = nullptr;

const char kRegistryQuery[] = "SELECT k, count(*) FROM t GROUP BY k";

TEST_F(RegistrySqlTest, SessionResolvesAutoAfterWarmup) {
  CrossRunRegistry registry;
  MetricsRegistry metrics;
  sql::SessionOptions so;
  so.cross_run = &registry;
  so.metrics_registry = &metrics;
  so.checkpoint_interval = 200;
  so.estimators = CrossRunRegistry::SelectionCandidates();
  sql::SqlSession session(db_, so);

  // Cold: "auto" wraps the fallback before any history exists.
  sql::QueryOptions auto_q;
  auto_q.estimators = {"auto"};
  StatusOr<ProgressReport> cold = session.ExecuteMonitored(kRegistryQuery,
                                                           auto_q);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold.value().completed());
  ASSERT_EQ(cold.value().names.size(), 1u);
  EXPECT_EQ(cold.value().names[0], "auto");

  // Warm-up: three runs scoring every candidate on this template.
  for (int i = 0; i < 3; ++i) {
    StatusOr<ProgressReport> r = session.ExecuteMonitored(kRegistryQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r.value().completed());
  }
  uint64_t fp = sql::TemplateFingerprint(kRegistryQuery);
  std::string pick = registry.SelectEstimator(fp);
  const auto& candidates = CrossRunRegistry::SelectionCandidates();
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), pick),
            candidates.end())
      << "warm template must pick a real candidate, got " << pick;

  // Warm: the auto run resolves to the pick and the plan is re-seeded from
  // observed priors (visible via the metrics breadcrumb).
  StatusOr<ProgressReport> warm = session.ExecuteMonitored(kRegistryQuery,
                                                           auto_q);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm.value().completed());
  EXPECT_GT(metrics.counter("cross_run.nodes_reseeded"), 0u);
  EXPECT_EQ(metrics.counter("cross_run.signature_mismatch"), 0u);
}

TEST_F(RegistrySqlTest, SessionSurvivesRegistryRestart) {
  std::string path = TempPath("session_restart");
  std::filesystem::remove(path);
  uint64_t fp = sql::TemplateFingerprint(kRegistryQuery);
  std::string pick_before;
  {
    CrossRunRegistry registry;
    ASSERT_TRUE(registry.OpenLog(path).ok());
    sql::SessionOptions so;
    so.cross_run = &registry;
    so.checkpoint_interval = 200;
    so.estimators = CrossRunRegistry::SelectionCandidates();
    sql::SqlSession session(db_, so);
    for (int i = 0; i < 3; ++i) {
      StatusOr<ProgressReport> r = session.ExecuteMonitored(kRegistryQuery);
      ASSERT_TRUE(r.ok()) << r.status();
    }
    pick_before = registry.SelectEstimator(fp);
  }
  // "Restart": a fresh registry replays the log and reaches the same pick —
  // the selection history survived the process boundary.
  CrossRunRegistry recovered;
  ASSERT_TRUE(recovered.OpenLog(path).ok());
  EXPECT_EQ(recovered.CompletedRunsFor(fp), 3u);
  EXPECT_EQ(recovered.SelectEstimator(fp), pick_before);
  std::filesystem::remove(path);
}

TEST_F(RegistrySqlTest, ServerResolvesAutoPickAtSubmitTime) {
  CrossRunRegistry registry;
  ServerOptions opts;
  opts.sessions = 1;
  opts.checkpoint_interval = 200;
  opts.cross_run = &registry;
  QueryServer server(db_, opts);

  // Warm-up submissions score every candidate.
  SubmitOptions warmup;
  warmup.estimators = CrossRunRegistry::SelectionCandidates();
  for (int i = 0; i < 3; ++i) {
    QueryResult r = server.Wait(server.Submit("acme", kRegistryQuery, warmup));
    ASSERT_TRUE(r.status.ok()) << r.status;
    ASSERT_TRUE(r.report.completed());
  }
  uint64_t fp = sql::TemplateFingerprint(kRegistryQuery);
  std::string expected = registry.SelectEstimator(fp);

  SubmitOptions auto_opts;
  auto_opts.estimators = {"auto"};
  QueryResult r = server.Wait(server.Submit("acme", kRegistryQuery,
                                            auto_opts));
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_TRUE(r.report.completed());
  ASSERT_EQ(r.report.names.size(), 1u);
  EXPECT_EQ(r.report.names[0], "auto");
  // The submit-time pick is stable against later registry updates.
  EXPECT_EQ(registry.SelectEstimator(fp), expected);
}

// ---------------------------------------------------------------------------
// CreateEstimator("auto") surface
// ---------------------------------------------------------------------------

TEST(AutoEstimatorTest, FactoryWrapsInnerSpec) {
  auto bare = CreateEstimator("auto");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_EQ(bare.value()->name(), "auto");
  auto* wrapped = static_cast<AutoEstimator*>(bare.value().get());
  EXPECT_EQ(wrapped->pick(), CrossRunRegistry::kColdFallback);

  auto picked = CreateEstimator("auto:pmax");
  ASSERT_TRUE(picked.ok()) << picked.status();
  EXPECT_EQ(static_cast<AutoEstimator*>(picked.value().get())->pick(),
            "pmax");

  EXPECT_FALSE(CreateEstimator("auto:auto").ok());
  EXPECT_FALSE(CreateEstimator("auto:auto:pmax").ok());
  EXPECT_FALSE(CreateEstimator("auto:not_an_estimator").ok());
}

}  // namespace
}  // namespace qprog

namespace qprog {
namespace {

/// Crash-child protocol: append + fsync records forever, acking each durable
/// record on stdout. The parent SIGKILLs us mid-stream; exit codes signal
/// setup failures only.
int RunCrashChild(const char* path) {
  auto log = RegistryLog::Open(path);
  if (!log.ok()) return 2;
  for (int i = 0; i < 1000000; ++i) {
    if (!log.value()->Append(CrashChildPayload(i)).ok()) return 3;
    if (!log.value()->Sync().ok()) return 4;
    std::printf("ACK %d\n", i);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace qprog

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--crash-child") == 0) {
    return qprog::RunCrashChild(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
