// Intra-query parallelism tests (DESIGN.md §10): worker-pool and lane
// primitives, bit-identical results and byte-identical traces at every pool
// size, consistent and monotone (Curr, LB, UB) under concurrency, clean
// cancellation mid-merge, the two-level parallel sort merge, and the spill
// block codec (round trips, corruption handling, stored-raw fallback).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/fault_injector.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/spill_codec.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::S;
using testutil::Sorted;

/// Every plan execution in this file goes through the unified driver;
/// this adapter keeps the StatusOr shape the assertions expect.
StatusOr<std::vector<Row>> DriveRows(PhysicalPlan* plan, ExecContext* ctx) {
  exec::DriveResult r = exec::Drive(plan, {.ctx = ctx, .collect_rows = true});
  if (!r.ok()) return r.status;
  return std::move(r.rows);
}

const int kPoolSizes[] = {1, 2, 4, 8};

std::string MakeSpillDir(const std::string& tag) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("qprog_parallel_test_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

int CountSpillFiles(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(SpillFile::kFilePrefix, 0) ==
        0) {
      ++n;
    }
  }
  return n;
}

/// n rows of (i mod buckets, i), anti-sorted so merges must interleave.
Table Keyed(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) rows.push_back({I(i % buckets), I(i)});
  return testutil::MakeTable("k", {"k", "v"}, std::move(rows));
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build,
                      JoinType type = JoinType::kInner) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(probe), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk), type));
}

/// Collects `make_plan`'s rows under a spilling budget, optionally on a pool
/// and optionally under a finite kill threshold.
StatusOr<std::vector<Row>> RunSpilling(
    const std::function<PhysicalPlan()>& make_plan, uint64_t soft_budget,
    const std::string& tag, int pool_threads, uint64_t* spill_runs = nullptr,
    uint64_t kill_budget = QueryGuard::kNoLimit) {
  std::string dir = MakeSpillDir(tag);
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(soft_budget);
  guard.set_max_buffered_rows_kill(kill_budget);
  PhysicalPlan plan = make_plan();
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  std::unique_ptr<WorkerPool> pool;
  if (pool_threads > 0) {
    pool = std::make_unique<WorkerPool>(pool_threads);
    ctx.set_worker_pool(pool.get());
  }
  StatusOr<std::vector<Row>> rows = DriveRows(&plan, &ctx);
  EXPECT_GT(spill.stats().runs_created, 0u) << tag << ": nothing spilled";
  EXPECT_EQ(spill.live_runs(), 0u) << tag;
  EXPECT_EQ(ctx.buffered_rows(), 0u) << tag;
  EXPECT_EQ(CountSpillFiles(dir), 0) << tag;
  if (spill_runs != nullptr) *spill_runs = spill.stats().runs_created;
  std::filesystem::remove_all(dir);
  return rows;
}

// ---------------------------------------------------------------------------
// Pool primitives
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTaskOnceAndWaitsIdempotently) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  TaskGroup group(&pool);
  std::atomic<int> hits{0};
  for (int i = 0; i < 64; ++i) {
    group.Submit([&hits] { hits.fetch_add(1); });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(hits.load(), 64);
  EXPECT_TRUE(group.Wait().ok());  // idempotent, nothing pending
}

TEST(WorkerPoolTest, ThreadCountClampsToAtLeastOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  TaskGroup group(&pool);
  std::atomic<int> hits{0};
  group.Submit([&hits] { hits.fetch_add(1); });
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(hits.load(), 1);
}

TEST(WorkerPoolTest, EscapedExceptionSurfacesAsInternal) {
  WorkerPool pool(2);
  TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("task blew up"); });
  Status s = group.Wait();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("task blew up"), std::string::npos) << s;
}

TEST(WorkerPoolTest, LanesSerializeInSubmissionOrder) {
  // Tasks in one lane run one at a time in submission order, so each lane's
  // log — appended without any locking by the tasks themselves — must come
  // out exactly 0,1,2,... even with more lanes than threads.
  WorkerPool pool(3);
  constexpr int kLanes = 8;
  constexpr int kPerLane = 50;
  std::vector<std::vector<int>> logs(kLanes);
  {
    TaskGroup group(&pool);
    for (int i = 0; i < kPerLane; ++i) {
      for (int lane = 0; lane < kLanes; ++lane) {
        group.SubmitToLane(static_cast<uint64_t>(lane),
                           [&logs, lane, i] { logs[lane].push_back(i); });
      }
    }
    EXPECT_TRUE(group.Wait().ok());
  }
  for (int lane = 0; lane < kLanes; ++lane) {
    ASSERT_EQ(logs[lane].size(), static_cast<size_t>(kPerLane)) << lane;
    for (int i = 0; i < kPerLane; ++i) {
      ASSERT_EQ(logs[lane][static_cast<size_t>(i)], i)
          << "lane " << lane << " ran out of order";
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: identical rows, totals, and traces at every pool size
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, SortRowsMatchSerialAtEveryPoolSize) {
  Table t = Keyed(900, 101);
  auto make = [&] { return SortPlan(&t); };
  StatusOr<std::vector<Row>> serial = RunSpilling(make, 60, "sort_serial", 0);
  ASSERT_TRUE(serial.ok()) << serial.status();
  std::string expected = testutil::RowsToString(serial.value());
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got =
        RunSpilling(make, 60, "sort_p" + std::to_string(threads), threads);
    ASSERT_TRUE(got.ok()) << got.status();
    // Byte-identical, order included: the parallel two-level merge must
    // preserve the serial engine's stable output exactly.
    EXPECT_EQ(testutil::RowsToString(got.value()), expected);
  }
}

TEST(ParallelDeterminismTest, GraceJoinRowsMatchSerialForEveryJoinType) {
  Table probe = Keyed(400, 60);
  Table build = Keyed(500, 60);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    SCOPED_TRACE(JoinTypeToString(type));
    auto make = [&] { return JoinPlan(&probe, &build, type); };
    // In-memory reference: the multiset of rows must survive Grace mode.
    PhysicalPlan mem_plan = make();
    ExecContext mem_ctx;
    StatusOr<std::vector<Row>> mem = DriveRows(&mem_plan, &mem_ctx);
    ASSERT_TRUE(mem.ok()) << mem.status();
    // Serial Grace replay: the row-for-row reference for the parallel join.
    StatusOr<std::vector<Row>> serial =
        RunSpilling(make, 64, "join_serial", 0);
    ASSERT_TRUE(serial.ok()) << serial.status();
    EXPECT_EQ(testutil::RowsToString(Sorted(serial.value())),
              testutil::RowsToString(Sorted(mem.value())));
    std::string expected = testutil::RowsToString(serial.value());
    for (int threads : kPoolSizes) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      StatusOr<std::vector<Row>> got =
          RunSpilling(make, 64, "join_p" + std::to_string(threads), threads);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(testutil::RowsToString(got.value()), expected);
    }
  }
}

TEST(ParallelDeterminismTest, TracesAndScoresAreByteIdenticalAcrossPoolSizes) {
  // The strongest statement of the fold design: the full typed trace — every
  // checkpoint, spill event, bound refinement and estimator evaluation — is
  // byte-identical at every pool size, so estimator scores replayed from a
  // parallel run's trace are the scores of the 1-thread run.
  Table t = Keyed(800, 97);
  std::string reference_trace;
  std::string reference_tsv;
  uint64_t reference_total = 0;
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::string dir = MakeSpillDir("trace_p" + std::to_string(threads));
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    WorkerPool pool(threads);
    PhysicalPlan plan = SortPlan(&t);
    JsonlStringSink sink;
    TelemetryCollector collector(&sink);
    MonitorOptions mo;
    mo.guard = &guard;
    mo.spill_manager = &spill;
    mo.worker_pool = &pool;
    mo.telemetry = &collector;
    ProgressMonitor m =
        ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
    ProgressReport r = m.Run(100);
    ASSERT_TRUE(r.completed()) << r.status.ToString();
    EXPECT_GT(spill.stats().runs_created, 0u);
    if (reference_trace.empty()) {
      reference_trace = sink.data();
      reference_tsv = r.ToTsv();
      reference_total = r.total_work;
      EXPECT_FALSE(reference_trace.empty());
    } else {
      EXPECT_EQ(sink.data(), reference_trace) << "trace diverged";
      EXPECT_EQ(r.ToTsv(), reference_tsv) << "estimator scores diverged";
      EXPECT_EQ(r.total_work, reference_total) << "total(Q) diverged";
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(ParallelDeterminismTest, BoundsStayConsistentAndMonotoneUnderPool) {
  Table t = Keyed(1000, 131);
  std::string dir = MakeSpillDir("bounds");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  WorkerPool pool(4);
  PhysicalPlan plan = SortPlan(&t);
  MonitorOptions mo;
  mo.guard = &guard;
  mo.spill_manager = &spill;
  mo.worker_pool = &pool;
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
  ProgressReport r = m.Run(64);
  ASSERT_TRUE(r.completed()) << r.status.ToString();
  ASSERT_FALSE(r.checkpoints.empty());
  EXPECT_GT(spill.stats().runs_created, 0u);
  uint64_t prev_work = 0;
  double prev_lb = 0, prev_ub = 0;
  for (const Checkpoint& cp : r.checkpoints) {
    // Consistency: the paper's invariant at the instant of the checkpoint.
    EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9)
        << "at work=" << cp.work;
    EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9) << "at work=" << cp.work;
    EXPECT_LE(cp.work_lb, static_cast<double>(r.total_work) + 1e-9)
        << "LB exceeded the final total at work=" << cp.work;
    // Monotonicity: folding task shards must never move a bound backwards —
    // the operator-side pending counters advance only after each fold.
    EXPECT_GE(cp.work, prev_work);
    EXPECT_GE(cp.work_lb, prev_lb - 1e-9) << "LB regressed at " << cp.work;
    EXPECT_GE(cp.work_ub, prev_ub - 1e-9) << "UB regressed at " << cp.work;
    prev_work = cp.work;
    prev_lb = cp.work_lb;
    prev_ub = cp.work_ub;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Two-level merge and cancellation
// ---------------------------------------------------------------------------

TEST(ParallelSortTest, TwoLevelMergeTriggersAboveFanInAndStaysStable) {
  // 1200 rows against a 50-row budget: ~24 level-0 runs, far above
  // kMergeFanIn = 8, so the pool path must interpose "sort.merge"
  // intermediate runs — and still preserve stable (key, arrival) order.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1200; ++i) rows.push_back({I(i % 7), I(i)});
  Table t = testutil::MakeTable("t", {"k", "arrival"}, std::move(rows));
  std::string dir = MakeSpillDir("twolevel");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  WorkerPool pool(4);
  PhysicalPlan plan = SortPlan(&t);
  JsonlStringSink sink;
  TelemetryCollector collector(&sink);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ctx.set_worker_pool(&pool);
  ctx.set_telemetry(&collector);
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got.value().size(), 1200u);
  int64_t prev_key = -1, prev_arrival = -1;
  for (const Row& r : got.value()) {
    int64_t key = r[0].int64_value(), arrival = r[1].int64_value();
    if (key == prev_key) {
      EXPECT_LT(prev_arrival, arrival) << "merge not stable at key " << key;
    } else {
      EXPECT_LT(prev_key, key);
    }
    prev_key = key;
    prev_arrival = arrival;
  }
  EXPECT_NE(sink.data().find("sort.merge"), std::string::npos)
      << "two-level merge never produced an intermediate run";
  EXPECT_EQ(spill.live_runs(), 0u);
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(ParallelSortTest, CancellationMidMergeLeavesNoResidue) {
  Table t = Keyed(1500, 113);
  std::string dir = MakeSpillDir("cancel");
  SpillManager spill(dir);
  QueryGuard guard;
  guard.set_max_buffered_rows(50);
  guard.set_check_interval(64);
  WorkerPool pool(4);
  PhysicalPlan plan = SortPlan(&t);
  ExecContext ctx;
  ctx.set_guard(&guard);
  ctx.set_spill_manager(&spill);
  ctx.set_worker_pool(&pool);
  // 1500 scan rows land first; cancelling past that puts the stop inside the
  // spill-merge work that tasks are folding back.
  ctx.SetWorkObserver(64, [&](uint64_t work) {
    if (work >= 2048) guard.RequestCancel();
  });
  StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
  ASSERT_FALSE(got.ok()) << "cancellation ignored";
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << got.status();
  EXPECT_GT(spill.stats().runs_created, 0u);
  EXPECT_EQ(spill.live_runs(), 0u) << "cancelled run leaked spill runs";
  EXPECT_EQ(ctx.buffered_rows(), 0u) << "cancelled run leaked charges";
  EXPECT_EQ(CountSpillFiles(dir), 0) << "cancelled run leaked temp files";
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Bounded memory under a finite kill threshold (DESIGN.md §10)
// ---------------------------------------------------------------------------

TEST(ParallelMemoryBoundTest, HighMultiplicityJoinOverflowsOutputToSideRuns) {
  // 8 build rows per key x 8 probe rows per key -> 3200 output rows from 400
  // probe rows. Materializing that wholesale would blow through a 600-row
  // kill threshold; instead the shared budget's output allowance (600/16 =
  // 37 rows per partition) pushes the bulk of each partition's output into
  // unaccounted side runs. Rows must still match the serial replay exactly,
  // in order, and nothing may leak.
  Table probe = Keyed(400, 50);
  Table build = Keyed(400, 50);
  auto make = [&] { return JoinPlan(&probe, &build, JoinType::kInner); };
  StatusOr<std::vector<Row>> serial =
      RunSpilling(make, 64, "mult_serial", 0, nullptr, 600);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_EQ(serial.value().size(), 3200u);
  std::string expected = testutil::RowsToString(serial.value());
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got = RunSpilling(
        make, 64, "mult_p" + std::to_string(threads), threads, nullptr, 600);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(testutil::RowsToString(got.value()), expected);
  }
  // The kill threshold is what forces output overflow: the same parallel run
  // without it keeps all output in memory and creates only partition runs.
  uint64_t runs_unbounded = 0;
  uint64_t runs_bounded = 0;
  ASSERT_TRUE(RunSpilling(make, 64, "mult_nokill", 4, &runs_unbounded).ok());
  ASSERT_TRUE(
      RunSpilling(make, 64, "mult_kill", 4, &runs_bounded, 600).ok());
  EXPECT_GT(runs_bounded, runs_unbounded) << "no overflow side runs created";
}

TEST(ParallelMemoryBoundTest, TightKillThresholdSerializesPartitionAdmission) {
  // ~62-row partition builds against a 150-row budget: the ordered
  // all-or-nothing admission lets at most two partition joins hold memory at
  // once and must serialize the rest without deadlock at any pool size —
  // with rows identical to the serial one-at-a-time replay.
  Table probe = Keyed(400, 60);
  Table build = Keyed(500, 60);
  auto make = [&] { return JoinPlan(&probe, &build, JoinType::kInner); };
  StatusOr<std::vector<Row>> serial =
      RunSpilling(make, 64, "tight_serial", 0, nullptr, 150);
  ASSERT_TRUE(serial.ok()) << serial.status();
  std::string expected = testutil::RowsToString(serial.value());
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got = RunSpilling(
        make, 64, "tight_p" + std::to_string(threads), threads, nullptr, 150);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(testutil::RowsToString(got.value()), expected);
  }
}

TEST(ParallelMemoryBoundTest, OversizedPartitionTripsKillLikeSerial) {
  // Every build row shares one key, so a single partition holds all 400
  // rows — more than the whole 120-row kill budget. The budget admits the
  // oversized partition alone (capped reservation) and the task's kill
  // tripwire must then fire exactly like the serial reload, at every pool
  // size, leaking nothing.
  Table probe = Keyed(50, 1);
  Table build = Keyed(400, 1);
  auto make = [&] { return JoinPlan(&probe, &build, JoinType::kInner); };
  StatusOr<std::vector<Row>> serial =
      RunSpilling(make, 64, "skew_serial", 0, nullptr, 120);
  ASSERT_FALSE(serial.ok()) << "serial run should trip the kill threshold";
  EXPECT_EQ(serial.status().code(), StatusCode::kResourceExhausted);
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got = RunSpilling(
        make, 64, "skew_p" + std::to_string(threads), threads, nullptr, 120);
    ASSERT_FALSE(got.ok()) << "parallel run must honor the same kill contract";
    EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
        << got.status();
  }
}

TEST(ParallelMemoryBoundTest, SortKillThresholdBoundsHandedOffBuffers) {
  // Kill just above the soft budget: the sort's handed-off run buffers
  // (uncharged by design) would stack up to kInflightRunTasks x soft without
  // the early-fold bound. With it, flush_buffer folds before the uncharged
  // aggregate can pass the kill threshold — and the output must stay
  // byte-identical to the serial sort at every pool size.
  Table t = Keyed(900, 101);
  auto make = [&] { return SortPlan(&t); };
  StatusOr<std::vector<Row>> serial =
      RunSpilling(make, 60, "sortkill_serial", 0, nullptr, 100);
  ASSERT_TRUE(serial.ok()) << serial.status();
  std::string expected = testutil::RowsToString(serial.value());
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got =
        RunSpilling(make, 60, "sortkill_p" + std::to_string(threads), threads,
                    nullptr, 100);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(testutil::RowsToString(got.value()), expected);
  }
}

TEST(ParallelMemoryBoundTest, PermanentWriteFaultFailsFastAndCleans) {
  // A permanent spill.write fault (the disk-full model) fires in the first
  // write batch of every forked task injector: the PartitionWriter's failed
  // flag must stop the operator from feeding further doomed batches, surface
  // the injected error, and leave no charges, runs or temp files behind.
  Table probe = Keyed(400, 60);
  Table build = Keyed(500, 60);
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::string dir = MakeSpillDir("wfault_p" + std::to_string(threads));
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    FaultInjector fi(7);
    FaultSpec spec;
    spec.site = faults::kSpillWrite;
    spec.fail_on_hit = 1;
    fi.Arm(spec);
    WorkerPool pool(threads);
    PhysicalPlan plan = JoinPlan(&probe, &build, JoinType::kInner);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_worker_pool(&pool);
    ctx.set_fault_injector(&fi);
    StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
    ASSERT_FALSE(got.ok()) << "injected write fault ignored";
    EXPECT_EQ(got.status().code(), StatusCode::kInternal) << got.status();
    EXPECT_EQ(spill.live_runs(), 0u) << "failed run leaked spill runs";
    EXPECT_EQ(ctx.buffered_rows(), 0u) << "failed run leaked charges";
    EXPECT_EQ(CountSpillFiles(dir), 0) << "failed run leaked temp files";
    std::filesystem::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Recursive Grace partitioning (DESIGN.md §9)
// ---------------------------------------------------------------------------

/// Distinct int64 keys whose single-column key row hashes into depth-0 Grace
/// partition 0, so every build row collides into one oversized partition that
/// only the depth-salted re-split can spread.
std::vector<int64_t> PartitionZeroKeys(size_t want) {
  std::vector<int64_t> keys;
  for (int64_t k = 0; keys.size() < want; ++k) {
    if (RowHash()(Row{I(k)}) %
            static_cast<size_t>(HashJoin::kSpillFanout) ==
        0) {
      keys.push_back(k);
    }
  }
  return keys;
}

/// Build/probe pair engineered for depth-2 recursion under a 150-row kill
/// threshold: 200 distinct partition-0 keys x 8 build copies = 1600 rows in
/// one depth-0 partition. A single salted re-split leaves ~200-row children,
/// and by pigeonhole (8 x 150 < 1600) at least one child must still exceed
/// the headroom — the run can only complete through depth >= 2 leaves.
std::pair<Table, Table> DepthTwoTables() {
  std::vector<int64_t> keys = PartitionZeroKeys(200);
  std::vector<Row> brows, prows;
  for (int64_t k : keys) {
    for (int64_t i = 0; i < 8; ++i) brows.push_back({I(k), I(i)});
    for (int64_t i = 0; i < 2; ++i) prows.push_back({I(k), I(100 + i)});
  }
  return {testutil::MakeTable("b", {"k", "v"}, std::move(brows)),
          testutil::MakeTable("p", {"k", "v"}, std::move(prows))};
}

TEST(RecursiveGraceTest, DepthTwoResplitMatchesSerialAtEveryPoolSize) {
  auto [build, probe] = DepthTwoTables();
  auto make = [&] { return JoinPlan(&probe, &build, JoinType::kInner); };
  StatusOr<std::vector<Row>> serial =
      RunSpilling(make, 64, "grace2_serial", 0, nullptr, 150);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_EQ(serial.value().size(), 200u * 2 * 8);
  std::string expected = testutil::RowsToString(serial.value());
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StatusOr<std::vector<Row>> got = RunSpilling(
        make, 64, "grace2_p" + std::to_string(threads), threads, nullptr, 150);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(testutil::RowsToString(got.value()), expected);
  }
}

TEST(RecursiveGraceTest, DepthTwoTracesCarryDepthAndMatchAcrossPoolSizes) {
  // The refinement happens on the query thread, so the full trace — including
  // the spill_begin events that carry each child run's recursion depth — must
  // be byte-identical at every pool size, and the v3 depth field must show
  // the re-splits actually reaching depth 2.
  auto [build, probe] = DepthTwoTables();
  std::string reference;
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::string dir = MakeSpillDir("grace2_trace_p" + std::to_string(threads));
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    guard.set_max_buffered_rows_kill(150);
    WorkerPool pool(threads);
    PhysicalPlan plan = JoinPlan(&probe, &build, JoinType::kInner);
    JsonlStringSink sink;
    TelemetryCollector collector(&sink);
    MonitorOptions options;
    options.guard = &guard;
    options.spill_manager = &spill;
    options.worker_pool = &pool;
    options.telemetry = &collector;
    ProgressMonitor m = ProgressMonitor::WithEstimators(
        &plan, {"dne", "pmax", "safe"}, std::move(options));
    ProgressReport r = m.Run(200);
    ASSERT_TRUE(r.completed()) << r.status.ToString();
    if (reference.empty()) {
      reference = sink.data();
      EXPECT_NE(reference.find("\"depth\":1"), std::string::npos)
          << "no depth-1 re-split in the trace";
      EXPECT_NE(reference.find("\"depth\":2"), std::string::npos)
          << "no depth-2 re-split in the trace";
    } else {
      EXPECT_EQ(sink.data(), reference) << "trace diverged";
    }
    std::filesystem::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Parallel HashAggregate spilled-partition replay (DESIGN.md §9)
// ---------------------------------------------------------------------------

PhysicalPlan AggPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "total");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"g"}, std::move(aggs)));
}

TEST(ParallelAggregateTest, ReplayRowsMatchSerialAtEveryPoolSize) {
  // 300 groups against a 60-group budget: most groups land in spilled
  // partitions and come back through the replay tasks. Output must be
  // byte-identical to the serial one-partition-at-a-time replay — both
  // unconstrained and under a kill threshold that forces the shared budget's
  // output allowance to push result rows into side runs.
  Table t = Keyed(900, 300);
  auto make = [&] { return AggPlan(&t); };
  for (uint64_t kill : {QueryGuard::kNoLimit, uint64_t{200}}) {
    SCOPED_TRACE(kill == QueryGuard::kNoLimit ? "no-kill" : "kill=200");
    std::string tag = kill == QueryGuard::kNoLimit ? "agg" : "aggk";
    StatusOr<std::vector<Row>> serial =
        RunSpilling(make, 60, tag + "_serial", 0, nullptr, kill);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_EQ(serial.value().size(), 300u);
    std::string expected = testutil::RowsToString(serial.value());
    for (int threads : kPoolSizes) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      StatusOr<std::vector<Row>> got = RunSpilling(
          make, 60, tag + "_p" + std::to_string(threads), threads, nullptr,
          kill);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(testutil::RowsToString(got.value()), expected);
    }
  }
}

TEST(ParallelAggregateTest, TracesAndScoresMatchAcrossPoolSizes) {
  Table t = Keyed(900, 300);
  std::string reference_trace;
  std::string reference_tsv;
  for (int threads : kPoolSizes) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::string dir = MakeSpillDir("aggtrace_p" + std::to_string(threads));
    SpillManager spill(dir);
    QueryGuard guard;
    guard.set_max_buffered_rows(60);
    WorkerPool pool(threads);
    PhysicalPlan plan = AggPlan(&t);
    JsonlStringSink sink;
    TelemetryCollector collector(&sink);
    MonitorOptions options;
    options.guard = &guard;
    options.spill_manager = &spill;
    options.worker_pool = &pool;
    options.telemetry = &collector;
    ProgressMonitor m = ProgressMonitor::WithEstimators(
        &plan, {"dne", "dne_pessimistic", "safe"}, std::move(options));
    ProgressReport r = m.Run(100);
    ASSERT_TRUE(r.completed()) << r.status.ToString();
    EXPECT_GT(spill.stats().runs_created, 0u);
    if (reference_trace.empty()) {
      reference_trace = sink.data();
      reference_tsv = r.ToTsv();
      EXPECT_FALSE(reference_trace.empty());
    } else {
      EXPECT_EQ(sink.data(), reference_trace) << "trace diverged";
      EXPECT_EQ(r.ToTsv(), reference_tsv) << "estimator scores diverged";
    }
    std::filesystem::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// Spill block codec
// ---------------------------------------------------------------------------

std::string RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.Uniform(256)));
  }
  return s;
}

TEST(SpillCodecTest, RoundTripsEveryShapeOfInput) {
  std::vector<std::pair<const char*, std::string>> cases;
  cases.emplace_back("empty", "");
  cases.emplace_back("tiny", "abc");
  cases.emplace_back("zeros", std::string(4096, '\0'));
  std::string repeated;
  for (int i = 0; i < 500; ++i) {
    repeated += "orderkey=" + std::to_string(i % 13) + "|status=OK|";
  }
  cases.emplace_back("repetitive", repeated);
  cases.emplace_back("random", RandomBytes(8192, 42));
  for (const auto& [name, raw] : cases) {
    SCOPED_TRACE(name);
    std::string compressed;
    size_t n = SpillCompressBlock(raw.data(), raw.size(), &compressed);
    ASSERT_EQ(n, compressed.size());
    EXPECT_LE(n, SpillCompressBound(raw.size()));
    std::string back;
    Status s = SpillDecompressBlock(compressed.data(), compressed.size(),
                                    raw.size(), &back);
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_EQ(back, raw);
  }
  // The whole point: repetitive row data compresses hard.
  std::string compressed;
  SpillCompressBlock(repeated.data(), repeated.size(), &compressed);
  EXPECT_LT(compressed.size() * 2, repeated.size())
      << "repetitive input did not compress 2x";
}

TEST(SpillCodecTest, MalformedStreamsFailCleanly) {
  std::string raw;
  for (int i = 0; i < 300; ++i) raw += "pattern-" + std::to_string(i % 9);
  std::string compressed;
  SpillCompressBlock(raw.data(), raw.size(), &compressed);
  std::string out;
  // Truncation at every prefix length must fail, never crash or hang.
  for (size_t cut : {size_t{0}, size_t{1}, compressed.size() / 2,
                     compressed.size() - 1}) {
    SCOPED_TRACE(cut);
    out.clear();
    Status s = SpillDecompressBlock(compressed.data(), cut, raw.size(), &out);
    EXPECT_EQ(s.code(), StatusCode::kInternal) << "cut=" << cut;
  }
  // A declared size that disagrees with the stream is corruption.
  out.clear();
  EXPECT_EQ(SpillDecompressBlock(compressed.data(), compressed.size(),
                                 raw.size() - 1, &out)
                .code(),
            StatusCode::kInternal);
  out.clear();
  EXPECT_EQ(SpillDecompressBlock(compressed.data(), compressed.size(),
                                 raw.size() + 1, &out)
                .code(),
            StatusCode::kInternal);
  // A match offset pointing before the start of the window: token with
  // lit_len=1, match_len=4+1, literal 'A', offset 5 > 1 byte produced.
  const unsigned char bad_offset[] = {0x11, 'A', 0x05, 0x00};
  out.clear();
  Status s =
      SpillDecompressBlock(bad_offset, sizeof(bad_offset), 6, &out);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("offset"), std::string::npos) << s;
}

TEST(SpillCodecTest, CompressedSpillFileRoundTripsAndCountsDiskBytes) {
  std::string dir = MakeSpillDir("codecfile");
  SpillFileOptions options;
  options.compress = true;
  options.block_bytes = 4 * 1024;  // several blocks worth of records
  auto file = SpillFile::Create(dir, options);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_TRUE(file.value()->compressed());
  std::vector<std::string> records;
  for (int i = 0; i < 400; ++i) {
    records.push_back("record-" + std::to_string(i) +
                      "|payload=aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa|");
    ASSERT_TRUE(
        file.value()->AppendRecord(records.back().data(), records.back().size())
            .ok());
  }
  ASSERT_TRUE(file.value()->Seal().ok());
  EXPECT_LT(file.value()->bytes_written() * 2,
            file.value()->raw_bytes_written())
      << "compressible records did not shrink 2x on disk";
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(file.value()->SeekToStart().ok());
    std::string payload;
    for (const std::string& expected : records) {
      StatusOr<bool> more = file.value()->ReadRecord(&payload);
      ASSERT_TRUE(more.ok()) << more.status();
      ASSERT_TRUE(more.value());
      EXPECT_EQ(payload, expected) << "pass " << pass;
    }
    StatusOr<bool> eof = file.value()->ReadRecord(&payload);
    ASSERT_TRUE(eof.ok()) << eof.status();
    EXPECT_FALSE(eof.value());
  }
  file.value()->CloseAndDelete();
  EXPECT_EQ(CountSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(SpillCodecTest, IncompressibleBlocksAreStoredRawWithBoundedOverhead) {
  std::string dir = MakeSpillDir("storedraw");
  SpillFileOptions options;
  options.compress = true;
  options.block_bytes = 8 * 1024;
  auto file = SpillFile::Create(dir, options);
  ASSERT_TRUE(file.ok()) << file.status();
  std::vector<std::string> records;
  for (int i = 0; i < 16; ++i) {
    records.push_back(RandomBytes(1024, 1000 + static_cast<uint64_t>(i)));
    ASSERT_TRUE(
        file.value()->AppendRecord(records.back().data(), records.back().size())
            .ok());
  }
  ASSERT_TRUE(file.value()->Seal().ok());
  // Random bytes cannot compress: blocks are stored raw, so the only cost
  // over the raw record bytes is the 12-byte block header per block.
  uint64_t raw = file.value()->raw_bytes_written();
  uint64_t disk = file.value()->bytes_written();
  EXPECT_GE(disk, raw);
  EXPECT_LE(disk, raw + 12 * (raw / options.block_bytes + 2))
      << "stored-raw fallback exceeded framing overhead";
  ASSERT_TRUE(file.value()->SeekToStart().ok());
  std::string payload;
  for (const std::string& expected : records) {
    StatusOr<bool> more = file.value()->ReadRecord(&payload);
    ASSERT_TRUE(more.ok()) << more.status();
    ASSERT_TRUE(more.value());
    EXPECT_EQ(payload, expected);
  }
  file.value()->CloseAndDelete();
  std::filesystem::remove_all(dir);
}

TEST(SpillCodecTest, CorruptedCompressedBlockIsCleanPermanentError) {
  for (const char* mode : {"flip", "truncate"}) {
    SCOPED_TRACE(mode);
    std::string dir = MakeSpillDir(std::string("corrupt_") + mode);
    SpillFileOptions options;
    options.compress = true;
    auto file = SpillFile::Create(dir, options);
    ASSERT_TRUE(file.ok()) << file.status();
    std::string rec(512, 'x');
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(file.value()->AppendRecord(rec.data(), rec.size()).ok());
    }
    // SeekToStart seals and flushes, so the block is on disk before we
    // corrupt it behind the file's back.
    ASSERT_TRUE(file.value()->SeekToStart().ok());
    {
      std::FILE* raw = std::fopen(file.value()->path().c_str(), "rb+");
      ASSERT_NE(raw, nullptr);
      if (std::string(mode) == "flip") {
        std::fseek(raw, 14, SEEK_SET);  // inside the stored bytes
        int c = std::fgetc(raw);
        std::fseek(raw, 14, SEEK_SET);
        std::fputc(c ^ 0x5A, raw);
      } else {
        long size = 0;
        std::fseek(raw, 0, SEEK_END);
        size = std::ftell(raw);
        ASSERT_EQ(ftruncate(fileno(raw), size / 2), 0);
      }
      std::fflush(raw);
      std::fclose(raw);
    }
    ASSERT_TRUE(file.value()->SeekToStart().ok());
    std::string payload;
    StatusOr<bool> read = file.value()->ReadRecord(&payload);
    ASSERT_FALSE(read.ok()) << "corruption not detected";
    EXPECT_EQ(read.status().code(), StatusCode::kInternal) << read.status();
    file.value()->CloseAndDelete();
    std::filesystem::remove_all(dir);
  }
}

TEST(SpillCodecTest, CompressedExecutionMatchesUncompressed) {
  // End to end: the codec slots under the spilling engine without changing a
  // single row, and the manager-wide stats show the on-disk saving.
  std::vector<Row> rows;
  for (int64_t i = 999; i >= 0; --i) {
    rows.push_back({I(i % 89), S("padpadpadpadpadpadpadpad-" +
                                 std::to_string(i % 7))});
  }
  Table t = testutil::MakeTable("t", {"k", "pad"}, std::move(rows));
  auto run = [&](bool compress) {
    std::string dir = MakeSpillDir(compress ? "codec_on" : "codec_off");
    SpillManager spill(dir);
    SpillFileOptions options;
    options.compress = compress;
    spill.set_file_options(options);
    QueryGuard guard;
    guard.set_max_buffered_rows(64);
    WorkerPool pool(4);
    PhysicalPlan plan = SortPlan(&t);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_worker_pool(&pool);
    StatusOr<std::vector<Row>> got = DriveRows(&plan, &ctx);
    EXPECT_TRUE(got.ok()) << got.status();
    EXPECT_GT(spill.stats().runs_created, 0u);
    uint64_t raw = spill.stats().bytes_written;
    uint64_t disk = spill.stats().disk_bytes_written;
    if (compress) {
      EXPECT_LT(disk * 2, raw) << "codec saved less than 2x on spill bytes";
    } else {
      EXPECT_GE(disk, raw);  // record framing only adds headers
    }
    std::filesystem::remove_all(dir);
    return got.ok() ? testutil::RowsToString(got.value()) : std::string();
  };
  std::string uncompressed = run(false);
  std::string compressed = run(true);
  ASSERT_FALSE(uncompressed.empty());
  EXPECT_EQ(compressed, uncompressed);
}

}  // namespace
}  // namespace qprog
