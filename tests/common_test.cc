#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/strings.h"
#include "common/zipf.h"

namespace qprog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllConstructorsSetMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(NotFound("a"), NotFound("a"));
  EXPECT_FALSE(NotFound("a") == NotFound("b"));
  EXPECT_FALSE(NotFound("a") == Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringsTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("lineitem.l_orderkey", "lineitem."));
  EXPECT_FALSE(StartsWith("x", "xy"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(5);
  auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(ZipfTest, UniformWhenZZero) {
  ZipfDistribution z(10, 0.0);
  for (uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(z.Pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(1000, 2.0);
  double sum = 0;
  for (uint64_t r = 0; r < 1000; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroDominatesAtHighSkew) {
  ZipfDistribution z(100000, 2.0);
  // For z=2, P(0) = 1/zeta-ish: around 0.6.
  EXPECT_GT(z.Pmf(0), 0.5);
  EXPECT_GT(z.Pmf(0), 3.9 * z.Pmf(1));  // 1/1 vs 1/4
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfDistribution z(50, 1.0);
  Rng rng(21);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (uint64_t r : {0ull, 1ull, 5ull, 20ull}) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), z.Pmf(r), 0.01);
  }
}

TEST(ZipfTest, SingleValueDistribution) {
  ZipfDistribution z(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, ExpectedMaxFrequency) {
  ZipfDistribution z(10, 2.0);
  EXPECT_NEAR(z.ExpectedMaxFrequency(1000), z.Pmf(0) * 1000, 1e-9);
}

}  // namespace
}  // namespace qprog
