// Cross-module integration tests: SQL over TPC-H under the full progress
// stack, consistency between SQL plans and hand-built plans, and end-to-end
// invariants over every estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "core/monitor.h"
#include "sql/planner.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace qprog {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.z = 2.0;
    Status s = tpch::GenerateTpch(config, db_);
    QPROG_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  static Database* db_;
};

Database* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, SqlAggregateMatchesHandPlanOnQ6) {
  // Q6 expressed in SQL must agree with the hand-built plan.
  auto sql_rows = sql::ExecuteSql(
      "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE "
      "'1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();
  auto hand = tpch::BuildQuery(6, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_EQ(sql_rows->size(), 1u);
  ASSERT_EQ(hand_rows.size(), 1u);
  if ((*sql_rows)[0][0].is_null()) {
    EXPECT_TRUE(hand_rows[0][0].is_null());
  } else {
    EXPECT_NEAR((*sql_rows)[0][0].double_value(),
                hand_rows[0][0].double_value(), 1e-6);
  }
}

TEST_F(IntegrationTest, SqlAggregateMatchesHandPlanOnQ1) {
  auto sql_rows = sql::ExecuteSql(
      "SELECT l_returnflag, l_linestatus, sum(l_quantity), count(*) "
      "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus",
      *db_);
  ASSERT_TRUE(sql_rows.ok()) << sql_rows.status();
  auto hand = tpch::BuildQuery(1, *db_);
  ASSERT_TRUE(hand.ok());
  auto hand_rows = CollectRows(&hand.value());
  ASSERT_EQ(sql_rows->size(), hand_rows.size());
  for (size_t i = 0; i < hand_rows.size(); ++i) {
    EXPECT_TRUE((*sql_rows)[i][0].EqualsForGrouping(hand_rows[i][0]));
    EXPECT_TRUE((*sql_rows)[i][1].EqualsForGrouping(hand_rows[i][1]));
    EXPECT_NEAR((*sql_rows)[i][2].double_value(),
                hand_rows[i][2].double_value(), 1e-6);
    EXPECT_EQ((*sql_rows)[i][3].int64_value(),
              hand_rows[i][9].int64_value());  // count_order is col 9 in Q1
  }
}

TEST_F(IntegrationTest, SqlJoinCountMatchesCatalog) {
  // Every lineitem joins exactly one order (FK integrity end-to-end).
  auto rows = sql::ExecuteSql(
      "SELECT count(*) FROM lineitem l JOIN orders o ON l.l_orderkey = "
      "o.o_orderkey",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[0][0].int64_value(),
            static_cast<int64_t>(db_->GetTable("lineitem")->num_rows()));
}

TEST_F(IntegrationTest, SqlPlanUnderProgressMonitor) {
  auto plan = sql::PlanSql(
      "SELECT o_orderpriority, count(*) FROM orders "
      "WHERE o_orderdate >= DATE '1994-01-01' GROUP BY o_orderpriority "
      "ORDER BY o_orderpriority",
      *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), AllEstimatorNames());
  ProgressReport report = monitor.RunWithApproxCheckpoints(50);
  ASSERT_FALSE(report.checkpoints.empty());
  int pmax = report.FindEstimator("pmax");
  int safe = report.FindEstimator("safe");
  for (const Checkpoint& c : report.checkpoints) {
    // pmax soundness and safe's ratio bound hold on SQL-planned trees too.
    ASSERT_GE(c.estimates[pmax], c.true_progress - 1e-9);
    if (c.true_progress > 0 && c.estimates[safe] > 0) {
      double ratio = std::max(c.estimates[safe] / c.true_progress,
                              c.true_progress / c.estimates[safe]);
      ASSERT_LE(ratio, std::sqrt(c.work_ub / std::max(1.0, c.work_lb)) *
                           (1 + 1e-9));
    }
  }
  EXPECT_EQ(report.root_rows, 5u);
}

TEST_F(IntegrationTest, HandPlansAndMonitorAgreeOnTotals) {
  // Running the same query under the monitor or standalone gives the same
  // total work (checkpointing must not perturb execution).
  for (int q : {1, 4, 12}) {
    auto plan1 = tpch::BuildQuery(q, *db_);
    ASSERT_TRUE(plan1.ok());
    uint64_t plain_total = MeasureTotalWork(&plan1.value());
    auto plan2 = tpch::BuildQuery(q, *db_);
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan2.value(), {"dne"});
    ProgressReport report = monitor.Run(97);
    EXPECT_EQ(report.total_work, plain_total) << "Q" << q;
  }
}

TEST_F(IntegrationTest, EstimatesMonotoneOnSimplePipeline) {
  // On a single filter pipeline, every estimator should be non-decreasing
  // over time (work only accumulates and bounds only tighten).
  auto plan = sql::PlanSql(
      "SELECT count(*) FROM lineitem WHERE l_quantity < 10", *db_);
  ASSERT_TRUE(plan.ok());
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), AllEstimatorNames());
  ProgressReport report = monitor.RunWithApproxCheckpoints(60);
  for (size_t e = 0; e < report.names.size(); ++e) {
    double prev = -1;
    for (const Checkpoint& c : report.checkpoints) {
      ASSERT_GE(c.estimates[e], prev - 1e-9) << report.names[e];
      prev = c.estimates[e];
    }
  }
}

TEST_F(IntegrationTest, EveryTpchQueryDeterministicAcrossRuns) {
  for (int q : {3, 13, 21}) {
    auto p1 = tpch::BuildQuery(q, *db_);
    auto p2 = tpch::BuildQuery(q, *db_);
    ASSERT_TRUE(p1.ok() && p2.ok());
    auto r1 = CollectRows(&p1.value());
    auto r2 = CollectRows(&p2.value());
    ASSERT_EQ(r1.size(), r2.size()) << "Q" << q;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_TRUE(RowEq()(r1[i], r2[i])) << "Q" << q << " row " << i;
    }
  }
}

}  // namespace
}  // namespace qprog
