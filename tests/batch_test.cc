// Batched execution byte-identity suite (DESIGN.md §15): the batch path is
// an exact emulation of the tuple-at-a-time engine, so rows, getnext
// counters, checkpoints, estimator scores, and v4 traces must be
// byte-identical at every batch size and pool size; mid-batch faults,
// cancellation, deadlines, and budget trips must split the batch at the
// exact row the tuple engine would have stopped at.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "index/ordered_index.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sql/session.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::S;

const size_t kBatchSizes[] = {1, 64, 1024};
const int kPoolSizes[] = {1, 4};

/// n rows of (i, i mod buckets), scrambled enough that filters select
/// non-contiguous prefixes.
Table Numbers(int64_t n, int64_t buckets) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back({I(i), I(i % buckets)});
  return testutil::MakeTable("t", {"a", "b"}, std::move(rows));
}

/// scan -> filter(b > cut) -> project(b, a): the fully fused chain shape.
PhysicalPlan FusablePlan(const Table* t, int64_t cut) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Gt(eb::Col(1, "b"), eb::Int(cut)));
  std::vector<ExprPtr> exprs;
  exprs.push_back(eb::Col(1, "b"));
  exprs.push_back(eb::Col(0, "a"));
  return PhysicalPlan(std::make_unique<Project>(
      std::move(filter), std::move(exprs),
      std::vector<std::string>{"b", "a"}));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build, JoinType type) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(1));
  bk.push_back(eb::Col(1));
  // Fusable probe subtree (scan -> filter), so the batched join exercises
  // the fused in-memory probe pulls.
  auto probe_scan = std::make_unique<SeqScan>(probe);
  auto probe_filter = std::make_unique<Filter>(
      std::move(probe_scan), eb::Gt(eb::Col(0, "a"), eb::Int(-1)));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::move(probe_filter), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk), type));
}

struct RunResult {
  std::string rows;
  uint64_t work = 0;
  std::vector<uint64_t> node_rows;
  StatusCode code = StatusCode::kOk;
};

/// Runs `make_plan` batched (0 = tuple) and snapshots everything the
/// accounting contract promises is batch-size-invariant.
RunResult RunBatched(const std::function<PhysicalPlan()>& make_plan,
                     size_t batch_size,
                     const std::function<void(ExecContext*)>& configure =
                         nullptr) {
  PhysicalPlan plan = make_plan();
  ExecContext ctx;
  if (configure) configure(&ctx);
  std::vector<Row> rows;
  exec::Drive(&plan,
              {.ctx = &ctx,
               .batch_size = batch_size,
               .sink = [&rows](const Row& r) { rows.push_back(r); }});
  RunResult result;
  result.rows = testutil::RowsToString(rows);
  result.work = ctx.work();
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    result.node_rows.push_back(ctx.rows_produced(static_cast<int>(i)));
  }
  result.code = ctx.status().code();
  return result;
}

void ExpectSameRun(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.rows, want.rows) << "output rows diverged";
  EXPECT_EQ(got.work, want.work) << "total work diverged";
  EXPECT_EQ(got.node_rows, want.node_rows) << "per-node counters diverged";
  EXPECT_EQ(got.code, want.code) << "termination status diverged";
}

// ---------------------------------------------------------------------------
// Plain execution identity
// ---------------------------------------------------------------------------

TEST(BatchIdentityTest, FusedScanFilterProjectMatchesTupleExactly) {
  Table t = Numbers(5000, 97);
  auto make = [&] { return FusablePlan(&t, 30); };
  RunResult reference = RunBatched(make, 0);
  ASSERT_EQ(reference.code, StatusCode::kOk);
  EXPECT_EQ(reference.work, 5000u + reference.node_rows[1]);  // scan + filter
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs), reference);
  }
}

TEST(BatchIdentityTest, LimitStopsAtTheSameRowAndWork) {
  // A limit mid-chain must not let the batch overscan: stopping after k rows
  // has to leave cursor_/work exactly where the tuple engine leaves them.
  Table t = Numbers(5000, 97);
  auto make = [&] {
    auto scan = std::make_unique<SeqScan>(&t);
    auto filter = std::make_unique<Filter>(
        std::move(scan), eb::Gt(eb::Col(1, "b"), eb::Int(50)));
    return PhysicalPlan(std::make_unique<Limit>(std::move(filter), 123));
  };
  RunResult reference = RunBatched(make, 0);
  ASSERT_EQ(reference.code, StatusCode::kOk);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs), reference);
  }
}

TEST(BatchIdentityTest, MergedScanPredicateCountsEveryExaminedRow) {
  // Predicate pushed into the scan: batch kernels must keep charging one
  // getnext per *examined* base row, not per emitted row.
  Table t = Numbers(3000, 10);
  auto make = [&] {
    auto scan = std::make_unique<SeqScan>(
        &t, eb::Eq(eb::Col(1, "b"), eb::Int(3)));
    std::vector<ExprPtr> exprs;
    exprs.push_back(eb::Col(0, "a"));
    return PhysicalPlan(std::make_unique<Project>(
        std::move(scan), std::move(exprs), std::vector<std::string>{"a"}));
  };
  RunResult reference = RunBatched(make, 0);
  ASSERT_EQ(reference.code, StatusCode::kOk);
  EXPECT_EQ(reference.node_rows[1], 3000u);  // every base row examined
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs), reference);
  }
}

TEST(BatchIdentityTest, HashJoinProbeMatchesForEveryJoinType) {
  Table probe = Numbers(700, 60);
  Table build = Numbers(500, 60);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    SCOPED_TRACE(JoinTypeToString(type));
    auto make = [&] { return JoinPlan(&probe, &build, type); };
    RunResult reference = RunBatched(make, 0);
    ASSERT_EQ(reference.code, StatusCode::kOk);
    for (size_t bs : kBatchSizes) {
      SCOPED_TRACE("batch=" + std::to_string(bs));
      ExpectSameRun(RunBatched(make, bs), reference);
    }
  }
}

TEST(BatchIdentityTest, AggregateRootRunsThroughTheGenericAdapter) {
  // HashAggregate has no native NextBatch: the default adapter must still
  // produce identical rows and counters at every batch size.
  Table t = Numbers(2000, 37);
  auto make = [&] {
    std::vector<ExprPtr> groups;
    groups.push_back(eb::Col(1));
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
    aggs.emplace_back(AggFunc::kSum, eb::Col(0), "total");
    return PhysicalPlan(std::make_unique<HashAggregate>(
        std::make_unique<SeqScan>(&t), std::move(groups),
        std::vector<std::string>{"g"}, std::move(aggs)));
  };
  RunResult reference = RunBatched(make, 0);
  ASSERT_EQ(reference.code, StatusCode::kOk);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs), reference);
  }
}

// ---------------------------------------------------------------------------
// Paper identities (Section 2.2) at every batch size
// ---------------------------------------------------------------------------

TEST(BatchIdentityTest, Example2TotalHoldsAtEveryBatchSize) {
  // total(Q) = N + 1 + matches, the paper's Example 2 identity, must come
  // out of the batched drivers unchanged.
  const int64_t n = 2000;
  const int64_t matches = 500;
  std::vector<Row> r1_rows;
  for (int64_t i = 0; i < n; ++i) r1_rows.push_back({I(i + 1000000)});
  r1_rows[n / 2] = {I(42)};
  Table r1 = testutil::MakeTable("r1", {"a"}, std::move(r1_rows));
  std::vector<Row> r2_rows;
  for (int64_t i = 0; i < matches; ++i) r2_rows.push_back({I(42)});
  for (int64_t i = matches; i < n; ++i) r2_rows.push_back({I(-i)});
  Table r2 = testutil::MakeTable("r2", {"b"}, std::move(r2_rows));
  OrderedIndex idx(&r2, 0);
  auto make = [&] {
    auto scan = std::make_unique<SeqScan>(&r1);
    auto sigma = std::make_unique<Filter>(
        std::move(scan), eb::Eq(eb::Col(0, "a"), eb::Int(42)));
    auto seek = std::make_unique<IndexSeek>(&idx);
    return PhysicalPlan(std::make_unique<IndexNestedLoopsJoin>(
        std::move(sigma), std::move(seek), eb::Col(0, "a")));
  };
  for (size_t bs : {size_t{0}, size_t{1}, size_t{64}, size_t{1024},
                    size_t{4096}}) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    RunResult r = RunBatched(make, bs);
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_EQ(r.work, static_cast<uint64_t>(n + 1 + matches));
  }
}

// ---------------------------------------------------------------------------
// Monitored runs: checkpoints, scores, mu, and traces
// ---------------------------------------------------------------------------

TEST(BatchIdentityTest, MonitoredTraceByteIdenticalAcrossBatchAndPoolSizes) {
  // The strongest statement of the §15 contract: the full typed trace —
  // every checkpoint, bound refinement, spill event and estimator
  // evaluation — is byte-identical at every (batch size, pool size), so a
  // replayed score from a batched parallel run is the tuple serial score.
  std::vector<Row> rows;
  for (int64_t i = 899; i >= 0; --i) rows.push_back({I(i % 101), I(i)});
  Table t = testutil::MakeTable("k", {"k", "v"}, std::move(rows));
  std::string reference_trace;
  std::string reference_tsv;
  uint64_t reference_total = 0;
  double reference_mu = 0;
  bool have_reference = false;
  for (int threads : kPoolSizes) {
    for (size_t bs : {size_t{0}, size_t{1}, size_t{64}, size_t{1024}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(bs));
      std::filesystem::path dir =
          std::filesystem::temp_directory_path() /
          ("qprog_batch_trace_" + std::to_string(threads) + "_" +
           std::to_string(bs));
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);
      SpillManager spill(dir.string());
      QueryGuard guard;
      guard.set_max_buffered_rows(64);
      WorkerPool pool(threads);
      std::vector<SortKey> keys;
      keys.emplace_back(eb::Col(0));
      PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                               std::move(keys)));
      JsonlStringSink sink;
      TelemetryCollector collector(&sink);
      MonitorOptions mo;
      mo.guard = &guard;
      mo.spill_manager = &spill;
      mo.worker_pool = &pool;
      mo.telemetry = &collector;
      mo.batch_size = bs;
      ProgressMonitor m =
          ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mo);
      ProgressReport r = m.Run(100);
      ASSERT_TRUE(r.completed()) << r.status.ToString();
      for (const Checkpoint& cp : r.checkpoints) {
        // Curr <= LB <= UB must hold at every checkpoint on the batch path.
        EXPECT_LE(static_cast<double>(cp.work), cp.work_lb + 1e-9);
        EXPECT_LE(cp.work_lb, cp.work_ub + 1e-9);
      }
      if (!have_reference) {
        have_reference = true;
        reference_trace = sink.data();
        reference_tsv = r.ToTsv();
        reference_total = r.total_work;
        reference_mu = r.mu;
        EXPECT_FALSE(reference_trace.empty());
      } else {
        EXPECT_EQ(sink.data(), reference_trace) << "trace diverged";
        EXPECT_EQ(r.ToTsv(), reference_tsv) << "estimator scores diverged";
        EXPECT_EQ(r.total_work, reference_total) << "total(Q) diverged";
        EXPECT_EQ(r.mu, reference_mu) << "mu diverged";
      }
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(BatchIdentityTest, CheckpointWorkValuesIdenticalForFusedChain) {
  Table t = Numbers(5000, 97);
  auto run = [&](size_t bs) {
    PhysicalPlan plan = FusablePlan(&t, 30);
    MonitorOptions mo;
    mo.batch_size = bs;
    ProgressMonitor m =
        ProgressMonitor::WithEstimators(&plan, {"dne", "safe"}, mo);
    ProgressReport r = m.Run(500);
    EXPECT_TRUE(r.completed()) << r.status.ToString();
    std::vector<uint64_t> works;
    for (const Checkpoint& cp : r.checkpoints) works.push_back(cp.work);
    return std::make_tuple(works, r.ToTsv(), r.mu);
  };
  auto reference = run(0);
  ASSERT_FALSE(std::get<0>(reference).empty());
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    EXPECT_EQ(run(bs), reference);
  }
}

// ---------------------------------------------------------------------------
// Mid-batch splits: fault, cancel, deadline, budget
// ---------------------------------------------------------------------------

TEST(BatchSplitTest, InjectedFaultSurfacesAtTheExactRow) {
  Table t = Numbers(5000, 97);
  for (const char* site : {faults::kSeqScanNext, faults::kFilterNext,
                           faults::kProjectNext}) {
    SCOPED_TRACE(site);
    // Fire mid-way through a 1024-batch so the split lands inside a batch.
    FaultInjector fi(11);
    FaultSpec spec;
    spec.site = site;
    spec.fail_on_hit = 700;
    fi.Arm(spec);
    auto configure = [&](ExecContext* ctx) {
      fi.Reset();  // identical hit schedule for every run
      ctx->set_fault_injector(&fi);
    };
    auto make = [&] { return FusablePlan(&t, 30); };
    RunResult reference = RunBatched(make, 0, configure);
    ASSERT_EQ(reference.code, StatusCode::kInternal);
    for (size_t bs : kBatchSizes) {
      SCOPED_TRACE("batch=" + std::to_string(bs));
      ExpectSameRun(RunBatched(make, bs, configure), reference);
    }
  }
}

TEST(BatchSplitTest, TransientFaultSplitsLikePermanent) {
  // Operator-site faults are sticky execution errors either way; the batch
  // must stop on the same hit index regardless of the fault class.
  Table t = Numbers(4000, 53);
  FaultInjector fi(7);
  FaultSpec spec;
  spec.site = faults::kSeqScanNext;
  spec.fail_on_hit = 1234;
  spec.fault_class = FaultClass::kTransient;
  spec.transient_failures = 2;
  fi.Arm(spec);
  auto configure = [&](ExecContext* ctx) {
    fi.Reset();
    ctx->set_fault_injector(&fi);
  };
  auto make = [&] { return FusablePlan(&t, 10); };
  RunResult reference = RunBatched(make, 0, configure);
  ASSERT_NE(reference.code, StatusCode::kOk);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs, configure), reference);
  }
}

TEST(BatchSplitTest, MidBatchCancelHonoredAtTheSameWorkCrossing) {
  Table t = Numbers(6000, 97);
  QueryGuard guard;
  auto configure = [&](ExecContext* ctx) {
    guard.ResetCancel();
    ctx->set_guard(&guard);
    // Cancel at a work crossing that lands mid-1024-batch; the observer runs
    // synchronously inside CountRow, so the request is raised at exactly the
    // same row at every batch size.
    ctx->SetWorkObserver(64, [&](uint64_t work) {
      if (work >= 3000) guard.RequestCancel();
    });
  };
  auto make = [&] { return FusablePlan(&t, 5); };
  RunResult reference = RunBatched(make, 0, configure);
  ASSERT_EQ(reference.code, StatusCode::kCancelled);
  EXPECT_GT(reference.work, 0u);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs, configure), reference);
  }
}

TEST(BatchSplitTest, ExpiredDeadlineTripsAtTheFirstGuardCheck) {
  // An already-expired deadline trips at the first guard-check crossing —
  // a fixed work index, so the batched runs must stop at the same row.
  Table t = Numbers(4000, 97);
  QueryGuard guard;
  guard.set_check_interval(128);
  guard.set_deadline(QueryGuard::Clock::now() - std::chrono::milliseconds(1));
  auto configure = [&](ExecContext* ctx) { ctx->set_guard(&guard); };
  auto make = [&] { return FusablePlan(&t, 5); };
  RunResult reference = RunBatched(make, 0, configure);
  ASSERT_EQ(reference.code, StatusCode::kDeadlineExceeded);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs, configure), reference);
  }
}

TEST(BatchSplitTest, WorkBudgetExhaustsOnTheSameRow) {
  Table t = Numbers(5000, 97);
  QueryGuard guard;
  guard.set_max_work(2777);  // lands mid-batch at size 1024
  auto configure = [&](ExecContext* ctx) { ctx->set_guard(&guard); };
  auto make = [&] { return FusablePlan(&t, 5); };
  RunResult reference = RunBatched(make, 0, configure);
  ASSERT_EQ(reference.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(reference.work, 2777u);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    ExpectSameRun(RunBatched(make, bs, configure), reference);
  }
}

// ---------------------------------------------------------------------------
// Telemetry equivalence and SQL-session parity
// ---------------------------------------------------------------------------

TEST(BatchTelemetryTest, CallAndRowCountersMatchTupleTelemetry) {
  // Per-batch telemetry must preserve tuple-exact next_calls (including the
  // final end-observing call) and rows_returned for every node.
  Table t = Numbers(3000, 97);
  auto collect = [&](size_t bs) {
    PhysicalPlan plan = FusablePlan(&t, 30);
    TelemetryCollector collector;
    ExecContext ctx;
    ctx.set_telemetry(&collector);
    exec::Drive(&plan, {.ctx = &ctx, .batch_size = bs});
    std::vector<std::pair<uint64_t, uint64_t>> per_node;
    for (size_t i = 0; i < plan.num_nodes(); ++i) {
      const OperatorStats& s = collector.stats(static_cast<int>(i));
      per_node.emplace_back(s.next_calls, s.rows_returned);
    }
    return per_node;
  };
  auto reference = collect(0);
  for (size_t bs : kBatchSizes) {
    SCOPED_TRACE("batch=" + std::to_string(bs));
    EXPECT_EQ(collect(bs), reference);
  }
  // And the batch path actually batched: far fewer NextBatch calls than
  // rows at size 1024.
  PhysicalPlan plan = FusablePlan(&t, 30);
  TelemetryCollector collector;
  ExecContext ctx;
  ctx.set_telemetry(&collector);
  uint64_t produced =
      exec::Drive(&plan, {.ctx = &ctx, .batch_size = 1024}).root_rows;
  ASSERT_GT(produced, 1024u);
  const OperatorStats& root = collector.stats(0);
  EXPECT_GT(root.next_batches, 0u);
  EXPECT_LT(root.next_batches, produced / 512);
}

TEST(BatchSessionTest, SqlSessionResultsIdenticalWithBatchingOn) {
  Database db;
  std::vector<Row> rows;
  for (int64_t i = 0; i < 2000; ++i) {
    rows.push_back({I(i), I(i % 13), S("name-" + std::to_string(i % 7))});
  }
  QPROG_CHECK(
      db.AddTable(testutil::MakeTable("items", {"id", "grp", "name"},
                                      std::move(rows)))
          .ok());
  const char* kQueries[] = {
      "SELECT id, name FROM items WHERE grp = 3",
      "SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp",
      "SELECT id FROM items WHERE id < 100 LIMIT 17",
  };
  for (const char* query : kQueries) {
    SCOPED_TRACE(query);
    sql::SessionOptions tuple_opts;
    sql::SqlSession tuple_session(&db, tuple_opts);
    auto want = tuple_session.Execute(query);
    ASSERT_TRUE(want.ok()) << want.status();
    for (size_t bs : kBatchSizes) {
      SCOPED_TRACE("batch=" + std::to_string(bs));
      sql::SessionOptions batch_opts;
      batch_opts.batch_size = bs;
      sql::SqlSession session(&db, batch_opts);
      auto got = session.Execute(query);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(testutil::RowsToString(got.value()),
                testutil::RowsToString(want.value()));
    }
    // Monitored runs: scores and totals are batch-size-invariant too.
    sql::QueryOptions qo;
    auto want_report = tuple_session.ExecuteMonitored(query, qo);
    ASSERT_TRUE(want_report.ok()) << want_report.status();
    sql::SessionOptions batch_opts;
    batch_opts.batch_size = 1024;
    sql::SqlSession session(&db, batch_opts);
    auto got_report = session.ExecuteMonitored(query, qo);
    ASSERT_TRUE(got_report.ok()) << got_report.status();
    EXPECT_EQ(got_report->total_work, want_report->total_work);
    EXPECT_EQ(got_report->root_rows, want_report->root_rows);
    EXPECT_EQ(got_report->ToTsv(), want_report->ToTsv());
  }
}

}  // namespace
}  // namespace qprog
