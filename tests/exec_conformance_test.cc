// Cross-operator conformance: different physical implementations of the
// same logical operation must agree on randomized inputs — the invariant
// that lets the Table-1 experiment attribute error differences purely to the
// estimators, not to the plans computing different answers.

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "index/ordered_index.h"
#include "tests/test_util.h"

namespace qprog {
namespace {

using testutil::I;
using testutil::N;
using testutil::Sorted;

Table RandomTwoKeyTable(const char* name, int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back({I(rng.UniformInt(0, 8)), I(rng.UniformInt(0, 5)), I(i)});
  }
  return testutil::MakeTable(name, {"k1", "k2", "v"}, std::move(data));
}

std::vector<AggregateDesc> StandardAggs() {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(2), "sum");
  aggs.emplace_back(AggFunc::kMin, eb::Col(2), "min");
  aggs.emplace_back(AggFunc::kMax, eb::Col(2), "max");
  return aggs;
}

TEST(ConformanceTest, HashAndStreamAggregateAgreeOnRandomData) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Table t = RandomTwoKeyTable("t", 500, seed);

    std::vector<ExprPtr> g1;
    g1.push_back(eb::Col(0));
    g1.push_back(eb::Col(1));
    PhysicalPlan hash_plan(std::make_unique<HashAggregate>(
        std::make_unique<SeqScan>(&t), std::move(g1),
        std::vector<std::string>{"k1", "k2"}, StandardAggs()));

    std::vector<SortKey> keys;
    keys.emplace_back(eb::Col(0), false);
    keys.emplace_back(eb::Col(1), false);
    auto sort = std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                       std::move(keys));
    std::vector<ExprPtr> g2;
    g2.push_back(eb::Col(0));
    g2.push_back(eb::Col(1));
    PhysicalPlan stream_plan(std::make_unique<StreamAggregate>(
        std::move(sort), std::move(g2), std::vector<std::string>{"k1", "k2"},
        StandardAggs()));

    auto hash_rows = Sorted(CollectRows(&hash_plan));
    auto stream_rows = Sorted(CollectRows(&stream_plan));
    EXPECT_EQ(testutil::RowsToString(hash_rows),
              testutil::RowsToString(stream_rows))
        << "seed " << seed;
  }
}

TEST(ConformanceTest, TwoKeyJoinsAgreeAcrossAlgorithms) {
  for (uint64_t seed = 10; seed <= 13; ++seed) {
    Table l = RandomTwoKeyTable("l", 120, seed);
    Table r = RandomTwoKeyTable("r", 150, seed + 50);

    // Hash join on (k1, k2).
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    pk.push_back(eb::Col(1));
    bk.push_back(eb::Col(0));
    bk.push_back(eb::Col(1));
    auto hj = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&l),
                                         std::make_unique<SeqScan>(&r),
                                         std::move(pk), std::move(bk));
    PhysicalPlan hash_plan(std::move(hj));

    // NL join with equivalent predicate.
    auto nl = std::make_unique<NestedLoopsJoin>(
        std::make_unique<SeqScan>(&l), std::make_unique<SeqScan>(&r),
        eb::And(eb::Eq(eb::Col(0), eb::Col(3)),
                eb::Eq(eb::Col(1), eb::Col(4))));
    PhysicalPlan nl_plan(std::move(nl));

    // Merge join over sorts on the composite key.
    std::vector<SortKey> lk, rk;
    lk.emplace_back(eb::Col(0), false);
    lk.emplace_back(eb::Col(1), false);
    rk.emplace_back(eb::Col(0), false);
    rk.emplace_back(eb::Col(1), false);
    auto ls = std::make_unique<Sort>(std::make_unique<SeqScan>(&l),
                                     std::move(lk));
    auto rs = std::make_unique<Sort>(std::make_unique<SeqScan>(&r),
                                     std::move(rk));
    std::vector<ExprPtr> lke, rke;
    lke.push_back(eb::Col(0));
    lke.push_back(eb::Col(1));
    rke.push_back(eb::Col(0));
    rke.push_back(eb::Col(1));
    auto mj = std::make_unique<MergeJoin>(std::move(ls), std::move(rs),
                                          std::move(lke), std::move(rke));
    PhysicalPlan merge_plan(std::move(mj));

    auto hash_rows = testutil::RowsToString(Sorted(CollectRows(&hash_plan)));
    auto nl_rows = testutil::RowsToString(Sorted(CollectRows(&nl_plan)));
    auto merge_rows = testutil::RowsToString(Sorted(CollectRows(&merge_plan)));
    EXPECT_EQ(hash_rows, nl_rows) << "seed " << seed;
    EXPECT_EQ(hash_rows, merge_rows) << "seed " << seed;
  }
}

TEST(ConformanceTest, IndexSeekAgreesWithFilterScan) {
  Rng rng(77);
  std::vector<Row> rows;
  for (int i = 0; i < 800; ++i) rows.push_back({I(rng.UniformInt(0, 99))});
  Table t = testutil::MakeTable("t", {"k"}, std::move(rows));
  OrderedIndex idx(&t, 0);
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{10, 30},
                        {0, 0},
                        {95, 200},
                        {50, 49}}) {
    PhysicalPlan seek_plan(std::make_unique<IndexSeek>(
        &idx, I(lo), true, false, I(hi), true, false));
    auto scan = std::make_unique<SeqScan>(
        &t, eb::Between(eb::Col(0), eb::Int(lo), eb::Int(hi)));
    PhysicalPlan scan_plan(std::move(scan));
    EXPECT_EQ(CollectRows(&seek_plan).size(), CollectRows(&scan_plan).size())
        << lo << ".." << hi;
  }
}

TEST(ConformanceTest, EveryOperatorIsRerunnable) {
  // Open() must fully reset state: run each plan twice, expect identical
  // output and identical total work.
  Table l = RandomTwoKeyTable("l", 200, 3);
  Table r = RandomTwoKeyTable("r", 200, 4);
  OrderedIndex idx(&r, 0);

  auto build_plan = [&]() {
    auto seek = std::make_unique<IndexSeek>(&idx);
    auto join = std::make_unique<IndexNestedLoopsJoin>(
        std::make_unique<SeqScan>(&l, eb::Lt(eb::Col(2), eb::Int(150))),
        std::move(seek), eb::Col(0));
    std::vector<SortKey> keys;
    keys.emplace_back(eb::Col(2), true);
    auto sort = std::make_unique<Sort>(std::move(join), std::move(keys));
    auto limit = std::make_unique<Limit>(std::move(sort), 40);
    std::vector<ExprPtr> groups;
    groups.push_back(eb::Col(0));
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kCount, nullptr, "c");
    return PhysicalPlan(std::make_unique<HashAggregate>(
        std::move(limit), std::move(groups), std::vector<std::string>{"k"},
        std::move(aggs)));
  };

  PhysicalPlan plan = build_plan();
  ExecContext c1, c2;
  auto r1 = CollectRows(&plan, &c1);
  auto r2 = CollectRows(&plan, &c2);  // same plan object, re-executed
  EXPECT_EQ(testutil::RowsToString(r1), testutil::RowsToString(r2));
  EXPECT_EQ(c1.work(), c2.work());
}

TEST(ConformanceTest, LeftOuterJoinNullColumnsAreNull) {
  Table l = testutil::MakeTable("l", {"k"}, {{I(1)}, {I(2)}});
  Table r = testutil::MakeTable("r", {"k", "w"}, {{I(1), I(10)}});
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  auto join = std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(&l), std::make_unique<SeqScan>(&r),
      std::move(pk), std::move(bk), JoinType::kLeftOuter);
  PhysicalPlan plan(std::move(join));
  auto rows = Sorted(CollectRows(&plan));
  ASSERT_EQ(rows.size(), 2u);
  // Row for k=2 must be null-extended on the build columns.
  bool found_null_extended = false;
  for (const Row& row : rows) {
    if (row[0].int64_value() == 2) {
      EXPECT_TRUE(row[1].is_null());
      EXPECT_TRUE(row[2].is_null());
      found_null_extended = true;
    }
  }
  EXPECT_TRUE(found_null_extended);
}

}  // namespace
}  // namespace qprog
