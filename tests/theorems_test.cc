// Consolidated checks of the paper's formal results that are not already
// pinned elsewhere: Property 2 (predictive orders bound dne), Theorem 6
// (safe is minimax among the toolkit on the adversarial pair), Theorem 7
// (mu is not estimable) and Theorem 8 (predictivity is not detectable).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/analysis.h"
#include "core/monitor.h"
#include "workload/adversarial.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

// dne at driver position k is k/N; the true progress is W_k/W. Property 2:
// if the order is c-predictive, then for all k >= N/2 the two are within a
// factor c of each other.
double DneRatioErrorAfterHalf(const std::vector<uint64_t>& work) {
  const size_t n = work.size();
  double total = 0;
  for (uint64_t w : work) total += static_cast<double>(w);
  double worst = 1.0;
  double prefix = 0;
  for (size_t k = 0; k < n; ++k) {
    prefix += static_cast<double>(work[k]);
    if (k + 1 < (n + 1) / 2) continue;
    double dne = static_cast<double>(k + 1) / static_cast<double>(n);
    double truth = prefix / total;
    if (dne <= 0 || truth <= 0) continue;
    worst = std::max(worst, std::max(dne / truth, truth / dne));
  }
  return worst;
}

TEST(Property2Test, CPredictiveOrdersBoundDneAfterHalf) {
  Rng rng(31337);
  // Heavy-tailed per-tuple work, many random orders: whenever the order is
  // 2-predictive, dne's ratio error after the halfway point is at most 2.
  std::vector<uint64_t> work(400, 1);
  work[0] = 2000;
  for (int i = 1; i < 40; ++i) work[static_cast<size_t>(i)] = 50;
  size_t predictive = 0;
  for (int trial = 0; trial < 200; ++trial) {
    rng.Shuffle(&work);
    if (!IsCPredictive(work, 2.0)) continue;
    ++predictive;
    EXPECT_LE(DneRatioErrorAfterHalf(work), 2.0 + 1e-9);
  }
  EXPECT_GT(predictive, 0u);  // the property was actually exercised
}

TEST(Property2Test, ViolationImpliesNonPredictive) {
  // Contrapositive: orders where dne's post-half ratio error exceeds c
  // cannot be c-predictive.
  Rng rng(99);
  std::vector<uint64_t> work(300, 1);
  work[0] = 5000;
  for (int trial = 0; trial < 200; ++trial) {
    rng.Shuffle(&work);
    if (DneRatioErrorAfterHalf(work) > 2.0 + 1e-9) {
      EXPECT_FALSE(IsCPredictive(work, 2.0));
    }
  }
}

// Theorem 6: given the bounds interval [LB, UB], the worst-case ratio error
// over totals consistent with the bounds is minimized by Curr/sqrt(LB*UB) —
// safe attains exactly sqrt(UB/LB) while every other estimator's
// bounds-adversary is at least as bad. (Our tracker's UB does not use
// histogram refinement, so the bounds-relative adversary is the right
// minimax opponent; an instance-level adversary could only be weaker.)
TEST(Theorem6Test, SafeIsMinimaxAgainstTheBoundsAdversary) {
  AdversarialPair pair(2000);
  uint64_t decision_work = pair.special_position();
  PhysicalPlan plan = pair.BuildPlan(false);
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(&plan, AllEstimatorNames());
  ProgressReport r = m.Run(decision_work);
  const Checkpoint& c = r.checkpoints.front();
  ASSERT_GT(c.work_lb, 0);
  ASSERT_GT(c.work_ub, c.work_lb);

  // Worst ratio an adversary can force by choosing the total in {LB, UB}.
  auto worst_ratio = [&](double est) {
    double p_lo = static_cast<double>(c.work) / c.work_ub;
    double p_hi = static_cast<double>(c.work) / c.work_lb;
    if (est <= 0) return 1e18;
    return std::max(std::max(est / p_lo, p_lo / est),
                    std::max(est / p_hi, p_hi / est));
  };
  double optimum = std::sqrt(c.work_ub / c.work_lb);
  double safe_worst = 0;
  for (size_t i = 0; i < r.names.size(); ++i) {
    double w = worst_ratio(c.estimates[i]);
    EXPECT_GE(w, optimum * (1 - 1e-9)) << r.names[i];
    if (r.names[i] == "safe") safe_worst = w;
  }
  // safe attains the optimum exactly (up to clamping noise).
  EXPECT_NEAR(safe_worst, optimum, optimum * 1e-6);
}

// The Figure-5 consequence on the actual heavy (y) instance: dne claims the
// query is nearly done while ~90% of the work remains; safe's hedged answer
// has a substantially smaller ratio error there.
TEST(Theorem6Test, SafeBeatsDneOnTheHeavyInstance) {
  AdversarialPair pair(2000);
  uint64_t decision_work = pair.special_position();
  PhysicalPlan plan = pair.BuildPlan(/*use_y_instance=*/true);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"dne", "safe"});
  ProgressReport r = m.Run(decision_work);
  const Checkpoint& c = r.checkpoints.front();
  auto ratio = [&](double est) {
    return std::max(est / c.true_progress, c.true_progress / est);
  };
  EXPECT_LT(ratio(c.estimates[1]), ratio(c.estimates[0]));
}

// Theorem 7: mu differs by ~5x across the pair, yet all observable state at
// the decision point is identical — so no estimator can pin mu to better
// than that factor.
TEST(Theorem7Test, MuNotEstimableAcrossIndistinguishableInstances) {
  AdversarialPair pair(1000);
  PhysicalPlan px = pair.BuildPlan(false);
  PhysicalPlan py = pair.BuildPlan(true);
  double leaves_x = ScannedLeafCardinality(px);
  double leaves_y = ScannedLeafCardinality(py);
  ASSERT_DOUBLE_EQ(leaves_x, leaves_y);
  double mu_x = static_cast<double>(MeasureTotalWork(&px)) / leaves_x;
  double mu_y = static_cast<double>(MeasureTotalWork(&py)) / leaves_y;
  EXPECT_GT(mu_y / mu_x, 5.0);
}

// Theorem 8: the per-tuple work sequences of the two instances share the
// same prefix up to the special tuple, yet one order is 2-predictive and
// the other is not — detection from the prefix is impossible.
TEST(Theorem8Test, PredictivityNotDetectableFromPrefix) {
  AdversarialPair pair(1000);
  PhysicalPlan px = pair.BuildPlan(false);
  PhysicalPlan py = pair.BuildPlan(true);
  // Driver of the single pipeline is the R1 scan (node after the join and
  // the sigma: find it).
  auto driver_of = [](PhysicalPlan* plan) {
    for (const PhysicalOperator* op : plan->nodes()) {
      if (op->kind() == OpKind::kSeqScan) return op->node_id();
    }
    return -1;
  };
  PerTupleWork wx = CollectPerTupleWork(&px, driver_of(&px));
  PerTupleWork wy = CollectPerTupleWork(&py, driver_of(&py));
  ASSERT_EQ(wx.work.size(), wy.work.size());
  // Identical prefixes before the special tuple...
  for (size_t i = 0; i < pair.special_position(); ++i) {
    ASSERT_EQ(wx.work[i], wy.work[i]) << i;
  }
  // ...yet opposite predictivity verdicts.
  EXPECT_TRUE(IsCPredictive(wx.work, 2.0));
  EXPECT_FALSE(IsCPredictive(wy.work, 2.0));
}

// Theorem 5's tightness: pmax's ratio error actually approaches mu (not
// just stays below it) under the skew-last order.
TEST(Theorem5Test, PmaxRatioApproachesMu) {
  ZipfJoinConfig config;
  config.r1_rows = 4000;
  config.r2_rows = 4000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);
  PhysicalPlan plan = data.BuildInlPlan(nullptr, true);
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, {"pmax"});
  ProgressReport r = m.RunWithApproxCheckpoints(300);
  auto metrics = r.Metrics(0);
  EXPECT_LE(metrics.max_ratio_err, r.mu * (1 + 1e-6));
  EXPECT_GT(metrics.max_ratio_err, 0.55 * r.mu);  // the bound is nearly tight
}

}  // namespace
}  // namespace qprog
