// SQL frontend tests: lexer, parser, and end-to-end planning/execution.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "stats/table_stats.h"
#include "tests/test_util.h"

namespace qprog {
namespace sql {
namespace {

using testutil::D;
using testutil::I;
using testutil::N;
using testutil::S;

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT a, b FROM t WHERE x >= 3.5 AND y = 'hi'");
  ASSERT_TRUE(tokens.ok());
  const auto& v = *tokens;
  EXPECT_EQ(v[0].text, "select");
  EXPECT_EQ(v[0].type, TokenType::kIdentifier);
  EXPECT_TRUE(v[1].Is("a"));
  EXPECT_TRUE(v[2].Is(","));
  size_t ge = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i].text == ">=") ge = i;
  }
  EXPECT_GT(ge, 0u);
  EXPECT_EQ(v[ge + 1].type, TokenType::kFloat);
  EXPECT_EQ(v.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, Comments) {
  auto tokens = Lex("select -- comment\n1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("select @").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "<>");  // != normalizes
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[1].alias, "bee");
  EXPECT_EQ(stmt->from.size(), 1u);
  EXPECT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->order_by.size(), 1u);
  EXPECT_EQ(stmt->limit, 5u);
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr, nullptr);
}

TEST(ParserTest, JoinsAndAliases) {
  auto stmt = Parse(
      "SELECT o.a FROM orders o JOIN customer c ON o.custkey = c.custkey");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].alias, "o");
  ASSERT_EQ(stmt->joins.size(), 1u);
  EXPECT_EQ(stmt->joins[0].table.alias, "c");
  EXPECT_NE(stmt->joins[0].on, nullptr);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = Parse(
      "SELECT g, count(*), sum(v) FROM t GROUP BY g HAVING count(*) > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->items[1].expr->kind, SqlExprKind::kFunc);
  EXPECT_TRUE(stmt->items[1].expr->star);
}

TEST(ParserTest, PredicateForms) {
  auto stmt = Parse(
      "SELECT a FROM t WHERE a LIKE 'x%' AND b NOT IN (1, 2) AND c BETWEEN 1 "
      "AND 9 AND d IS NOT NULL AND NOT (e = 1 OR f = 2)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(ParserTest, DateLiterals) {
  auto stmt = Parse("SELECT a FROM t WHERE d < DATE '1995-03-15'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR at top, AND beneath its right child.
  EXPECT_EQ(stmt->where->kind, SqlExprKind::kOr);
  EXPECT_EQ(stmt->where->children[1]->kind, SqlExprKind::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = Parse("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const SqlExpr& e = *stmt->items[0].expr;
  EXPECT_EQ(e.kind, SqlExprKind::kArith);
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.children[1]->op, "*");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a").ok());               // missing FROM
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());  // dangling WHERE
  EXPECT_FALSE(Parse("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage here").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t JOIN u").ok());  // missing ON
}

// ---------------------------------------------------------------------------
// Planner / end-to-end

class SqlEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    Table dept = testutil::MakeTable(
        "dept", {"dept_id", "dept_name"},
        {{I(1), S("eng")}, {I(2), S("sales")}, {I(3), S("hr")}});
    Table emp = testutil::MakeTable(
        "emp", {"emp_id", "name", "dept_id", "salary"},
        {{I(1), S("ada"), I(1), D(120.0)},
         {I(2), S("bob"), I(1), D(100.0)},
         {I(3), S("cat"), I(2), D(90.0)},
         {I(4), S("dan"), I(2), D(80.0)},
         {I(5), S("eve"), N(), D(70.0)}});
    QPROG_CHECK(db_->AddTable(std::move(dept)).ok());
    QPROG_CHECK(db_->AddTable(std::move(emp)).ok());
    HistogramStatisticsGenerator gen(8);
    for (const std::string& t : db_->TableNames()) {
      db_->SetStats(t, gen.Generate(*db_->GetTable(t)));
    }
  }
  static Database* db_;
};

Database* SqlEndToEndTest::db_ = nullptr;

TEST_F(SqlEndToEndTest, SelectStar) {
  auto rows = ExecuteSql("SELECT * FROM emp", *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].size(), 4u);
}

TEST_F(SqlEndToEndTest, FilterAndProject) {
  auto rows = ExecuteSql(
      "SELECT name, salary FROM emp WHERE salary >= 90 ORDER BY salary DESC",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].string_value(), "ada");
  EXPECT_EQ((*rows)[2][0].string_value(), "cat");
}

TEST_F(SqlEndToEndTest, JoinWithOnClause) {
  auto rows = ExecuteSql(
      "SELECT e.name, d.dept_name FROM emp e JOIN dept d ON e.dept_id = "
      "d.dept_id ORDER BY e.name",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 4u);  // eve has NULL dept
  EXPECT_EQ((*rows)[0][0].string_value(), "ada");
  EXPECT_EQ((*rows)[0][1].string_value(), "eng");
}

TEST_F(SqlEndToEndTest, ImplicitJoinViaWhere) {
  auto rows = ExecuteSql(
      "SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND "
      "d.dept_name = 'sales' ORDER BY e.name",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].string_value(), "cat");
}

TEST_F(SqlEndToEndTest, GroupByWithAggregates) {
  auto rows = ExecuteSql(
      "SELECT dept_id, count(*) AS c, sum(salary) AS total, avg(salary), "
      "min(salary), max(salary) FROM emp GROUP BY dept_id ORDER BY 2 DESC, 1",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);  // dept 1, dept 2, NULL
  const Row& first = (*rows)[0];
  EXPECT_EQ(first[1].int64_value(), 2);
}

TEST_F(SqlEndToEndTest, Having) {
  auto rows = ExecuteSql(
      "SELECT dept_id, count(*) FROM emp GROUP BY dept_id HAVING count(*) >= "
      "2 ORDER BY dept_id",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
}

TEST_F(SqlEndToEndTest, ScalarAggregate) {
  auto rows = ExecuteSql("SELECT count(*), avg(salary) FROM emp", *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int64_value(), 5);
  EXPECT_DOUBLE_EQ((*rows)[0][1].double_value(), 92.0);
}

TEST_F(SqlEndToEndTest, CountDistinct) {
  auto rows = ExecuteSql("SELECT count(distinct dept_id) FROM emp", *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[0][0].int64_value(), 2);  // NULL not counted
}

TEST_F(SqlEndToEndTest, LikeInBetweenIsNull) {
  auto rows = ExecuteSql(
      "SELECT name FROM emp WHERE name LIKE '%a%' AND salary BETWEEN 80 AND "
      "130 AND dept_id IS NOT NULL ORDER BY name",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 3u);  // ada, cat, dan
}

TEST_F(SqlEndToEndTest, CrossJoinWhenNoKeys) {
  auto rows = ExecuteSql("SELECT count(*) FROM emp, dept", *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[0][0].int64_value(), 15);
}

TEST_F(SqlEndToEndTest, LimitCutsResults) {
  auto rows = ExecuteSql("SELECT name FROM emp ORDER BY name LIMIT 2", *db_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
}

TEST_F(SqlEndToEndTest, ArithmeticInSelect) {
  auto rows = ExecuteSql(
      "SELECT name, salary * 2 AS double_pay FROM emp WHERE emp_id = 1",
      *db_);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_DOUBLE_EQ((*rows)[0][1].double_value(), 240.0);
}

TEST_F(SqlEndToEndTest, PlannerErrors) {
  EXPECT_FALSE(ExecuteSql("SELECT x FROM emp", *db_).ok());
  EXPECT_FALSE(ExecuteSql("SELECT name FROM nope", *db_).ok());
  EXPECT_FALSE(ExecuteSql("SELECT dept_id FROM emp e, emp e", *db_).ok());
  EXPECT_FALSE(
      ExecuteSql("SELECT name, count(*) FROM emp GROUP BY dept_id", *db_)
          .ok());  // name not grouped
  EXPECT_FALSE(ExecuteSql("SELECT * FROM emp GROUP BY dept_id", *db_).ok());
  // Unqualified ambiguous column across two tables with same column name.
  EXPECT_FALSE(
      ExecuteSql("SELECT dept_id FROM emp, dept", *db_).ok());
}

TEST_F(SqlEndToEndTest, PlanShapeHasMergedScanPredicate) {
  auto plan = PlanSql("SELECT name FROM emp WHERE salary > 100", *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Project over a scan with the predicate merged: exactly 2 nodes.
  EXPECT_EQ(plan->num_nodes(), 2u);
  EXPECT_EQ(plan->nodes()[0]->kind(), OpKind::kProject);
  EXPECT_EQ(plan->nodes()[1]->kind(), OpKind::kSeqScan);
  EXPECT_GT(plan->nodes()[1]->estimated_rows(), 0);
}

TEST_F(SqlEndToEndTest, JoinPlanUsesHashJoin) {
  auto plan = PlanSql(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.dept_id", *db_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  bool has_hash_join = false;
  for (const PhysicalOperator* op : plan->nodes()) {
    if (op->kind() == OpKind::kHashJoin) has_hash_join = true;
  }
  EXPECT_TRUE(has_hash_join);
}

}  // namespace
}  // namespace sql
}  // namespace qprog
