// Registry persistence cost: what does crash safety charge per recorded
// run? Measures the RegistryLog pipeline end to end with realistic
// CrossRunObservation payloads —
//
//   append        RecordRun with fsync-per-record (the durable path)
//   append_nosync RecordRun without the fsync (memory + page cache)
//   load          OpenLog replay of the full log into a fresh registry
//   compact       collapse to one aggregate record per template
//
// Results (records/s, MB, recovery figures) are printed and written to
// BENCH_registry.json in the working directory.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/cross_run_registry.h"
#include "storage/registry_log.h"

namespace qprog {
namespace {

constexpr int kTemplates = 20;
constexpr int kRunsPerTemplate = 250;
constexpr int kNodesPerPlan = 8;

/// A representative observation: an 8-node plan scored by five estimators.
CrossRunObservation MakeObs(uint64_t fingerprint, int run) {
  CrossRunObservation obs;
  obs.fingerprint = fingerprint;
  obs.plan_signature = 0x5157a7u + fingerprint;
  obs.completed = true;
  obs.workload.completed = true;
  obs.workload.work = 100000 + static_cast<uint64_t>(run);
  obs.workload.peak_buffered_rows = 4096;
  obs.workload.root_rows = 100;
  obs.workload.wall_ns = 1000000;
  for (int n = 0; n < kNodesPerPlan; ++n) {
    CrossRunObservation::Node node;
    node.node_id = n;
    node.actual_rows = 1000u * static_cast<uint64_t>(n + 1);
    node.estimated_rows = 900.0 * (n + 1);
    node.next_ns = 50000;
    obs.nodes.push_back(node);
  }
  const char* names[] = {"dne", "dne_pessimistic", "pmax", "safe", "hybrid"};
  for (const char* name : names) {
    CrossRunObservation::Estimator e;
    e.name = name;
    e.avg_abs_err = 0.1;
    e.max_abs_err = 0.2;
    for (double& d : e.decile_err) d = 0.1;
    obs.estimators.push_back(std::move(e));
  }
  return obs;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Phase {
  const char* name;
  double seconds = 0;
  double records_per_s = 0;
};

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  const std::string path =
      std::filesystem::temp_directory_path() / "qprog_micro_registry.log";
  constexpr int kTotal = kTemplates * kRunsPerTemplate;

  std::printf("=== micro_registry: crash-safe registry log throughput ===\n");
  std::printf("%d templates x %d runs, %d-node plans, 5 estimators\n\n",
              kTemplates, kRunsPerTemplate, kNodesPerPlan);

  std::vector<Phase> phases;
  uint64_t log_bytes_full = 0;
  uint64_t log_bytes_compacted = 0;

  // Durable append: fsync per RecordRun, the SqlSession path.
  {
    std::filesystem::remove(path);
    CrossRunRegistry registry;
    QPROG_CHECK(registry.OpenLog(path).ok());
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTemplates; ++t) {
      for (int r = 0; r < kRunsPerTemplate; ++r) {
        QPROG_CHECK(
            registry.RecordRun(MakeObs(static_cast<uint64_t>(t + 1), r)).ok());
      }
    }
    double s = Seconds(start);
    log_bytes_full = registry.log_bytes();
    phases.push_back({"append_fsync", s, kTotal / s});
  }

  // Replay: rebuild the whole registry from the log.
  {
    CrossRunRegistry registry;
    RegistryRecoveryReport report;
    auto start = std::chrono::steady_clock::now();
    QPROG_CHECK(registry.OpenLog(path, {}, &report).ok());
    double s = Seconds(start);
    QPROG_CHECK(report.records_recovered == static_cast<uint64_t>(kTotal));
    QPROG_CHECK(registry.num_templates() == kTemplates);
    phases.push_back({"load_replay", s, kTotal / s});
  }

  // Compact: N runs collapse to one aggregate record per template.
  {
    CrossRunRegistry registry;
    QPROG_CHECK(registry.OpenLog(path).ok());
    auto start = std::chrono::steady_clock::now();
    QPROG_CHECK(registry.Compact().ok());
    double s = Seconds(start);
    log_bytes_compacted = registry.log_bytes();
    phases.push_back({"compact", s, kTotal / s});

    // Reload from the compacted log: same aggregates, kTemplates records.
    CrossRunRegistry reloaded;
    RegistryRecoveryReport report;
    auto start2 = std::chrono::steady_clock::now();
    QPROG_CHECK(reloaded.OpenLog(path, {}, &report).ok());
    double s2 = Seconds(start2);
    QPROG_CHECK(report.records_recovered == kTemplates);
    QPROG_CHECK(reloaded.Lookup(1).runs == kRunsPerTemplate);
    phases.push_back({"load_compacted", s2, kTotal / s2});
  }

  std::printf("%-16s %-10s %-14s\n", "phase", "seconds", "records/s");
  for (const Phase& p : phases) {
    std::printf("%-16s %-10.3f %-14.0f\n", p.name, p.seconds, p.records_per_s);
  }
  std::printf("\nlog size: %.2f MB full -> %.2f MB compacted (%.1fx)\n",
              log_bytes_full / 1e6, log_bytes_compacted / 1e6,
              static_cast<double>(log_bytes_full) /
                  static_cast<double>(log_bytes_compacted));

  std::string json = "{\"bench\":\"micro_registry\"";
  json += StringPrintf(",\"templates\":%d,\"runs_per_template\":%d",
                       kTemplates, kRunsPerTemplate);
  json += ",\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) json += ',';
    json += StringPrintf("\"%s\":{\"seconds\":%.4f,\"records_per_s\":%.0f}",
                         phases[i].name, phases[i].seconds,
                         phases[i].records_per_s);
  }
  json += StringPrintf(
      "},\"log_bytes_full\":%llu,\"log_bytes_compacted\":%llu}\n",
      static_cast<unsigned long long>(log_bytes_full),
      static_cast<unsigned long long>(log_bytes_compacted));
  std::FILE* out = std::fopen("BENCH_registry.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_registry.json\n");
  }
  std::filesystem::remove(path);
  return 0;
}
