// Quantifies the batched (vectorized) execution path (DESIGN.md §15): the
// same scan -> filter -> project plan driven at batch sizes {1, 64, 256,
// 1024, 4096} under three telemetry modes — none, stats-only collector, and
// a ring-buffer sink — plus the tuple-at-a-time engine as the reference.
//
// The headline claims this harness checks:
//   * untelemetered ns/row at batch >= 1024 is >= 2x better than batch 1
//     (the fused kernel amortizes virtual dispatch and row copies);
//   * telemetry-attached overhead at batch 1024 is <= 100% of the
//     untelemetered batch run (down from ~300% on the tuple path, where
//     every Next crossed the instrumented wrapper).
//
// Results are printed and written to BENCH_batch.json. `--quick` runs fewer
// reps and exits non-zero when either claim fails — CI's tier-1 tripwire.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 200000;

const size_t kBatchSizes[] = {1, 64, 256, 1024, 4096};

Table Numbers(int64_t n) {
  Table table("t", Schema({Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < n; ++i) table.AppendRow({Value::Int64(i)});
  return table;
}

/// scan -> filter(v < n/2) -> project(v): the scan-heavy fused-chain shape.
PhysicalPlan MakePlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0), eb::Int(kRows / 2)));
  std::vector<ExprPtr> exprs;
  exprs.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<Project>(
      std::move(filter), std::move(exprs), std::vector<std::string>{"v"}));
}

/// Best-of-`reps` wall time of one full execution, in ns per unit of work.
/// batch_size 0 is the tuple-at-a-time reference driver.
double MeasureNsPerRow(PhysicalPlan* plan, size_t batch_size,
                       TelemetryCollector* collector, int reps) {
  double best = 0;
  uint64_t work = 0;
  for (int rep = 0; rep < reps; ++rep) {
    ExecContext ctx;
    ctx.set_telemetry(collector);
    auto start = std::chrono::steady_clock::now();
    exec::Drive(plan, {.ctx = &ctx, .batch_size = batch_size});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK(ctx.ok());
    work = ctx.work();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    double per_row = ns / static_cast<double>(work);
    if (rep == 0 || per_row < best) best = per_row;
  }
  QPROG_CHECK(work > 0);
  return best;
}

struct Mode {
  const char* name;
  TelemetryCollector* collector;
};

}  // namespace
}  // namespace qprog

int main(int argc, char** argv) {
  using namespace qprog;  // NOLINT(build/namespaces)
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int reps = quick ? 3 : 7;

  std::printf("=== micro_batch: batched execution path ===\n");
  std::printf("plan: scan(%lld) -> filter -> project, best of %d runs\n\n",
              static_cast<long long>(kRows), reps);

  Table t = Numbers(kRows);
  PhysicalPlan plan = MakePlan(&t);

  TelemetryCollector stats_only;
  RingBufferSink ring(4096);
  TelemetryCollector with_ring(&ring);
  Mode modes[] = {
      {"no_telemetry", nullptr},
      {"stats", &stats_only},
      {"ring_sink", &with_ring},
  };

  // Warm up caches before measuring anything.
  (void)MeasureNsPerRow(&plan, 0, nullptr, 1);

  // mode -> batch size -> ns/row; index 0 of each row is the tuple driver.
  double results[3][1 + std::size(kBatchSizes)];
  std::printf("%-14s %10s", "mode", "tuple");
  for (size_t bs : kBatchSizes) std::printf(" %9zu", bs);
  std::printf("   (ns/row)\n");
  for (size_t m = 0; m < std::size(modes); ++m) {
    results[m][0] = MeasureNsPerRow(&plan, 0, modes[m].collector, reps);
    std::printf("%-14s %10.3f", modes[m].name, results[m][0]);
    for (size_t b = 0; b < std::size(kBatchSizes); ++b) {
      results[m][1 + b] =
          MeasureNsPerRow(&plan, kBatchSizes[b], modes[m].collector, reps);
      std::printf(" %9.3f", results[m][1 + b]);
    }
    std::printf("\n");
  }

  // The two headline ratios.
  double speedup_b1 = results[0][1] / results[0][4];  // batch 1 vs 1024, bare
  double bare_1024 = results[0][4];
  double worst_telemetry_1024 = results[1][4] > results[2][4] ? results[1][4]
                                                              : results[2][4];
  double overhead_1024 =
      100.0 * (worst_telemetry_1024 - bare_1024) / bare_1024;
  double tuple_overhead =
      100.0 * (results[2][0] - results[0][0]) / results[0][0];
  std::printf(
      "\nuntelemetered speedup, batch 1 -> 1024:   %.2fx\n"
      "telemetry overhead at batch 1024 (worst):  %+.1f%%\n"
      "telemetry overhead on the tuple path:      %+.1f%% (for comparison)\n",
      speedup_b1, overhead_1024, tuple_overhead);

  std::string json =
      "{\"bench\":\"micro_batch\",\"rows\":" +
      StringPrintf("%lld", static_cast<long long>(kRows)) + ",\"modes\":{";
  for (size_t m = 0; m < std::size(modes); ++m) {
    if (m > 0) json += ',';
    json += StringPrintf("\"%s\":{\"tuple\":%.3f", modes[m].name,
                         results[m][0]);
    for (size_t b = 0; b < std::size(kBatchSizes); ++b) {
      json += StringPrintf(",\"batch_%zu\":%.3f", kBatchSizes[b],
                           results[m][1 + b]);
    }
    json += '}';
  }
  json += StringPrintf(
      "},\"speedup_b1_to_b1024\":%.3f,\"telemetry_overhead_pct_b1024\":%.2f}"
      "\n",
      speedup_b1, overhead_1024);
  std::FILE* out = std::fopen("BENCH_batch.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_batch.json\n");
  }

  if (quick) {
    bool ok = true;
    if (overhead_1024 > 100.0) {
      std::printf("FAIL: telemetry overhead at batch 1024 is %.1f%% (> "
                  "100%%)\n",
                  overhead_1024);
      ok = false;
    }
    if (speedup_b1 < 2.0) {
      std::printf("FAIL: batch 1 -> 1024 speedup is %.2fx (< 2x)\n",
                  speedup_b1);
      ok = false;
    }
    std::printf(quick ? "quick check: %s\n" : "%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
