// Ablation A1 — Theorem 4 empirically: the fraction of random orders that
// are 2-predictive is at least 1/2, for per-tuple work profiles measured on
// the real zipfian join across several skews.

#include <cstdio>

#include "core/analysis.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Ablation A1: predictive orders (Theorem 4) ===\n");
  std::printf("claim: >= 1/2 of orders are 2-predictive, for any profile\n\n");

  Rng rng(4242);
  std::printf("%-6s %-16s %-18s %-18s\n", "z", "per-tuple var", "frac 2-pred",
              "frac 1.2-pred");
  for (double z : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfJoinConfig config;
    config.r1_rows = 5000;
    config.r2_rows = 5000;
    config.z = z;
    config.order = R1Order::kRandom;
    ZipfJoinData data(config);
    PhysicalPlan plan = data.BuildInlPlan();
    // Driver is the R1 scan: locate it.
    int scan_id = -1;
    for (const PhysicalOperator* op : plan.nodes()) {
      if (op->kind() == OpKind::kSeqScan) scan_id = op->node_id();
    }
    PerTupleWork ptw = CollectPerTupleWork(&plan, scan_id);
    double frac2 = FractionCPredictive(ptw.work, 2.0, 300, &rng);
    double frac12 = FractionCPredictive(ptw.work, 1.2, 300, &rng);
    std::printf("%-6.1f %-16.2f %-18.3f %-18.3f\n", z, ptw.Variance(), frac2,
                frac12);
  }
  return 0;
}
