// Ablation A4: the Section-6.4 hybrid estimator against the fixed three
// across the paper's scenario matrix. The hybrid should track pmax where
// the observable mu bound is small (hash plans) and safe elsewhere — never
// the worst column in any row.

#include <cstdio>

#include "core/monitor.h"
#include "workload/zipf_join.h"

namespace {

struct Scenario {
  const char* name;
  qprog::R1Order order;
  bool hash_plan;
};

}  // namespace

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Ablation A4: hybrid vs fixed estimators (avg err %%) ===\n\n");

  const Scenario scenarios[] = {
      {"inl/skew-first", R1Order::kSkewFirst, false},
      {"inl/skew-last", R1Order::kSkewLast, false},
      {"inl/random", R1Order::kRandom, false},
      {"hash/skew-last", R1Order::kSkewLast, true},
  };
  // "hybrid:1.5" exercises the parameterized factory spec: a tighter mu
  // threshold that switches to pmax only when the observable bound is small.
  const std::vector<std::string> estimators = {"dne",    "pmax",       "safe",
                                               "hybrid", "hybrid:1.5", "window"};

  std::printf("%-16s", "scenario");
  for (const std::string& e : estimators) std::printf(" %-10s", e.c_str());
  std::printf("\n");

  for (const Scenario& sc : scenarios) {
    ZipfJoinConfig config;
    config.r1_rows = 50000;
    config.r2_rows = 50000;
    config.z = 2.0;
    config.order = sc.order;
    ZipfJoinData data(config);
    PhysicalPlan plan = sc.hash_plan ? data.BuildHashPlan(nullptr, true)
                                     : data.BuildInlPlan(nullptr, true);
    ProgressReport report = ProgressMonitor::WithEstimators(&plan, estimators)
                                .RunWithApproxCheckpoints(200);
    std::printf("%-16s", sc.name);
    for (size_t i = 0; i < estimators.size(); ++i) {
      std::printf(" %-9.2f%%", 100 * report.Metrics(i).avg_abs_err);
    }
    std::printf("\n");
  }
  return 0;
}
