// Ablation A3: runtime bounds refinement on/off. "Static" freezes LB at its
// value before execution starts (catalog knowledge only); "refined"
// recomputes bounds at every checkpoint (Section 5.1). Refinement is what
// makes pmax converge on complex queries (the Figure 6 effect).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/bounds.h"
#include "exec/plan.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Ablation A3: bounds refinement (static vs runtime) ===\n\n");

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.005;
  config.z = 2.0;
  QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());

  std::printf("%-7s %-24s %-24s\n", "Query", "pmax avg_err (static)",
              "pmax avg_err (refined)");
  for (int q : {1, 4, 13, 18, 21}) {
    // Static LB: bounds snapshot taken right after Open, before any work.
    auto probe = tpch::BuildQuery(q, db);
    QPROG_CHECK(probe.ok());
    ExecContext probe_ctx;
    probe_ctx.Reset(probe.value().num_nodes());
    probe.value().root()->Open(&probe_ctx);
    PlanBounds static_bounds = BoundsTracker(&probe.value()).Compute(probe_ctx);
    uint64_t total_probe = MeasureTotalWork(&probe.value());

    auto plan = tpch::BuildQuery(q, db);
    QPROG_CHECK(plan.ok());
    BoundsTracker tracker(&plan.value());
    ExecContext ctx;
    uint64_t interval = std::max<uint64_t>(1, total_probe / 100);
    // (work, static estimate, refined estimate) per checkpoint.
    std::vector<std::pair<uint64_t, std::pair<double, double>>> samples;
    ctx.SetWorkObserver(interval, [&](uint64_t work) {
      PlanBounds b = tracker.Compute(ctx);
      double w = static_cast<double>(work);
      double est_refined = b.work_lb > 0 ? std::min(1.0, w / b.work_lb) : 0.0;
      double est_static = static_bounds.work_lb > 0
                              ? std::min(1.0, w / static_bounds.work_lb)
                              : 0.0;
      samples.push_back({work, {est_static, est_refined}});
    });
    exec::Drive(&plan.value(), {.ctx = &ctx});
    ctx.ClearWorkObserver();

    const double total = static_cast<double>(ctx.work());
    double static_err = 0, refined_err = 0;
    for (const auto& [work, ests] : samples) {
      double truth = static_cast<double>(work) / total;
      static_err += std::fabs(ests.first - truth);
      refined_err += std::fabs(ests.second - truth);
    }
    size_t n = std::max<size_t>(1, samples.size());
    std::printf("%-7d %-23.2f%% %-23.2f%%\n", q, 100 * static_err / n,
                100 * refined_err / n);
  }
  return 0;
}
