// Table 2 reproduction: mu (average getnext calls per input tuple) for the
// TPC-H query suite over skewed data (z = 2). The paper reports values
// between 1.001 and 2.782, with Q1/Q13/Q18/Q21 at the top.

#include <cstdio>

#include "core/bounds.h"
#include "exec/plan.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace {

const double kPaperMu[23] = {0,     1.989, 1.213, 1.886, 1.003, 1.007,
                             1.008, 1.538, 1.432, 1.021, 1.004, 1.014,
                             1.001, 2.019, 1.001, 1.149, 1.157, 1.020,
                             2.771, 1.025, 1.159, 2.782, -1};

}  // namespace

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Table 2: mu values for TPC-H (z = 2) ===\n");
  std::printf("paper: mu in [1.001, 2.782]; large for Q1/Q13/Q18/Q21\n\n");

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  config.z = 2.0;
  QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());

  std::printf("%-7s %-12s %-12s\n", "Query", "mu", "paper mu");
  for (int q : tpch::AvailableQueries()) {
    auto plan = tpch::BuildQuery(q, db);
    QPROG_CHECK(plan.ok());
    double leaves = ScannedLeafCardinality(plan.value());
    uint64_t total = MeasureTotalWork(&plan.value());
    double mu = static_cast<double>(total) / std::max(1.0, leaves);
    if (q <= 21 && kPaperMu[q] > 0) {
      std::printf("%-7d %-12.3f %-12.3f\n", q, mu, kPaperMu[q]);
    } else {
      std::printf("%-7d %-12.3f %-12s\n", q, mu, "-");
    }
  }
  return 0;
}
