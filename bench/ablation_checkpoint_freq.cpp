// Ablation A2: how the checkpointing interval trades estimator accuracy
// metrics against monitoring overhead (number of bounds recomputations).

#include <chrono>
#include <cstdio>

#include "core/monitor.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Ablation A2: checkpoint frequency ===\n\n");

  ZipfJoinConfig config;
  config.r1_rows = 50000;
  config.r2_rows = 50000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);

  PhysicalPlan probe = data.BuildInlPlan(nullptr, true);
  const uint64_t total = MeasureTotalWork(&probe);

  std::printf("%-14s %-13s %-14s %-14s %-12s\n", "interval", "checkpoints",
              "safe max_err", "safe avg_err", "runtime_ms");
  for (uint64_t divisor : {10, 100, 1000, 10000}) {
    uint64_t interval = std::max<uint64_t>(1, total / divisor);
    PhysicalPlan plan = data.BuildInlPlan(nullptr, true);
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan, {"safe"});
    auto start = std::chrono::steady_clock::now();
    ProgressReport report = monitor.Run(interval);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EstimatorMetrics m = report.Metrics(0);
    std::printf("total/%-8llu %-13zu %-13.2f%% %-13.2f%% %-12lld\n",
                static_cast<unsigned long long>(divisor),
                report.checkpoints.size(), 100 * m.max_abs_err,
                100 * m.avg_abs_err, static_cast<long long>(elapsed));
  }
  return 0;
}
