// Figure 3 reproduction: the dne estimator on TPC-H Query 1 (skewed data,
// z = 2). The paper reports dne hugging the diagonal, with mu = 1.98 and
// per-tuple work variance 0.01 for this pipeline.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Figure 3: dne estimator for TPC-H Query 1",
      "dne is almost exactly accurate; mu = 1.98, var = 0.01");

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  config.z = 2.0;
  QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());

  auto plan = tpch::BuildQuery(1, db);
  QPROG_CHECK(plan.ok());
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), {"dne"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(200);
  bench::PrintSeries(report);
  std::printf("\n");
  bench::PrintMetrics(report);

  // The pipeline's per-tuple work profile (the scan is the driver node).
  auto fresh = tpch::BuildQuery(1, db);
  QPROG_CHECK(fresh.ok());
  int scan_id = -1;
  for (const PhysicalOperator* op : fresh.value().nodes()) {
    if (op->kind() == OpKind::kSeqScan) scan_id = op->node_id();
  }
  PerTupleWork ptw = CollectPerTupleWork(&fresh.value(), scan_id);
  std::printf("\nmu (measured)  = %.3f   (paper: 1.98)\n", report.mu);
  std::printf("var (measured) = %.3f   (paper: 0.01)\n", ptw.Variance());
  return 0;
}
