// Multi-tenant server throughput and admission latency (DESIGN.md §12): a
// fixed batch of spill-prone queries over three templates is pushed through
// the QueryServer at 1, 4, and 16 concurrent sessions, under a governor pool
// small enough that sessions contend for memory (revocations at the wider
// fleets). Reported per fleet width: batch wall time, queries/second,
// speedup vs. one session, p50/p95 admission latency (the Submit call — the
// fingerprint + prediction + decision path a client blocks on), and how
// often the governor revoked headroom.
//
// Results are printed and written to BENCH_server.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "server/query_server.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 20000;
constexpr int kBatch = 48;  // queries per fleet width
const int kSessions[] = {1, 4, 16};

// Group keys arrive gradually so aggregates keep charging buffered rows
// across the whole scan — under the shared pool that means spills and, at
// the wider fleets, revocation-induced earlier spills.
Table MakeTable() {
  Table table("t", Schema({Field("k", TypeId::kInt64),
                           Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < kRows; ++i) {
    table.AppendRow({Value::Int64(i / 16), Value::Int64(i % 997)});
  }
  return table;
}

const char* kTemplates[] = {
    "SELECT k, count(*), sum(v) FROM t GROUP BY k",
    "SELECT sum(v), min(v), max(v) FROM t",
    "SELECT count(*) FROM t a JOIN t b ON a.k = b.k AND a.v = b.v",
};

struct Result {
  int sessions = 0;
  double wall_ms = 0;
  double qps = 0;
  double speedup = 1.0;  // vs. sessions=1
  double admit_p50_us = 0;
  double admit_p95_us = 0;
  uint64_t revocations = 0;
  uint64_t shed = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Result RunFleet(const Database* db, int sessions) {
  ServerOptions opts;
  opts.sessions = static_cast<size_t>(sessions);
  opts.checkpoint_interval = 512;
  opts.admission.max_queue = kBatch;  // measure throughput, not shedding
  opts.admission.fallback_peak_rows = 512;
  opts.governor.pool_rows = 2048;  // fleets wider than ~4 contend
  opts.governor.min_grant_rows = 64;
  QueryServer server(db, opts);

  std::vector<double> admit_us;
  admit_us.reserve(kBatch);
  std::vector<uint64_t> tickets;
  tickets.reserve(kBatch);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBatch; ++i) {
    auto s0 = std::chrono::steady_clock::now();
    uint64_t id = server.Submit("bench", kTemplates[i % std::size(kTemplates)]);
    auto s1 = std::chrono::steady_clock::now();
    admit_us.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0)
                .count()) /
        1e3);
    tickets.push_back(id);
  }
  for (uint64_t id : tickets) {
    QueryResult r = server.Wait(id);
    QPROG_CHECK_MSG(r.status.ok(), "%s", r.status.ToString().c_str());
  }
  auto end = std::chrono::steady_clock::now();

  Result res;
  res.sessions = sessions;
  res.wall_ms = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        end - start)
                        .count()) /
                1e3;
  res.qps = static_cast<double>(kBatch) / (res.wall_ms / 1e3);
  res.admit_p50_us = Percentile(admit_us, 0.50);
  res.admit_p95_us = Percentile(admit_us, 0.95);
  res.revocations = server.governor().revocations();
  res.shed = server.shed_total();
  server.Shutdown();
  return res;
}

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== micro_server: fleet throughput x admission latency ===\n");
  std::printf("rows=%lld, batch=%d queries over %zu templates\n\n",
              static_cast<long long>(kRows), kBatch, std::size(kTemplates));

  Database db;
  QPROG_CHECK(db.AddTable(MakeTable()).ok());

  std::vector<Result> results;
  double base_ms = 0;
  for (int sessions : kSessions) {
    Result r = RunFleet(&db, sessions);
    if (sessions == 1) base_ms = r.wall_ms;
    r.speedup = base_ms / r.wall_ms;
    results.push_back(r);
  }

  std::printf("%-10s %-10s %-9s %-9s %-13s %-13s %-7s %-5s\n", "sessions",
              "wall_ms", "qps", "speedup", "admit_p50_us", "admit_p95_us",
              "revoke", "shed");
  for (const Result& r : results) {
    std::printf("%-10d %-10.1f %-9.1f %-9.2f %-13.1f %-13.1f %-7llu %-5llu\n",
                r.sessions, r.wall_ms, r.qps, r.speedup, r.admit_p50_us,
                r.admit_p95_us,
                static_cast<unsigned long long>(r.revocations),
                static_cast<unsigned long long>(r.shed));
  }

  std::string json =
      "{\"bench\":\"micro_server\",\"rows\":" +
      StringPrintf("%lld", static_cast<long long>(kRows)) +
      StringPrintf(",\"batch\":%d", kBatch) + ",\"scenarios\":{";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"s%d\":{\"wall_ms\":%.1f,\"qps\":%.1f,\"speedup_vs_s1\":%.3f,"
        "\"admit_p50_us\":%.1f,\"admit_p95_us\":%.1f,\"revocations\":%llu,"
        "\"shed\":%llu}",
        r.sessions, r.wall_ms, r.qps, r.speedup, r.admit_p50_us,
        r.admit_p95_us, static_cast<unsigned long long>(r.revocations),
        static_cast<unsigned long long>(r.shed));
  }
  json += "}}\n";
  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_server.json\n");
  }
  return 0;
}
