// Figure 6 reproduction: ratio error of pmax over the execution of TPC-H
// Q21 (a complex multi-pipeline query with semi and anti joins). The paper
// shows the ratio error dropping to ~1.5 after ~30% of the query and
// converging to 1 as the runtime bounds tighten.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Figure 6: ratio error of pmax over TPC-H Q21 execution",
      "error drops to ~1.5 by ~30% progress, then converges to 1");

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  config.z = 2.0;
  QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());

  auto plan = tpch::BuildQuery(21, db);
  QPROG_CHECK(plan.ok());
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan.value(), {"pmax"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(200);

  std::printf("%-10s %-12s\n", "actual", "ratio_err");
  size_t step = std::max<size_t>(1, report.checkpoints.size() / 25);
  for (size_t i = 0; i < report.checkpoints.size(); i += step) {
    const Checkpoint& c = report.checkpoints[i];
    double est = c.estimates[0];
    double ratio = (c.true_progress > 0 && est > 0)
                       ? std::max(est / c.true_progress, c.true_progress / est)
                       : 1.0;
    std::printf("%-10.4f %-12.4f\n", c.true_progress, ratio);
  }
  EstimatorMetrics m = report.Metrics(0);
  std::printf("\nmax ratio err = %.3f, avg ratio err = %.3f, mu = %.3f"
              " (paper Table 2: mu = 2.782)\n",
              m.max_ratio_err, m.avg_ratio_err, report.mu);

  // The paper's observation: after ~30%% of the query the error is small.
  for (const Checkpoint& c : report.checkpoints) {
    if (c.true_progress >= 0.3) {
      double est = c.estimates[0];
      double ratio =
          est > 0 ? std::max(est / c.true_progress, c.true_progress / est)
                  : 1.0;
      std::printf("ratio error at 30%% progress = %.3f (paper: ~1.5)\n",
                  ratio);
      break;
    }
  }
  return 0;
}
