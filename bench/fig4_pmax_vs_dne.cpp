// Figure 4 reproduction: pmax vs dne on the synthetic zipfian INL join
// (R1 unique, R2.B ~ zipf(z=2)), with the high-join-skew elements ordered
// FIRST in R1. The paper shows dne substantially underestimating while pmax
// tracks the true progress.

#include "bench/bench_util.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Figure 4: pmax vs dne (zipfian INL join, skew-first order)",
      "dne substantially underestimates; pmax is effective (mu = 2)");

  ZipfJoinConfig config;
  config.r1_rows = 100000;
  config.r2_rows = 100000;
  config.z = 2.0;
  config.order = R1Order::kSkewFirst;
  ZipfJoinData data(config);

  PhysicalPlan plan = data.BuildInlPlan(nullptr, /*linear=*/true);
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(300);
  bench::PrintSeries(report);
  std::printf("\n");
  bench::PrintMetrics(report);
  std::printf("\nmu = %.3f (paper's synthetic setup: 2)\n", report.mu);
  return 0;
}
