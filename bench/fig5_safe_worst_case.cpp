// Figure 5 reproduction: safe vs dne under the worst-case order — the
// element joining with the most R2 tuples appears at the END of R1. The
// paper shows dne overestimating badly near the end (it believes the query
// is nearly done just before the expensive tuple arrives) while safe
// substantially lowers the error.

#include "bench/bench_util.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Figure 5: safe vs dne (zipfian INL join, worst-case skew-last order)",
      "dne overestimates before the heavy tuple; safe yields lower error");

  ZipfJoinConfig config;
  config.r1_rows = 100000;
  config.r2_rows = 100000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);

  PhysicalPlan plan = data.BuildInlPlan(nullptr, /*linear=*/true);
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(300);
  bench::PrintSeries(report);
  std::printf("\n");
  bench::PrintMetrics(report);
  return 0;
}
