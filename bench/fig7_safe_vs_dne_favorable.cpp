// Figure 7 reproduction: safe vs dne in a case favourable to dne — the same
// join with an extra predicate on R1 that filters out the high-skew tuples,
// so the variance in per-tuple work is negligible. The paper shows dne
// almost exactly accurate while safe is off by ~20% even at the end.

#include "bench/bench_util.h"
#include "expr/expr.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Figure 7: safe vs dne (skewed tuples filtered out of R1)",
      "dne almost exactly accurate; safe off by ~20% even at the end");

  ZipfJoinConfig config;
  config.r1_rows = 100000;
  config.r2_rows = 100000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);

  // Values 0..99 are the zipf head (the skewed join keys); drop them.
  ExprPtr filter = eb::Ge(eb::Col(0, "a"), eb::Int(100));
  PhysicalPlan plan = data.BuildInlPlan(std::move(filter), /*linear=*/true);
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "safe"});
  ProgressReport report = monitor.RunWithApproxCheckpoints(300);
  bench::PrintSeries(report);
  std::printf("\n");
  bench::PrintMetrics(report);
  return 0;
}
