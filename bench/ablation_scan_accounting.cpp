// Ablation A7: merged vs separate selection nodes — the plan-shape knob
// behind the Table 2 calibration (DESIGN.md "model of work"). The same
// logical Q1-style query executed with its selection as a separate sigma
// node (the paper's Q1, mu ~ 2) vs merged into the scan (the paper's Q6
// style, mu ~ 1), and the estimator accuracy in both shapes.

#include <cstdio>

#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "tpch/dbgen.h"
#include "tpch/schema.h"

using namespace qprog;  // NOLINT(build/namespaces)

namespace {

PhysicalPlan BuildPlan(const Database& db, bool merged) {
  namespace l = tpch::l;
  const Table* lineitem = db.GetTable("lineitem");
  ExprPtr pred = eb::Le(eb::Col(l::kShipdate, "l_shipdate"),
                        eb::DateLit("1998-09-02"));
  OperatorPtr input;
  if (merged) {
    input = std::make_unique<SeqScan>(lineitem, std::move(pred));
  } else {
    input = std::make_unique<Filter>(std::make_unique<SeqScan>(lineitem),
                                     std::move(pred));
  }
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(l::kReturnflag, "l_returnflag"));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kSum, eb::Col(l::kQuantity, "l_quantity"),
                    "sum_qty");
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  auto agg = std::make_unique<HashAggregate>(
      std::move(input), std::move(groups),
      std::vector<std::string>{"l_returnflag"}, std::move(aggs));
  agg->set_estimated_rows(3);
  return PhysicalPlan(std::move(agg));
}

}  // namespace

int main() {
  std::printf("=== Ablation A7: merged vs separate selection node ===\n");
  std::printf("a separate sigma re-emits passing rows (mu ~ 2); a merged\n"
              "predicate leaves only the leaf getnexts (mu ~ 1)\n\n");

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  config.z = 2.0;
  QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());

  std::printf("%-10s %-8s %-12s %-14s %-14s\n", "shape", "mu", "total(Q)",
              "dne avg_err", "safe avg_err");
  for (bool merged : {false, true}) {
    PhysicalPlan plan = BuildPlan(db, merged);
    ProgressMonitor monitor =
        ProgressMonitor::WithEstimators(&plan, {"dne", "safe"});
    ProgressReport report = monitor.RunWithApproxCheckpoints(100);
    std::printf("%-10s %-8.3f %-12llu %-13.2f%% %-13.2f%%\n",
                merged ? "merged" : "separate", report.mu,
                static_cast<unsigned long long>(report.total_work),
                100 * report.Metrics(0).avg_abs_err,
                100 * report.Metrics(1).avg_abs_err);
  }
  return 0;
}
