// Ablation A5: engine operator throughput microbenchmarks
// (google-benchmark). Not a paper figure; establishes the substrate's
// baseline costs so the estimator-overhead numbers (A6) have context.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "index/ordered_index.h"
#include "storage/table.h"

namespace qprog {
namespace {

Table MakeInts(const char* name, int64_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Table t(name, Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}));
  t.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(rng.UniformInt(0, domain - 1)), Value::Int64(i)});
  }
  return t;
}

void BM_SeqScan(benchmark::State& state) {
  Table t = MakeInts("t", state.range(0), 1000, 1);
  for (auto _ : state) {
    PhysicalPlan plan(std::make_unique<SeqScan>(&t));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqScan)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  Table t = MakeInts("t", state.range(0), 1000, 2);
  for (auto _ : state) {
    auto scan = std::make_unique<SeqScan>(&t);
    PhysicalPlan plan(std::make_unique<Filter>(
        std::move(scan), eb::Lt(eb::Col(0), eb::Int(500))));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  Table probe = MakeInts("p", state.range(0), 10000, 3);
  Table build = MakeInts("b", state.range(0) / 4, 10000, 4);
  for (auto _ : state) {
    std::vector<ExprPtr> pk, bk;
    pk.push_back(eb::Col(0));
    bk.push_back(eb::Col(0));
    auto join = std::make_unique<HashJoin>(std::make_unique<SeqScan>(&probe),
                                           std::make_unique<SeqScan>(&build),
                                           std::move(pk), std::move(bk));
    PhysicalPlan plan(std::move(join));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_IndexNestedLoopsJoin(benchmark::State& state) {
  Table outer = MakeInts("o", state.range(0), 10000, 5);
  Table inner = MakeInts("i", state.range(0) / 4, 10000, 6);
  OrderedIndex idx(&inner, 0);
  for (auto _ : state) {
    auto join = std::make_unique<IndexNestedLoopsJoin>(
        std::make_unique<SeqScan>(&outer), std::make_unique<IndexSeek>(&idx),
        eb::Col(0));
    PhysicalPlan plan(std::move(join));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexNestedLoopsJoin)->Arg(100000);

void BM_Sort(benchmark::State& state) {
  Table t = MakeInts("t", state.range(0), 1000000, 7);
  for (auto _ : state) {
    std::vector<SortKey> keys;
    keys.emplace_back(eb::Col(0), false);
    PhysicalPlan plan(std::make_unique<Sort>(std::make_unique<SeqScan>(&t),
                                             std::move(keys)));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(100000);

void BM_HashAggregate(benchmark::State& state) {
  Table t = MakeInts("t", state.range(0), 1000, 8);
  for (auto _ : state) {
    std::vector<ExprPtr> groups;
    groups.push_back(eb::Col(0));
    std::vector<AggregateDesc> aggs;
    aggs.emplace_back(AggFunc::kSum, eb::Col(1), "s");
    PhysicalPlan plan(std::make_unique<HashAggregate>(
        std::make_unique<SeqScan>(&t), std::move(groups),
        std::vector<std::string>{"k"}, std::move(aggs)));
    ExecContext ctx;
    benchmark::DoNotOptimize(exec::Drive(&plan, {.ctx = &ctx}).root_rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(100000);

}  // namespace
}  // namespace qprog

BENCHMARK_MAIN();
