// Quantifies the cost of the telemetry layer on the row-production hot path:
// the same plan executed (1) bare, (2) with a stats-only TelemetryCollector,
// (3) with a ring-buffer sink, (4) with a JSONL sink streaming to /dev/null.
//
// The acceptance bar for the detached path: <= 2% slowdown vs. the seed
// executor — with no collector attached the instrumented wrappers reduce to
// one null-pointer branch per operator call.
//
// Results (ns/row, overhead vs. bare, plus a MetricsRegistry dump) are
// printed and written to BENCH_obs.json in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "core/monitor.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/plan.h"
#include "exec/scan.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 200000;
constexpr int kReps = 7;  // best-of to shed scheduler noise

Table Numbers(int64_t n) {
  Table table("t", Schema({Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < n; ++i) table.AppendRow({Value::Int64(i)});
  return table;
}

PhysicalPlan MakePlan(const Table* t) {
  auto scan = std::make_unique<SeqScan>(t);
  auto filter = std::make_unique<Filter>(
      std::move(scan), eb::Lt(eb::Col(0), eb::Int(kRows / 2)));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::move(filter), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs)));
}

/// Best-of-kReps wall time of one full execution, in ns/row of work.
double MeasureNsPerRow(PhysicalPlan* plan, TelemetryCollector* collector) {
  double best = 0;
  uint64_t work = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    ExecContext ctx;
    ctx.set_telemetry(collector);
    auto start = std::chrono::steady_clock::now();
    exec::Drive(plan, {.ctx = &ctx});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK(ctx.ok());
    work = ctx.work();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    double per_row = ns / static_cast<double>(work);
    if (rep == 0 || per_row < best) best = per_row;
  }
  QPROG_CHECK(work > 0);
  return best;
}

struct Scenario {
  const char* name;
  double ns_per_row;
};

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== micro_trace_overhead: telemetry cost on the hot path ===\n");
  std::printf("plan: scan(%lld) -> filter -> count, best of %d runs\n\n",
              static_cast<long long>(kRows), kReps);

  Table t = Numbers(kRows);
  PhysicalPlan plan = MakePlan(&t);

  std::vector<Scenario> scenarios;
  // Warm up caches once before measuring anything.
  (void)MeasureNsPerRow(&plan, nullptr);

  scenarios.push_back({"no_telemetry", MeasureNsPerRow(&plan, nullptr)});

  TelemetryCollector stats_only;
  scenarios.push_back({"stats_only", MeasureNsPerRow(&plan, &stats_only)});

  RingBufferSink ring(4096);
  TelemetryCollector with_ring(&ring);
  scenarios.push_back({"ring_sink", MeasureNsPerRow(&plan, &with_ring)});

  JsonlFileSink devnull("/dev/null");
  TelemetryCollector with_jsonl(&devnull);
  scenarios.push_back({"jsonl_devnull", MeasureNsPerRow(&plan, &with_jsonl)});

  // Monitored run with a registry, for the checkpoint/estimator histograms.
  MetricsRegistry registry;
  MonitorOptions mon_opts;
  mon_opts.metrics_registry = &registry;
  ProgressMonitor monitor =
      ProgressMonitor::WithEstimators(&plan, {"dne", "pmax", "safe"}, mon_opts);
  ProgressReport report = monitor.Run(10000);
  QPROG_CHECK(report.completed());

  double base = scenarios[0].ns_per_row;
  std::printf("%-16s %-12s %-10s\n", "scenario", "ns/row", "overhead");
  for (const Scenario& s : scenarios) {
    std::printf("%-16s %-12.3f %+.2f%%\n", s.name, s.ns_per_row,
                100.0 * (s.ns_per_row - base) / base);
  }
  std::printf("\nmonitored run: %zu checkpoints, registry:\n%s\n",
              report.checkpoints.size(), registry.ToJson().c_str());

  std::string json = "{\"bench\":\"micro_trace_overhead\",\"rows\":" +
                     StringPrintf("%lld", static_cast<long long>(kRows)) +
                     ",\"scenarios\":{";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"%s\":{\"ns_per_row\":%.3f,\"overhead_pct\":%.2f}",
        scenarios[i].name, scenarios[i].ns_per_row,
        100.0 * (scenarios[i].ns_per_row - base) / base);
  }
  json += "},\"registry\":" + registry.ToJson() + "}\n";
  std::FILE* out = std::fopen("BENCH_obs.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_obs.json\n");
  }
  return 0;
}
