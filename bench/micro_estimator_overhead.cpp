// Ablation A6: per-checkpoint cost of the progress machinery
// (google-benchmark) — bounds recomputation, pipeline decomposition, and
// each estimator's evaluation, measured against a mid-size TPC-H Q21 plan
// mid-execution.

#include <benchmark/benchmark.h>

#include "core/bounds.h"
#include "core/estimators.h"
#include "core/monitor.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace qprog {
namespace {

struct Fixture {
  Fixture() {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.z = 2.0;
    QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());
    plan = std::make_unique<PhysicalPlan>(
        std::move(tpch::BuildQuery(21, db).value()));
    // Run roughly half the query, then freeze state for measurement.
    uint64_t total = 0;
    {
      auto probe = tpch::BuildQuery(21, db);
      total = MeasureTotalWork(&probe.value());
    }
    ctx.Reset(plan->num_nodes());
    plan->root()->Open(&ctx);
    Row row;
    while (ctx.work() < total / 2 && plan->root()->Next(&ctx, &row)) {
    }
    pipelines = DecomposePipelines(*plan);
  }

  Database db;
  std::unique_ptr<PhysicalPlan> plan;
  ExecContext ctx;
  std::vector<Pipeline> pipelines;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_BoundsCompute(benchmark::State& state) {
  Fixture& f = GetFixture();
  BoundsTracker tracker(f.plan.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Compute(f.ctx));
  }
}
BENCHMARK(BM_BoundsCompute);

void BM_PipelineDecompose(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposePipelines(*f.plan));
  }
}
BENCHMARK(BM_PipelineDecompose);

void BM_EstimatorEvaluate(benchmark::State& state, const char* name) {
  Fixture& f = GetFixture();
  BoundsTracker tracker(f.plan.get());
  PlanBounds bounds = tracker.Compute(f.ctx);
  ProgressContext pc;
  pc.plan = f.plan.get();
  pc.exec = &f.ctx;
  pc.bounds = &bounds;
  pc.pipelines = &f.pipelines;
  pc.scanned_leaf_cardinality = ScannedLeafCardinality(*f.plan);
  auto estimator = CreateEstimator(name).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator->Estimate(pc));
  }
}
BENCHMARK_CAPTURE(BM_EstimatorEvaluate, dne, "dne");
BENCHMARK_CAPTURE(BM_EstimatorEvaluate, pmax, "pmax");
BENCHMARK_CAPTURE(BM_EstimatorEvaluate, safe, "safe");
BENCHMARK_CAPTURE(BM_EstimatorEvaluate, hybrid, "hybrid");

}  // namespace
}  // namespace qprog

BENCHMARK_MAIN();
