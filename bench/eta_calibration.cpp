// ETA calibration harness (DESIGN.md §13): does the claimed ~90% band
// actually contain the observed completion time?
//
// Runs the TPC-H query suite and the Section-5.4 zipf join matrix (INL and
// hash plans, skew-first / skew-last / random R1 orders) under a monitored
// execution with a real-clock EtaModel attached. At every checkpoint the
// model's [eta_lo, eta, eta_hi] claim is recorded together with the
// wall-clock instant it was made; once the query finishes, the observed
// remaining time at each claim is scored against the band (EtaCalibration),
// bucketed by progress decile.
//
// Prints the decile table and writes BENCH_eta.json. With --min-coverage X
// the process exits nonzero when the overall observed coverage of the
// claimed interval falls below X — the CI tripwire. --quick shrinks the
// matrix for a fast smoke run.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/strings.h"
#include "core/monitor.h"
#include "obs/eta_model.h"
#include "obs/telemetry.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

struct RunOutcome {
  std::string name;
  bool completed = false;
  size_t checkpoints = 0;
  double wall_s = 0;
};

/// Monitored run with a real-clock EtaModel; every checkpoint's claimed band
/// is scored against the completion time observed afterwards.
RunOutcome RunAndScore(const std::string& name, PhysicalPlan* plan,
                       uint64_t interval, EtaCalibration* cal) {
  struct Claim {
    uint64_t work = 0;
    EtaBand band;
    uint64_t at_ns = 0;
  };
  std::vector<Claim> claims;
  EtaModel model;  // real clock, trace off
  MonitorOptions mo;
  mo.eta_model = &model;
  mo.checkpoint_listener = [&claims](const Checkpoint& cp) {
    Claim c;
    c.work = cp.work;
    c.band.eta_s = cp.eta_seconds;
    c.band.eta_lo_s = cp.eta_lo_seconds;
    c.band.eta_hi_s = cp.eta_hi_seconds;
    c.at_ns = MonotonicNanos();
    claims.push_back(c);
  };
  ProgressMonitor m =
      ProgressMonitor::WithEstimators(plan, {"dne", "safe"}, std::move(mo));
  uint64_t start_ns = MonotonicNanos();
  ProgressReport report = m.Run(interval);
  uint64_t end_ns = MonotonicNanos();

  RunOutcome outcome;
  outcome.name = name;
  outcome.completed = report.completed();
  outcome.checkpoints = claims.size();
  outcome.wall_s = static_cast<double>(end_ns - start_ns) / 1e9;
  if (!report.completed() || report.total_work == 0) return outcome;
  for (const Claim& c : claims) {
    EtaCalibrationSample sample;
    sample.progress = static_cast<double>(c.work) /
                      static_cast<double>(report.total_work);
    sample.band = c.band;
    sample.actual_remaining_s =
        static_cast<double>(end_ns - c.at_ns) / 1e9;
    cal->Add(sample);
  }
  return outcome;
}

void PrintDecileTable(const EtaCalibration& cal) {
  std::printf("%-10s %-9s %-10s %-14s %-14s\n", "decile", "samples",
              "coverage", "mean_abs_err_s", "mean_rel_width");
  for (size_t d = 0; d < 10; ++d) {
    const EtaCalibration::DecileStats& s = cal.decile(d);
    std::printf("%zu0-%zu0%%     %-9llu %-10.3f %-14.4f %-14.3f\n", d, d + 1,
                static_cast<unsigned long long>(s.samples), s.coverage(),
                s.mean_abs_err_s(), s.mean_rel_width());
  }
  EtaCalibration::DecileStats overall = cal.Overall();
  std::printf("%-10s %-9llu %-10.3f %-14.4f %-14.3f\n", "overall",
              static_cast<unsigned long long>(overall.samples),
              overall.coverage(), overall.mean_abs_err_s(),
              overall.mean_rel_width());
  std::printf("infinite (pre-warm-up) bands: %llu\n",
              static_cast<unsigned long long>(cal.infinite_bands()));
}

}  // namespace
}  // namespace qprog

int main(int argc, char** argv) {
  using namespace qprog;  // NOLINT(build/namespaces)

  bool quick = false;
  double min_coverage = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--min-coverage") == 0 && i + 1 < argc) {
      min_coverage = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--min-coverage X]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "eta_calibration: claimed ~90% ETA bands vs. observed completion",
      "wall-clock trustworthiness, the time-domain analogue of Sections 2.5 "
      "and 5's estimator scoring");

  EtaCalibration cal;
  std::vector<RunOutcome> outcomes;

  // TPC-H suite: every available query at a scale that yields a meaningful
  // checkpoint count per run.
  {
    Database db;
    tpch::TpchConfig config;
    config.scale_factor = quick ? 0.002 : 0.01;
    QPROG_CHECK(tpch::GenerateTpch(config, &db).ok());
    uint64_t interval = quick ? 500 : 2000;
    for (int q : tpch::AvailableQueries()) {
      auto plan = tpch::BuildQuery(q, db);
      QPROG_CHECK(plan.ok());
      outcomes.push_back(RunAndScore(StringPrintf("tpch_q%d", q),
                                     &plan.value(), interval, &cal));
    }
  }

  // Zipf join matrix (Section 5.4): the adversarial skew orders whose rate
  // drift is exactly what the variance term must absorb.
  {
    const double zs[] = {1.0, 2.0};
    const R1Order orders[] = {R1Order::kSkewFirst, R1Order::kSkewLast,
                              R1Order::kRandom};
    const char* order_names[] = {"skew_first", "skew_last", "random"};
    for (double z : zs) {
      ZipfJoinConfig config;
      config.r1_rows = quick ? 5000 : 30000;
      config.r2_rows = quick ? 5000 : 30000;
      config.z = z;
      for (size_t oi = 0; oi < 3; ++oi) {
        config.order = orders[oi];
        ZipfJoinData data(config);
        uint64_t interval = quick ? 400 : 1500;
        PhysicalPlan inl = data.BuildInlPlan();
        outcomes.push_back(
            RunAndScore(StringPrintf("zipf_inl_z%.0f_%s", z, order_names[oi]),
                        &inl, interval, &cal));
        PhysicalPlan hash = data.BuildHashPlan();
        outcomes.push_back(RunAndScore(
            StringPrintf("zipf_hash_z%.0f_%s", z, order_names[oi]), &hash,
            interval, &cal));
      }
    }
  }

  std::printf("%-24s %-10s %-12s %-9s\n", "run", "complete", "checkpoints",
              "wall_s");
  for (const RunOutcome& o : outcomes) {
    std::printf("%-24s %-10s %-12llu %-9.3f\n", o.name.c_str(),
                o.completed ? "yes" : "NO",
                static_cast<unsigned long long>(o.checkpoints), o.wall_s);
  }
  std::printf("\n");
  PrintDecileTable(cal);

  std::string json = "{\"bench\":\"eta_calibration\"";
  json += StringPrintf(",\"quick\":%s", quick ? "true" : "false");
  json += StringPrintf(",\"runs\":%zu", outcomes.size());
  json += ",\"calibration\":" + cal.ToJson() + "}\n";
  std::FILE* out = std::fopen("BENCH_eta.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_eta.json\n");
  }

  double coverage = cal.Overall().coverage();
  if (min_coverage >= 0.0) {
    if (coverage < min_coverage) {
      std::fprintf(stderr,
                   "FAIL: observed coverage %.3f below floor %.3f\n",
                   coverage, min_coverage);
      return 1;
    }
    std::printf("coverage %.3f >= floor %.3f\n", coverage, min_coverage);
  }
  return 0;
}
