// Table 3 reproduction: mu values for the long-running SkyServer queries.
// The paper reports 1.008-1.79 over the real SDSS personal-edition data;
// this runs the analogue queries over the synthetic astronomical database
// (see DESIGN.md, Substitutions).

#include <cstdio>

#include "core/bounds.h"
#include "exec/plan.h"
#include "skyserver/skyserver.h"

namespace {

double PaperMu(int id) {
  switch (id) {
    case 3:
      return 1.008;
    case 6:
      return 1.428;
    case 14:
      return 1.078;
    case 18:
      return 1.79;
    case 22:
      return 1.246;
    case 28:
      return 1.044;
    case 32:
      return 1.253;
  }
  return -1;
}

}  // namespace

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== Table 3: mu values for SkyServer (synthetic analogue) ===\n");
  std::printf("paper: mu in [1.008, 1.79] on the SDSS personal edition\n\n");

  Database db;
  skyserver::SkyServerConfig config;
  config.num_photoobj = 60000;
  QPROG_CHECK(skyserver::GenerateSkyServer(config, &db).ok());

  std::printf("%-7s %-12s %-12s\n", "Query", "mu", "paper mu");
  for (int id : skyserver::AvailableSkyQueries()) {
    auto plan = skyserver::BuildSkyQuery(id, db);
    QPROG_CHECK(plan.ok());
    double leaves = ScannedLeafCardinality(plan.value());
    uint64_t total = MeasureTotalWork(&plan.value());
    double mu = static_cast<double>(total) / std::max(1.0, leaves);
    std::printf("%-7d %-12.3f %-12.3f\n", id, mu, PaperMu(id));
  }
  return 0;
}
