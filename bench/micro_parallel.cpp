// Quantifies intra-query parallelism (DESIGN.md §10): the spill-heavy
// external sort and Grace hash join swept over worker-pool sizes {1, 2, 4, 8}
// with spill compression off and on. The SpillManager's device model charges
// a fixed cost per spill byte on the thread doing the I/O, so run formation,
// intermediate merges, partition writes and partition joins overlap their
// device time across the pool exactly like bandwidth-bound disk I/O — which
// is what makes parallel speedup measurable even on a single-core host, and
// makes the codec's byte reduction show up as wall-clock time.
//
// Results (wall ms, speedup vs. the 1-thread pool, spill bytes pre/post
// codec) are printed and written to BENCH_parallel.json.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 40000;
constexpr int kReps = 2;  // best-of to shed scheduler noise
// ~row-serialization-sized payloads at a plausible flash-era byte cost; big
// enough that device time dominates the CPU work of sorting/hashing.
constexpr uint64_t kNsPerByte = 160;
const int kThreads[] = {1, 2, 4, 8};

/// Anti-sorted keys plus a repetitive TPC-H-ish string payload: the sort and
/// merges do real comparisons, and the spill codec has real redundancy to
/// find (compressed runs should be well under half the raw bytes).
Table Payload(int64_t n, int64_t buckets) {
  Table table("t", Schema({Field("k", TypeId::kInt64),
                           Field("pad", TypeId::kString)}));
  for (int64_t i = n - 1; i >= 0; --i) {
    table.AppendRow(
        {Value::Int64(i % buckets),
         Value::String(StringPrintf("orderstatus=OK|priority=%d|comment="
                                    "final deps unwound along the regular "
                                    "instructions",
                                    static_cast<int>(i % 5)))});
  }
  return table;
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(probe), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk)));
}

struct Result {
  std::string name;
  int threads = 0;
  bool compress = false;
  double wall_ms = 0;
  double speedup = 1.0;        // vs. threads=1 at the same codec setting
  uint64_t spill_bytes = 0;    // raw serialized bytes (pre-codec)
  uint64_t disk_bytes = 0;     // bytes that hit the simulated device
  uint64_t spill_runs = 0;
};

/// Best-of-kReps execution of `make_plan` under a tight budget with a
/// `threads`-wide pool and the device model charging every spill byte.
Result Measure(const std::string& name,
               const std::function<PhysicalPlan()>& make_plan,
               uint64_t soft_budget, int threads, bool compress) {
  Result r;
  r.name = name;
  r.threads = threads;
  r.compress = compress;
  double best_ns = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    PhysicalPlan plan = make_plan();
    SpillManager spill;
    SpillFileOptions options;
    options.compress = compress;
    spill.set_file_options(options);
    spill.set_device_model({kNsPerByte, kNsPerByte});
    QueryGuard guard;
    guard.set_max_buffered_rows(soft_budget);
    WorkerPool pool(threads);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    ctx.set_worker_pool(&pool);
    auto start = std::chrono::steady_clock::now();
    exec::Drive(&plan, {.ctx = &ctx});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK_MSG(ctx.ok(), "%s", ctx.status().ToString().c_str());
    QPROG_CHECK(spill.live_runs() == 0);
    QPROG_CHECK(spill.stats().runs_created > 0);  // must exercise the pool
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (rep == 0 || ns < best_ns) best_ns = ns;
    r.spill_bytes = spill.stats().bytes_written;
    r.disk_bytes = spill.stats().disk_bytes_written;
    r.spill_runs = spill.stats().runs_created;
  }
  r.wall_ms = best_ns / 1e6;
  return r;
}

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== micro_parallel: worker-pool speedup x spill codec ===\n");
  std::printf("rows=%lld, device=%llu ns/byte each way, best of %d runs\n\n",
              static_cast<long long>(kRows),
              static_cast<unsigned long long>(kNsPerByte), kReps);

  Table sort_t = Payload(kRows, 9973);
  Table probe_t = Payload(kRows / 2, 4001);
  Table build_t = Payload(kRows / 2, 4001);

  std::vector<Result> results;
  auto sweep = [&](const char* family,
                   const std::function<PhysicalPlan()>& make_plan,
                   uint64_t budget) {
    for (bool compress : {false, true}) {
      double base_ms = 0;
      for (int threads : kThreads) {
        Result r = Measure(StringPrintf("%s/t%d/%s", family, threads,
                                        compress ? "codec_on" : "codec_off"),
                           make_plan, budget, threads, compress);
        if (threads == 1) base_ms = r.wall_ms;
        r.speedup = base_ms / r.wall_ms;
        results.push_back(r);
      }
    }
  };

  sweep("sort", [&] { return SortPlan(&sort_t); }, kRows / 32);
  sweep("join", [&] { return JoinPlan(&probe_t, &build_t); }, kRows / 32);

  std::printf("%-24s %-10s %-9s %-14s %-14s %-6s\n", "scenario", "wall_ms",
              "speedup", "spill_bytes", "disk_bytes", "runs");
  for (const Result& r : results) {
    std::printf("%-24s %-10.1f %-9.2f %-14llu %-14llu %-6llu\n",
                r.name.c_str(), r.wall_ms, r.speedup,
                static_cast<unsigned long long>(r.spill_bytes),
                static_cast<unsigned long long>(r.disk_bytes),
                static_cast<unsigned long long>(r.spill_runs));
  }
  for (const Result& r : results) {
    if (r.compress && r.threads == 1) {
      std::printf("\n%s codec ratio: %.2fx (%llu -> %llu bytes)\n",
                  r.name.c_str(),
                  static_cast<double>(r.spill_bytes) /
                      static_cast<double>(r.disk_bytes),
                  static_cast<unsigned long long>(r.spill_bytes),
                  static_cast<unsigned long long>(r.disk_bytes));
    }
  }

  std::string json =
      "{\"bench\":\"micro_parallel\",\"rows\":" +
      StringPrintf("%lld", static_cast<long long>(kRows)) +
      StringPrintf(",\"device_ns_per_byte\":%llu",
                   static_cast<unsigned long long>(kNsPerByte)) +
      ",\"scenarios\":{";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"%s\":{\"wall_ms\":%.1f,\"speedup_vs_t1\":%.3f,"
        "\"spill_bytes\":%llu,\"disk_bytes\":%llu,\"spill_runs\":%llu}",
        r.name.c_str(), r.wall_ms, r.speedup,
        static_cast<unsigned long long>(r.spill_bytes),
        static_cast<unsigned long long>(r.disk_bytes),
        static_cast<unsigned long long>(r.spill_runs));
  }
  json += "}}\n";
  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  return 0;
}
