// Robust estimator selection (König et al., PAPERS.md): does picking the
// historically-best fixed estimator per query template beat committing to
// any single fixed estimator across a workload?
//
// Phase 1 (train): every workload query — the TPC-H suite, the synthetic
// SkyServer analysis queries, and the Section-5.4 zipf join matrix — runs
// once under all five selection candidates, and the terminal progress-error
// series feeds a CrossRunRegistry exactly as a SqlSession would feed it.
//
// Phase 2 (eval): each query re-runs with "auto:<pick>" alongside every
// fixed candidate, scoring the per-run average |claimed - true| per
// estimator. The deterministic engine makes this a clean replay: the pick's
// column is what auto would have delivered on the next arrival of the
// template.
//
// Prints the per-query table and the workload aggregate, and writes
// BENCH_selection.json. Exit code is the CI tripwire: nonzero when auto is
// worse than the worst fixed candidate on any query, or when auto's
// workload-level RMS exceeds the best single fixed estimator's. --quick
// shrinks the matrix for a fast smoke run.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/strings.h"
#include "core/monitor.h"
#include "obs/cross_run_registry.h"
#include "skyserver/skyserver.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "workload/zipf_join.h"

namespace qprog {
namespace {

struct Workload {
  std::string name;
  std::function<PhysicalPlan()> build;
  uint64_t interval = 1000;
};

struct QueryScore {
  std::string name;
  std::string pick;
  double auto_err = 0;
  std::vector<double> candidate_errs;  // parallel to SelectionCandidates()
  bool completed = false;
};

/// One monitored run; returns per-estimator average |claimed - true|.
bool RunOnce(const Workload& w, const std::vector<std::string>& specs,
             std::vector<double>* errs, ProgressReport* out = nullptr) {
  PhysicalPlan plan = w.build();
  ProgressMonitor m = ProgressMonitor::WithEstimators(&plan, specs);
  ProgressReport r = m.Run(w.interval);
  if (!r.completed()) return false;
  errs->clear();
  for (size_t i = 0; i < r.names.size(); ++i) {
    errs->push_back(r.Metrics(i).avg_abs_err);
  }
  if (out != nullptr) *out = std::move(r);
  return true;
}

}  // namespace
}  // namespace qprog

int main(int argc, char** argv) {
  using namespace qprog;  // NOLINT(build/namespaces)

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  bench::PrintHeader(
      "estimator_selection: per-template auto pick vs. fixed estimators",
      "the robust-selection idea of Koenig et al. over the paper's Section 5 "
      "workloads");

  const std::vector<std::string>& candidates =
      CrossRunRegistry::SelectionCandidates();

  // --- assemble the workload matrix -----------------------------------------
  std::vector<Workload> workloads;

  Database tpch_db;
  {
    tpch::TpchConfig config;
    config.scale_factor = quick ? 0.002 : 0.01;
    QPROG_CHECK(tpch::GenerateTpch(config, &tpch_db).ok());
    std::vector<int> queries = tpch::AvailableQueries();
    if (quick) queries.resize(std::min<size_t>(queries.size(), 3));
    for (int q : queries) {
      workloads.push_back({StringPrintf("tpch_q%d", q),
                           [q, &tpch_db] {
                             auto plan = tpch::BuildQuery(q, tpch_db);
                             QPROG_CHECK(plan.ok());
                             return std::move(plan).value();
                           },
                           quick ? 500u : 2000u});
    }
  }

  Database sky_db;
  {
    skyserver::SkyServerConfig config;
    config.num_photoobj = quick ? 4000 : 40000;
    QPROG_CHECK(skyserver::GenerateSkyServer(config, &sky_db).ok());
    std::vector<int> queries = skyserver::AvailableSkyQueries();
    if (quick) queries.resize(std::min<size_t>(queries.size(), 2));
    for (int q : queries) {
      workloads.push_back({StringPrintf("sky_q%d", q),
                           [q, &sky_db] {
                             auto plan = skyserver::BuildSkyQuery(q, sky_db);
                             QPROG_CHECK(plan.ok());
                             return std::move(plan).value();
                           },
                           quick ? 500u : 2000u});
    }
  }

  std::vector<std::unique_ptr<ZipfJoinData>> zipf_data;
  {
    const double zs[] = {1.0, 2.0};
    const R1Order orders[] = {R1Order::kSkewFirst, R1Order::kSkewLast,
                              R1Order::kRandom};
    const char* order_names[] = {"skew_first", "skew_last", "random"};
    for (double z : zs) {
      for (size_t oi = 0; oi < 3; ++oi) {
        if (quick && !(z == 2.0 && oi == 0)) continue;
        ZipfJoinConfig config;
        config.r1_rows = quick ? 4000 : 30000;
        config.r2_rows = quick ? 4000 : 30000;
        config.z = z;
        config.order = orders[oi];
        zipf_data.push_back(std::make_unique<ZipfJoinData>(config));
        ZipfJoinData* data = zipf_data.back().get();
        workloads.push_back(
            {StringPrintf("zipf_inl_z%.0f_%s", z, order_names[oi]),
             [data] { return data->BuildInlPlan(); }, quick ? 400u : 1500u});
        workloads.push_back(
            {StringPrintf("zipf_hash_z%.0f_%s", z, order_names[oi]),
             [data] { return data->BuildHashPlan(); }, quick ? 400u : 1500u});
      }
    }
  }

  // --- phase 1: train the registry ------------------------------------------
  CrossRunRegistry registry;
  std::vector<double> errs;
  for (size_t i = 0; i < workloads.size(); ++i) {
    ProgressReport report;
    if (!RunOnce(workloads[i], candidates, &errs, &report)) {
      std::fprintf(stderr, "training run %s did not complete\n",
                   workloads[i].name.c_str());
      return 1;
    }
    registry.Record(
        BuildCrossRunObservation(/*fingerprint=*/i + 1, report, 0));
  }

  // --- phase 2: evaluate auto against every fixed candidate -----------------
  // The engine is deterministic, so one training run is a faithful history;
  // selection warms at min_runs=1 here (the server default of 3 guards
  // against nondeterministic production workloads, not this replay).
  std::vector<QueryScore> scores;
  for (size_t i = 0; i < workloads.size(); ++i) {
    QueryScore score;
    score.name = workloads[i].name;
    score.pick = registry.SelectEstimator(i + 1, /*min_runs=*/1);
    std::vector<std::string> specs;
    specs.push_back("auto:" + score.pick);
    for (const std::string& c : candidates) specs.push_back(c);
    score.completed = RunOnce(workloads[i], specs, &errs);
    if (!score.completed) {
      std::fprintf(stderr, "eval run %s did not complete\n",
                   score.name.c_str());
      return 1;
    }
    score.auto_err = errs[0];
    score.candidate_errs.assign(errs.begin() + 1, errs.end());
    scores.push_back(std::move(score));
  }

  // --- report ---------------------------------------------------------------
  std::printf("%-24s %-16s %-9s", "query", "auto_pick", "auto");
  for (const std::string& c : candidates) std::printf(" %-9.9s", c.c_str());
  std::printf("\n");
  int per_query_failures = 0;
  for (const QueryScore& s : scores) {
    std::printf("%-24s %-16s %-9.4f", s.name.c_str(), s.pick.c_str(),
                s.auto_err);
    double worst = 0;
    for (double e : s.candidate_errs) {
      std::printf(" %-9.4f", e);
      worst = std::max(worst, e);
    }
    // Tripwire 1: auto must never be worse than the worst fixed candidate.
    if (s.auto_err > worst + 1e-9) {
      std::printf("  <-- WORSE THAN WORST FIXED");
      ++per_query_failures;
    }
    std::printf("\n");
  }

  // Workload aggregate: RMS of per-query average errors, the same score
  // SelectEstimator minimizes per template.
  auto rms = [&](std::function<double(const QueryScore&)> err) {
    double sum_sq = 0;
    for (const QueryScore& s : scores) {
      double e = err(s);
      sum_sq += e * e;
    }
    return std::sqrt(sum_sq / static_cast<double>(scores.size()));
  };
  double auto_rms = rms([](const QueryScore& s) { return s.auto_err; });
  double best_fixed_rms = 0;
  std::string best_fixed;
  for (size_t c = 0; c < candidates.size(); ++c) {
    double r = rms([c](const QueryScore& s) { return s.candidate_errs[c]; });
    std::printf("%-24s %-16s %.4f\n",
                c == 0 ? "workload rms:" : "", candidates[c].c_str(), r);
    if (best_fixed.empty() || r < best_fixed_rms) {
      best_fixed_rms = r;
      best_fixed = candidates[c];
    }
  }
  std::printf("%-24s %-16s %.4f\n", "", "auto", auto_rms);
  std::printf("\nauto rms %.4f vs best fixed (%s) %.4f\n", auto_rms,
              best_fixed.c_str(), best_fixed_rms);

  // --- JSON artifact --------------------------------------------------------
  std::string json = "{\"bench\":\"estimator_selection\"";
  json += StringPrintf(",\"quick\":%s", quick ? "true" : "false");
  json += ",\"queries\":[";
  for (size_t i = 0; i < scores.size(); ++i) {
    const QueryScore& s = scores[i];
    if (i > 0) json += ',';
    json += StringPrintf("{\"name\":\"%s\",\"pick\":\"%s\",\"auto_err\":%.6g",
                         s.name.c_str(), s.pick.c_str(), s.auto_err);
    json += ",\"fixed\":{";
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (c > 0) json += ',';
      json += StringPrintf("\"%s\":%.6g", candidates[c].c_str(),
                           s.candidate_errs[c]);
    }
    json += "}}";
  }
  json += StringPrintf(
      "],\"auto_rms\":%.6g,\"best_fixed\":\"%s\",\"best_fixed_rms\":%.6g}\n",
      auto_rms, best_fixed.c_str(), best_fixed_rms);
  std::FILE* out = std::fopen("BENCH_selection.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_selection.json\n");
  }

  // Tripwire 2: per-template selection must do at least as well as the best
  // single fixed estimator over the whole workload — the point of the
  // exercise.
  if (per_query_failures > 0) {
    std::fprintf(stderr, "FAIL: auto worse than worst fixed on %d queries\n",
                 per_query_failures);
    return 1;
  }
  if (auto_rms > best_fixed_rms + 1e-9) {
    std::fprintf(stderr,
                 "FAIL: auto workload rms %.4f above best fixed %.4f\n",
                 auto_rms, best_fixed_rms);
    return 1;
  }
  std::printf("PASS: auto <= worst fixed per query, "
              "auto rms <= best fixed rms\n");
  return 0;
}
