// Quantifies the partitioned-pipeline scale-out path (DESIGN.md §16): a
// GROUP BY over a wide keyed table, run once as the serial plan (full scan
// -> HashAggregate) and then as the partitioned pipeline (range-partitioned
// scans -> PartialAggregate -> Exchange hashed on the group key ->
// FinalAggregate) swept over worker-pool sizes {1, 2, 4, 8}.
//
// A buffer budget far below the group count plus micro_parallel's spill
// device model (a fixed cost per spill byte) makes the memory pressure
// wall-clock-visible: the serial HashAggregate must Grace-spill most of the
// wide input rows and pay device time for every byte, while the partitioned
// pipeline's producers pre-aggregate each partition down to one narrow row
// per group *before* anything is charged against the budget — the
// exchange's bucket runs are a small fraction of the serial plan's spilled
// bytes. That structural win holds at any pool size and on any host; on
// multi-core hosts the producers' hash work additionally overlaps across
// the pool (reported as the 1 -> 4 thread scaling line, ~1.0x on a
// single-core machine).
//
// The headline claim this harness checks: the 4-thread partitioned run is
// >= 2x faster than the serial plan. Results are printed and written to
// BENCH_exchange.json. `--quick` runs one rep and exits non-zero when the
// claim fails — CI's tier-1 tripwire.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/aggregate.h"
#include "exec/exchange.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 60000;
constexpr int64_t kGroups = 4096;
// Far below kGroups: the serial HashAggregate absorbs the first kBudget
// distinct keys in memory and Grace-spills the raw rows of the rest.
constexpr uint64_t kBudget = 512;
// Same flash-era byte cost as micro_parallel: big enough that device time
// dominates the CPU work of hashing and folding.
constexpr uint64_t kNsPerByte = 160;
const int kThreads[] = {1, 2, 4, 8};
constexpr size_t kConsumers = 4;

/// (i mod kGroups, i, pad): integer key and value keep partitioned SUMs
/// exact; the payload column fattens every raw-spilled row so the device
/// model has real bytes to charge.
Table Keyed(int64_t n) {
  Table table("t", Schema({Field("k", TypeId::kInt64),
                           Field("v", TypeId::kInt64),
                           Field("pad", TypeId::kString)}));
  for (int64_t i = 0; i < n; ++i) {
    table.AppendRow(
        {Value::Int64(i % kGroups), Value::Int64(i),
         Value::String(StringPrintf("lineitem|status=%d|shipmode=TRUCK",
                                    static_cast<int>(i % 7)))});
  }
  return table;
}

std::vector<AggregateDesc> CountSumAggs() {
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kCount, nullptr, "cnt");
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "sv");
  return aggs;
}

/// Serial reference: one HashAggregate over a full scan, all on the driver
/// thread.
PhysicalPlan SerialPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"k"}, CountSumAggs()));
}

/// Partitioned pipeline: `partitions` range scans -> partial aggregates ->
/// Exchange(hash on group key) -> FinalAggregate.
PhysicalPlan PartitionedPlan(const Table* t, size_t partitions) {
  const uint64_t n = t->num_rows();
  std::vector<OperatorPtr> producers;
  for (size_t p = 0; p < partitions; ++p) {
    auto scan = std::make_unique<SeqScan>(t, nullptr, n * p / partitions,
                                          n * (p + 1) / partitions);
    std::vector<ExprPtr> groups;
    groups.push_back(eb::Col(0));
    producers.push_back(std::make_unique<PartialAggregate>(
        std::move(scan), std::move(groups), std::vector<std::string>{"k"},
        CountSumAggs()));
  }
  auto exchange = std::make_unique<Exchange>(
      std::move(producers), std::vector<size_t>{0}, kConsumers);
  return PhysicalPlan(std::make_unique<FinalAggregate>(
      std::move(exchange), 1, std::vector<std::string>{"k"}, CountSumAggs()));
}

struct Result {
  std::string name;
  int threads = 0;  // 0 = serial plan, no pool
  double wall_ms = 0;
  double speedup = 1.0;  // vs. the serial plan
  uint64_t root_rows = 0;
  uint64_t spill_bytes = 0;
  uint64_t spill_runs = 0;
};

/// Best-of-`reps` execution under the tight budget with the device model
/// charging every spill byte. `threads` 0 runs without a pool.
Result Measure(const std::string& name,
               const std::function<PhysicalPlan()>& make_plan, int threads,
               int reps) {
  Result r;
  r.name = name;
  r.threads = threads;
  double best_ns = 0;
  for (int rep = 0; rep < reps; ++rep) {
    PhysicalPlan plan = make_plan();
    SpillManager spill;
    spill.set_device_model({kNsPerByte, kNsPerByte});
    QueryGuard guard;
    guard.set_max_buffered_rows(kBudget);
    std::unique_ptr<WorkerPool> pool;
    if (threads > 0) pool = std::make_unique<WorkerPool>(threads);
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    if (pool != nullptr) ctx.set_worker_pool(pool.get());
    auto start = std::chrono::steady_clock::now();
    exec::DriveResult dr = exec::Drive(&plan, {.ctx = &ctx});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK_MSG(ctx.ok(), "%s", ctx.status().ToString().c_str());
    QPROG_CHECK(dr.root_rows == static_cast<uint64_t>(kGroups));
    QPROG_CHECK(spill.live_runs() == 0);
    QPROG_CHECK(spill.stats().runs_created > 0);  // budget must bind
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (rep == 0 || ns < best_ns) best_ns = ns;
    r.root_rows = dr.root_rows;
    r.spill_bytes = spill.stats().bytes_written;
    r.spill_runs = spill.stats().runs_created;
  }
  r.wall_ms = best_ns / 1e6;
  return r;
}

}  // namespace
}  // namespace qprog

int main(int argc, char** argv) {
  using namespace qprog;  // NOLINT(build/namespaces)
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int reps = quick ? 1 : 2;

  std::printf("=== micro_exchange: partitioned pipeline scale-out ===\n");
  std::printf(
      "rows=%lld, groups=%lld, budget=%llu rows, device=%llu ns/byte, "
      "best of %d runs\n\n",
      static_cast<long long>(kRows), static_cast<long long>(kGroups),
      static_cast<unsigned long long>(kBudget),
      static_cast<unsigned long long>(kNsPerByte), reps);

  Table t = Keyed(kRows);

  std::vector<Result> results;
  results.push_back(
      Measure("serial", [&] { return SerialPlan(&t); }, 0, reps));
  double serial_ms = results[0].wall_ms;
  double t1_ms = 0;
  double t4_ms = 0;
  double speedup_t4 = 0;
  for (int threads : kThreads) {
    Result r = Measure(StringPrintf("partitioned/t%d", threads),
                       [&] { return PartitionedPlan(&t, 4); }, threads, reps);
    r.speedup = serial_ms / r.wall_ms;
    if (threads == 1) t1_ms = r.wall_ms;
    if (threads == 4) {
      t4_ms = r.wall_ms;
      speedup_t4 = r.speedup;
    }
    results.push_back(r);
  }

  std::printf("%-16s %-10s %-12s %-8s %-14s %-6s\n", "scenario", "wall_ms",
              "vs_serial", "rows", "spill_bytes", "runs");
  for (const Result& r : results) {
    std::printf("%-16s %-10.1f %-12.2f %-8llu %-14llu %-6llu\n",
                r.name.c_str(), r.wall_ms, r.speedup,
                static_cast<unsigned long long>(r.root_rows),
                static_cast<unsigned long long>(r.spill_bytes),
                static_cast<unsigned long long>(r.spill_runs));
  }
  std::printf(
      "\npartitioned speedup at 4 threads vs serial:   %.2fx\n"
      "pool scaling, 1 -> 4 threads (same pipeline):  %.2fx\n",
      speedup_t4, t1_ms / t4_ms);

  std::string json =
      "{\"bench\":\"micro_exchange\"," +
      StringPrintf("\"rows\":%lld,\"groups\":%lld,\"budget_rows\":%llu,"
                   "\"device_ns_per_byte\":%llu,\"scenarios\":{",
                   static_cast<long long>(kRows),
                   static_cast<long long>(kGroups),
                   static_cast<unsigned long long>(kBudget),
                   static_cast<unsigned long long>(kNsPerByte));
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"%s\":{\"wall_ms\":%.1f,\"speedup_vs_serial\":%.3f,"
        "\"spill_bytes\":%llu,\"spill_runs\":%llu}",
        r.name.c_str(), r.wall_ms, r.speedup,
        static_cast<unsigned long long>(r.spill_bytes),
        static_cast<unsigned long long>(r.spill_runs));
  }
  json += StringPrintf(
      "},\"speedup_t4_vs_serial\":%.3f,\"scaling_t1_to_t4\":%.3f}\n",
      speedup_t4, t1_ms / t4_ms);
  std::FILE* out = std::fopen("BENCH_exchange.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_exchange.json\n");
  }

  if (quick) {
    bool ok = true;
    if (speedup_t4 < 2.0) {
      std::printf("FAIL: partitioned 4-thread speedup is %.2fx (< 2x)\n",
                  speedup_t4);
      ok = false;
    }
    std::printf("quick check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
