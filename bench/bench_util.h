// Shared helpers for the reproduction benches: series and table printing in
// the shape of the paper's figures/tables.

#ifndef QPROG_BENCH_BENCH_UTIL_H_
#define QPROG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/monitor.h"

namespace qprog {
namespace bench {

/// Prints "actual <name1> <name2> ..." rows sampled at ~`points` evenly
/// spaced true-progress steps — the data behind a Figure-3/4/5/7 style plot.
inline void PrintSeries(const ProgressReport& report, size_t points = 20) {
  std::printf("%-10s", "actual");
  for (const std::string& name : report.names) {
    std::printf(" %-10s", name.c_str());
  }
  std::printf("\n");
  if (report.checkpoints.empty()) return;
  size_t step = std::max<size_t>(1, report.checkpoints.size() / points);
  for (size_t i = 0; i < report.checkpoints.size(); i += step) {
    const Checkpoint& c = report.checkpoints[i];
    std::printf("%-10.4f", c.true_progress);
    for (double e : c.estimates) std::printf(" %-10.4f", e);
    std::printf("\n");
  }
  const Checkpoint& last = report.checkpoints.back();
  std::printf("%-10.4f", last.true_progress);
  for (double e : last.estimates) std::printf(" %-10.4f", e);
  std::printf("\n");
}

/// Prints the paper's Table-1-style error summary for each estimator.
inline void PrintMetrics(const ProgressReport& report) {
  std::printf("%-12s %-12s %-12s %-14s %-14s\n", "estimator", "max_err",
              "avg_err", "max_ratio_err", "avg_ratio_err");
  for (size_t i = 0; i < report.names.size(); ++i) {
    EstimatorMetrics m = report.Metrics(i);
    std::printf("%-12s %-11.2f%% %-11.2f%% %-14.3f %-14.3f\n",
                report.names[i].c_str(), 100 * m.max_abs_err,
                100 * m.avg_abs_err, m.max_ratio_err, m.avg_ratio_err);
  }
}

inline void PrintHeader(const char* title, const char* paper_context) {
  std::printf("=== %s ===\n", title);
  std::printf("paper: %s\n\n", paper_context);
}

}  // namespace bench
}  // namespace qprog

#endif  // QPROG_BENCH_BENCH_UTIL_H_
