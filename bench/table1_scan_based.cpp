// Table 1 reproduction: impact of a scan-based plan. The same worst-case
// zipfian data and ordering executed with an index-nested-loops plan vs a
// hash-join (scan-based) plan; max/avg error reported for dne, pmax and
// safe. The paper reports (INL -> Hash): dne 49.5% -> 19.2% max, pmax same
// as dne, safe 25.2% -> 8.2% max.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/zipf_join.h"

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  bench::PrintHeader(
      "Table 1: impact of scan-based plan (INL vs Hash, worst-case order)",
      "every estimator improves substantially when moving to the hash plan");

  ZipfJoinConfig config;
  config.r1_rows = 100000;
  config.r2_rows = 100000;
  config.z = 2.0;
  config.order = R1Order::kSkewLast;
  ZipfJoinData data(config);

  const std::vector<std::string> estimators = {"dne", "pmax", "safe"};

  PhysicalPlan inl = data.BuildInlPlan(nullptr, /*linear=*/true);
  ProgressReport r_inl = ProgressMonitor::WithEstimators(&inl, estimators)
                             .RunWithApproxCheckpoints(300);
  PhysicalPlan hash = data.BuildHashPlan(nullptr, /*linear=*/true);
  ProgressReport r_hash = ProgressMonitor::WithEstimators(&hash, estimators)
                              .RunWithApproxCheckpoints(300);

  std::printf("%-10s %-14s %-14s %-14s %-14s\n", "estimator", "MaxErr(INL)",
              "MaxErr(Hash)", "AvgErr(INL)", "AvgErr(Hash)");
  for (size_t i = 0; i < estimators.size(); ++i) {
    EstimatorMetrics mi = r_inl.Metrics(i);
    EstimatorMetrics mh = r_hash.Metrics(i);
    std::printf("%-10s %-13.2f%% %-13.2f%% %-13.2f%% %-13.2f%%\n",
                estimators[i].c_str(), 100 * mi.max_abs_err,
                100 * mh.max_abs_err, 100 * mi.avg_abs_err,
                100 * mh.avg_abs_err);
  }
  std::printf(
      "\npaper (Table 1):\n"
      "dne        49.50%%        19.20%%        24.74%%        7.37%%\n"
      "pmax       49.50%%        19.20%%        24.74%%        9.04%%\n"
      "safe       25.2%%         8.2%%          14.8%%         4.2%%\n");
  return 0;
}
