// Quantifies the cost of graceful degradation: the same blocking plans
// executed fully in memory and under progressively tighter buffered-row
// budgets that force the spill paths — external run-merge sort, Grace hash
// join, and partition-spilled aggregation — plus the raw SpillFile record
// write/read throughput that bounds them all.
//
// Results (ns per unit of work, spill run/byte counts, slowdown vs. the
// in-memory path) are printed and written to BENCH_spill.json in the working
// directory.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "storage/spill_file.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 100000;
constexpr int kReps = 3;  // best-of to shed scheduler noise

Table Numbers(int64_t n) {
  Table table("t", Schema({Field("v", TypeId::kInt64)}));
  // Anti-sorted so the sort and merge do real comparisons.
  for (int64_t i = n - 1; i >= 0; --i) table.AppendRow({Value::Int64(i)});
  return table;
}

Table Keyed(int64_t n, int64_t buckets) {
  Table table("k",
              Schema({Field("k", TypeId::kInt64), Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < n; ++i) {
    table.AppendRow({Value::Int64(i % buckets), Value::Int64(i)});
  }
  return table;
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(probe), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk)));
}

PhysicalPlan AggPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "total");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"g"}, std::move(aggs)));
}

struct Result {
  std::string name;
  double ns_per_work = 0;     // wall time / final work counter
  double slowdown = 1.0;      // vs. the scenario's in-memory baseline
  uint64_t work = 0;          // revised total(Q)
  uint64_t spill_runs = 0;
  uint64_t spill_rows = 0;
  uint64_t spill_bytes = 0;
};

/// Best-of-kReps execution under `soft_budget` (0 = unconstrained).
Result Measure(const std::string& name,
               const std::function<PhysicalPlan()>& make_plan,
               uint64_t soft_budget) {
  Result r;
  r.name = name;
  double best_ns = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    PhysicalPlan plan = make_plan();
    SpillManager spill;
    QueryGuard guard;
    ExecContext ctx;
    if (soft_budget > 0) {
      guard.set_max_buffered_rows(soft_budget);
      ctx.set_guard(&guard);
      ctx.set_spill_manager(&spill);
    }
    auto start = std::chrono::steady_clock::now();
    ExecutePlan(&plan, &ctx);
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK_MSG(ctx.ok(), "%s", ctx.status().ToString().c_str());
    QPROG_CHECK(spill.live_runs() == 0);
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (rep == 0 || ns < best_ns) best_ns = ns;
    r.work = ctx.work();
    r.spill_runs = spill.stats().runs_created;
    r.spill_rows = spill.stats().rows_written;
    r.spill_bytes = spill.stats().bytes_written;
  }
  r.ns_per_work = best_ns / static_cast<double>(r.work);
  return r;
}

/// Raw SpillFile throughput: rows serialized+written then re-read, ns/row.
std::pair<double, double> MeasureFileThroughput(int64_t rows) {
  auto file = SpillFile::Create("");
  QPROG_CHECK(file.ok());
  Row row = {Value::Int64(123456789), Value::Int64(987654321)};
  std::string bytes;
  auto w0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < rows; ++i) {
    bytes.clear();
    AppendRowBytes(row, &bytes);
    QPROG_CHECK(file.value()->AppendRecord(bytes.data(), bytes.size()).ok());
  }
  auto w1 = std::chrono::steady_clock::now();
  QPROG_CHECK(file.value()->SeekToStart().ok());
  std::string payload;
  int64_t read = 0;
  auto r0 = std::chrono::steady_clock::now();
  while (true) {
    StatusOr<bool> more = file.value()->ReadRecord(&payload);
    QPROG_CHECK(more.ok());
    if (!more.value()) break;
    Row back;
    QPROG_CHECK(ParseRowBytes(payload, &back).ok());
    ++read;
  }
  auto r1 = std::chrono::steady_clock::now();
  QPROG_CHECK(read == rows);
  auto ns = [](auto a, auto b) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  return {ns(w0, w1) / static_cast<double>(rows),
          ns(r0, r1) / static_cast<double>(rows)};
}

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== micro_spill: cost of memory-adaptive execution ===\n");
  std::printf("rows=%lld, best of %d runs per scenario\n\n",
              static_cast<long long>(kRows), kReps);

  Table sort_t = Numbers(kRows);
  Table probe_t = Keyed(kRows / 2, 5000);
  Table build_t = Keyed(kRows / 2, 5000);
  Table agg_t = Keyed(kRows, kRows / 8);  // 12.5k groups

  std::vector<Result> results;
  auto run_family = [&](const char* family,
                        const std::function<PhysicalPlan()>& make_plan,
                        uint64_t mild, uint64_t harsh) {
    Result mem = Measure(std::string(family) + "/in_memory", make_plan, 0);
    Result spill_mild =
        Measure(std::string(family) + "/spill_mild", make_plan, mild);
    Result spill_harsh =
        Measure(std::string(family) + "/spill_harsh", make_plan, harsh);
    spill_mild.slowdown = spill_mild.ns_per_work * spill_mild.work /
                          (mem.ns_per_work * mem.work);
    spill_harsh.slowdown = spill_harsh.ns_per_work * spill_harsh.work /
                           (mem.ns_per_work * mem.work);
    results.push_back(mem);
    results.push_back(spill_mild);
    results.push_back(spill_harsh);
  };

  run_family("sort", [&] { return SortPlan(&sort_t); }, kRows / 4, kRows / 32);
  run_family("hashjoin", [&] { return JoinPlan(&probe_t, &build_t); },
             kRows / 8, kRows / 64);
  run_family("hashagg", [&] { return AggPlan(&agg_t); }, kRows / 16,
             kRows / 128);

  std::printf("%-22s %-10s %-10s %-8s %-8s %-12s %-10s\n", "scenario",
              "ns/work", "work", "runs", "rows", "bytes", "slowdown");
  for (const Result& r : results) {
    std::printf("%-22s %-10.2f %-10llu %-8llu %-8llu %-12llu %.2fx\n",
                r.name.c_str(), r.ns_per_work,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.spill_runs),
                static_cast<unsigned long long>(r.spill_rows),
                static_cast<unsigned long long>(r.spill_bytes), r.slowdown);
  }

  auto [write_ns, read_ns] = MeasureFileThroughput(kRows);
  std::printf("\nspill file: write=%.1f ns/row, read=%.1f ns/row\n", write_ns,
              read_ns);

  std::string json =
      "{\"bench\":\"micro_spill\",\"rows\":" +
      StringPrintf("%lld", static_cast<long long>(kRows)) + ",\"scenarios\":{";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"%s\":{\"ns_per_work\":%.2f,\"work\":%llu,\"spill_runs\":%llu,"
        "\"spill_rows\":%llu,\"spill_bytes\":%llu,\"slowdown\":%.3f}",
        r.name.c_str(), r.ns_per_work, static_cast<unsigned long long>(r.work),
        static_cast<unsigned long long>(r.spill_runs),
        static_cast<unsigned long long>(r.spill_rows),
        static_cast<unsigned long long>(r.spill_bytes), r.slowdown);
  }
  json += StringPrintf(
      "},\"spill_file\":{\"write_ns_per_row\":%.1f,\"read_ns_per_row\":%.1f}}"
      "\n",
      write_ns, read_ns);
  std::FILE* out = std::fopen("BENCH_spill.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_spill.json\n");
  }
  return 0;
}
