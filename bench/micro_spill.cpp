// Quantifies the cost of graceful degradation: the same blocking plans
// executed fully in memory and under progressively tighter buffered-row
// budgets that force the spill paths — external run-merge sort, Grace hash
// join, and partition-spilled aggregation — plus the raw SpillFile record
// write/read throughput that bounds them all.
//
// Results (ns per unit of work, spill run/byte counts, slowdown vs. the
// in-memory path) are printed and written to BENCH_spill.json in the working
// directory. A final scenario times the HashAggregate's spilled-partition
// replay serially and on a 4-thread worker pool under the SpillManager's
// device model (DESIGN.md §9): replay reads overlap their simulated device
// time across the pool, so the speedup is measurable even on one core, and
// the parallel output must be row-for-row identical to the serial replay.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/plan.h"
#include "exec/query_guard.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/spill.h"
#include "exec/worker_pool.h"
#include "storage/spill_file.h"
#include "storage/table.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {
namespace {

constexpr int64_t kRows = 100000;
constexpr int kReps = 3;  // best-of to shed scheduler noise

Table Numbers(int64_t n) {
  Table table("t", Schema({Field("v", TypeId::kInt64)}));
  // Anti-sorted so the sort and merge do real comparisons.
  for (int64_t i = n - 1; i >= 0; --i) table.AppendRow({Value::Int64(i)});
  return table;
}

Table Keyed(int64_t n, int64_t buckets) {
  Table table("k",
              Schema({Field("k", TypeId::kInt64), Field("v", TypeId::kInt64)}));
  for (int64_t i = 0; i < n; ++i) {
    table.AppendRow({Value::Int64(i % buckets), Value::Int64(i)});
  }
  return table;
}

PhysicalPlan SortPlan(const Table* t) {
  std::vector<SortKey> keys;
  keys.emplace_back(eb::Col(0));
  return PhysicalPlan(
      std::make_unique<Sort>(std::make_unique<SeqScan>(t), std::move(keys)));
}

PhysicalPlan JoinPlan(const Table* probe, const Table* build) {
  std::vector<ExprPtr> pk, bk;
  pk.push_back(eb::Col(0));
  bk.push_back(eb::Col(0));
  return PhysicalPlan(std::make_unique<HashJoin>(
      std::make_unique<SeqScan>(probe), std::make_unique<SeqScan>(build),
      std::move(pk), std::move(bk)));
}

PhysicalPlan AggPlan(const Table* t) {
  std::vector<ExprPtr> groups;
  groups.push_back(eb::Col(0));
  std::vector<AggregateDesc> aggs;
  aggs.emplace_back(AggFunc::kSum, eb::Col(1), "total");
  return PhysicalPlan(std::make_unique<HashAggregate>(
      std::make_unique<SeqScan>(t), std::move(groups),
      std::vector<std::string>{"g"}, std::move(aggs)));
}

struct Result {
  std::string name;
  double ns_per_work = 0;     // wall time / final work counter
  double slowdown = 1.0;      // vs. the scenario's in-memory baseline
  uint64_t work = 0;          // revised total(Q)
  uint64_t spill_runs = 0;
  uint64_t spill_rows = 0;
  uint64_t spill_bytes = 0;
};

/// Best-of-kReps execution under `soft_budget` (0 = unconstrained).
Result Measure(const std::string& name,
               const std::function<PhysicalPlan()>& make_plan,
               uint64_t soft_budget) {
  Result r;
  r.name = name;
  double best_ns = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    PhysicalPlan plan = make_plan();
    SpillManager spill;
    QueryGuard guard;
    ExecContext ctx;
    if (soft_budget > 0) {
      guard.set_max_buffered_rows(soft_budget);
      ctx.set_guard(&guard);
      ctx.set_spill_manager(&spill);
    }
    auto start = std::chrono::steady_clock::now();
    exec::Drive(&plan, {.ctx = &ctx});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK_MSG(ctx.ok(), "%s", ctx.status().ToString().c_str());
    QPROG_CHECK(spill.live_runs() == 0);
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (rep == 0 || ns < best_ns) best_ns = ns;
    r.work = ctx.work();
    r.spill_runs = spill.stats().runs_created;
    r.spill_rows = spill.stats().rows_written;
    r.spill_bytes = spill.stats().bytes_written;
  }
  r.ns_per_work = best_ns / static_cast<double>(r.work);
  return r;
}

// -- parallel aggregate replay ----------------------------------------------

// Device cost per spill byte for the replay scenario; same flash-era figure
// as micro_parallel, high enough that replay I/O dominates the hash work.
constexpr uint64_t kReplayNsPerByte = 160;
constexpr int64_t kReplayRows = 20000;
constexpr int64_t kReplayGroups = 5000;

/// Grouped rows with a repetitive string payload so each spilled row carries
/// real bytes through the device model.
Table AggPayload(int64_t n, int64_t buckets) {
  Table table("p", Schema({Field("k", TypeId::kInt64),
                           Field("v", TypeId::kInt64),
                           Field("pad", TypeId::kString)}));
  for (int64_t i = n - 1; i >= 0; --i) {
    table.AppendRow(
        {Value::Int64(i % buckets), Value::Int64(i),
         Value::String(StringPrintf("orderstatus=OK|priority=%d|comment="
                                    "final deps unwound along the regular "
                                    "instructions",
                                    static_cast<int>(i % 5)))});
  }
  return table;
}

/// Best-of-kReps aggregate run under a tight budget with the device model
/// charging every spill byte; `threads` == 0 runs the serial replay. Output
/// rows from the last rep land in `rows_out` for the identity check.
double MeasureAggReplay(const Table* t, uint64_t soft_budget, int threads,
                        uint64_t* spill_runs, std::vector<Row>* rows_out) {
  double best_ns = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    PhysicalPlan plan = AggPlan(t);
    SpillManager spill;
    spill.set_device_model({kReplayNsPerByte, kReplayNsPerByte});
    QueryGuard guard;
    guard.set_max_buffered_rows(soft_budget);
    std::unique_ptr<WorkerPool> pool;
    ExecContext ctx;
    ctx.set_guard(&guard);
    ctx.set_spill_manager(&spill);
    if (threads > 0) {
      pool = std::make_unique<WorkerPool>(threads);
      ctx.set_worker_pool(pool.get());
    }
    rows_out->clear();
    auto start = std::chrono::steady_clock::now();
    exec::Drive(&plan,
                {.ctx = &ctx,
                 .sink = [rows_out](const Row& row) { rows_out->push_back(row); }});
    auto end = std::chrono::steady_clock::now();
    QPROG_CHECK_MSG(ctx.ok(), "%s", ctx.status().ToString().c_str());
    QPROG_CHECK(spill.live_runs() == 0);
    QPROG_CHECK(spill.stats().runs_created > 0);  // must exercise the replay
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (rep == 0 || ns < best_ns) best_ns = ns;
    *spill_runs = spill.stats().runs_created;
  }
  return best_ns / 1e6;
}

/// Raw SpillFile throughput: rows serialized+written then re-read, ns/row.
std::pair<double, double> MeasureFileThroughput(int64_t rows) {
  auto file = SpillFile::Create("");
  QPROG_CHECK(file.ok());
  Row row = {Value::Int64(123456789), Value::Int64(987654321)};
  std::string bytes;
  auto w0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < rows; ++i) {
    bytes.clear();
    AppendRowBytes(row, &bytes);
    QPROG_CHECK(file.value()->AppendRecord(bytes.data(), bytes.size()).ok());
  }
  auto w1 = std::chrono::steady_clock::now();
  QPROG_CHECK(file.value()->SeekToStart().ok());
  std::string payload;
  int64_t read = 0;
  auto r0 = std::chrono::steady_clock::now();
  while (true) {
    StatusOr<bool> more = file.value()->ReadRecord(&payload);
    QPROG_CHECK(more.ok());
    if (!more.value()) break;
    Row back;
    QPROG_CHECK(ParseRowBytes(payload, &back).ok());
    ++read;
  }
  auto r1 = std::chrono::steady_clock::now();
  QPROG_CHECK(read == rows);
  auto ns = [](auto a, auto b) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  return {ns(w0, w1) / static_cast<double>(rows),
          ns(r0, r1) / static_cast<double>(rows)};
}

}  // namespace
}  // namespace qprog

int main() {
  using namespace qprog;  // NOLINT(build/namespaces)
  std::printf("=== micro_spill: cost of memory-adaptive execution ===\n");
  std::printf("rows=%lld, best of %d runs per scenario\n\n",
              static_cast<long long>(kRows), kReps);

  Table sort_t = Numbers(kRows);
  Table probe_t = Keyed(kRows / 2, 5000);
  Table build_t = Keyed(kRows / 2, 5000);
  Table agg_t = Keyed(kRows, kRows / 8);  // 12.5k groups

  std::vector<Result> results;
  auto run_family = [&](const char* family,
                        const std::function<PhysicalPlan()>& make_plan,
                        uint64_t mild, uint64_t harsh) {
    Result mem = Measure(std::string(family) + "/in_memory", make_plan, 0);
    Result spill_mild =
        Measure(std::string(family) + "/spill_mild", make_plan, mild);
    Result spill_harsh =
        Measure(std::string(family) + "/spill_harsh", make_plan, harsh);
    spill_mild.slowdown = spill_mild.ns_per_work * spill_mild.work /
                          (mem.ns_per_work * mem.work);
    spill_harsh.slowdown = spill_harsh.ns_per_work * spill_harsh.work /
                           (mem.ns_per_work * mem.work);
    results.push_back(mem);
    results.push_back(spill_mild);
    results.push_back(spill_harsh);
  };

  run_family("sort", [&] { return SortPlan(&sort_t); }, kRows / 4, kRows / 32);
  run_family("hashjoin", [&] { return JoinPlan(&probe_t, &build_t); },
             kRows / 8, kRows / 64);
  run_family("hashagg", [&] { return AggPlan(&agg_t); }, kRows / 16,
             kRows / 128);

  std::printf("%-22s %-10s %-10s %-8s %-8s %-12s %-10s\n", "scenario",
              "ns/work", "work", "runs", "rows", "bytes", "slowdown");
  for (const Result& r : results) {
    std::printf("%-22s %-10.2f %-10llu %-8llu %-8llu %-12llu %.2fx\n",
                r.name.c_str(), r.ns_per_work,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.spill_runs),
                static_cast<unsigned long long>(r.spill_rows),
                static_cast<unsigned long long>(r.spill_bytes), r.slowdown);
  }

  auto [write_ns, read_ns] = MeasureFileThroughput(kRows);
  std::printf("\nspill file: write=%.1f ns/row, read=%.1f ns/row\n", write_ns,
              read_ns);

  // Parallel spilled-partition replay: serial vs. a 4-thread pool on the
  // same device-modelled aggregate, outputs required identical.
  Table replay_t = AggPayload(kReplayRows, kReplayGroups);
  std::vector<Row> serial_rows, parallel_rows;
  uint64_t serial_runs = 0, parallel_runs = 0;
  double serial_ms = MeasureAggReplay(&replay_t, kReplayGroups / 8, 0,
                                      &serial_runs, &serial_rows);
  double parallel_ms = MeasureAggReplay(&replay_t, kReplayGroups / 8, 4,
                                        &parallel_runs, &parallel_rows);
  QPROG_CHECK(serial_rows.size() == parallel_rows.size());
  for (size_t i = 0; i < serial_rows.size(); ++i) {
    QPROG_CHECK_MSG(
        RowToString(serial_rows[i]) == RowToString(parallel_rows[i]),
        "parallel replay diverged from serial at row %zu", i);
  }
  double replay_speedup = serial_ms / parallel_ms;
  std::printf(
      "\nagg replay (device=%llu ns/byte, %lld rows, %lld groups): "
      "serial=%.1f ms, t4=%.1f ms, speedup=%.2fx, output identical "
      "(%zu rows)\n",
      static_cast<unsigned long long>(kReplayNsPerByte),
      static_cast<long long>(kReplayRows),
      static_cast<long long>(kReplayGroups), serial_ms, parallel_ms,
      replay_speedup, serial_rows.size());

  std::string json =
      "{\"bench\":\"micro_spill\",\"rows\":" +
      StringPrintf("%lld", static_cast<long long>(kRows)) + ",\"scenarios\":{";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    if (i > 0) json += ',';
    json += StringPrintf(
        "\"%s\":{\"ns_per_work\":%.2f,\"work\":%llu,\"spill_runs\":%llu,"
        "\"spill_rows\":%llu,\"spill_bytes\":%llu,\"slowdown\":%.3f}",
        r.name.c_str(), r.ns_per_work, static_cast<unsigned long long>(r.work),
        static_cast<unsigned long long>(r.spill_runs),
        static_cast<unsigned long long>(r.spill_rows),
        static_cast<unsigned long long>(r.spill_bytes), r.slowdown);
  }
  json += StringPrintf(
      "},\"spill_file\":{\"write_ns_per_row\":%.1f,\"read_ns_per_row\":%.1f},",
      write_ns, read_ns);
  json += StringPrintf(
      "\"agg_replay\":{\"device_ns_per_byte\":%llu,\"rows\":%lld,"
      "\"groups\":%lld,\"serial_ms\":%.1f,\"t4_ms\":%.1f,"
      "\"speedup_vs_serial\":%.3f,\"spill_runs\":%llu,"
      "\"output_identical\":true}}\n",
      static_cast<unsigned long long>(kReplayNsPerByte),
      static_cast<long long>(kReplayRows),
      static_cast<long long>(kReplayGroups), serial_ms, parallel_ms,
      replay_speedup, static_cast<unsigned long long>(parallel_runs));
  std::FILE* out = std::fopen("BENCH_spill.json", "w");
  if (out != nullptr) {
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote BENCH_spill.json\n");
  }
  return 0;
}
