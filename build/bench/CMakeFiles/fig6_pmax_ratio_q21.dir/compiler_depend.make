# Empty compiler generated dependencies file for fig6_pmax_ratio_q21.
# This may be replaced when dependencies are built.
