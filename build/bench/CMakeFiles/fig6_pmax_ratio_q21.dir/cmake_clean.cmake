file(REMOVE_RECURSE
  "CMakeFiles/fig6_pmax_ratio_q21.dir/fig6_pmax_ratio_q21.cpp.o"
  "CMakeFiles/fig6_pmax_ratio_q21.dir/fig6_pmax_ratio_q21.cpp.o.d"
  "fig6_pmax_ratio_q21"
  "fig6_pmax_ratio_q21.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pmax_ratio_q21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
