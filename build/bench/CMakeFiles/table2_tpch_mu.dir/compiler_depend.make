# Empty compiler generated dependencies file for table2_tpch_mu.
# This may be replaced when dependencies are built.
