file(REMOVE_RECURSE
  "CMakeFiles/table2_tpch_mu.dir/table2_tpch_mu.cpp.o"
  "CMakeFiles/table2_tpch_mu.dir/table2_tpch_mu.cpp.o.d"
  "table2_tpch_mu"
  "table2_tpch_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tpch_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
