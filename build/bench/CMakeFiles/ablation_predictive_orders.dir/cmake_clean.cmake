file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictive_orders.dir/ablation_predictive_orders.cpp.o"
  "CMakeFiles/ablation_predictive_orders.dir/ablation_predictive_orders.cpp.o.d"
  "ablation_predictive_orders"
  "ablation_predictive_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictive_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
