# Empty dependencies file for ablation_predictive_orders.
# This may be replaced when dependencies are built.
