file(REMOVE_RECURSE
  "CMakeFiles/micro_estimator_overhead.dir/micro_estimator_overhead.cpp.o"
  "CMakeFiles/micro_estimator_overhead.dir/micro_estimator_overhead.cpp.o.d"
  "micro_estimator_overhead"
  "micro_estimator_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_estimator_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
