# Empty dependencies file for micro_estimator_overhead.
# This may be replaced when dependencies are built.
