# Empty compiler generated dependencies file for table1_scan_based.
# This may be replaced when dependencies are built.
