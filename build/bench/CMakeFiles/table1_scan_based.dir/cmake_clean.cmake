file(REMOVE_RECURSE
  "CMakeFiles/table1_scan_based.dir/table1_scan_based.cpp.o"
  "CMakeFiles/table1_scan_based.dir/table1_scan_based.cpp.o.d"
  "table1_scan_based"
  "table1_scan_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scan_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
