# Empty dependencies file for fig5_safe_worst_case.
# This may be replaced when dependencies are built.
