file(REMOVE_RECURSE
  "CMakeFiles/fig5_safe_worst_case.dir/fig5_safe_worst_case.cpp.o"
  "CMakeFiles/fig5_safe_worst_case.dir/fig5_safe_worst_case.cpp.o.d"
  "fig5_safe_worst_case"
  "fig5_safe_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_safe_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
