file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_freq.dir/ablation_checkpoint_freq.cpp.o"
  "CMakeFiles/ablation_checkpoint_freq.dir/ablation_checkpoint_freq.cpp.o.d"
  "ablation_checkpoint_freq"
  "ablation_checkpoint_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
