# Empty compiler generated dependencies file for ablation_checkpoint_freq.
# This may be replaced when dependencies are built.
