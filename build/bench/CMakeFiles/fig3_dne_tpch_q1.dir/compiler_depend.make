# Empty compiler generated dependencies file for fig3_dne_tpch_q1.
# This may be replaced when dependencies are built.
