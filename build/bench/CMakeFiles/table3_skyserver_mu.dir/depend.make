# Empty dependencies file for table3_skyserver_mu.
# This may be replaced when dependencies are built.
