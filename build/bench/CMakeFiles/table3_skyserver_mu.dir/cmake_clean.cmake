file(REMOVE_RECURSE
  "CMakeFiles/table3_skyserver_mu.dir/table3_skyserver_mu.cpp.o"
  "CMakeFiles/table3_skyserver_mu.dir/table3_skyserver_mu.cpp.o.d"
  "table3_skyserver_mu"
  "table3_skyserver_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_skyserver_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
