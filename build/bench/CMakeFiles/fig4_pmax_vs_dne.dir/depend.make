# Empty dependencies file for fig4_pmax_vs_dne.
# This may be replaced when dependencies are built.
