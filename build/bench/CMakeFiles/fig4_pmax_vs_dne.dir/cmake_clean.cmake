file(REMOVE_RECURSE
  "CMakeFiles/fig4_pmax_vs_dne.dir/fig4_pmax_vs_dne.cpp.o"
  "CMakeFiles/fig4_pmax_vs_dne.dir/fig4_pmax_vs_dne.cpp.o.d"
  "fig4_pmax_vs_dne"
  "fig4_pmax_vs_dne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pmax_vs_dne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
