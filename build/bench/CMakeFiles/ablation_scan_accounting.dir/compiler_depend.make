# Empty compiler generated dependencies file for ablation_scan_accounting.
# This may be replaced when dependencies are built.
