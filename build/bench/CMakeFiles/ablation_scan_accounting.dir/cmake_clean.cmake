file(REMOVE_RECURSE
  "CMakeFiles/ablation_scan_accounting.dir/ablation_scan_accounting.cpp.o"
  "CMakeFiles/ablation_scan_accounting.dir/ablation_scan_accounting.cpp.o.d"
  "ablation_scan_accounting"
  "ablation_scan_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scan_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
