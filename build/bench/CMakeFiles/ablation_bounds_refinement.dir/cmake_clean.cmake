file(REMOVE_RECURSE
  "CMakeFiles/ablation_bounds_refinement.dir/ablation_bounds_refinement.cpp.o"
  "CMakeFiles/ablation_bounds_refinement.dir/ablation_bounds_refinement.cpp.o.d"
  "ablation_bounds_refinement"
  "ablation_bounds_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bounds_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
