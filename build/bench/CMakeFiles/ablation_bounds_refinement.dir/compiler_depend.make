# Empty compiler generated dependencies file for ablation_bounds_refinement.
# This may be replaced when dependencies are built.
