# Empty compiler generated dependencies file for fig7_safe_vs_dne_favorable.
# This may be replaced when dependencies are built.
