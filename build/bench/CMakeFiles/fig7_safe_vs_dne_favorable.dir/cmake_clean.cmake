file(REMOVE_RECURSE
  "CMakeFiles/fig7_safe_vs_dne_favorable.dir/fig7_safe_vs_dne_favorable.cpp.o"
  "CMakeFiles/fig7_safe_vs_dne_favorable.dir/fig7_safe_vs_dne_favorable.cpp.o.d"
  "fig7_safe_vs_dne_favorable"
  "fig7_safe_vs_dne_favorable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_safe_vs_dne_favorable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
