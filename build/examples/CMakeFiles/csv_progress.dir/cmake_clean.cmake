file(REMOVE_RECURSE
  "CMakeFiles/csv_progress.dir/csv_progress.cpp.o"
  "CMakeFiles/csv_progress.dir/csv_progress.cpp.o.d"
  "csv_progress"
  "csv_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
