# Empty compiler generated dependencies file for csv_progress.
# This may be replaced when dependencies are built.
