file(REMOVE_RECURSE
  "CMakeFiles/adversarial_instances.dir/adversarial_instances.cpp.o"
  "CMakeFiles/adversarial_instances.dir/adversarial_instances.cpp.o.d"
  "adversarial_instances"
  "adversarial_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
