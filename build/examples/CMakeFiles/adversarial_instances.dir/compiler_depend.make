# Empty compiler generated dependencies file for adversarial_instances.
# This may be replaced when dependencies are built.
