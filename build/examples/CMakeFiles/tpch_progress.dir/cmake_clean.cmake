file(REMOVE_RECURSE
  "CMakeFiles/tpch_progress.dir/tpch_progress.cpp.o"
  "CMakeFiles/tpch_progress.dir/tpch_progress.cpp.o.d"
  "tpch_progress"
  "tpch_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
