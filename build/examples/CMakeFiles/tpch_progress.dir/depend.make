# Empty dependencies file for tpch_progress.
# This may be replaced when dependencies are built.
