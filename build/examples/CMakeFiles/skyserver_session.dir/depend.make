# Empty dependencies file for skyserver_session.
# This may be replaced when dependencies are built.
