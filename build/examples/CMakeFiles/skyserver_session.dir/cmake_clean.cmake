file(REMOVE_RECURSE
  "CMakeFiles/skyserver_session.dir/skyserver_session.cpp.o"
  "CMakeFiles/skyserver_session.dir/skyserver_session.cpp.o.d"
  "skyserver_session"
  "skyserver_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyserver_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
