# Empty compiler generated dependencies file for exec_conformance_test.
# This may be replaced when dependencies are built.
