file(REMOVE_RECURSE
  "CMakeFiles/exec_conformance_test.dir/exec_conformance_test.cc.o"
  "CMakeFiles/exec_conformance_test.dir/exec_conformance_test.cc.o.d"
  "exec_conformance_test"
  "exec_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
