# Empty compiler generated dependencies file for storage_index_test.
# This may be replaced when dependencies are built.
