file(REMOVE_RECURSE
  "CMakeFiles/work_model_test.dir/work_model_test.cc.o"
  "CMakeFiles/work_model_test.dir/work_model_test.cc.o.d"
  "work_model_test"
  "work_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
