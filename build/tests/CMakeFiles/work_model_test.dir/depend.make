# Empty dependencies file for work_model_test.
# This may be replaced when dependencies are built.
