file(REMOVE_RECURSE
  "CMakeFiles/skyserver_test.dir/skyserver_test.cc.o"
  "CMakeFiles/skyserver_test.dir/skyserver_test.cc.o.d"
  "skyserver_test"
  "skyserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
