# Empty dependencies file for skyserver_test.
# This may be replaced when dependencies are built.
