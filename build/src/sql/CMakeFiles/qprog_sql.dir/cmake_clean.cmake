file(REMOVE_RECURSE
  "CMakeFiles/qprog_sql.dir/lexer.cc.o"
  "CMakeFiles/qprog_sql.dir/lexer.cc.o.d"
  "CMakeFiles/qprog_sql.dir/parser.cc.o"
  "CMakeFiles/qprog_sql.dir/parser.cc.o.d"
  "CMakeFiles/qprog_sql.dir/planner.cc.o"
  "CMakeFiles/qprog_sql.dir/planner.cc.o.d"
  "libqprog_sql.a"
  "libqprog_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
