# Empty dependencies file for qprog_sql.
# This may be replaced when dependencies are built.
