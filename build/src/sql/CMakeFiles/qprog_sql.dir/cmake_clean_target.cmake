file(REMOVE_RECURSE
  "libqprog_sql.a"
)
