file(REMOVE_RECURSE
  "libqprog_types.a"
)
