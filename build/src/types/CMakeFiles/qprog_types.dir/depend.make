# Empty dependencies file for qprog_types.
# This may be replaced when dependencies are built.
