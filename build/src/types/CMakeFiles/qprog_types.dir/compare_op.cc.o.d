src/types/CMakeFiles/qprog_types.dir/compare_op.cc.o: \
 /root/repo/src/types/compare_op.cc /usr/include/stdc-predef.h \
 /root/repo/src/types/compare_op.h
