file(REMOVE_RECURSE
  "CMakeFiles/qprog_types.dir/compare_op.cc.o"
  "CMakeFiles/qprog_types.dir/compare_op.cc.o.d"
  "CMakeFiles/qprog_types.dir/date.cc.o"
  "CMakeFiles/qprog_types.dir/date.cc.o.d"
  "CMakeFiles/qprog_types.dir/schema.cc.o"
  "CMakeFiles/qprog_types.dir/schema.cc.o.d"
  "CMakeFiles/qprog_types.dir/value.cc.o"
  "CMakeFiles/qprog_types.dir/value.cc.o.d"
  "libqprog_types.a"
  "libqprog_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
