file(REMOVE_RECURSE
  "libqprog_stats.a"
)
