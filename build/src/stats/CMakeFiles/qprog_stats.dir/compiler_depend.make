# Empty compiler generated dependencies file for qprog_stats.
# This may be replaced when dependencies are built.
