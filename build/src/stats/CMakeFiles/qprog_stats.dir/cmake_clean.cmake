file(REMOVE_RECURSE
  "CMakeFiles/qprog_stats.dir/histogram.cc.o"
  "CMakeFiles/qprog_stats.dir/histogram.cc.o.d"
  "CMakeFiles/qprog_stats.dir/selectivity.cc.o"
  "CMakeFiles/qprog_stats.dir/selectivity.cc.o.d"
  "CMakeFiles/qprog_stats.dir/table_stats.cc.o"
  "CMakeFiles/qprog_stats.dir/table_stats.cc.o.d"
  "libqprog_stats.a"
  "libqprog_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
