# Empty compiler generated dependencies file for qprog_database.
# This may be replaced when dependencies are built.
