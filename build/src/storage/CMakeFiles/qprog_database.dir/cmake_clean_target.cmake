file(REMOVE_RECURSE
  "libqprog_database.a"
)
