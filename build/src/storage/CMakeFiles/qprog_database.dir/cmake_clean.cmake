file(REMOVE_RECURSE
  "CMakeFiles/qprog_database.dir/catalog.cc.o"
  "CMakeFiles/qprog_database.dir/catalog.cc.o.d"
  "libqprog_database.a"
  "libqprog_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
