# Empty dependencies file for qprog_database.
# This may be replaced when dependencies are built.
