# Empty dependencies file for qprog_storage.
# This may be replaced when dependencies are built.
