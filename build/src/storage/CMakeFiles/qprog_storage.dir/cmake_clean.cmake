file(REMOVE_RECURSE
  "CMakeFiles/qprog_storage.dir/csv.cc.o"
  "CMakeFiles/qprog_storage.dir/csv.cc.o.d"
  "CMakeFiles/qprog_storage.dir/table.cc.o"
  "CMakeFiles/qprog_storage.dir/table.cc.o.d"
  "libqprog_storage.a"
  "libqprog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
