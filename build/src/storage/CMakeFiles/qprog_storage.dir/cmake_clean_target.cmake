file(REMOVE_RECURSE
  "libqprog_storage.a"
)
