file(REMOVE_RECURSE
  "libqprog_core.a"
)
