file(REMOVE_RECURSE
  "CMakeFiles/qprog_core.dir/analysis.cc.o"
  "CMakeFiles/qprog_core.dir/analysis.cc.o.d"
  "CMakeFiles/qprog_core.dir/bounds.cc.o"
  "CMakeFiles/qprog_core.dir/bounds.cc.o.d"
  "CMakeFiles/qprog_core.dir/estimators.cc.o"
  "CMakeFiles/qprog_core.dir/estimators.cc.o.d"
  "CMakeFiles/qprog_core.dir/explain.cc.o"
  "CMakeFiles/qprog_core.dir/explain.cc.o.d"
  "CMakeFiles/qprog_core.dir/monitor.cc.o"
  "CMakeFiles/qprog_core.dir/monitor.cc.o.d"
  "CMakeFiles/qprog_core.dir/pipeline.cc.o"
  "CMakeFiles/qprog_core.dir/pipeline.cc.o.d"
  "libqprog_core.a"
  "libqprog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
