# Empty dependencies file for qprog_core.
# This may be replaced when dependencies are built.
