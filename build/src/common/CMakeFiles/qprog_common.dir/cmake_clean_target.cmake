file(REMOVE_RECURSE
  "libqprog_common.a"
)
