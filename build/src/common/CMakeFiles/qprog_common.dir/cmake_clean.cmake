file(REMOVE_RECURSE
  "CMakeFiles/qprog_common.dir/random.cc.o"
  "CMakeFiles/qprog_common.dir/random.cc.o.d"
  "CMakeFiles/qprog_common.dir/status.cc.o"
  "CMakeFiles/qprog_common.dir/status.cc.o.d"
  "CMakeFiles/qprog_common.dir/strings.cc.o"
  "CMakeFiles/qprog_common.dir/strings.cc.o.d"
  "CMakeFiles/qprog_common.dir/zipf.cc.o"
  "CMakeFiles/qprog_common.dir/zipf.cc.o.d"
  "libqprog_common.a"
  "libqprog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
