# Empty compiler generated dependencies file for qprog_common.
# This may be replaced when dependencies are built.
