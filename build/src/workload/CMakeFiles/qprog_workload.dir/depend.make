# Empty dependencies file for qprog_workload.
# This may be replaced when dependencies are built.
