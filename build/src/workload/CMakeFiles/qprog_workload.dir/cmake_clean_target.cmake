file(REMOVE_RECURSE
  "libqprog_workload.a"
)
