# Empty compiler generated dependencies file for qprog_workload.
# This may be replaced when dependencies are built.
