
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/adversarial.cc" "src/workload/CMakeFiles/qprog_workload.dir/adversarial.cc.o" "gcc" "src/workload/CMakeFiles/qprog_workload.dir/adversarial.cc.o.d"
  "/root/repo/src/workload/zipf_join.cc" "src/workload/CMakeFiles/qprog_workload.dir/zipf_join.cc.o" "gcc" "src/workload/CMakeFiles/qprog_workload.dir/zipf_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/qprog_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/qprog_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qprog_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qprog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/qprog_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qprog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
