file(REMOVE_RECURSE
  "CMakeFiles/qprog_workload.dir/adversarial.cc.o"
  "CMakeFiles/qprog_workload.dir/adversarial.cc.o.d"
  "CMakeFiles/qprog_workload.dir/zipf_join.cc.o"
  "CMakeFiles/qprog_workload.dir/zipf_join.cc.o.d"
  "libqprog_workload.a"
  "libqprog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
