file(REMOVE_RECURSE
  "CMakeFiles/qprog_index.dir/hash_index.cc.o"
  "CMakeFiles/qprog_index.dir/hash_index.cc.o.d"
  "CMakeFiles/qprog_index.dir/ordered_index.cc.o"
  "CMakeFiles/qprog_index.dir/ordered_index.cc.o.d"
  "libqprog_index.a"
  "libqprog_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
