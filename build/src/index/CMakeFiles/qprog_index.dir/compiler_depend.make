# Empty compiler generated dependencies file for qprog_index.
# This may be replaced when dependencies are built.
