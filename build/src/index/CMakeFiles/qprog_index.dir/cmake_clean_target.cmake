file(REMOVE_RECURSE
  "libqprog_index.a"
)
