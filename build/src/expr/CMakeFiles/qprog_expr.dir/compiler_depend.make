# Empty compiler generated dependencies file for qprog_expr.
# This may be replaced when dependencies are built.
