# Empty dependencies file for qprog_expr.
# This may be replaced when dependencies are built.
