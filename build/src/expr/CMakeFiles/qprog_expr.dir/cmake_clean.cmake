file(REMOVE_RECURSE
  "CMakeFiles/qprog_expr.dir/expr.cc.o"
  "CMakeFiles/qprog_expr.dir/expr.cc.o.d"
  "libqprog_expr.a"
  "libqprog_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
