file(REMOVE_RECURSE
  "libqprog_expr.a"
)
