
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/qprog_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/filter_project.cc" "src/exec/CMakeFiles/qprog_exec.dir/filter_project.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/filter_project.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/qprog_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/qprog_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/qprog_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/qprog_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/exec/CMakeFiles/qprog_exec.dir/sort.cc.o" "gcc" "src/exec/CMakeFiles/qprog_exec.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/qprog_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/qprog_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qprog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/qprog_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qprog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
