file(REMOVE_RECURSE
  "libqprog_exec.a"
)
