# Empty dependencies file for qprog_exec.
# This may be replaced when dependencies are built.
