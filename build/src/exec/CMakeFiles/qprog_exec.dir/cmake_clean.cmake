file(REMOVE_RECURSE
  "CMakeFiles/qprog_exec.dir/aggregate.cc.o"
  "CMakeFiles/qprog_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/qprog_exec.dir/filter_project.cc.o"
  "CMakeFiles/qprog_exec.dir/filter_project.cc.o.d"
  "CMakeFiles/qprog_exec.dir/join.cc.o"
  "CMakeFiles/qprog_exec.dir/join.cc.o.d"
  "CMakeFiles/qprog_exec.dir/operator.cc.o"
  "CMakeFiles/qprog_exec.dir/operator.cc.o.d"
  "CMakeFiles/qprog_exec.dir/plan.cc.o"
  "CMakeFiles/qprog_exec.dir/plan.cc.o.d"
  "CMakeFiles/qprog_exec.dir/scan.cc.o"
  "CMakeFiles/qprog_exec.dir/scan.cc.o.d"
  "CMakeFiles/qprog_exec.dir/sort.cc.o"
  "CMakeFiles/qprog_exec.dir/sort.cc.o.d"
  "libqprog_exec.a"
  "libqprog_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
