file(REMOVE_RECURSE
  "CMakeFiles/qprog_tpch.dir/dbgen.cc.o"
  "CMakeFiles/qprog_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/qprog_tpch.dir/queries.cc.o"
  "CMakeFiles/qprog_tpch.dir/queries.cc.o.d"
  "CMakeFiles/qprog_tpch.dir/queries2.cc.o"
  "CMakeFiles/qprog_tpch.dir/queries2.cc.o.d"
  "CMakeFiles/qprog_tpch.dir/schema.cc.o"
  "CMakeFiles/qprog_tpch.dir/schema.cc.o.d"
  "libqprog_tpch.a"
  "libqprog_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
