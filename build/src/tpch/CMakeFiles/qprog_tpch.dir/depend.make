# Empty dependencies file for qprog_tpch.
# This may be replaced when dependencies are built.
