file(REMOVE_RECURSE
  "libqprog_tpch.a"
)
