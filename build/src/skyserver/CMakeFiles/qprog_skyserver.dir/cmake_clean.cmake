file(REMOVE_RECURSE
  "CMakeFiles/qprog_skyserver.dir/skyserver.cc.o"
  "CMakeFiles/qprog_skyserver.dir/skyserver.cc.o.d"
  "libqprog_skyserver.a"
  "libqprog_skyserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qprog_skyserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
