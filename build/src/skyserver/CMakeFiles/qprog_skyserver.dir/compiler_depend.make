# Empty compiler generated dependencies file for qprog_skyserver.
# This may be replaced when dependencies are built.
