# Empty dependencies file for qprog_skyserver.
# This may be replaced when dependencies are built.
