file(REMOVE_RECURSE
  "libqprog_skyserver.a"
)
