// HashIndex: an equality-only secondary index (hash multimap over one
// column). Functionally a faster alternative to OrderedIndex::EqualRange for
// point probes; kept separate so plans can state which access path they use.

#ifndef QPROG_INDEX_HASH_INDEX_H_
#define QPROG_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "types/value.h"

namespace qprog {

class HashIndex {
 public:
  /// Builds the index over `table`.`column`; NULL keys are excluded.
  HashIndex(const Table* table, size_t column);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  const Table* table() const { return table_; }
  size_t column() const { return column_; }

  /// Row ids whose key equals `key` (empty vector reference when no match).
  const std::vector<uint64_t>& Lookup(const Value& key) const;

  uint64_t max_key_multiplicity() const { return max_key_multiplicity_; }
  uint64_t num_distinct_keys() const { return buckets_.size(); }

 private:
  struct ValueHasher {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.EqualsForGrouping(b);
    }
  };

  const Table* table_;
  size_t column_;
  std::unordered_map<Value, std::vector<uint64_t>, ValueHasher, ValueEq>
      buckets_;
  std::vector<uint64_t> empty_;
  uint64_t max_key_multiplicity_ = 0;
};

}  // namespace qprog

#endif  // QPROG_INDEX_HASH_INDEX_H_
