#include "index/hash_index.h"

#include <algorithm>

#include "common/macros.h"

namespace qprog {

HashIndex::HashIndex(const Table* table, size_t column)
    : table_(table), column_(column) {
  QPROG_CHECK(column < table->schema().num_fields());
  for (uint64_t i = 0; i < table->num_rows(); ++i) {
    const Value& key = table->at(i, column);
    if (key.is_null()) continue;
    auto& bucket = buckets_[key];
    bucket.push_back(i);
    max_key_multiplicity_ =
        std::max<uint64_t>(max_key_multiplicity_, bucket.size());
  }
}

const std::vector<uint64_t>& HashIndex::Lookup(const Value& key) const {
  if (key.is_null()) return empty_;
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace qprog
