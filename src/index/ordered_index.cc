#include "index/ordered_index.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace qprog {

OrderedIndex::OrderedIndex(const Table* table, size_t column)
    : table_(table), column_(column) {
  QPROG_CHECK(column < table->schema().num_fields());
  std::vector<uint64_t> ids;
  ids.reserve(table->num_rows());
  for (uint64_t i = 0; i < table->num_rows(); ++i) {
    if (!table->at(i, column).is_null()) ids.push_back(i);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](uint64_t a, uint64_t b) {
    return table->at(a, column).Compare(table->at(b, column)) < 0;
  });
  keys_.reserve(ids.size());
  row_ids_ = std::move(ids);
  for (uint64_t id : row_ids_) keys_.push_back(table->at(id, column));

  uint64_t run = 0;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i == 0 || keys_[i].Compare(keys_[i - 1]) != 0) {
      run = 1;
    } else {
      ++run;
    }
    max_key_multiplicity_ = std::max(max_key_multiplicity_, run);
  }
}

OrderedIndex::EntryRange OrderedIndex::EqualRange(const Value& key) const {
  if (key.is_null() || keys_.empty()) return {};
  auto lower = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  auto upper = std::upper_bound(
      lower, keys_.end(), key,
      [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  size_t lo = static_cast<size_t>(lower - keys_.begin());
  size_t hi = static_cast<size_t>(upper - keys_.begin());
  return {row_ids_.data() + lo, row_ids_.data() + hi};
}

OrderedIndex::EntryRange OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                             bool lo_unbounded, const Value& hi,
                                             bool hi_inclusive,
                                             bool hi_unbounded) const {
  if (keys_.empty()) return {};
  auto cmp = [](const Value& a, const Value& b) { return a.Compare(b) < 0; };
  size_t begin = 0;
  size_t end = keys_.size();
  if (!lo_unbounded) {
    QPROG_CHECK(!lo.is_null());
    auto it = lo_inclusive
                  ? std::lower_bound(keys_.begin(), keys_.end(), lo, cmp)
                  : std::upper_bound(keys_.begin(), keys_.end(), lo, cmp);
    begin = static_cast<size_t>(it - keys_.begin());
  }
  if (!hi_unbounded) {
    QPROG_CHECK(!hi.is_null());
    auto it = hi_inclusive
                  ? std::upper_bound(keys_.begin(), keys_.end(), hi, cmp)
                  : std::lower_bound(keys_.begin(), keys_.end(), hi, cmp);
    end = static_cast<size_t>(it - keys_.begin());
  }
  if (begin >= end) return {};
  return {row_ids_.data() + begin, row_ids_.data() + end};
}

}  // namespace qprog
