// OrderedIndex: a sorted secondary index over one column of a Table.
//
// Backing structure is a sorted array of (key, row id) pairs — the read-only
// equivalent of a B+-tree's leaf level, which is all the index-seek and
// index-nested-loops operators of the paper require (equality and range
// probes). NULL keys are excluded, matching SQL index-lookup semantics.

#ifndef QPROG_INDEX_ORDERED_INDEX_H_
#define QPROG_INDEX_ORDERED_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/table.h"
#include "types/value.h"

namespace qprog {

class OrderedIndex {
 public:
  /// Builds the index over `table`.`column`. The table must outlive the
  /// index; the index observes but does not own the table.
  OrderedIndex(const Table* table, size_t column);

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  const Table* table() const { return table_; }
  size_t column() const { return column_; }
  uint64_t num_entries() const { return keys_.size(); }

  /// Row ids whose key equals `key`, in key-then-row order. Returns the
  /// half-open range [begin, end) into entry storage.
  struct EntryRange {
    const uint64_t* begin = nullptr;
    const uint64_t* end = nullptr;
    size_t size() const { return static_cast<size_t>(end - begin); }
  };
  EntryRange EqualRange(const Value& key) const;

  /// Row ids with lo <= key <= hi (either bound optional via NULL Value and
  /// the *_unbounded flags).
  EntryRange Range(const Value& lo, bool lo_inclusive, bool lo_unbounded,
                   const Value& hi, bool hi_inclusive, bool hi_unbounded) const;

  /// Largest number of rows sharing one key (used by the bounds tracker to
  /// cap index-nested-loops upper bounds, Section 5.1).
  uint64_t max_key_multiplicity() const { return max_key_multiplicity_; }

 private:
  const Table* table_;
  size_t column_;
  // Keys sorted ascending; row_ids_ parallel to keys_.
  std::vector<Value> keys_;
  std::vector<uint64_t> row_ids_;
  uint64_t max_key_multiplicity_ = 0;
};

}  // namespace qprog

#endif  // QPROG_INDEX_ORDERED_INDEX_H_
