#include "common/status.h"

namespace qprog {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace qprog
