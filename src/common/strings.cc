#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace qprog {

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string ToLower(std::string_view s) {
  std::string result(s);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace qprog
