// Core assertion and error-propagation macros used throughout qprog.
//
// The project follows the Google C++ style: exceptions are not used. Fatal
// invariant violations abort the process with a message; recoverable errors
// propagate `Status`/`StatusOr` values (see status.h, statusor.h).

#ifndef QPROG_COMMON_MACROS_H_
#define QPROG_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a file/line-qualified message when `cond` is false.
// Used for internal invariants that indicate programmer error, never for
// data-dependent conditions.
#define QPROG_CHECK(cond)                                                       \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,   \
                   #cond);                                                      \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

// Like QPROG_CHECK but with a printf-style message appended.
#define QPROG_CHECK_MSG(cond, ...)                                              \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__, __LINE__,   \
                   #cond);                                                      \
      std::fprintf(stderr, __VA_ARGS__);                                        \
      std::fprintf(stderr, "\n");                                               \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

#ifndef NDEBUG
#define QPROG_DCHECK(cond) QPROG_CHECK(cond)
#else
#define QPROG_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

// Propagates a non-OK Status out of the current function.
#define QPROG_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::qprog::Status _qprog_status = (expr);          \
    if (!_qprog_status.ok()) return _qprog_status;   \
  } while (0)

#define QPROG_CONCAT_IMPL(a, b) a##b
#define QPROG_CONCAT(a, b) QPROG_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a StatusOr<T>); on error returns the Status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define QPROG_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  QPROG_ASSIGN_OR_RETURN_IMPL(QPROG_CONCAT(_qprog_sor_, __LINE__), lhs,   \
                              rexpr)

#define QPROG_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#endif  // QPROG_COMMON_MACROS_H_
