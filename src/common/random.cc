#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace qprog {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  QPROG_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QPROG_DCHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(range));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace qprog
