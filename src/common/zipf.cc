#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace qprog {

ZipfDistribution::ZipfDistribution(uint64_t n, double z) : n_(n), z_(z) {
  QPROG_CHECK(n >= 1);
  QPROG_CHECK(z >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), z);
    cdf_[r] = sum;
  }
  for (uint64_t r = 0; r < n; ++r) cdf_[r] /= sum;
  cdf_[n - 1] = 1.0;  // guard against round-off
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t r) const {
  QPROG_CHECK(r < n_);
  if (r == 0) return cdf_[0];
  return cdf_[r] - cdf_[r - 1];
}

}  // namespace qprog
