// StatusOr<T>: a Status or a value of type T (absl::StatusOr idiom).

#ifndef QPROG_COMMON_STATUSOR_H_
#define QPROG_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace qprog {

/// Holds either an OK status together with a value of type `T`, or a non-OK
/// Status. Access to `value()` aborts if the StatusOr holds an error; callers
/// must check `ok()` first (or use QPROG_ASSIGN_OR_RETURN).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must be non-OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    QPROG_CHECK(!status_.ok());
  }

  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QPROG_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    QPROG_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    QPROG_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qprog

#endif  // QPROG_COMMON_STATUSOR_H_
