// Small string helpers (printf-style formatting, join/split) used across
// qprog. gcc 12 lacks std::format, so formatting goes through snprintf.

#ifndef QPROG_COMMON_STRINGS_H_
#define QPROG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace qprog {

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

}  // namespace qprog

#endif  // QPROG_COMMON_STRINGS_H_
