// Status: the error-reporting type used across qprog in lieu of exceptions.
//
// Mirrors the absl::Status / arrow::Status idiom: a cheap value type carrying
// an error code and message; `OkStatus()` is the success value.

#ifndef QPROG_COMMON_STATUS_H_
#define QPROG_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace qprog {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  // Execution-guardrail terminations (see exec/query_guard.h): a query was
  // stopped before completion, by request or because it exhausted a budget.
  kCancelled = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
  // Transient failure: the operation may succeed if retried (the retryable
  // fault class consumed by the spill layer's bounded-retry loop). Permanent
  // failures use any of the other codes.
  kUnavailable = 10,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A value type describing the outcome of an operation that may fail.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Success value.
inline Status OkStatus() { return Status(); }

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status Cancelled(std::string message);
Status DeadlineExceeded(std::string message);
Status ResourceExhausted(std::string message);
Status Unavailable(std::string message);

}  // namespace qprog

#endif  // QPROG_COMMON_STATUS_H_
