// Deterministic pseudo-random number generation for data generators and
// property tests. A small xoshiro256** implementation: fast, seedable, and
// stable across platforms (unlike std::default_random_engine).

#ifndef QPROG_COMMON_RANDOM_H_
#define QPROG_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qprog {

/// xoshiro256** PRNG. Deterministic for a given seed on all platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qprog

#endif  // QPROG_COMMON_RANDOM_H_
