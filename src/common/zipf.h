// Zipfian distribution sampler.
//
// The paper's synthetic experiments (Sections 5.2-5.4) and the skewed TPC-H
// generator (ref [18], the Microsoft skewed TPC-D dbgen) draw join-column
// values from a zipfian distribution with parameter z: value rank r in
// [1, n] has probability proportional to 1 / r^z.

#ifndef QPROG_COMMON_ZIPF_H_
#define QPROG_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace qprog {

/// Samples ranks in [0, n) with P(rank = r) proportional to 1/(r+1)^z.
///
/// z == 0 degenerates to the uniform distribution. Sampling is O(log n) via
/// binary search over a precomputed CDF (n is bounded by the in-memory data
/// sizes this project uses, so the O(n) table is cheap).
class ZipfDistribution {
 public:
  /// Builds the CDF for `n` ranks with skew `z`. Requires n >= 1, z >= 0.
  ZipfDistribution(uint64_t n, double z);

  /// Draws a rank in [0, n). Rank 0 is the most frequent.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Probability mass of rank `r`.
  double Pmf(uint64_t r) const;

  /// Expected count of the most frequent rank among `draws` samples.
  double ExpectedMaxFrequency(uint64_t draws) const { return Pmf(0) * draws; }

 private:
  uint64_t n_;
  double z_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace qprog

#endif  // QPROG_COMMON_ZIPF_H_
