#include "exec/filter_project.h"

#include "common/macros.h"
#include "common/strings.h"
#include "exec/batch.h"
#include "exec/fault_injector.h"

namespace qprog {

// --------------------------------------------------------------------------
// Filter

Filter::Filter(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(predicate_ != nullptr);
  set_is_linear(true);
}

Filter::~Filter() = default;

void Filter::DoOpen(ExecContext* ctx) {
  finished_ = false;
  child_->Open(ctx);
}

bool Filter::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kFilterNext, node_id())) {
    return false;
  }
  Row row;
  while (child_->Next(ctx, &row)) {
    Value keep = predicate_->Eval(row);
    if (!keep.is_null() && keep.bool_value()) {
      *out = std::move(row);
      Emit(ctx);
      return true;
    }
  }
  if (!ctx->ok()) return false;  // child stopped on error, not end-of-stream
  finished_ = true;
  return false;
}

bool Filter::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  if (out->capacity() < kMinFusedCapacity) {
    return PhysicalOperator::DoNextBatch(ctx, out);
  }
  if (!fused_checked_) {
    fused_checked_ = true;
    fused_ = FusedChain::TryBuild(this);
  }
  if (fused_ != nullptr) return fused_->Fill(ctx, out);
  return PhysicalOperator::DoNextBatch(ctx, out);
}

void Filter::DoClose(ExecContext* ctx) { child_->Close(ctx); }

std::string Filter::label() const {
  return StringPrintf("Filter(%s)", predicate_->ToString().c_str());
}

// --------------------------------------------------------------------------
// Project

Project::Project(OperatorPtr child, std::vector<ExprPtr> exprs,
                 std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(names.size() == exprs_.size());
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (std::string& name : names) {
    fields.emplace_back(std::move(name), TypeId::kNull);
  }
  schema_ = Schema(std::move(fields));
  set_is_linear(true);
}

Project::~Project() = default;

void Project::DoOpen(ExecContext* ctx) {
  finished_ = false;
  child_->Open(ctx);
}

bool Project::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kProjectNext, node_id())) {
    return false;
  }
  Row row;
  if (!child_->Next(ctx, &row)) {
    if (ctx->ok()) finished_ = true;
    return false;
  }
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) out->push_back(e->Eval(row));
  Emit(ctx);
  return true;
}

bool Project::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  if (out->capacity() < kMinFusedCapacity) {
    return PhysicalOperator::DoNextBatch(ctx, out);
  }
  if (!fused_checked_) {
    fused_checked_ = true;
    fused_ = FusedChain::TryBuild(this);
  }
  if (fused_ != nullptr) return fused_->Fill(ctx, out);
  return PhysicalOperator::DoNextBatch(ctx, out);
}

void Project::DoClose(ExecContext* ctx) { child_->Close(ctx); }

std::string Project::label() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) parts.push_back(e->ToString());
  return StringPrintf("Project(%s)", JoinStrings(parts, ", ").c_str());
}

// --------------------------------------------------------------------------
// Limit

Limit::Limit(OperatorPtr child, uint64_t limit)
    : child_(std::move(child)), limit_(limit) {
  QPROG_CHECK(child_ != nullptr);
  set_is_linear(true);
}

Limit::~Limit() = default;

void Limit::DoOpen(ExecContext* ctx) {
  finished_ = false;
  produced_ = 0;
  child_->Open(ctx);
}

bool Limit::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kLimitNext, node_id())) {
    return false;
  }
  if (produced_ >= limit_) {
    finished_ = true;
    return false;
  }
  if (!child_->Next(ctx, out)) {
    if (ctx->ok()) finished_ = true;
    return false;
  }
  ++produced_;
  Emit(ctx);
  return true;
}

bool Limit::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  if (out->capacity() < kMinFusedCapacity) {
    return PhysicalOperator::DoNextBatch(ctx, out);
  }
  if (!fused_checked_) {
    fused_checked_ = true;
    fused_ = FusedChain::TryBuild(this);
  }
  if (fused_ != nullptr) return fused_->Fill(ctx, out);
  return PhysicalOperator::DoNextBatch(ctx, out);
}

void Limit::DoClose(ExecContext* ctx) { child_->Close(ctx); }

std::string Limit::label() const {
  return StringPrintf("Limit(%llu)", static_cast<unsigned long long>(limit_));
}

void Limit::FillProgressState(const ExecContext& ctx,
                              ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->has_limit = true;
  state->limit_remaining = limit_ > produced_ ? limit_ - produced_ : 0;
}

}  // namespace qprog
