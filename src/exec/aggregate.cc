#include "exec/aggregate.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "exec/worker_pool.h"

namespace qprog {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCountDistinct:
      return "count-distinct";
  }
  return "?";
}

// --------------------------------------------------------------------------
// AggAccumulator

void AggAccumulator::Add(const Value& v) {
  if (v.is_null()) return;  // SQL aggregates skip NULLs
  ++count_;
  switch (func_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      sum_ += v.AsDouble();
      break;
    case AggFunc::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFunc::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
    case AggFunc::kCountDistinct:
      distinct_.insert(v);
      break;
  }
}

Value AggAccumulator::Result() const {
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFunc::kSum:
      return count_ == 0 ? Value::Null() : Value::Double(sum_);
    case AggFunc::kAvg:
      return count_ == 0 ? Value::Null()
                         : Value::Double(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_;
    case AggFunc::kMax:
      return max_;
    case AggFunc::kCountDistinct:
      return Value::Int64(static_cast<int64_t>(distinct_.size()));
  }
  return Value::Null();
}

namespace {

Schema MakeAggSchema(const std::vector<std::string>& group_names,
                     const std::vector<AggregateDesc>& aggregates) {
  std::vector<Field> fields;
  fields.reserve(group_names.size() + aggregates.size());
  for (const std::string& name : group_names) {
    fields.emplace_back(name, TypeId::kNull);
  }
  for (const AggregateDesc& agg : aggregates) {
    fields.emplace_back(agg.output_name, TypeId::kNull);
  }
  return Schema(std::move(fields));
}

std::vector<AggAccumulator> MakeStates(
    const std::vector<AggregateDesc>& aggregates) {
  std::vector<AggAccumulator> states;
  states.reserve(aggregates.size());
  for (const AggregateDesc& agg : aggregates) {
    states.emplace_back(agg.func);
  }
  return states;
}

void AccumulateRow(const std::vector<AggregateDesc>& aggregates,
                   std::vector<AggAccumulator>* states, const Row& row) {
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggregateDesc& agg = aggregates[i];
    if (agg.arg == nullptr) {
      QPROG_DCHECK(agg.func == AggFunc::kCount);
      (*states)[i].AddCountStar();
    } else {
      (*states)[i].Add(agg.arg->Eval(row));
    }
  }
}

Row ResultRow(const Row& key, const std::vector<AggAccumulator>& states) {
  Row out;
  out.reserve(key.size() + states.size());
  out.insert(out.end(), key.begin(), key.end());
  for (const AggAccumulator& acc : states) out.push_back(acc.Result());
  return out;
}

// Task-key layout for the parallel partition replay, mirroring the join's
// (DESIGN.md §10): the leaf's recursion depth (bits 48..55) and partition
// path (3 bits per level, level 0 lowest) are the task's full data identity
// — one replay task per leaf, at most once per execution. A depth-0 leaf's
// key equals the pre-refinement kAggReplayTaskTag | p, so executions that
// never re-split keep their exact PR-4 fault schedules.
constexpr uint64_t kAggReplayTaskTag = 0x54ULL << 56;

uint64_t AggLeafTaskKey(int depth, uint64_t path) {
  return kAggReplayTaskTag | (static_cast<uint64_t>(depth) << 48) | path;
}

}  // namespace

// --------------------------------------------------------------------------
// HashAggregate

HashAggregate::HashAggregate(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                             std::vector<std::string> group_names,
                             std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakeAggSchema(group_names, aggregates_)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(group_names.size() == group_exprs_.size());
  set_is_linear(true);
}

void HashAggregate::DoOpen(ExecContext* ctx) {
  finished_ = false;
  built_ = false;
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  spilled_ = false;
  parts_.clear();
  leaves_.clear();
  part_next_ = 0;
  prior_groups_ = 0;
  agg_rows_spilled_ = 0;
  agg_rows_replayed_ = 0;
  parallel_replayed_ = false;
  agg_outs_.clear();
  agg_part_ = 0;
  agg_pos_ = 0;
  par_groups_ = 0;
  child_->Open(ctx);
}

bool HashAggregate::SpillRow(ExecContext* ctx, const Row& key,
                             const Row& row) {
  if (parts_.empty()) {
    parts_.reserve(kSpillFanout);
    for (int i = 0; i < kSpillFanout; ++i) {
      SpillRunPtr run =
          ctx->spill_manager()->CreateRun(ctx, node_id(), "hashagg.build");
      if (run == nullptr) return false;
      parts_.push_back(std::move(run));
    }
  }
  size_t part = GracePartitionIndex(RowHash()(key), 0, kSpillFanout);
  if (!parts_[part]->Append(ctx, node_id(), row)) return false;
  ++agg_rows_spilled_;
  return true;
}

void HashAggregate::Build(ExecContext* ctx) {
  Row row;
  bool any_input = false;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kHashAggregateBuild, node_id())) return;
    any_input = true;
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto it = group_index_.find(key);
    if (it != group_index_.end()) {
      // Known group: keep accumulating in memory, spilled or not.
      AccumulateRow(aggregates_, &group_states_[it->second], row);
      continue;
    }
    if (spilled_) {
      // New key after the overflow: its raw rows go to a partition.
      if (!SpillRow(ctx, key, row)) return;
      continue;
    }
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill && !group_exprs_.empty()) {
      spilled_ = true;
      if (!SpillRow(ctx, key, row)) return;
      continue;
    }
    if (verdict == ChargeVerdict::kSpill) {
      // Scalar aggregate: a single group is the minimum working set and
      // there is nothing to spill, so charge it against the kill threshold
      // like a reloaded partition rather than aborting on a soft budget
      // that other operators may be holding.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
    }
    ++charged_;
    group_index_.emplace(key, group_keys_.size());
    group_keys_.push_back(std::move(key));
    group_states_.push_back(MakeStates(aggregates_));
    AccumulateRow(aggregates_, &group_states_.back(), row);
  }
  if (!ctx->ok()) return;  // partial aggregation: do not emit
  if (spilled_) {
    for (auto& run : parts_) {
      if (!run->FinishWrite(ctx, node_id())) return;
    }
    if (!RefinePartitions(ctx)) return;
  }
  // A scalar aggregate produces one row even over empty input.
  if (group_exprs_.empty() && !any_input) {
    group_keys_.emplace_back();
    group_states_.push_back(MakeStates(aggregates_));
  }
  built_ = true;
}

bool HashAggregate::RefinePartitions(ExecContext* ctx) {
  // Capacity is the kill headroom above what the plan already holds at this
  // instant — the geometry the serial LoadNextPartition enforces per group
  // and the parallel replay admits against. A leaf at or under it cannot
  // trip the kill threshold even if every row opens its own group; anything
  // larger is re-split so the replay never *has* to rely on the tripwire.
  const QueryGuard* guard = ctx->guard();
  const uint64_t kill = guard != nullptr ? guard->max_buffered_rows_kill()
                                         : QueryGuard::kNoLimit;
  uint64_t capacity = QueryGuard::kNoLimit;
  if (kill != QueryGuard::kNoLimit) {
    capacity = kill - std::min(kill, ctx->buffered_rows());
  }
  leaves_.clear();
  leaves_.reserve(static_cast<size_t>(kSpillFanout));
  for (int p = 0; p < kSpillFanout; ++p) {
    if (!RefineOne(ctx, std::move(parts_[static_cast<size_t>(p)]), 0,
                   static_cast<uint64_t>(p), capacity)) {
      return false;
    }
  }
  parts_.clear();
  return ctx->ok();
}

bool HashAggregate::RefineOne(ExecContext* ctx, SpillRunPtr run, int depth,
                              uint64_t path, uint64_t capacity) {
  // Admit-alone fallback at the depth cap: a partition still oversized after
  // kMaxGraceDepth salted passes is emitted as a leaf rather than aborted —
  // its memory need is its *group* count, which may be far under its row
  // count, and the per-group kill-threshold charge remains the tripwire.
  if (run->rows_written() <= capacity || depth >= kMaxGraceDepth) {
    leaves_.push_back(AggLeaf{std::move(run), depth, path});
    return true;
  }
  // Redistribute into kSpillFanout children under the next level's salt.
  // Query thread only: run creation order (and the spill_begin events
  // carrying the new depth) must stay part of the deterministic trace. Every
  // re-read and re-write below is accounted spill work, so total(Q) grows by
  // exactly two units per re-partitioned row and the 2*spilled-done pending
  // identity holds at every checkpoint mid-refinement.
  const int child_depth = depth + 1;
  const uint64_t parent_rows = run->rows_written();
  std::vector<SpillRunPtr> children;
  children.reserve(static_cast<size_t>(kSpillFanout));
  for (int i = 0; i < kSpillFanout; ++i) {
    SpillRunPtr child = ctx->spill_manager()->CreateRun(
        ctx, node_id(), "hashagg.build", child_depth);
    if (child == nullptr) return false;
    children.push_back(std::move(child));
  }
  Row row;
  if (!run->OpenRead(ctx, node_id())) return false;
  while (run->ReadNext(ctx, node_id(), &row)) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    ++agg_rows_replayed_;
    size_t part = GracePartitionIndex(RowHash()(key), child_depth,
                                      kSpillFanout);
    if (!children[part]->Append(ctx, node_id(), row)) return false;
    ++agg_rows_spilled_;
  }
  if (!ctx->ok()) return false;
  run.reset();  // parent temp file gone before the tree grows further
  uint64_t biggest_child = 0;
  for (auto& child : children) {
    biggest_child = std::max(biggest_child, child->rows_written());
    if (!child->FinishWrite(ctx, node_id())) return false;
  }
  if (biggest_child >= parent_rows) {
    // The salt moved nothing: every row shares one key (or one hash value).
    // No recursion depth will ever spread this partition, so emit the
    // children as leaves directly — one group (or few) may well fit, and if
    // not, the kill tripwire catches it during replay (the join must abort
    // here because it materializes *rows*, not groups).
    for (int i = 0; i < kSpillFanout; ++i) {
      leaves_.push_back(
          AggLeaf{std::move(children[static_cast<size_t>(i)]), child_depth,
                  path | (static_cast<uint64_t>(i) << (3 * child_depth))});
    }
    return true;
  }
  for (int i = 0; i < kSpillFanout; ++i) {
    if (!RefineOne(ctx, std::move(children[static_cast<size_t>(i)]),
                   child_depth,
                   path | (static_cast<uint64_t>(i) << (3 * child_depth)),
                   capacity)) {
      return false;
    }
  }
  return true;
}

bool HashAggregate::LoadNextPartition(ExecContext* ctx) {
  prior_groups_ += group_keys_.size();
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  SpillRun* run = leaves_[part_next_].run.get();
  if (!run->OpenRead(ctx, node_id())) return false;
  Row row;
  while (run->ReadNext(ctx, node_id(), &row)) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto [it, inserted] = group_index_.try_emplace(key, group_keys_.size());
    if (inserted) {
      // One partition's groups answer to the kill threshold only.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return false;
      ++charged_;
      group_keys_.push_back(std::move(key));
      group_states_.push_back(MakeStates(aggregates_));
    }
    AccumulateRow(aggregates_, &group_states_[it->second], row);
    ++agg_rows_replayed_;
  }
  if (!ctx->ok()) return false;
  leaves_[part_next_].run.reset();  // delete this partition's temp file
  ++part_next_;
  return true;
}

bool HashAggregate::ParallelReplayPartitions(ExecContext* ctx,
                                             WorkerPool* pool) {
  // Budget geometry, identical to the parallel Grace join's and computed on
  // the query thread before any task runs: capacity is the kill headroom
  // above what the plan already holds, and the result allowance splits half
  // of it evenly across partitions (the other half carries the per-task
  // group tables). Every term is data-derived, so the in-memory/overflow
  // split is identical at every pool size.
  QPROG_DCHECK(part_next_ == 0);  // pool mode never replays serially first
  const QueryGuard* guard = ctx->guard();
  const uint64_t kill = guard != nullptr ? guard->max_buffered_rows_kill()
                                         : QueryGuard::kNoLimit;
  const bool unlimited = kill == QueryGuard::kNoLimit;
  const uint64_t base = ctx->buffered_rows();
  const uint64_t capacity = unlimited ? 0 : kill - std::min(kill, base);
  const size_t num_parts = leaves_.size();
  const uint64_t allowance =
      unlimited ? std::numeric_limits<uint64_t>::max()
                : capacity / (2 * std::max<uint64_t>(num_parts, 1));
  OrderedTaskBudget budget(unlimited, capacity, allowance);
  agg_outs_.clear();
  agg_outs_.resize(num_parts);
  std::vector<std::unique_ptr<TaskContext>> tcs;
  tcs.reserve(num_parts);
  {
    TaskGroup group(pool);
    for (size_t p = 0; p < num_parts; ++p) {
      auto tc = std::make_unique<TaskContext>(
          ctx, AggLeafTaskKey(leaves_[p].depth, leaves_[p].path));
      TaskContext* tcp = tc.get();
      SpillRun* run = leaves_[p].run.get();
      PartitionAggOut* out = &agg_outs_[p];
      out->part = p;
      // The run sealed on the query thread, so its row count is exact and
      // bounds the partition's group count: reserve the whole group table
      // plus the result allowance, capped at capacity so an oversized
      // partition can still be admitted alone (its task then trips the kill
      // tripwire, as the serial replay would).
      out->reserved =
          unlimited ? 0
                    : std::min<uint64_t>(run->rows_written() + allowance,
                                         capacity);
      group.Submit([this, tcp, run, spill = ctx->spill_manager(),
                    budget_ptr = &budget, out] {
        ReplayPartitionTask(tcp, run, spill, budget_ptr, out);
      });
      tcs.push_back(std::move(tc));
    }
    Status escaped = group.Wait();
    for (size_t p = 0; p < num_parts; ++p) {
      if (!ctx->ok()) break;
      tcs[p]->FoldInto(ctx);
      if (!ctx->ok()) break;
      par_groups_ += agg_outs_[p].groups;
      agg_rows_replayed_ += agg_outs_[p].rows_read;
      leaves_[p].run.reset();  // delete this partition's temp file
    }
    if (ctx->ok() && !escaped.ok()) ctx->RaiseError(std::move(escaped));
  }
  part_next_ = num_parts;  // every partition consumed
  if (!ctx->ok()) return false;
  // Move the retained result prefixes into the plan-wide account, where they
  // stay visible to the guard until NextReplayOutput drains them. Cannot
  // trip the kill threshold: admission kept the sum within capacity.
  if (!unlimited) {
    uint64_t prefix_total = 0;
    for (PartitionAggOut& po : agg_outs_) {
      po.charged_rows = po.rows.size();
      prefix_total += po.charged_rows;
    }
    if (!ctx->ChargeBufferedRowsPostSpill(prefix_total)) return false;
    charged_ += prefix_total;
  }
  return ctx->ok();
}

void HashAggregate::ReplayPartitionTask(TaskContext* tc, SpillRun* run,
                                        SpillManager* spill,
                                        OrderedTaskBudget* budget,
                                        PartitionAggOut* out) const {
  // The task owns its partition end to end: a private group table, the
  // partition's spill reads, and the result buffer. It runs only once the
  // shared budget admits its reservation, so the *sum* of concurrent
  // partition memory stays under the guard's kill threshold; the per-task
  // kill-threshold charge below mirrors the serial LoadNextPartition charge.
  if (!budget->Admit(out->part, out->reserved, tc)) return;
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Row> keys;
  std::vector<std::vector<AggAccumulator>> states;
  Row row;
  bool ok = run->OpenRead(tc, node_id());
  while (ok && run->ReadNext(tc, node_id(), &row)) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto [it, inserted] = index.try_emplace(key, keys.size());
    if (inserted) {
      // One partition's groups answer to the kill threshold only.
      if (!tc->ChargeBufferedRowsPostSpill(1)) {
        ok = false;
        break;
      }
      keys.push_back(std::move(key));
      states.push_back(MakeStates(aggregates_));
    }
    AccumulateRow(aggregates_, &states[it->second], row);
    ++out->rows_read;
  }
  ok = ok && tc->ok();
  out->groups = keys.size();
  // Emit result rows in first-seen order — the order the serial replay
  // emits this partition's groups — keeping the prefix in memory up to the
  // allowance and overflowing the rest to an unaccounted side run (created
  // lazily here; thread-safe, trace-silent).
  for (size_t g = 0; ok && g < keys.size(); ++g) {
    Row result = ResultRow(keys[g], states[g]);
    if (out->rows.size() < budget->out_allowance) {
      out->rows.push_back(std::move(result));
      continue;
    }
    if (out->overflow == nullptr) {
      out->overflow = spill->CreateSideRun(tc, node_id());
      if (out->overflow == nullptr) {
        ok = false;
        break;
      }
    }
    ok = out->overflow->Append(tc, node_id(), result);
  }
  if (tc->ok() && out->overflow != nullptr) {
    out->overflow->FinishWrite(tc, node_id());
  }
  // Hand back the slack between the reservation and the rows the partition
  // actually keeps in memory; the prefix itself stays reserved until the
  // query thread charges it to the plan account after the fold.
  uint64_t kept = std::min<uint64_t>(out->rows.size(), out->reserved);
  budget->Retain(kept);
  budget->Release(out->reserved - kept);
}

bool HashAggregate::NextReplayOutput(ExecContext* ctx, Row* out) {
  while (ctx->ok() && agg_part_ < agg_outs_.size()) {
    PartitionAggOut& po = agg_outs_[agg_part_];
    if (agg_pos_ < po.rows.size()) {
      *out = std::move(po.rows[agg_pos_++]);
      Emit(ctx);
      return true;
    }
    if (po.overflow != nullptr) {
      if (!po.overflow_open) {
        if (!po.overflow->OpenRead(ctx, node_id())) return false;
        po.overflow_open = true;
      }
      if (po.overflow->ReadNext(ctx, node_id(), out)) {
        Emit(ctx);
        return true;
      }
      if (!ctx->ok()) return false;
      po.overflow.reset();  // end of side run: delete the temp file now
    }
    // Partition fully drained: give back its in-memory prefix.
    po.rows = std::vector<Row>();
    ctx->ReleaseBufferedRows(po.charged_rows);
    charged_ -= std::min<uint64_t>(charged_, po.charged_rows);
    po.charged_rows = 0;
    agg_pos_ = 0;
    ++agg_part_;
  }
  if (!ctx->ok()) return false;
  finished_ = true;
  return false;
}

bool HashAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!built_) {
    Build(ctx);
    if (!ctx->ok()) return false;
  }
  for (;;) {
    if (!ctx->ok()) return false;
    if (cursor_ < group_keys_.size()) {
      *out = ResultRow(group_keys_[cursor_], group_states_[cursor_]);
      ++cursor_;
      Emit(ctx);
      return true;
    }
    if (parallel_replayed_) return NextReplayOutput(ctx, out);
    if (!spilled_ || part_next_ >= leaves_.size()) {
      finished_ = true;
      return false;
    }
    if (ctx->worker_pool() != nullptr) {
      if (!ParallelReplayPartitions(ctx, ctx->worker_pool())) return false;
      parallel_replayed_ = true;
      continue;
    }
    if (!LoadNextPartition(ctx)) return false;
  }
}

void HashAggregate::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  parts_.clear();     // deletes any remaining spill temp files
  leaves_.clear();    // ... and any refined leaves not yet replayed
  agg_outs_.clear();  // deletes any remaining overflow side runs
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string HashAggregate::label() const {
  return StringPrintf("HashAggregate(%zu groups cols, %zu aggs)",
                      group_exprs_.size(), aggregates_.size());
}

void HashAggregate::FillProgressState(const ExecContext& ctx,
                                      ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  // Spilled runs keep the conservative !build_done path: group counts are
  // not final until every partition has been re-aggregated.
  state->build_done = built_ && !spilled_;
  state->groups_so_far = prior_groups_ + group_keys_.size() + par_groups_;
  state->scalar_aggregate = group_exprs_.empty();
  // Every row appended to a partition run — the initial spill plus each
  // re-partitioning rewrite — is written once and read back exactly once, so
  // this node's total spill work is 2x the rows appended so far; deriving
  // pending from the same work counter the checkpoint just advanced keeps
  // (done + pending) consistent at every sampling instant, and never reads
  // SpillRun counters a replay task may be mutating (see sort.cc, join.cc).
  uint64_t spill_total = 2 * agg_rows_spilled_;
  state->spill_rows_pending = spill_total > state->spill_work_done
                                  ? spill_total - state->spill_work_done
                                  : 0;
  // Row count for the group-cardinality bound: spilled rows that have not
  // been re-aggregated yet (each may still open a fresh group). Appends
  // minus reads — a re-partitioned row moves both counters, so this is
  // exactly the rows sitting unread in leaves. Distinct from
  // spill_rows_pending, which is in *work units* and would overstate the
  // unseen rows by the unfinished write pass.
  state->spill_rows_unread =
      agg_rows_spilled_ > agg_rows_replayed_
          ? agg_rows_spilled_ - agg_rows_replayed_
          : 0;
}

// --------------------------------------------------------------------------
// StreamAggregate

StreamAggregate::StreamAggregate(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<std::string> group_names,
                                 std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakeAggSchema(group_names, aggregates_)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(group_names.size() == group_exprs_.size());
  set_is_linear(true);
}

void StreamAggregate::DoOpen(ExecContext* ctx) {
  finished_ = false;
  group_open_ = false;
  input_done_ = false;
  any_input_ = false;
  groups_emitted_ = 0;
  pending_valid_ = false;
  child_->Open(ctx);
}

void StreamAggregate::Accumulate(const Row& row) {
  AccumulateRow(aggregates_, &current_state_, row);
}

Row StreamAggregate::EmitGroup() {
  ++groups_emitted_;
  group_open_ = false;
  return ResultRow(current_key_, current_state_);
}

bool StreamAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() ||
      ctx->ConsultFault(faults::kStreamAggregateNext, node_id())) {
    return false;
  }
  if (input_done_ && !group_open_) {
    // Scalar aggregate over empty input still yields one row.
    if (group_exprs_.empty() && !any_input_ && groups_emitted_ == 0) {
      current_key_.clear();
      current_state_ = MakeStates(aggregates_);
      ++groups_emitted_;
      *out = ResultRow(current_key_, current_state_);
      Emit(ctx);
      return true;
    }
    finished_ = true;
    return false;
  }
  for (;;) {
    Row row;
    bool have_row;
    if (pending_valid_) {
      row = std::move(pending_row_);
      pending_valid_ = false;
      have_row = true;
    } else {
      have_row = child_->Next(ctx, &row);
    }
    if (!have_row) {
      if (!ctx->ok()) return false;  // child stopped on error: no final group
      input_done_ = true;
      if (group_open_) {
        *out = EmitGroup();
        Emit(ctx);
        return true;
      }
      return Next(ctx, out);  // handles the empty-scalar case above
    }
    any_input_ = true;
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    if (!group_open_) {
      current_key_ = std::move(key);
      current_state_ = MakeStates(aggregates_);
      group_open_ = true;
      Accumulate(row);
      continue;
    }
    if (RowEq()(key, current_key_)) {
      Accumulate(row);
      continue;
    }
    // Group boundary: emit the finished group, stash the new row.
    pending_row_ = std::move(row);
    pending_valid_ = true;
    Row result = EmitGroup();
    current_key_ = std::move(key);
    *out = std::move(result);
    Emit(ctx);
    return true;
  }
}

void StreamAggregate::DoClose(ExecContext* ctx) { child_->Close(ctx); }

std::string StreamAggregate::label() const {
  return StringPrintf("StreamAggregate(%zu group cols, %zu aggs)",
                      group_exprs_.size(), aggregates_.size());
}

void StreamAggregate::FillProgressState(const ExecContext& ctx,
                                        ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->groups_so_far = groups_emitted_ + (group_open_ ? 1 : 0);
  state->scalar_aggregate = group_exprs_.empty();
  state->build_done = input_done_;
}

}  // namespace qprog
