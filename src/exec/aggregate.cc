#include "exec/aggregate.h"

#include "common/macros.h"
#include "common/strings.h"
#include "exec/fault_injector.h"

namespace qprog {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCountDistinct:
      return "count-distinct";
  }
  return "?";
}

// --------------------------------------------------------------------------
// AggAccumulator

void AggAccumulator::Add(const Value& v) {
  if (v.is_null()) return;  // SQL aggregates skip NULLs
  ++count_;
  switch (func_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      sum_ += v.AsDouble();
      break;
    case AggFunc::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggFunc::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
    case AggFunc::kCountDistinct:
      distinct_.insert(v);
      break;
  }
}

Value AggAccumulator::Result() const {
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFunc::kSum:
      return count_ == 0 ? Value::Null() : Value::Double(sum_);
    case AggFunc::kAvg:
      return count_ == 0 ? Value::Null()
                         : Value::Double(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_;
    case AggFunc::kMax:
      return max_;
    case AggFunc::kCountDistinct:
      return Value::Int64(static_cast<int64_t>(distinct_.size()));
  }
  return Value::Null();
}

namespace {

Schema MakeAggSchema(const std::vector<std::string>& group_names,
                     const std::vector<AggregateDesc>& aggregates) {
  std::vector<Field> fields;
  fields.reserve(group_names.size() + aggregates.size());
  for (const std::string& name : group_names) {
    fields.emplace_back(name, TypeId::kNull);
  }
  for (const AggregateDesc& agg : aggregates) {
    fields.emplace_back(agg.output_name, TypeId::kNull);
  }
  return Schema(std::move(fields));
}

std::vector<AggAccumulator> MakeStates(
    const std::vector<AggregateDesc>& aggregates) {
  std::vector<AggAccumulator> states;
  states.reserve(aggregates.size());
  for (const AggregateDesc& agg : aggregates) {
    states.emplace_back(agg.func);
  }
  return states;
}

void AccumulateRow(const std::vector<AggregateDesc>& aggregates,
                   std::vector<AggAccumulator>* states, const Row& row) {
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggregateDesc& agg = aggregates[i];
    if (agg.arg == nullptr) {
      QPROG_DCHECK(agg.func == AggFunc::kCount);
      (*states)[i].AddCountStar();
    } else {
      (*states)[i].Add(agg.arg->Eval(row));
    }
  }
}

Row ResultRow(const Row& key, const std::vector<AggAccumulator>& states) {
  Row out;
  out.reserve(key.size() + states.size());
  out.insert(out.end(), key.begin(), key.end());
  for (const AggAccumulator& acc : states) out.push_back(acc.Result());
  return out;
}

}  // namespace

// --------------------------------------------------------------------------
// HashAggregate

HashAggregate::HashAggregate(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                             std::vector<std::string> group_names,
                             std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakeAggSchema(group_names, aggregates_)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(group_names.size() == group_exprs_.size());
  set_is_linear(true);
}

void HashAggregate::DoOpen(ExecContext* ctx) {
  finished_ = false;
  built_ = false;
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  spilled_ = false;
  parts_.clear();
  part_next_ = 0;
  prior_groups_ = 0;
  child_->Open(ctx);
}

bool HashAggregate::SpillRow(ExecContext* ctx, const Row& key,
                             const Row& row) {
  if (parts_.empty()) {
    parts_.reserve(kSpillFanout);
    for (int i = 0; i < kSpillFanout; ++i) {
      SpillRunPtr run =
          ctx->spill_manager()->CreateRun(ctx, node_id(), "hashagg.build");
      if (run == nullptr) return false;
      parts_.push_back(std::move(run));
    }
  }
  size_t part = RowHash()(key) % static_cast<size_t>(kSpillFanout);
  return parts_[part]->Append(ctx, node_id(), row);
}

void HashAggregate::Build(ExecContext* ctx) {
  Row row;
  bool any_input = false;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kHashAggregateBuild, node_id())) return;
    any_input = true;
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto it = group_index_.find(key);
    if (it != group_index_.end()) {
      // Known group: keep accumulating in memory, spilled or not.
      AccumulateRow(aggregates_, &group_states_[it->second], row);
      continue;
    }
    if (spilled_) {
      // New key after the overflow: its raw rows go to a partition.
      if (!SpillRow(ctx, key, row)) return;
      continue;
    }
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill && !group_exprs_.empty()) {
      spilled_ = true;
      if (!SpillRow(ctx, key, row)) return;
      continue;
    }
    if (verdict == ChargeVerdict::kSpill) {
      // Scalar aggregate: a single group is the minimum working set and
      // there is nothing to spill, so charge it against the kill threshold
      // like a reloaded partition rather than aborting on a soft budget
      // that other operators may be holding.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
    }
    ++charged_;
    group_index_.emplace(key, group_keys_.size());
    group_keys_.push_back(std::move(key));
    group_states_.push_back(MakeStates(aggregates_));
    AccumulateRow(aggregates_, &group_states_.back(), row);
  }
  if (!ctx->ok()) return;  // partial aggregation: do not emit
  if (spilled_) {
    for (auto& run : parts_) {
      if (!run->FinishWrite(ctx, node_id())) return;
    }
  }
  // A scalar aggregate produces one row even over empty input.
  if (group_exprs_.empty() && !any_input) {
    group_keys_.emplace_back();
    group_states_.push_back(MakeStates(aggregates_));
  }
  built_ = true;
}

bool HashAggregate::LoadNextPartition(ExecContext* ctx) {
  prior_groups_ += group_keys_.size();
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  SpillRun* run = parts_[part_next_].get();
  if (!run->OpenRead(ctx, node_id())) return false;
  Row row;
  while (run->ReadNext(ctx, node_id(), &row)) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto [it, inserted] = group_index_.try_emplace(key, group_keys_.size());
    if (inserted) {
      // One partition's groups answer to the kill threshold only.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return false;
      ++charged_;
      group_keys_.push_back(std::move(key));
      group_states_.push_back(MakeStates(aggregates_));
    }
    AccumulateRow(aggregates_, &group_states_[it->second], row);
  }
  if (!ctx->ok()) return false;
  parts_[part_next_].reset();  // delete this partition's temp file
  ++part_next_;
  return true;
}

bool HashAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!built_) {
    Build(ctx);
    if (!ctx->ok()) return false;
  }
  for (;;) {
    if (!ctx->ok()) return false;
    if (cursor_ < group_keys_.size()) {
      *out = ResultRow(group_keys_[cursor_], group_states_[cursor_]);
      ++cursor_;
      Emit(ctx);
      return true;
    }
    if (!spilled_ || part_next_ >= parts_.size()) {
      finished_ = true;
      return false;
    }
    if (!LoadNextPartition(ctx)) return false;
  }
}

void HashAggregate::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  parts_.clear();  // deletes any remaining spill temp files
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string HashAggregate::label() const {
  return StringPrintf("HashAggregate(%zu groups cols, %zu aggs)",
                      group_exprs_.size(), aggregates_.size());
}

void HashAggregate::FillProgressState(const ExecContext& ctx,
                                      ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  // Spilled runs keep the conservative !build_done path: group counts are
  // not final until every partition has been re-aggregated.
  state->build_done = built_ && !spilled_;
  state->groups_so_far = prior_groups_ + group_keys_.size();
  state->scalar_aggregate = group_exprs_.empty();
  uint64_t pending = 0;
  for (const auto& run : parts_) {
    if (run != nullptr) pending += run->rows_pending();
  }
  state->spill_rows_pending = pending;
}

// --------------------------------------------------------------------------
// StreamAggregate

StreamAggregate::StreamAggregate(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<std::string> group_names,
                                 std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakeAggSchema(group_names, aggregates_)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(group_names.size() == group_exprs_.size());
  set_is_linear(true);
}

void StreamAggregate::DoOpen(ExecContext* ctx) {
  finished_ = false;
  group_open_ = false;
  input_done_ = false;
  any_input_ = false;
  groups_emitted_ = 0;
  pending_valid_ = false;
  child_->Open(ctx);
}

void StreamAggregate::Accumulate(const Row& row) {
  AccumulateRow(aggregates_, &current_state_, row);
}

Row StreamAggregate::EmitGroup() {
  ++groups_emitted_;
  group_open_ = false;
  return ResultRow(current_key_, current_state_);
}

bool StreamAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() ||
      ctx->ConsultFault(faults::kStreamAggregateNext, node_id())) {
    return false;
  }
  if (input_done_ && !group_open_) {
    // Scalar aggregate over empty input still yields one row.
    if (group_exprs_.empty() && !any_input_ && groups_emitted_ == 0) {
      current_key_.clear();
      current_state_ = MakeStates(aggregates_);
      ++groups_emitted_;
      *out = ResultRow(current_key_, current_state_);
      Emit(ctx);
      return true;
    }
    finished_ = true;
    return false;
  }
  for (;;) {
    Row row;
    bool have_row;
    if (pending_valid_) {
      row = std::move(pending_row_);
      pending_valid_ = false;
      have_row = true;
    } else {
      have_row = child_->Next(ctx, &row);
    }
    if (!have_row) {
      if (!ctx->ok()) return false;  // child stopped on error: no final group
      input_done_ = true;
      if (group_open_) {
        *out = EmitGroup();
        Emit(ctx);
        return true;
      }
      return Next(ctx, out);  // handles the empty-scalar case above
    }
    any_input_ = true;
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    if (!group_open_) {
      current_key_ = std::move(key);
      current_state_ = MakeStates(aggregates_);
      group_open_ = true;
      Accumulate(row);
      continue;
    }
    if (RowEq()(key, current_key_)) {
      Accumulate(row);
      continue;
    }
    // Group boundary: emit the finished group, stash the new row.
    pending_row_ = std::move(row);
    pending_valid_ = true;
    Row result = EmitGroup();
    current_key_ = std::move(key);
    *out = std::move(result);
    Emit(ctx);
    return true;
  }
}

void StreamAggregate::DoClose(ExecContext* ctx) { child_->Close(ctx); }

std::string StreamAggregate::label() const {
  return StringPrintf("StreamAggregate(%zu group cols, %zu aggs)",
                      group_exprs_.size(), aggregates_.size());
}

void StreamAggregate::FillProgressState(const ExecContext& ctx,
                                        ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->groups_so_far = groups_emitted_ + (group_open_ ? 1 : 0);
  state->scalar_aggregate = group_exprs_.empty();
  state->build_done = input_done_;
}

}  // namespace qprog
