#include "exec/scan.h"

#include "common/strings.h"
#include "exec/batch.h"
#include "exec/fault_injector.h"

namespace qprog {

// --------------------------------------------------------------------------
// SeqScan

SeqScan::SeqScan(const Table* table, ExprPtr predicate)
    : table_(table),
      predicate_(std::move(predicate)),
      begin_(0),
      end_(table->num_rows()) {}

SeqScan::SeqScan(const Table* table, ExprPtr predicate, uint64_t begin,
                 uint64_t end)
    : table_(table), predicate_(std::move(predicate)), begin_(begin),
      end_(end) {
  QPROG_CHECK(begin_ <= end_ && end_ <= table_->num_rows());
}

SeqScan::~SeqScan() = default;

void SeqScan::DoOpen(ExecContext* ctx) {
  cursor_ = begin_;
  emitted_ = 0;
  finished_ = false;
  ctx->ConsultFault(faults::kSeqScanOpen, node_id());
}

bool SeqScan::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kSeqScanNext, node_id())) {
    return false;
  }
  while (cursor_ < end_) {
    const Row& row = table_->row(cursor_++);
    // Every examined row is one getnext at the leaf, merged predicate or
    // not — the accounting that makes the paper's Table 2 mu >= 1 (each
    // base tuple must be read once; Section 5.2's LB >= sum of leaf
    // cardinalities).
    ctx->CountRow(node_id(), is_root());
    if (!ctx->ok()) return false;  // guard tripped while counting
    if (predicate_ != nullptr) {
      Value keep = predicate_->Eval(row);
      if (keep.is_null() || !keep.bool_value()) continue;
    }
    ++emitted_;
    *out = row;
    return true;
  }
  finished_ = true;
  return false;
}

bool SeqScan::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  if (out->capacity() < kMinFusedCapacity) {
    return PhysicalOperator::DoNextBatch(ctx, out);
  }
  if (!fused_checked_) {
    fused_checked_ = true;
    fused_ = FusedChain::TryBuild(this);
  }
  return fused_->Fill(ctx, out);
}

void SeqScan::DoClose(ExecContext*) {}

std::string SeqScan::label() const {
  std::string range;
  if (partitioned()) {
    range = StringPrintf(", rows=[%llu,%llu)",
                         static_cast<unsigned long long>(begin_),
                         static_cast<unsigned long long>(end_));
  }
  if (predicate_ != nullptr) {
    return StringPrintf("SeqScan(%s, pred=%s%s)", table_->name().c_str(),
                        predicate_->ToString().c_str(), range.c_str());
  }
  return StringPrintf("SeqScan(%s%s)", table_->name().c_str(), range.c_str());
}

void SeqScan::FillProgressState(const ExecContext& ctx,
                                ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  // The node's work counter tallies examined rows; production (what the
  // parent consumes) is the emitted count. A partitioned scan reports
  // partition-relative values so the exchange's sum over producers equals
  // the serial scan's totals.
  state->rows_produced = emitted_;
  state->input_examined = cursor_ - begin_;
  state->base_rows = partition_rows();
  if (predicate_ == nullptr) {
    state->exact_total = static_cast<double>(partition_rows());
  }
}

// --------------------------------------------------------------------------
// IndexSeek

IndexSeek::IndexSeek(const OrderedIndex* index) : index_(index) {}

IndexSeek::IndexSeek(const OrderedIndex* index, Value lo, bool lo_inclusive,
                     bool lo_unbounded, Value hi, bool hi_inclusive,
                     bool hi_unbounded)
    : index_(index),
      range_mode_(true),
      lo_(std::move(lo)),
      lo_inclusive_(lo_inclusive),
      lo_unbounded_(lo_unbounded),
      hi_(std::move(hi)),
      hi_inclusive_(hi_inclusive),
      hi_unbounded_(hi_unbounded) {}

void IndexSeek::Rebind(const Value& key) {
  current_ = index_->EqualRange(key);
  pos_ = 0;
}

void IndexSeek::DoOpen(ExecContext*) {
  finished_ = false;
  opened_ = true;
  if (range_mode_) {
    current_ = index_->Range(lo_, lo_inclusive_, lo_unbounded_, hi_,
                             hi_inclusive_, hi_unbounded_);
  } else {
    current_ = {};
  }
  pos_ = 0;
}

bool IndexSeek::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kIndexSeekNext, node_id())) {
    return false;
  }
  if (pos_ >= current_.size()) {
    if (range_mode_) finished_ = true;
    return false;
  }
  uint64_t row_id = current_.begin[pos_++];
  *out = index_->table()->row(row_id);
  Emit(ctx);
  return true;
}

void IndexSeek::DoClose(ExecContext*) {}

std::string IndexSeek::label() const {
  return StringPrintf("IndexSeek(%s.%s%s)", index_->table()->name().c_str(),
                      index_->table()
                          ->schema()
                          .field(index_->column())
                          .name.c_str(),
                      range_mode_ ? ", range" : "");
}

void IndexSeek::FillProgressState(const ExecContext& ctx,
                                  ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->base_rows = index_->num_entries();
  state->max_per_probe = index_->max_key_multiplicity();
  if (range_mode_ && opened_) {
    // A static range seek's total production is the size of the range,
    // known exactly once Open has positioned the cursor.
    state->exact_total = static_cast<double>(current_.size());
  }
}

}  // namespace qprog
