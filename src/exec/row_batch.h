// RowBatch: a fixed-capacity container of output rows, the unit of transfer
// on the batched (vectorized) execution path (DESIGN.md §15).
//
// A batch amortizes per-row costs — virtual dispatch, the telemetry clock,
// the driver loop — without changing the paper's work accounting: the
// operators filling a batch still count every getnext through
// ExecContext::CountRow, one row at a time, in exactly the order the
// tuple-at-a-time engine would. The batch boundary only changes when control
// returns to the driver, never what is counted or when.
//
// Row storage is reused across Clear(): the vector keeps its Rows (and the
// Rows keep their element/string capacity), so a long scan settles into
// zero-allocation steady state.

#ifndef QPROG_EXEC_ROW_BATCH_H_
#define QPROG_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "types/value.h"

namespace qprog {

class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// Per-node telemetry delta for one NextBatch call, filled by batch
  /// kernels when a TelemetryCollector is attached: `rows` produced at the
  /// node and `calls` emulated getnext invocations (the counts a
  /// tuple-at-a-time run would have recorded per-call, including the final
  /// end-of-stream call). Consumed by NextBatchInstrumented.
  struct NodeStats {
    int node = -1;
    uint64_t rows = 0;
    uint64_t calls = 0;
  };

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.resize(capacity_);
  }

  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  const Row& row(size_t i) const {
    QPROG_DCHECK(i < size_);
    return rows_[i];
  }

  /// Claims the next slot for writing; the caller must fully overwrite it
  /// (slots retain stale contents from previous batches by design).
  Row* AppendSlot() {
    QPROG_DCHECK(size_ < capacity_);
    return &rows_[size_++];
  }

  /// Releases the most recently claimed slot (the produce attempt failed).
  void PopLast() {
    QPROG_DCHECK(size_ > 0);
    --size_;
  }

  /// Empties the batch without releasing Row storage.
  void Clear() {
    size_ = 0;
    stats.clear();
  }

  /// Per-node telemetry deltas for the current batch (see NodeStats).
  std::vector<NodeStats> stats;

 private:
  std::vector<Row> rows_;
  size_t capacity_;
  size_t size_ = 0;
};

}  // namespace qprog

#endif  // QPROG_EXEC_ROW_BATCH_H_
