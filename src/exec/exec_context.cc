#include "exec/exec_context.h"

#include "common/strings.h"
#include "exec/fault_injector.h"

namespace qprog {

void ExecContext::OnWorkEvent(int node_id) {
  // Fire the observer once per crossed interval, with the scheduled crossing
  // point — a burst of counted rows cannot silently skip observations, and
  // successive next_observation_ values never drift off the interval grid.
  while (observer_ && !failed_ && work_ >= next_observation_) {
    uint64_t scheduled = next_observation_;
    next_observation_ += observation_interval_;
    observer_(scheduled);
  }
  // Guard checks piggyback on every event (observation or scheduled check),
  // so cancellation requested from an observer callback is honored before
  // another unit of work is counted.
  if (guard_ != nullptr) {
    if (!failed_) {
      Status violation = guard_->Check(work_);
      if (!violation.ok()) {
        if (telemetry_ != nullptr) {
          // Attributed to the node whose counted row crossed the threshold —
          // the operator that was driving the work when the guard tripped.
          telemetry_->RecordGuardTrip(node_id, work_,
                                      StatusCodeToString(violation.code()),
                                      violation.message());
        }
        RaiseError(std::move(violation));
      }
    }
    next_guard_check_ = work_ + guard_->check_interval();
  }
  RecomputeNextEvent();
}

bool ExecContext::ConsultFaultSlow(const char* site, int node_id) {
  Status fault = fault_injector_->OnHit(site);
  if (fault.ok()) return false;
  if (telemetry_ != nullptr) {
    telemetry_->RecordFault(node_id, work_, site, fault.message());
  }
  RaiseError(std::move(fault));
  return true;
}

bool ExecContext::ChargeBufferedRows(uint64_t n) {
  // Check-first: a failed charge leaves the account untouched, so operators
  // only ever release what they successfully charged.
  if (failed_) return false;
  if (guard_ != nullptr && buffered_rows_ + n > guard_->max_buffered_rows()) {
    RaiseError(qprog::ResourceExhausted(StringPrintf(
        "buffered-row budget exceeded (%llu buffered > %llu allowed)",
        static_cast<unsigned long long>(buffered_rows_ + n),
        static_cast<unsigned long long>(guard_->max_buffered_rows()))));
    return false;
  }
  buffered_rows_ += n;
  if (buffered_rows_ > peak_buffered_rows_) peak_buffered_rows_ = buffered_rows_;
  return true;
}

ChargeVerdict ExecContext::ChargeBufferedRowsOrSpill(uint64_t n) {
  if (failed_) return ChargeVerdict::kFailed;
  if (guard_ != nullptr && spill_manager_ != nullptr) {
    if (buffered_rows_ + n > guard_->max_buffered_rows_kill()) {
      RaiseError(qprog::ResourceExhausted(StringPrintf(
          "buffered-row kill threshold exceeded (%llu buffered > %llu "
          "allowed even with spilling)",
          static_cast<unsigned long long>(buffered_rows_ + n),
          static_cast<unsigned long long>(guard_->max_buffered_rows_kill()))));
      return ChargeVerdict::kFailed;
    }
    if (buffered_rows_ + n > guard_->max_buffered_rows()) {
      // Not charged: the operator spills instead of buffering these rows.
      return ChargeVerdict::kSpill;
    }
  }
  return ChargeBufferedRows(n) ? ChargeVerdict::kCharged
                               : ChargeVerdict::kFailed;
}

bool ExecContext::ChargeBufferedRowsPostSpill(uint64_t n) {
  if (failed_) return false;
  if (guard_ != nullptr &&
      buffered_rows_ + n > guard_->max_buffered_rows_kill()) {
    RaiseError(qprog::ResourceExhausted(StringPrintf(
        "spilled partition does not fit (%llu buffered > %llu kill "
        "threshold); input too skewed to process under this budget",
        static_cast<unsigned long long>(buffered_rows_ + n),
        static_cast<unsigned long long>(guard_->max_buffered_rows_kill()))));
    return false;
  }
  buffered_rows_ += n;
  if (buffered_rows_ > peak_buffered_rows_) peak_buffered_rows_ = buffered_rows_;
  return true;
}

}  // namespace qprog
