#include "exec/fault_injector.h"

#include <utility>

#include "common/strings.h"

namespace qprog {

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultInjector::Arm(FaultSpec spec) {
  if (spec.fault_class == FaultClass::kTransient &&
      spec.code == StatusCode::kInternal) {
    spec.code = StatusCode::kUnavailable;  // retryable by convention
  }
  SiteState& state = sites_[spec.site];
  state.spec = std::move(spec);
  state.armed = true;
  state.latched = false;
  state.failing_remaining = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

namespace {

Status FaultStatus(const FaultSpec& spec, const char* site, uint64_t hits) {
  std::string message =
      spec.message.empty()
          ? StringPrintf("injected fault at %s (hit %llu)", site,
                         static_cast<unsigned long long>(hits))
          : spec.message;
  return Status(spec.code, std::move(message));
}

}  // namespace

Status FaultInjector::OnHit(const char* site) {
  SiteState& state = sites_[site];
  ++state.hits;
  if (!state.armed) return OkStatus();
  const FaultSpec& spec = state.spec;
  if (spec.latency_spins > 0) {
    // Deterministic latency: a fixed busy-wait that slows the site down
    // without reading a clock (results and reports stay byte-identical).
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < spec.latency_spins; ++i) sink += i;
  }
  // A fired permanent fault latches: the site keeps failing until Disarm or
  // Reset. A transient fault keeps failing while its window is open, then
  // recovers (OnHit returns OK again).
  if (state.latched) return FaultStatus(spec, site, state.hits);
  if (state.failing_remaining > 0) {
    --state.failing_remaining;
    return FaultStatus(spec, site, state.hits);
  }
  bool fire = spec.fail_on_hit != 0 && state.hits == spec.fail_on_hit;
  if (!fire && spec.fail_probability > 0) {
    fire = rng_.Bernoulli(spec.fail_probability);
  }
  if (!fire) return OkStatus();
  if (spec.fault_class == FaultClass::kTransient) {
    // The trigger consumes the first failing hit of the window.
    state.failing_remaining =
        spec.transient_failures > 0 ? spec.transient_failures - 1 : 0;
  } else {
    state.latched = true;
  }
  return FaultStatus(spec, site, state.hits);
}

uint64_t FaultInjector::hit_count(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

void FaultInjector::Reset() {
  rng_ = Rng(seed_);
  for (auto& [site, state] : sites_) {
    state.hits = 0;
    state.latched = false;
    state.failing_remaining = 0;
  }
}

std::unique_ptr<FaultInjector> FaultInjector::Fork(uint64_t task_key) const {
  // Golden-ratio mix so nearby task keys (partition 0, 1, 2, ...) land on
  // well-separated seeds instead of correlated Bernoulli streams.
  uint64_t mixed = seed_ ^ (task_key * 0x9E3779B97F4A7C15ull);
  mixed ^= mixed >> 32;
  auto fork = std::make_unique<FaultInjector>(mixed);
  for (const auto& [site, state] : sites_) {
    if (state.armed) fork->Arm(state.spec);
  }
  return fork;
}

const std::vector<std::string>& FaultInjector::KnownSites() {
  static const std::vector<std::string>* kSites = new std::vector<std::string>{
      faults::kSeqScanOpen,       faults::kSeqScanNext,
      faults::kIndexSeekNext,     faults::kFilterNext,
      faults::kProjectNext,       faults::kLimitNext,
      faults::kNestedLoopsJoinNext,
      faults::kIndexNestedLoopsJoinNext,
      faults::kHashJoinOpen,      faults::kHashJoinBuild,
      faults::kHashJoinProbe,     faults::kMergeJoinNext,
      faults::kSortOpen,          faults::kSortBuild,
      faults::kHashAggregateBuild, faults::kStreamAggregateNext,
      faults::kExchangeSend,      faults::kExchangeRecv,
      faults::kSpillOpen,         faults::kSpillWrite,
      faults::kSpillRead,
  };
  return *kSites;
}

}  // namespace qprog
