#include "exec/worker_pool.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/strings.h"
#include "exec/query_guard.h"

namespace qprog {

// --------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

// --------------------------------------------------------------------------
// TaskGroup

TaskGroup::TaskGroup(WorkerPool* pool)
    : pool_(pool), sync_(std::make_shared<Sync>()) {}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(sync_->mu);
    ++sync_->pending;
  }
  pool_->Enqueue(
      [sync = sync_, fn = std::move(fn)] { RunTask(sync, fn); });
}

void TaskGroup::SubmitToLane(uint64_t lane, std::function<void()> fn) {
  std::function<void()> to_start;
  {
    std::lock_guard<std::mutex> lock(sync_->mu);
    ++sync_->pending;
    Lane& state = sync_->lanes[lane];
    if (state.running) {
      state.queued.push_back(std::move(fn));
      return;
    }
    state.running = true;
    to_start = std::move(fn);
  }
  StartLaneTask(pool_, sync_, lane, std::move(to_start));
}

void TaskGroup::StartLaneTask(WorkerPool* pool,
                              const std::shared_ptr<Sync>& sync, uint64_t lane,
                              std::function<void()> fn) {
  pool->Enqueue([pool, sync, lane, fn = std::move(fn)] {
    RunTask(sync, fn);
    // Promote the lane's next task, if any. Runs on the finishing worker and
    // only ever enqueues — never executes inline, never blocks — so lanes
    // make progress on any pool size without deadlock. The promoted task was
    // already in `pending`, so Wait() cannot return before it runs; `sync`
    // is co-owned, so this is safe even after the TaskGroup is gone.
    std::function<void()> next;
    {
      std::lock_guard<std::mutex> lock(sync->mu);
      Lane& state = sync->lanes[lane];
      if (state.queued.empty()) {
        state.running = false;
        return;
      }
      next = std::move(state.queued.front());
      state.queued.pop_front();
    }
    StartLaneTask(pool, sync, lane, std::move(next));
  });
}

void TaskGroup::RunTask(const std::shared_ptr<Sync>& sync,
                        const std::function<void()>& fn) {
  Status escaped;
  try {
    fn();
  } catch (const std::exception& e) {
    escaped = Internal(
        StringPrintf("exception escaped worker task: %s", e.what()));
  } catch (...) {
    escaped = Internal("unknown exception escaped worker task");
  }
  bool was_last;
  {
    std::lock_guard<std::mutex> lock(sync->mu);
    if (!escaped.ok() && sync->status.ok()) sync->status = std::move(escaped);
    was_last = --sync->pending == 0;
  }
  if (was_last) sync->done_cv.notify_all();
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(sync_->mu);
  sync_->done_cv.wait(lock, [this] { return sync_->pending == 0; });
  return sync_->status;
}

// --------------------------------------------------------------------------
// OrderedTaskBudget

bool OrderedTaskBudget::Admit(size_t part, uint64_t need,
                              const TaskContext* tc) {
  if (unlimited) return true;
  std::unique_lock<std::mutex> lock(mu);
  for (;;) {
    if (next_admit == part &&
        (in_use + need <= capacity || in_use == retained)) {
      in_use += need;
      ++next_admit;
      cv.notify_all();
      return true;
    }
    if (!tc->ok()) {
      // Keep the line moving so partitions behind a cancelled one do not
      // wait forever for a turn that will never be taken.
      if (next_admit == part) {
        ++next_admit;
        cv.notify_all();
      }
      return false;
    }
    cv.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void OrderedTaskBudget::Retain(uint64_t n) {
  if (unlimited || n == 0) return;
  std::lock_guard<std::mutex> lock(mu);
  uint64_t active = in_use - retained;
  retained += n < active ? n : active;
  cv.notify_all();
}

void OrderedTaskBudget::Release(uint64_t n) {
  if (unlimited || n == 0) return;
  std::lock_guard<std::mutex> lock(mu);
  uint64_t active = in_use - retained;
  in_use -= n < active ? n : active;
  cv.notify_all();
}

// --------------------------------------------------------------------------
// TaskContext

TaskContext::TaskContext(ExecContext* parent, uint64_t task_key)
    : parent_(parent),
      guard_(parent->guard()),
      base_buffered_rows_(parent->buffered_rows()) {
  if (parent->fault_injector() != nullptr) {
    injector_ = parent->fault_injector()->Fork(task_key);
  }
}

bool TaskContext::ok() const {
  if (failed_ || !parent_->ok()) return false;
  return guard_ == nullptr || !guard_->cancel_requested();
}

void TaskContext::RaiseError(Status status) {
  QPROG_DCHECK(!status.ok());
  if (!failed_) {
    status_ = std::move(status);
    failed_ = true;
  }
}

void TaskContext::AddSpillWork(int node, uint64_t n) {
  // Coalesce runs of spill work at the same node: the fold's batched
  // AddSpillWork fires the same observer checkpoints (once per crossed
  // interval, at the scheduled point) as n unit-sized calls would.
  if (!ops_.empty() && ops_.back().kind == Op::kSpillWork &&
      ops_.back().node == node) {
    ops_.back().count += n;
    return;
  }
  ops_.push_back(Op{Op::kSpillWork, node, n, 0, nullptr, std::string()});
}

void TaskContext::OnSpillEnd(int node, const std::string& phase, uint64_t rows,
                             uint64_t bytes) {
  ops_.push_back(Op{Op::kSpillEnd, node, rows, bytes, nullptr, phase});
}

void TaskContext::OnSpillRead(int node, uint64_t rows) {
  if (!ops_.empty() && ops_.back().kind == Op::kSpillRead &&
      ops_.back().node == node) {
    ops_.back().count += rows;
    return;
  }
  ops_.push_back(Op{Op::kSpillRead, node, rows, 0, nullptr, std::string()});
}

void TaskContext::OnIoRetry(int node, const char* site, uint64_t attempt) {
  ops_.push_back(Op{Op::kIoRetry, node, attempt, 0, site, std::string()});
}

void TaskContext::OnIoFault(int node, const char* site,
                            const std::string& message) {
  ops_.push_back(Op{Op::kIoFault, node, 0, 0, site, message});
}

bool TaskContext::ChargeBufferedRowsPostSpill(uint64_t n) {
  if (!ok()) return false;
  if (guard_ != nullptr && base_buffered_rows_ + buffered_rows_ + n >
                               guard_->max_buffered_rows_kill()) {
    RaiseError(qprog::ResourceExhausted(StringPrintf(
        "spilled partition does not fit (%llu buffered > %llu kill "
        "threshold); input too skewed to process under this budget",
        static_cast<unsigned long long>(base_buffered_rows_ + buffered_rows_ +
                                        n),
        static_cast<unsigned long long>(guard_->max_buffered_rows_kill()))));
    return false;
  }
  buffered_rows_ += n;
  return true;
}

void TaskContext::FoldInto(ExecContext* ctx) {
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::kSpillWork:
        ctx->AddSpillWork(op.node, op.count);
        break;
      case Op::kSpillEnd:
        ctx->OnSpillEnd(op.node, op.text, op.count, op.bytes);
        break;
      case Op::kSpillRead:
        ctx->OnSpillRead(op.node, op.count);
        break;
      case Op::kIoRetry:
        ctx->OnIoRetry(op.node, op.site, op.count);
        break;
      case Op::kIoFault:
        ctx->OnIoFault(op.node, op.site, op.text);
        break;
    }
  }
  ops_.clear();
  if (failed_) ctx->RaiseError(std::move(status_));
}

}  // namespace qprog
