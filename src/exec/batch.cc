#include "exec/batch.h"

#include <utility>

#include "exec/fault_injector.h"
#include "exec/filter_project.h"
#include "exec/scan.h"
#include "expr/expr.h"

namespace qprog {

namespace {

/// Recognizes `column <op> literal` with a non-null literal. A NULL literal
/// (or any other shape) stays on the generic Eval path: the fast form below
/// assumes the right side never nulls out the comparison. The returned
/// literal pointer borrows from the operator-owned expression tree, which
/// outlives the chain.
bool MatchFastPred(const Expr* e, size_t* col, CompareOp* op,
                   const Value** lit) {
  if (e == nullptr || e->kind() != ExprKind::kCompare) return false;
  const auto* cmp = static_cast<const CompareExpr*>(e);
  if (cmp->left()->kind() != ExprKind::kColumnRef ||
      cmp->right()->kind() != ExprKind::kLiteral) {
    return false;
  }
  const Value& v = static_cast<const LiteralExpr*>(cmp->right())->value();
  if (v.is_null()) return false;
  *col = static_cast<const ColumnRefExpr*>(cmp->left())->index();
  *op = cmp->op();
  *lit = &v;
  return true;
}

}  // namespace

FusedChain::FusedChain(SeqScan* scan, std::vector<Level> levels)
    : scan_(scan), levels_(std::move(levels)) {
  scan_fast_pred_ = MatchFastPred(scan_->predicate_.get(), &scan_pred_col_,
                                  &scan_pred_op_, &scan_pred_lit_);
}

std::unique_ptr<FusedChain> FusedChain::TryBuild(PhysicalOperator* top) {
  std::vector<Level> levels;
  PhysicalOperator* op = top;
  for (;;) {
    OpKind k = op->kind();
    if (k == OpKind::kSeqScan) {
      return std::unique_ptr<FusedChain>(
          new FusedChain(static_cast<SeqScan*>(op), std::move(levels)));
    }
    if (k != OpKind::kFilter && k != OpKind::kProject && k != OpKind::kLimit) {
      return nullptr;
    }
    Level level;
    level.op = op;
    level.kind = k;
    if (k == OpKind::kFilter) {
      Filter* f = static_cast<Filter*>(op);
      level.fast_pred = MatchFastPred(f->predicate_.get(), &level.pred_col,
                                      &level.pred_op, &level.pred_lit);
    } else if (k == OpKind::kProject) {
      Project* p = static_cast<Project*>(op);
      level.fast_proj = true;
      for (const ExprPtr& e : p->exprs_) {
        if (e->kind() != ExprKind::kColumnRef) {
          level.fast_proj = false;
          level.proj_cols.clear();
          break;
        }
        level.proj_cols.push_back(
            static_cast<const ColumnRefExpr*>(e.get())->index());
      }
    }
    levels.push_back(std::move(level));
    op = op->child(0);
  }
}

int FusedChain::Produce(ExecContext* ctx, size_t depth, const Row** src,
                        Row* top_dst) {
  if (depth == levels_.size()) {
    // -- leaf: SeqScan::DoNext, minus the copy into *out -----------------
    ++scan_calls_;
    if (!ctx->ok() ||
        ctx->ConsultFault(faults::kSeqScanNext, scan_->node_id())) {
      return -1;
    }
    while (scan_->cursor_ < scan_->end_) {
      const Row& row = scan_->table_->row(scan_->cursor_++);
      ctx->CountRow(scan_->node_id(), scan_->is_root());
      if (!ctx->ok()) return -1;  // guard tripped while counting
      if (scan_->predicate_ != nullptr) {
        if (scan_fast_pred_) {
          const Value& l = row[scan_pred_col_];
          if (l.is_null() ||
              !EvalCompareOp(scan_pred_op_, l.Compare(*scan_pred_lit_))) {
            continue;
          }
        } else {
          Value keep = scan_->predicate_->Eval(row);
          if (keep.is_null() || !keep.bool_value()) continue;
        }
      }
      ++scan_->emitted_;
      ++scan_rows_;
      *src = &row;
      return 1;
    }
    scan_->finished_ = true;
    return 0;
  }

  Level& level = levels_[depth];
  ++level.calls;
  switch (level.kind) {
    case OpKind::kFilter: {
      Filter* f = static_cast<Filter*>(level.op);
      if (!ctx->ok() || ctx->ConsultFault(faults::kFilterNext, f->node_id())) {
        return -1;
      }
      for (;;) {
        const Row* child_src = nullptr;
        int r = Produce(ctx, depth + 1, &child_src, top_dst);
        if (r < 0) return -1;
        if (r == 0) {
          f->finished_ = true;
          return 0;
        }
        bool keep_row;
        if (level.fast_pred) {
          const Value& l = (*child_src)[level.pred_col];
          keep_row = !l.is_null() &&
                     EvalCompareOp(level.pred_op, l.Compare(*level.pred_lit));
        } else {
          Value keep = f->predicate_->Eval(*child_src);
          keep_row = !keep.is_null() && keep.bool_value();
        }
        if (keep_row) {
          *src = child_src;
          ++level.rows;
          ctx->CountRow(f->node_id(), f->is_root());
          return 1;
        }
        // Rejected: pull the child again, within this same emulated call —
        // exactly the tuple Filter's inner while loop.
      }
    }
    case OpKind::kProject: {
      Project* p = static_cast<Project*>(level.op);
      if (!ctx->ok() || ctx->ConsultFault(faults::kProjectNext, p->node_id())) {
        return -1;
      }
      // This Project consumes the batch slot (if one reached it through the
      // pass-through levels above); deeper Projects fall back to their level
      // scratch, so no two materializations ever alias.
      const Row* child_src = nullptr;
      int r = Produce(ctx, depth + 1, &child_src, nullptr);
      if (r < 0) return -1;
      if (r == 0) {
        p->finished_ = true;
        return 0;
      }
      Row* dst = top_dst != nullptr ? top_dst : &level.scratch;
      dst->clear();
      dst->reserve(p->exprs_.size());
      if (level.fast_proj) {
        for (size_t c : level.proj_cols) dst->push_back((*child_src)[c]);
      } else {
        for (const ExprPtr& e : p->exprs_) dst->push_back(e->Eval(*child_src));
      }
      *src = dst;
      ++level.rows;
      ctx->CountRow(p->node_id(), p->is_root());
      return 1;
    }
    case OpKind::kLimit: {
      Limit* l = static_cast<Limit*>(level.op);
      if (!ctx->ok() || ctx->ConsultFault(faults::kLimitNext, l->node_id())) {
        return -1;
      }
      if (l->produced_ >= l->limit_) {
        l->finished_ = true;
        return 0;
      }
      int r = Produce(ctx, depth + 1, src, top_dst);
      if (r < 0) return -1;
      if (r == 0) {
        l->finished_ = true;
        return 0;
      }
      ++l->produced_;
      ++level.rows;
      ctx->CountRow(l->node_id(), l->is_root());
      return 1;
    }
    default:
      break;
  }
  QPROG_CHECK_MSG(false, "unreachable: non-chain kind in FusedChain");
  return -1;
}

bool FusedChain::Fill(ExecContext* ctx, RowBatch* out) {
  const bool record = ctx->telemetry() != nullptr;
  while (!out->full()) {
    // The loop-top ok() check mirrors the tuple driver's
    // `while (ctx->ok() && root->Next(...))`: a row produced concurrently
    // with a guard trip stays in the batch (the tuple driver delivers it
    // too), and no further getnext is emulated once the run has failed.
    if (!ctx->ok()) {
      FlushStats(out, record);
      return false;
    }
    Row* slot = out->AppendSlot();
    const Row* src = nullptr;
    int r = Produce(ctx, 0, &src, slot);
    if (r != 1) {
      out->PopLast();
      FlushStats(out, record);
      return false;
    }
    if (src != slot) *slot = *src;
  }
  FlushStats(out, record);
  return true;
}

bool FusedChain::ProduceOne(ExecContext* ctx, Row* out) {
  const Row* src = nullptr;
  int r = Produce(ctx, 0, &src, out);
  if (r != 1) return false;
  if (src != out) *out = *src;
  return true;
}

void FusedChain::FlushStats(RowBatch* out, bool record) {
  for (Level& level : levels_) {
    if (record && (level.calls > 0 || level.rows > 0)) {
      out->stats.push_back({level.op->node_id(), level.rows, level.calls});
    }
    level.rows = 0;
    level.calls = 0;
  }
  if (record && (scan_calls_ > 0 || scan_rows_ > 0)) {
    out->stats.push_back({scan_->node_id(), scan_rows_, scan_calls_});
  }
  scan_rows_ = 0;
  scan_calls_ = 0;
}

}  // namespace qprog
