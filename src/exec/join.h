// Join operators: nested loops (⋈NL), index nested loops (⋈INL), hash
// (⋈hash) and merge (⋈merge) — the paper's operator set (Section 2.1).
//
// Conventions shared by all joins here:
//  * child(0) is the *preserved / streamed* side ("left"): the outer input
//    for NL/INL, the probe input for hash join. child(1) is the inner /
//    build input.  (For HashJoin the build child is still *executed* first.)
//  * Output schema is left ++ right for inner/outer joins and just the left
//    schema for semi/anti joins.
//  * NULL join keys never match (SQL equi-join semantics).

#ifndef QPROG_EXEC_JOIN_H_
#define QPROG_EXEC_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/scan.h"
#include "exec/spill.h"
#include "expr/expr.h"

namespace qprog {

class TaskContext;
class WorkerPool;
struct OrderedTaskBudget;

enum class JoinType {
  kInner,
  kLeftOuter,  // left (streamed) side preserved
  kLeftSemi,
  kLeftAnti,
};

const char* JoinTypeToString(JoinType type);

/// ⋈NL: re-opens the inner child for every outer row; arbitrary predicate.
class NestedLoopsJoin : public PhysicalOperator {
 public:
  /// `predicate` is evaluated over the concatenated (outer ++ inner) row;
  /// nullptr means cross product.
  NestedLoopsJoin(OperatorPtr outer, OperatorPtr inner, ExprPtr predicate,
                  JoinType join_type = JoinType::kInner);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kNestedLoopsJoin; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 2; }
  PhysicalOperator* child(size_t i) override {
    return i == 0 ? outer_.get() : inner_.get();
  }
  std::string label() const override;

  JoinType join_type() const { return join_type_; }

 private:
  bool AdvanceOuter(ExecContext* ctx);

  OperatorPtr outer_;
  OperatorPtr inner_;
  ExprPtr predicate_;
  JoinType join_type_;
  Schema schema_;

  Row outer_row_;
  bool outer_valid_ = false;
  bool outer_matched_ = false;
};

/// ⋈INL: for each outer row, rebinds an IndexSeek on the join key. The
/// IndexSeek is a real plan node — its rows are getnext calls, exactly the
/// accounting in the paper's Examples 1 and 2.
class IndexNestedLoopsJoin : public PhysicalOperator {
 public:
  /// `outer_key` is evaluated on outer rows to produce the seek key.
  /// `residual` (optional) is evaluated over (outer ++ inner).
  IndexNestedLoopsJoin(OperatorPtr outer, std::unique_ptr<IndexSeek> inner,
                       ExprPtr outer_key, JoinType join_type = JoinType::kInner,
                       ExprPtr residual = nullptr);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kIndexNestedLoopsJoin; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 2; }
  PhysicalOperator* child(size_t i) override {
    return i == 0 ? outer_.get() : static_cast<PhysicalOperator*>(inner_.get());
  }
  std::string label() const override;

  JoinType join_type() const { return join_type_; }

 private:
  bool AdvanceOuter(ExecContext* ctx);

  OperatorPtr outer_;
  std::unique_ptr<IndexSeek> inner_;
  ExprPtr outer_key_;
  JoinType join_type_;
  ExprPtr residual_;
  Schema schema_;

  Row outer_row_;
  bool outer_valid_ = false;
  bool outer_matched_ = false;
};

/// ⋈hash: blocking build over child(1), streaming probe over child(0).
///
/// Memory-adaptive (Grace hash join): when the build table would exceed the
/// guard's soft budget and a SpillManager is attached, both inputs are hash-
/// partitioned to spill runs by join key and the join runs partition by
/// partition, rebuilding a table that is ~1/kSpillFanout the size.
/// Partitioning is *recursive*: a build partition that still exceeds the
/// guard's kill headroom after one fanout-kSpillFanout pass is re-partitioned
/// with a fresh per-level hash salt (both sides, on the query thread, so run
/// identity stays deterministic), down to kMaxGraceDepth levels. The join
/// then runs over the flattened leaf list in depth-first order. Only a
/// partition whose rows all share one key/hash (no salt can spread it) or
/// one still oversized at the depth cap aborts with kResourceExhausted.
///
/// Parallel (DESIGN.md §10): with a WorkerPool attached, the Grace path
/// fans out twice. Partition writes go through a PartitionWriter that
/// batches rows per partition and appends each batch on a worker, one lane
/// per partition so a run's writes stay ordered without locks. Then the
/// kSpillFanout partition pairs are joined concurrently — each task owns
/// its partition's build table and spill reads — and the query thread folds
/// results in partition order, so output rows match the serial replay
/// byte-for-byte at every pool size. Under a finite kill threshold the
/// concurrent joins share one buffered-row budget (ordered all-or-nothing
/// admission per partition) and bound their in-memory output to a fixed
/// per-partition allowance, overflowing the rest to unaccounted side runs —
/// aggregate memory honors the guard's contract just like the serial replay.
class HashJoin : public PhysicalOperator {
 public:
  /// Equi-join on `probe_keys` (over probe rows) == `build_keys` (over build
  /// rows); `residual` (optional) is evaluated over (probe ++ build).
  HashJoin(OperatorPtr probe, OperatorPtr build,
           std::vector<ExprPtr> probe_keys, std::vector<ExprPtr> build_keys,
           JoinType join_type = JoinType::kInner, ExprPtr residual = nullptr);
  ~HashJoin() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  /// Batched probe/output side: the generic adapter loop over DoNext, with
  /// in-memory probe pulls routed through a fused kernel over the probe
  /// subtree when it fuses (Filter/Project/Limit over SeqScan). The blocking
  /// build phase and every spill path are untouched.
  bool DoNextBatch(ExecContext* ctx, RowBatch* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kHashJoin; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 2; }
  PhysicalOperator* child(size_t i) override {
    return i == 0 ? probe_.get() : build_.get();
  }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  JoinType join_type() const { return join_type_; }

  /// True once this execution degraded to Grace partitioning.
  bool spilled() const { return spilled_; }

  static constexpr int kSpillFanout = 8;
  /// Deepest Grace re-partitioning level. A partition still exceeding the
  /// kill headroom after kMaxGraceDepth re-salted passes aborts cleanly with
  /// kResourceExhausted instead of partitioning forever.
  static constexpr int kMaxGraceDepth = 4;

 private:
  /// Batches Grace partition writes into worker tasks, one lane per
  /// partition (defined in join.cc; pool-backed executions only).
  class PartitionWriter;
  /// One parallel partition join's results, filled by a worker task. Output
  /// rows up to the budget's allowance stay in `rows`; the remainder
  /// overflows to an unaccounted side run so a high-multiplicity join's
  /// output never breaks the bounded-memory contract.
  /// One leaf of the (possibly recursive) Grace partition tree: a sealed
  /// build/probe run pair ready to be joined. `depth` is the number of
  /// re-partitioning passes that produced it (0 = first pass); `path` packs
  /// the child index chosen at each level, 3 bits per level, level 0 lowest —
  /// together they identify the leaf in the worker-pool task key, so forked
  /// fault schedules and fold order stay data-derived under recursion.
  struct GraceLeaf {
    SpillRunPtr build;
    SpillRunPtr probe;
    int depth = 0;
    uint64_t path = 0;
  };
  struct PartitionJoinOut {
    size_t part = 0;          // leaf index (== admission order)
    uint64_t reserved = 0;    // budget rows held while the task runs
    std::vector<Row> rows;    // in-memory output prefix (<= allowance)
    SpillRunPtr overflow;     // output beyond the allowance, if any
    bool overflow_open = false;
    uint64_t charged_rows = 0;  // prefix rows charged to the plan account
    uint64_t max_bucket = 0;
  };

  void BuildTable(ExecContext* ctx);
  bool AdvanceProbe(ExecContext* ctx);
  /// Evaluates `keys` over `row`; sets *has_null when any key value is NULL.
  Row KeyOf(const Row& row, const std::vector<ExprPtr>& keys,
            bool* has_null) const;
  /// Dumps the in-memory build table into kSpillFanout partition runs and
  /// switches to Grace mode.
  bool SpillBuildTable(ExecContext* ctx, PartitionWriter* writer);
  /// Creates all kSpillFanout runs in `parts` if none exist yet.
  bool EnsureRuns(ExecContext* ctx, std::vector<SpillRunPtr>* parts,
                  const char* phase);
  /// Routes `row` to its hash partition: directly into the run when `writer`
  /// is null (serial path), else buffered through the writer.
  bool AppendToPartition(ExecContext* ctx, std::vector<SpillRunPtr>* parts,
                         const char* phase, const Row& key, const Row& row,
                         PartitionWriter* writer);
  /// Drains the probe child into probe partition runs (Grace mode only).
  void PartitionProbe(ExecContext* ctx);
  /// Flattens the first-pass partition pairs into grace_leaves_, recursively
  /// re-partitioning any build partition that exceeds the guard's kill
  /// headroom (query thread only; see the class comment). Returns ctx->ok().
  bool RefinePartitions(ExecContext* ctx);
  /// Recursion step of RefinePartitions: either accepts (build, probe) as a
  /// leaf or redistributes both runs into kSpillFanout children under the
  /// next level's salt and recurses. `capacity` is the kill headroom in rows
  /// (QueryGuard::kNoLimit disables refinement).
  bool RefineOne(ExecContext* ctx, SpillRunPtr build, SpillRunPtr probe,
                 int depth, uint64_t path, uint64_t capacity);
  /// Joins all grace_leaves_ pairs on the pool, folding results
  /// into par_outs_ in leaf order. Returns ctx->ok().
  bool ParallelJoinPartitions(ExecContext* ctx, WorkerPool* pool);
  /// Worker-side body of one partition join: admits `out->part` against the
  /// shared budget, rebuilds the partition's table from `build_run`, probes
  /// it with `probe_run`, collects output in `out` (overflowing to a side
  /// run past the budget's allowance), and releases the unretained budget.
  void JoinPartitionTask(TaskContext* tc, SpillRun* build_run,
                         SpillRun* probe_run, SpillManager* spill,
                         OrderedTaskBudget* budget,
                         PartitionJoinOut* out) const;
  /// Streams the next parallel-join output row: each partition's in-memory
  /// prefix, then its overflow side run, releasing the partition's charge as
  /// it drains. Returns false at end of output or on error.
  bool NextParallelOutput(ExecContext* ctx, Row* out);
  /// Rebuilds the hash table from grace_leaves_[part_idx_].build and rewinds
  /// the matching probe run.
  bool LoadPartition(ExecContext* ctx);
  void UnloadPartition(ExecContext* ctx);
  /// Next probe row: the probe child in memory mode, the current probe
  /// partition in Grace mode.
  bool PullProbe(ExecContext* ctx, Row* row);

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<ExprPtr> probe_keys_;
  std::vector<ExprPtr> build_keys_;
  JoinType join_type_;
  ExprPtr residual_;
  Schema schema_;

  bool build_done_ = false;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> table_;
  uint64_t build_rows_ = 0;
  uint64_t max_bucket_ = 0;
  uint64_t charged_ = 0;  // rows charged to the context's buffer budget

  Row probe_row_;
  bool probe_valid_ = false;
  bool probe_matched_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;

  // Grace-mode state (unused until the build overflows the soft budget).
  // The row counters are query-thread-only: worker tasks report theirs
  // through the fold, so FillProgressState never reads a SpillRun that a
  // task may own (see exec_context.h's threading contract).
  bool spilled_ = false;
  bool probe_partitioned_ = false;
  std::vector<SpillRunPtr> build_parts_;
  std::vector<SpillRunPtr> probe_parts_;
  // Flattened partition-tree leaves (filled by RefinePartitions; the replay
  // loops — serial and parallel — iterate these, not build_parts_).
  std::vector<GraceLeaf> grace_leaves_;
  int part_idx_ = 0;
  bool part_loaded_ = false;
  uint64_t grace_rows_written_ = 0;  // rows appended to partition runs,
                                     // at every recursion level

  // Batched-probe state: a fused kernel over the probe subtree, used by
  // PullProbe only while a NextBatch call is on the stack (batch_active_)
  // and only in memory mode — Grace partition reads stay per-row.
  std::unique_ptr<FusedChain> fused_probe_;
  bool fused_probe_checked_ = false;
  bool batch_active_ = false;

  // Parallel-join state: per-partition outputs of ParallelJoinPartitions,
  // drained by DoNext in partition order (matches the serial replay order) —
  // in-memory prefix first, then the partition's overflow side run.
  bool parallel_joined_ = false;
  std::vector<PartitionJoinOut> par_outs_;
  size_t par_part_ = 0;  // partition currently draining
  size_t par_pos_ = 0;   // next row within that partition's prefix
};

/// ⋈merge: inner equi-join over inputs sorted ascending on the key
/// expressions. Buffers each right-side key group to handle duplicates.
class MergeJoin : public PhysicalOperator {
 public:
  MergeJoin(OperatorPtr left, OperatorPtr right, std::vector<ExprPtr> left_keys,
            std::vector<ExprPtr> right_keys);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kMergeJoin; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 2; }
  PhysicalOperator* child(size_t i) override {
    return i == 0 ? left_.get() : right_.get();
  }
  std::string label() const override;

 private:
  Row KeyOf(const Row& row, const std::vector<ExprPtr>& keys) const;
  bool PullLeft(ExecContext* ctx);
  bool PullRight(ExecContext* ctx);
  static bool KeyHasNull(const Row& key);
  static int CompareKeys(const Row& a, const Row& b);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  Schema schema_;

  Row left_row_, right_row_;
  Row left_key_, right_key_;
  bool left_valid_ = false, right_valid_ = false;

  std::vector<Row> group_;
  Row group_key_;
  bool group_active_ = false;
  size_t group_pos_ = 0;
  uint64_t charged_ = 0;  // buffered group rows charged to the budget
};

}  // namespace qprog

#endif  // QPROG_EXEC_JOIN_H_
