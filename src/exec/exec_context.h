// ExecContext: per-execution state, most importantly the getnext counters
// that define the paper's model of work (Section 2.2).
//
// Work is the number of getnext calls issued by operators *inside* the plan
// tree to their children — equivalently, the number of rows produced by every
// non-root operator. (The root's rows are returned to the consumer outside
// the tree and do not count; this is the accounting that makes the paper's
// Example 2 total come out to 100,000 + 1 + 10,000 = 110,001.)

#ifndef QPROG_EXEC_EXEC_CONTEXT_H_
#define QPROG_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"

namespace qprog {

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Prepares counters for a plan with `num_nodes` operators.
  void Reset(size_t num_nodes) {
    rows_produced_.assign(num_nodes, 0);
    work_ = 0;
    next_observation_ = observation_interval_;
  }

  /// Called by an operator each time it returns a row.
  void CountRow(int node_id, bool is_root) {
    QPROG_DCHECK(node_id >= 0 &&
                 static_cast<size_t>(node_id) < rows_produced_.size());
    ++rows_produced_[static_cast<size_t>(node_id)];
    if (!is_root) {
      ++work_;
      if (observer_ && work_ >= next_observation_) {
        next_observation_ = work_ + observation_interval_;
        observer_(work_);
      }
    }
  }

  /// Rows produced so far by operator `node_id`.
  uint64_t rows_produced(int node_id) const {
    return rows_produced_[static_cast<size_t>(node_id)];
  }

  /// Total counted getnext calls so far (Curr in the paper's notation).
  uint64_t work() const { return work_; }

  /// Installs a callback fired (approximately) every `interval` units of
  /// work. Used by the ProgressMonitor to take estimator checkpoints.
  void SetWorkObserver(uint64_t interval,
                       std::function<void(uint64_t)> observer) {
    QPROG_CHECK(interval > 0);
    observation_interval_ = interval;
    next_observation_ = interval;
    observer_ = std::move(observer);
  }

  void ClearWorkObserver() {
    observer_ = nullptr;
    observation_interval_ = 0;
  }

 private:
  std::vector<uint64_t> rows_produced_;
  uint64_t work_ = 0;
  uint64_t observation_interval_ = 0;
  uint64_t next_observation_ = 0;
  std::function<void(uint64_t)> observer_;
};

}  // namespace qprog

#endif  // QPROG_EXEC_EXEC_CONTEXT_H_
