// ExecContext: per-execution state, most importantly the getnext counters
// that define the paper's model of work (Section 2.2).
//
// Work is the number of getnext calls issued by operators *inside* the plan
// tree to their children — equivalently, the number of rows produced by every
// non-root operator. (The root's rows are returned to the consumer outside
// the tree and do not count; this is the accounting that makes the paper's
// Example 2 total come out to 100,000 + 1 + 10,000 = 110,001.)
//
// The context is also the execution's error channel and guardrail hook:
//  * A sticky `Status` records the first failure (an injected fault, a guard
//    violation, an operator error). Operators treat `!ctx->ok()` as an
//    immediate stop signal: Next() returns false without doing end-of-stream
//    work, so the error cascades cleanly to the plan driver.
//  * An optional QueryGuard (borrowed) is checked on the CountRow hot path at
//    an amortized interval — the fast path stays a single branch against
//    `next_event_`, which folds together the next observation point, the
//    next guard check and the work-budget trip point.
//  * An optional FaultInjector (borrowed) is consulted by operators at named
//    sites via ConsultFault().
//
// ---------------------------------------------------------------------------
// Threading and memory-ordering contract (intra-query parallelism)
//
// With a WorkerPool attached (set_worker_pool), spill-heavy operators run
// tasks on pool threads. The counter model is *sharded-then-folded*, never
// concurrent:
//
//  * `rows_produced_`, `spill_work_`, `work_`, `buffered_rows_`, `status_`,
//    the observer and the guard-check schedule are owned by the query thread
//    (the thread driving Open/Next/Close). Worker tasks NEVER touch them.
//    A task accumulates its spill work, telemetry events and errors in its
//    own TaskContext shard (exec/worker_pool.h); the query thread folds each
//    shard into this context at the task barrier, in task submission order.
//    Folding happens-after task completion via the pool's queue mutex, so no
//    synchronization beyond that is needed — and because fold order is
//    submission order, total(Q), every checkpoint and the whole trace are
//    byte-identical at every thread count.
//  * The ProgressMonitor's observer runs inside CountRow/AddSpillWork on the
//    query thread, so it always sees a consistent (Curr, LB, UB) snapshot:
//    there is no moment where a checkpoint can observe counters mid-update.
//  * `failed_` is the one flag worker tasks read (via TaskContext::ok(), to
//    stop early when the query dies under them); it is therefore an atomic.
//    It is only ever *written* by the query thread; relaxed ordering
//    suffices because tasks use it purely as a stop hint — correctness comes
//    from the fold, not from when a task notices.
//  * QueryGuard::RequestCancel / cancel_requested are atomic by design and
//    are polled by tasks directly for cooperative cancellation.
//
// The upshot: the "is this racy?" question for any counter is answered by
// who may call the method — everything except failed_ and the guard's cancel
// token is query-thread-only, and the TSan CI job enforces it.

#ifndef QPROG_EXEC_EXEC_CONTEXT_H_
#define QPROG_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "exec/query_guard.h"
#include "exec/work_context.h"
#include "obs/telemetry.h"

namespace qprog {

class FaultInjector;
class SpillManager;
class WorkerPool;

/// Outcome of a buffered-row charge against a context with an (optional)
/// spill manager attached — see ChargeBufferedRowsOrSpill.
enum class ChargeVerdict {
  kCharged,  // rows charged; keep buffering in memory
  kSpill,    // rows NOT charged; the soft budget is full — spill instead
  kFailed,   // sticky error raised (kill threshold, hard budget, or cascade)
};

class ExecContext final : public WorkContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Prepares counters for a plan with `num_nodes` operators and clears any
  /// sticky error from a previous execution. Guard and fault-injector wiring
  /// persists across Reset (they describe the query, not one run).
  void Reset(size_t num_nodes) {
    rows_produced_.assign(num_nodes, 0);
    spill_work_.assign(num_nodes, 0);
    work_ = 0;
    buffered_rows_ = 0;
    peak_buffered_rows_ = 0;
    failed_.store(false, std::memory_order_relaxed);
    status_ = OkStatus();
    next_observation_ = observer_ ? observation_interval_ : kNever;
    next_guard_check_ = guard_ ? guard_->check_interval() : kNever;
    RecomputeNextEvent();
    if (telemetry_ != nullptr) telemetry_->OnExecReset(num_nodes);
  }

  /// Called by an operator each time it returns a row. Fast path: one
  /// increment and one branch; observation and guard checks run out of line
  /// when `work_` crosses the next scheduled event. Query thread only.
  void CountRow(int node_id, bool is_root) {
    QPROG_DCHECK(node_id >= 0 &&
                 static_cast<size_t>(node_id) < rows_produced_.size());
    ++rows_produced_[static_cast<size_t>(node_id)];
    if (!is_root) {
      ++work_;
      if (work_ >= next_event_) OnWorkEvent(node_id);
    }
  }

  /// Batched CountRow: counts `n` rows at once (future vectorized operators).
  /// A burst that crosses several observation intervals fires the observer
  /// once per crossed interval, each time with the scheduled crossing point.
  void CountRows(int node_id, uint64_t n, bool is_root) {
    QPROG_DCHECK(node_id >= 0 &&
                 static_cast<size_t>(node_id) < rows_produced_.size());
    rows_produced_[static_cast<size_t>(node_id)] += n;
    if (!is_root) {
      work_ += n;
      if (work_ >= next_event_) OnWorkEvent(node_id);
    }
  }

  /// Rows produced so far by operator `node_id`.
  uint64_t rows_produced(int node_id) const {
    return rows_produced_[static_cast<size_t>(node_id)];
  }

  /// Total counted work so far (Curr in the paper's notation): getnext calls
  /// plus spill I/O passes (each spilled row written or re-read is one unit —
  /// the paper's dynamic-total(Q) semantics for operators that repartition).
  uint64_t work() const { return work_; }

  /// Counts `n` units of spill I/O work at `node_id` (rows written to or
  /// re-read from a spill run). Unlike CountRow, spill work counts at every
  /// node including the root: a spilling root sort really does extra passes.
  /// Query thread only — worker tasks log spill work into their TaskContext
  /// shard, which replays through here at the fold.
  void AddSpillWork(int node_id, uint64_t n) override {
    QPROG_DCHECK(node_id >= 0 &&
                 static_cast<size_t>(node_id) < spill_work_.size());
    spill_work_[static_cast<size_t>(node_id)] += n;
    work_ += n;
    if (work_ >= next_event_) OnWorkEvent(node_id);
  }

  /// Spill work units counted at `node_id` so far.
  uint64_t spill_work(int node_id) const {
    return spill_work_[static_cast<size_t>(node_id)];
  }

  /// Plan-wide spill work (the amount by which total(Q) has been revised
  /// upward so far by spill passes). Query thread only, like every counter
  /// read: the monitor's observer — the only concurrent-looking reader —
  /// actually runs synchronously inside CountRow/AddSpillWork.
  uint64_t total_spill_work() const {
    uint64_t sum = 0;
    for (uint64_t w : spill_work_) sum += w;
    return sum;
  }

  // -- error channel ----------------------------------------------------------

  /// True while no execution error has been recorded. Safe to call from any
  /// thread (worker tasks poll it as a stop hint); see the contract above.
  bool ok() const override { return !failed_.load(std::memory_order_relaxed); }

  /// The sticky execution status; OK until the first RaiseError. Query
  /// thread only (the value a task sees mid-flight could be torn).
  const Status& status() const { return status_; }

  /// Records an execution error. The first error wins; later ones (usually
  /// cascade noise from operators shutting down) are dropped. Query thread
  /// only — a worker task raises on its TaskContext and the fold brings the
  /// error here.
  void RaiseError(Status status) override {
    QPROG_DCHECK(!status.ok());
    if (!failed_.load(std::memory_order_relaxed)) {
      status_ = std::move(status);
      failed_.store(true, std::memory_order_release);
    }
  }

  // -- guardrails -------------------------------------------------------------

  /// Installs a resource guard (borrowed; may be null to remove). Checked at
  /// an amortized interval on the CountRow path and at every observation.
  void set_guard(QueryGuard* guard) {
    guard_ = guard;
    next_guard_check_ = guard_ ? guard_->check_interval() : kNever;
    RecomputeNextEvent();
  }
  QueryGuard* guard() const { return guard_; }

  /// Installs a fault injector (borrowed; may be null to remove).
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }
  FaultInjector* io_fault_injector() const override { return fault_injector_; }

  /// Consults the fault injector (if any) at a named site. Returns true when
  /// a fault fired — the fault's Status has been recorded as the execution
  /// error and the calling operator must stop producing. `node_id` (when
  /// >= 0) attributes a fired fault to that plan node in the telemetry.
  bool ConsultFault(const char* site, int node_id = -1) {
    if (fault_injector_ == nullptr) return false;
    return ConsultFaultSlow(site, node_id);
  }

  /// Attaches a spill manager (borrowed; may be null to remove). With one
  /// attached, blocking operators degrade to spilling when the guard's soft
  /// buffered-row budget fills (ChargeBufferedRowsOrSpill) instead of
  /// aborting. Persists across Reset, like the guard and fault injector.
  void set_spill_manager(SpillManager* manager) { spill_manager_ = manager; }
  SpillManager* spill_manager() const { return spill_manager_; }

  /// Attaches a worker pool (borrowed; may be null to remove): spill-heavy
  /// operators (external sort, Grace hash join) fan their merge and
  /// partition-join phases out to pool tasks. Execution without a pool is
  /// the reference serial engine; with one, results are bit-identical and
  /// total(Q)/traces are identical at every pool size (see the contract
  /// above). Persists across Reset.
  void set_worker_pool(WorkerPool* pool) { worker_pool_ = pool; }
  WorkerPool* worker_pool() const { return worker_pool_; }

  /// Charges `n` rows against the blocking-operator buffer budget. Returns
  /// false (with kResourceExhausted recorded) when the guard's buffered-row
  /// budget is exceeded, or when the execution has already failed. A failed
  /// charge leaves the account untouched: operators release exactly what
  /// they successfully charged, so the account drains to zero on any path.
  bool ChargeBufferedRows(uint64_t n);

  /// Memory-adaptive charge: like ChargeBufferedRows, but when a spill
  /// manager is attached and the charge would exceed the guard's soft budget,
  /// returns kSpill *without charging* — the operator must spill buffered
  /// state and retry or reroute rows to disk. The guard's separate kill
  /// threshold still aborts (kFailed) even with a spill manager attached.
  ChargeVerdict ChargeBufferedRowsOrSpill(uint64_t n);

  /// Post-spill charge for re-loading one spilled partition into memory:
  /// checked against the guard's *kill* threshold only (the soft budget
  /// already did its job by triggering the spill). Returns false with
  /// kResourceExhausted recorded when even one partition cannot fit.
  bool ChargeBufferedRowsPostSpill(uint64_t n);

  /// Returns rows to the buffer budget (operator Close/rescan).
  void ReleaseBufferedRows(uint64_t n) {
    buffered_rows_ -= n < buffered_rows_ ? n : buffered_rows_;
  }

  /// Rows currently buffered by blocking operators, plan-wide.
  uint64_t buffered_rows() const { return buffered_rows_; }

  /// High-water mark of `buffered_rows()` over this execution — the query's
  /// observed peak memory in the engine's buffered-row proxy. Reset() clears
  /// it; the ProgressMonitor copies it onto the ProgressReport, where it
  /// seeds the per-template admission priors (obs/workload_stats.h).
  uint64_t peak_buffered_rows() const { return peak_buffered_rows_; }

  // -- work observation -------------------------------------------------------

  /// Installs a callback fired once per `interval` units of work, with the
  /// scheduled crossing point (interval, 2*interval, ...) as argument. If a
  /// single counting burst crosses several intervals, the observer fires
  /// once per crossed interval. Used by the ProgressMonitor to take
  /// estimator checkpoints.
  void SetWorkObserver(uint64_t interval,
                       std::function<void(uint64_t)> observer) {
    QPROG_CHECK(interval > 0);
    observation_interval_ = interval;
    next_observation_ = interval;
    observer_ = std::move(observer);
    RecomputeNextEvent();
  }

  void ClearWorkObserver() {
    observer_ = nullptr;
    observation_interval_ = 0;
    next_observation_ = kNever;
    RecomputeNextEvent();
  }

  // -- telemetry ---------------------------------------------------------------

  /// Attaches a telemetry collector (borrowed; may be null to remove). With
  /// no collector attached, instrumentation costs one null-pointer branch per
  /// operator call. The collector is re-armed by Reset().
  void set_telemetry(TelemetryCollector* telemetry) { telemetry_ = telemetry; }
  TelemetryCollector* telemetry() const { return telemetry_; }

  // -- WorkContext telemetry forwarding (spill layer; query thread only) ------

  void OnSpillEnd(int node, const std::string& phase, uint64_t rows,
                  uint64_t bytes) override {
    if (telemetry_ != nullptr) {
      telemetry_->RecordSpillEnd(node, work_, phase, rows, bytes);
    }
  }
  void OnSpillRead(int node, uint64_t rows) override {
    if (telemetry_ != nullptr) telemetry_->RecordSpillRead(node, rows);
  }
  void OnIoRetry(int node, const char* site, uint64_t attempt) override {
    if (telemetry_ != nullptr) {
      telemetry_->RecordIoRetry(node, work_, site, attempt);
    }
  }
  void OnIoFault(int node, const char* site,
                 const std::string& message) override {
    if (telemetry_ != nullptr) {
      telemetry_->RecordFault(node, work_, site, message);
    }
  }

 private:
  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  // Slow paths, out of line (exec_context.cc). `node_id` is the node whose
  // counted row crossed the event threshold / hit the fault site — the node
  // guard trips and faults are attributed to.
  void OnWorkEvent(int node_id);
  bool ConsultFaultSlow(const char* site, int node_id);

  /// Folds the next observation, next guard check and work-budget trip point
  /// into the single `next_event_` the fast path branches on.
  void RecomputeNextEvent() {
    uint64_t next = next_observation_;
    if (next_guard_check_ < next) next = next_guard_check_;
    if (guard_ != nullptr && guard_->max_work() < next) {
      next = guard_->max_work();
    }
    next_event_ = next;
  }

  std::vector<uint64_t> rows_produced_;
  std::vector<uint64_t> spill_work_;
  uint64_t work_ = 0;
  uint64_t buffered_rows_ = 0;
  uint64_t peak_buffered_rows_ = 0;

  uint64_t observation_interval_ = 0;
  uint64_t next_observation_ = kNever;
  uint64_t next_guard_check_ = kNever;
  uint64_t next_event_ = kNever;
  // Kept on the same cache line as the work counters above: the operator
  // wrappers test this pointer on every getnext call, and the line is already
  // resident from CountRow's work_/next_event_ accesses.
  TelemetryCollector* telemetry_ = nullptr;
  std::function<void(uint64_t)> observer_;

  // Written by the query thread only; read by worker tasks as a stop hint
  // (see the threading contract in the file comment).
  std::atomic<bool> failed_{false};
  Status status_;
  QueryGuard* guard_ = nullptr;
  FaultInjector* fault_injector_ = nullptr;
  SpillManager* spill_manager_ = nullptr;
  WorkerPool* worker_pool_ = nullptr;
};

}  // namespace qprog

#endif  // QPROG_EXEC_EXEC_CONTEXT_H_
