// ExecutionConfig: the shared execution-tuning spine. MonitorOptions,
// SessionOptions and ServerOptions used to each re-declare the same knobs
// (worker pool, batch size); they now embed this struct as a base, so a new
// engine-wide knob — like Exchange's `partitions` — is added in exactly one
// place and flows monitor → session → server without three copies drifting.

#ifndef QPROG_EXEC_EXECUTION_CONFIG_H_
#define QPROG_EXEC_EXECUTION_CONFIG_H_

#include <cstddef>

namespace qprog {

class WorkerPool;

struct ExecutionConfig {
  /// Optional worker pool (borrowed) for intra-query parallelism: parallel
  /// sort merge, Grace partition joins, aggregate replay, and Exchange
  /// producer pipelines. Null = the reference serial engine.
  WorkerPool* worker_pool = nullptr;

  /// Rows per RowBatch pulled by the batched driver; 0 = tuple-at-a-time.
  size_t batch_size = 0;

  /// Partitioned-plan degree: when > 1, the planner splits eligible
  /// aggregation pipelines into `partitions` range-partitioned scan →
  /// partial-aggregate producers feeding an Exchange (exec/exchange.h).
  /// 0 or 1 = serial plan shapes (the default).
  size_t partitions = 0;
};

}  // namespace qprog

#endif  // QPROG_EXEC_EXECUTION_CONFIG_H_
