#include "exec/join.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/batch.h"
#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "exec/worker_pool.h"

namespace qprog {

namespace {

// Task-key layout for the parallel Grace join (DESIGN.md §10): partition
// write batches are keyed by phase (bit 55: 0 = build, 1 = probe), partition
// index, and a per-partition batch sequence number; partition joins by the
// leaf's recursion depth (bits 48..55) and partition path (3 bits per level,
// level 0 lowest). All data identity, never pool size — the same leaf gets
// the same forked fault schedule whether it came from a depth-0 pass or a
// depth-3 re-split.
constexpr uint64_t kJoinWriteTaskTag = 0x52ULL << 56;
constexpr uint64_t kJoinProbePhaseBit = 1ULL << 55;
constexpr uint64_t kJoinPartitionTaskTag = 0x53ULL << 56;

uint64_t JoinLeafTaskKey(int depth, uint64_t path) {
  return kJoinPartitionTaskTag | (static_cast<uint64_t>(depth) << 48) | path;
}

// Rows buffered per partition before a write batch is handed to a worker,
// and batches in flight before the query thread folds their op-logs. Both
// bound the uncharged write-side overcommit (see DESIGN.md §10).
constexpr size_t kBatchRows = 256;
constexpr size_t kMaxInflightBatches = 16;

// Depth-salted Grace partition routing (exec/spill.h), bound to this join's
// fanout. Level 0 uses the raw row hash (the single-level routing of PR 3);
// deeper levels remix so colliding rows spread — unless they literally share
// a hash (single-key skew), which RefineOne detects as an ineffective split.
size_t JoinPartitionIndex(size_t hash, int level) {
  return GracePartitionIndex(hash, level, HashJoin::kSpillFanout);
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Row NullRow(size_t arity) { return Row(arity); }

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        JoinType type) {
  if (type == JoinType::kLeftSemi || type == JoinType::kLeftAnti) return left;
  return Schema::Concat(left, right);
}

bool PredicatePasses(const Expr* predicate, const Row& row) {
  if (predicate == nullptr) return true;
  Value v = predicate->Eval(row);
  return !v.is_null() && v.bool_value();
}

}  // namespace

const char* JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftOuter:
      return "left-outer";
    case JoinType::kLeftSemi:
      return "left-semi";
    case JoinType::kLeftAnti:
      return "left-anti";
  }
  return "?";
}

// --------------------------------------------------------------------------
// NestedLoopsJoin

NestedLoopsJoin::NestedLoopsJoin(OperatorPtr outer, OperatorPtr inner,
                                 ExprPtr predicate, JoinType join_type)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)),
      join_type_(join_type),
      schema_(JoinOutputSchema(outer_->output_schema(), inner_->output_schema(),
                               join_type)) {}

void NestedLoopsJoin::DoOpen(ExecContext* ctx) {
  finished_ = false;
  outer_valid_ = false;
  outer_matched_ = false;
  outer_->Open(ctx);
}

bool NestedLoopsJoin::AdvanceOuter(ExecContext* ctx) {
  if (!outer_->Next(ctx, &outer_row_)) {
    outer_valid_ = false;
    return false;
  }
  outer_valid_ = true;
  outer_matched_ = false;
  inner_->Open(ctx);  // rescan the inner input
  return true;
}

bool NestedLoopsJoin::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() ||
      ctx->ConsultFault(faults::kNestedLoopsJoinNext, node_id())) {
    return false;
  }
  for (;;) {
    if (!ctx->ok()) return false;
    if (!outer_valid_) {
      if (!AdvanceOuter(ctx)) {
        if (ctx->ok()) finished_ = true;
        return false;
      }
    }
    Row inner_row;
    while (inner_->Next(ctx, &inner_row)) {
      Row joined = ConcatRows(outer_row_, inner_row);
      if (!PredicatePasses(predicate_.get(), joined)) continue;
      outer_matched_ = true;
      if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
        *out = std::move(joined);
        Emit(ctx);
        return true;
      }
      if (join_type_ == JoinType::kLeftSemi) {
        *out = outer_row_;
        Emit(ctx);
        outer_valid_ = false;  // one output per outer row
        return true;
      }
      break;  // kLeftAnti: a match disqualifies the outer row
    }
    // Inner exhausted for the current outer row (or anti-match found).
    if (!ctx->ok()) return false;  // inner stopped on error, not exhaustion
    if (!outer_matched_) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = ConcatRows(outer_row_,
                          NullRow(inner_->output_schema().num_fields()));
        outer_valid_ = false;
        Emit(ctx);
        return true;
      }
      if (join_type_ == JoinType::kLeftAnti) {
        *out = outer_row_;
        outer_valid_ = false;
        Emit(ctx);
        return true;
      }
    }
    outer_valid_ = false;
  }
}

void NestedLoopsJoin::DoClose(ExecContext* ctx) {
  outer_->Close(ctx);
  inner_->Close(ctx);
}

std::string NestedLoopsJoin::label() const {
  return StringPrintf("NestedLoopsJoin(%s%s)", JoinTypeToString(join_type_),
                      predicate_ != nullptr
                          ? (", " + predicate_->ToString()).c_str()
                          : "");
}

// --------------------------------------------------------------------------
// IndexNestedLoopsJoin

IndexNestedLoopsJoin::IndexNestedLoopsJoin(OperatorPtr outer,
                                           std::unique_ptr<IndexSeek> inner,
                                           ExprPtr outer_key,
                                           JoinType join_type, ExprPtr residual)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_key_(std::move(outer_key)),
      join_type_(join_type),
      residual_(std::move(residual)),
      schema_(JoinOutputSchema(outer_->output_schema(), inner_->output_schema(),
                               join_type)) {}

void IndexNestedLoopsJoin::DoOpen(ExecContext* ctx) {
  finished_ = false;
  outer_valid_ = false;
  outer_matched_ = false;
  outer_->Open(ctx);
  inner_->Open(ctx);
}

bool IndexNestedLoopsJoin::AdvanceOuter(ExecContext* ctx) {
  if (!outer_->Next(ctx, &outer_row_)) {
    outer_valid_ = false;
    return false;
  }
  outer_valid_ = true;
  outer_matched_ = false;
  inner_->Rebind(outer_key_->Eval(outer_row_));
  return true;
}

bool IndexNestedLoopsJoin::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() ||
      ctx->ConsultFault(faults::kIndexNestedLoopsJoinNext, node_id())) {
    return false;
  }
  for (;;) {
    if (!ctx->ok()) return false;
    if (!outer_valid_) {
      if (!AdvanceOuter(ctx)) {
        if (ctx->ok()) finished_ = true;
        return false;
      }
    }
    Row inner_row;
    while (inner_->Next(ctx, &inner_row)) {
      Row joined = ConcatRows(outer_row_, inner_row);
      if (!PredicatePasses(residual_.get(), joined)) continue;
      outer_matched_ = true;
      if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
        *out = std::move(joined);
        Emit(ctx);
        return true;
      }
      if (join_type_ == JoinType::kLeftSemi) {
        *out = outer_row_;
        Emit(ctx);
        outer_valid_ = false;
        return true;
      }
      break;  // kLeftAnti
    }
    if (!ctx->ok()) return false;
    if (!outer_matched_) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = ConcatRows(outer_row_,
                          NullRow(inner_->output_schema().num_fields()));
        outer_valid_ = false;
        Emit(ctx);
        return true;
      }
      if (join_type_ == JoinType::kLeftAnti) {
        *out = outer_row_;
        outer_valid_ = false;
        Emit(ctx);
        return true;
      }
    }
    outer_valid_ = false;
  }
}

void IndexNestedLoopsJoin::DoClose(ExecContext* ctx) {
  outer_->Close(ctx);
  inner_->Close(ctx);
}

std::string IndexNestedLoopsJoin::label() const {
  return StringPrintf("IndexNestedLoopsJoin(%s, key=%s)",
                      JoinTypeToString(join_type_),
                      outer_key_->ToString().c_str());
}

// --------------------------------------------------------------------------
// HashJoin

// The concurrent partition joins share an OrderedTaskBudget
// (exec/worker_pool.h): each leaf's need is known exactly before its task
// runs (the sealed build run's row count, plus the fixed in-memory output
// allowance), output past the allowance overflows to disk instead of waiting
// on a consumer, and an oversized leaf is admitted alone and then trips the
// task's kill tripwire exactly where the serial replay would.

// Pool-backed Grace partition writes. Rows buffer per partition on the query
// thread; every kBatchRows a batch task appends them to the partition's run
// on a worker, submitted into that partition's lane so a run's appends stay
// in input order without a lock. Every kMaxInflightBatches the query thread
// barriers and folds batch op-logs in submission order — a data-derived
// cadence, so spill-work checkpoints land identically at every pool size.
// The operator's grace_rows_written_ advances only after a batch's log is
// folded, keeping (Curr, LB, UB) consistent at mid-fold checkpoints.
class HashJoin::PartitionWriter {
 public:
  PartitionWriter(HashJoin* join, ExecContext* ctx, WorkerPool* pool,
                  std::vector<SpillRunPtr>* parts, uint64_t phase_tag)
      : join_(join), ctx_(ctx), parts_(parts), phase_tag_(phase_tag),
        group_(pool) {}

  /// Buffers `row` for `part`, flushing a batch task when full.
  bool Add(size_t part, const Row& row) {
    // A batch task that hit a write error flags it so the operator stops
    // consuming input now, not up to kMaxInflightBatches batches later (a
    // permanent failure like disk-full would otherwise keep collecting rows
    // into doomed batches). The fold surfaces the task's sticky error.
    if (write_failed_.load(std::memory_order_relaxed)) return FoldBatches();
    buf_[part].push_back(row);
    if (buf_[part].size() >= kBatchRows) return FlushPartition(part);
    return ctx_->ok();
  }

  /// Flushes every residual buffer (partition order), barriers, folds.
  bool Finish() {
    for (size_t p = 0; p < buf_.size(); ++p) {
      if (!buf_[p].empty() && !FlushPartition(p)) return false;
    }
    return FoldBatches();
  }

 private:
  struct PendingBatch {
    std::unique_ptr<TaskContext> tc;
    uint64_t rows = 0;
  };

  bool FlushPartition(size_t part) {
    auto tc = std::make_unique<TaskContext>(
        ctx_, phase_tag_ | (static_cast<uint64_t>(part) << 20) |
                  batch_seq_[part]++);
    TaskContext* tcp = tc.get();
    SpillRun* run = (*parts_)[part].get();
    uint64_t n = buf_[part].size();
    group_.SubmitToLane(
        part, [join = join_, tcp, run, failed = &write_failed_,
               rows = std::move(buf_[part])] {
          for (const Row& row : rows) {
            if (!run->Append(tcp, join->node_id(), row)) {
              failed->store(true, std::memory_order_relaxed);
              return;
            }
          }
        });
    buf_[part] = std::vector<Row>();
    pending_.push_back(PendingBatch{std::move(tc), n});
    if (pending_.size() >= kMaxInflightBatches) return FoldBatches();
    return ctx_->ok();
  }

  bool FoldBatches() {
    Status escaped = group_.Wait();
    for (PendingBatch& b : pending_) {
      if (!ctx_->ok()) break;
      b.tc->FoldInto(ctx_);
      if (!ctx_->ok()) break;
      join_->grace_rows_written_ += b.rows;
    }
    pending_.clear();
    if (ctx_->ok() && !escaped.ok()) ctx_->RaiseError(std::move(escaped));
    return ctx_->ok();
  }

  HashJoin* join_;
  ExecContext* ctx_;
  std::vector<SpillRunPtr>* parts_;
  uint64_t phase_tag_;
  std::array<std::vector<Row>, kSpillFanout> buf_;
  std::array<uint64_t, kSpillFanout> batch_seq_{};
  std::vector<PendingBatch> pending_;
  // Set (relaxed) by a batch task on write failure, polled by Add: a hint to
  // fold early — correctness still comes from the fold's error replay.
  std::atomic<bool> write_failed_{false};
  // Declared last: destroyed first, so the destructor's implicit Wait()
  // drains in-flight tasks while the TaskContexts in pending_ still live.
  TaskGroup group_;
};

HashJoin::HashJoin(OperatorPtr probe, OperatorPtr build,
                   std::vector<ExprPtr> probe_keys,
                   std::vector<ExprPtr> build_keys, JoinType join_type,
                   ExprPtr residual)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      build_keys_(std::move(build_keys)),
      join_type_(join_type),
      residual_(std::move(residual)),
      schema_(JoinOutputSchema(probe_->output_schema(), build_->output_schema(),
                               join_type)) {
  QPROG_CHECK(probe_keys_.size() == build_keys_.size());
  QPROG_CHECK(!probe_keys_.empty());
}

HashJoin::~HashJoin() = default;

void HashJoin::DoOpen(ExecContext* ctx) {
  finished_ = false;
  build_done_ = false;
  table_.clear();
  build_rows_ = 0;
  max_bucket_ = 0;
  probe_valid_ = false;
  probe_matched_ = false;
  bucket_ = nullptr;
  bucket_pos_ = 0;
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  spilled_ = false;
  probe_partitioned_ = false;
  build_parts_.clear();
  probe_parts_.clear();
  grace_leaves_.clear();
  part_idx_ = 0;
  part_loaded_ = false;
  grace_rows_written_ = 0;
  parallel_joined_ = false;
  par_outs_.clear();
  par_part_ = 0;
  par_pos_ = 0;
  if (ctx->ConsultFault(faults::kHashJoinOpen, node_id())) return;
  build_->Open(ctx);
  probe_->Open(ctx);
}

Row HashJoin::KeyOf(const Row& row, const std::vector<ExprPtr>& keys,
                    bool* has_null) const {
  Row key;
  key.reserve(keys.size());
  *has_null = false;
  for (const ExprPtr& e : keys) {
    Value v = e->Eval(row);
    *has_null = *has_null || v.is_null();
    key.push_back(std::move(v));
  }
  return key;
}

bool HashJoin::EnsureRuns(ExecContext* ctx, std::vector<SpillRunPtr>* parts,
                          const char* phase) {
  if (!parts->empty()) return true;
  parts->reserve(kSpillFanout);
  for (int i = 0; i < kSpillFanout; ++i) {
    SpillRunPtr run = ctx->spill_manager()->CreateRun(ctx, node_id(), phase);
    if (run == nullptr) return false;
    parts->push_back(std::move(run));
  }
  return true;
}

bool HashJoin::AppendToPartition(ExecContext* ctx,
                                 std::vector<SpillRunPtr>* parts,
                                 const char* phase, const Row& key,
                                 const Row& row, PartitionWriter* writer) {
  if (!EnsureRuns(ctx, parts, phase)) return false;
  size_t part = JoinPartitionIndex(RowHash()(key), 0);
  if (writer != nullptr) return writer->Add(part, row);
  if (!(*parts)[part]->Append(ctx, node_id(), row)) return false;
  ++grace_rows_written_;
  return true;
}

bool HashJoin::SpillBuildTable(ExecContext* ctx, PartitionWriter* writer) {
  for (const auto& [key, bucket] : table_) {
    for (const Row& row : bucket) {
      if (!AppendToPartition(ctx, &build_parts_, "hashjoin.build", key, row,
                             writer)) {
        return false;
      }
    }
  }
  table_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  max_bucket_ = 0;  // re-learned per partition during the probe phase
  spilled_ = true;
  return true;
}

void HashJoin::BuildTable(ExecContext* ctx) {
  // With a pool attached, Grace partition writes batch through a
  // PartitionWriter (created lazily at the first spill). Charge verdicts are
  // untouched — they fire per input row on the query thread either way — so
  // the spill decision sequence is identical to the serial engine's.
  std::unique_ptr<PartitionWriter> writer;
  auto grace_writer = [&]() -> PartitionWriter* {
    if (ctx->worker_pool() == nullptr) return nullptr;
    if (writer == nullptr) {
      writer = std::make_unique<PartitionWriter>(
          this, ctx, ctx->worker_pool(), &build_parts_, kJoinWriteTaskTag);
    }
    return writer.get();
  };
  Row row;
  while (ctx->ok() && build_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kHashJoinBuild, node_id())) return;
    bool has_null = false;
    Row key = KeyOf(row, build_keys_, &has_null);
    if (has_null) continue;  // NULL keys never match
    if (spilled_) {
      // Already in Grace mode: route straight to a partition run.
      if (!AppendToPartition(ctx, &build_parts_, "hashjoin.build", key, row,
                             grace_writer())) {
        return;
      }
      ++build_rows_;
      continue;
    }
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill) {
      if (!SpillBuildTable(ctx, grace_writer())) return;
      if (!AppendToPartition(ctx, &build_parts_, "hashjoin.build", key, row,
                             grace_writer())) {
        return;
      }
      ++build_rows_;
      continue;
    }
    auto& bucket = table_[std::move(key)];
    bucket.push_back(std::move(row));
    ++build_rows_;
    ++charged_;
    max_bucket_ = std::max<uint64_t>(max_bucket_, bucket.size());
  }
  if (!ctx->ok()) return;  // partial build: not usable for probing
  if (writer != nullptr && !writer->Finish()) return;
  build_done_ = true;
}

void HashJoin::PartitionProbe(ExecContext* ctx) {
  // Create every probe run up front: a zero-row probe input must still leave
  // probe_parts_ mirroring build_parts_, or the partition replay loop would
  // index an empty vector.
  if (!EnsureRuns(ctx, &probe_parts_, "hashjoin.probe")) return;
  std::unique_ptr<PartitionWriter> writer;
  if (ctx->worker_pool() != nullptr) {
    writer = std::make_unique<PartitionWriter>(
        this, ctx, ctx->worker_pool(), &probe_parts_,
        kJoinWriteTaskTag | kJoinProbePhaseBit);
  }
  // Route every probe row — including NULL-key rows — through the runs so
  // outer/anti joins still see (and preserve) the unmatched rows when the
  // partition is replayed.
  Row row;
  while (ctx->ok() && probe_->Next(ctx, &row)) {
    bool has_null = false;
    Row key = KeyOf(row, probe_keys_, &has_null);
    if (!AppendToPartition(ctx, &probe_parts_, "hashjoin.probe", key, row,
                           writer.get())) {
      return;
    }
  }
  if (!ctx->ok()) return;
  if (writer != nullptr && !writer->Finish()) return;
  for (auto& run : build_parts_) {
    if (!run->FinishWrite(ctx, node_id())) return;
  }
  for (auto& run : probe_parts_) {
    if (!run->FinishWrite(ctx, node_id())) return;
  }
  probe_partitioned_ = true;
}

bool HashJoin::RefinePartitions(ExecContext* ctx) {
  // Capacity is the kill headroom above what the plan already holds at this
  // instant — the same geometry ParallelJoinPartitions uses for admission
  // and the serial LoadPartition enforces per row. A leaf at or under it
  // can (barring later base growth) be rebuilt in memory; anything larger
  // is re-split rather than loaded into a certain kill trip.
  const QueryGuard* guard = ctx->guard();
  const uint64_t kill = guard != nullptr ? guard->max_buffered_rows_kill()
                                         : QueryGuard::kNoLimit;
  uint64_t capacity = QueryGuard::kNoLimit;
  if (kill != QueryGuard::kNoLimit) {
    capacity = kill - std::min(kill, ctx->buffered_rows());
  }
  grace_leaves_.clear();
  grace_leaves_.reserve(kSpillFanout);
  for (int p = 0; p < kSpillFanout; ++p) {
    if (!RefineOne(ctx, std::move(build_parts_[static_cast<size_t>(p)]),
                   std::move(probe_parts_[static_cast<size_t>(p)]), 0,
                   static_cast<uint64_t>(p), capacity)) {
      return false;
    }
  }
  build_parts_.clear();
  probe_parts_.clear();
  return ctx->ok();
}

bool HashJoin::RefineOne(ExecContext* ctx, SpillRunPtr build, SpillRunPtr probe,
                         int depth, uint64_t path, uint64_t capacity) {
  if (build->rows_written() <= capacity) {
    grace_leaves_.push_back(
        GraceLeaf{std::move(build), std::move(probe), depth, path});
    return true;
  }
  if (depth >= kMaxGraceDepth) {
    ctx->RaiseError(qprog::ResourceExhausted(StringPrintf(
        "build partition of %llu rows still exceeds the kill headroom of "
        "%llu rows at Grace recursion depth %d; input too skewed to process "
        "under this budget",
        static_cast<unsigned long long>(build->rows_written()),
        static_cast<unsigned long long>(capacity), depth)));
    return false;
  }
  // Redistribute both runs into kSpillFanout children under the next level's
  // salt. Query thread only: run creation order (and the spill_begin events
  // carrying the new depth) must stay part of the deterministic trace. Every
  // re-read and re-write below is accounted spill work, so total(Q) grows by
  // exactly two units per re-partitioned row and the 2*written-done pending
  // identity holds at every checkpoint mid-refinement.
  const int child_depth = depth + 1;
  const uint64_t parent_rows = build->rows_written();
  std::vector<SpillRunPtr> child_build;
  std::vector<SpillRunPtr> child_probe;
  child_build.reserve(kSpillFanout);
  child_probe.reserve(kSpillFanout);
  for (int i = 0; i < kSpillFanout; ++i) {
    SpillRunPtr run = ctx->spill_manager()->CreateRun(ctx, node_id(),
                                                      "hashjoin.build",
                                                      child_depth);
    if (run == nullptr) return false;
    child_build.push_back(std::move(run));
  }
  for (int i = 0; i < kSpillFanout; ++i) {
    SpillRunPtr run = ctx->spill_manager()->CreateRun(ctx, node_id(),
                                                      "hashjoin.probe",
                                                      child_depth);
    if (run == nullptr) return false;
    child_probe.push_back(std::move(run));
  }
  Row row;
  if (!build->OpenRead(ctx, node_id())) return false;
  while (build->ReadNext(ctx, node_id(), &row)) {
    bool has_null = false;
    Row key = KeyOf(row, build_keys_, &has_null);
    QPROG_DCHECK(!has_null);  // NULL build keys were never spilled
    size_t part = JoinPartitionIndex(RowHash()(key), child_depth);
    if (!child_build[part]->Append(ctx, node_id(), row)) return false;
    ++grace_rows_written_;
  }
  if (!ctx->ok()) return false;
  build.reset();  // parent temp file gone before the tree grows further
  uint64_t biggest_child = 0;
  for (auto& run : child_build) {
    biggest_child = std::max(biggest_child, run->rows_written());
    if (!run->FinishWrite(ctx, node_id())) return false;
  }
  if (biggest_child >= parent_rows) {
    // The salt moved nothing: every row shares one key (or one hash value).
    // No recursion depth will ever spread this partition, so stop here
    // instead of burning kMaxGraceDepth futile passes.
    ctx->RaiseError(qprog::ResourceExhausted(StringPrintf(
        "build partition of %llu rows exceeds the kill headroom of %llu rows "
        "and cannot be subdivided (single-key skew); input too skewed to "
        "process under this budget",
        static_cast<unsigned long long>(parent_rows),
        static_cast<unsigned long long>(capacity))));
    return false;
  }
  if (!probe->OpenRead(ctx, node_id())) return false;
  while (probe->ReadNext(ctx, node_id(), &row)) {
    bool has_null = false;
    Row key = KeyOf(row, probe_keys_, &has_null);
    size_t part = JoinPartitionIndex(RowHash()(key), child_depth);
    if (!child_probe[part]->Append(ctx, node_id(), row)) return false;
    ++grace_rows_written_;
  }
  if (!ctx->ok()) return false;
  probe.reset();
  for (auto& run : child_probe) {
    if (!run->FinishWrite(ctx, node_id())) return false;
  }
  for (int i = 0; i < kSpillFanout; ++i) {
    if (!RefineOne(ctx, std::move(child_build[static_cast<size_t>(i)]),
                   std::move(child_probe[static_cast<size_t>(i)]), child_depth,
                   path | (static_cast<uint64_t>(i) << (3 * child_depth)),
                   capacity)) {
      return false;
    }
  }
  return true;
}

bool HashJoin::LoadPartition(ExecContext* ctx) {
  SpillRun* build_run = grace_leaves_[static_cast<size_t>(part_idx_)].build.get();
  if (!build_run->OpenRead(ctx, node_id())) return false;
  Row row;
  while (build_run->ReadNext(ctx, node_id(), &row)) {
    bool has_null = false;
    Row key = KeyOf(row, build_keys_, &has_null);
    QPROG_DCHECK(!has_null);  // NULL build keys were never spilled
    // A reloaded partition answers to the kill threshold only: the soft
    // budget already traded memory for these extra I/O passes.
    if (!ctx->ChargeBufferedRowsPostSpill(1)) return false;
    auto& bucket = table_[std::move(key)];
    bucket.push_back(std::move(row));
    ++charged_;
    max_bucket_ = std::max<uint64_t>(max_bucket_, bucket.size());
  }
  if (!ctx->ok()) return false;
  if (!grace_leaves_[static_cast<size_t>(part_idx_)].probe->OpenRead(
          ctx, node_id())) {
    return false;
  }
  part_loaded_ = true;
  return true;
}

void HashJoin::UnloadPartition(ExecContext* ctx) {
  table_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  grace_leaves_[static_cast<size_t>(part_idx_)].build.reset();  // delete files
  grace_leaves_[static_cast<size_t>(part_idx_)].probe.reset();
  ++part_idx_;
  part_loaded_ = false;
}

bool HashJoin::PullProbe(ExecContext* ctx, Row* row) {
  if (!spilled_) {
    // Inside a NextBatch call, in-memory probe pulls go through the fused
    // kernel — an exact emulation of probe_->Next (same fault consults, same
    // CountRow order), minus the virtual dispatch and intermediate copies.
    if (batch_active_ && fused_probe_ != nullptr) {
      return fused_probe_->ProduceOne(ctx, row);
    }
    return probe_->Next(ctx, row);
  }
  if (!grace_leaves_[static_cast<size_t>(part_idx_)].probe->ReadNext(
          ctx, node_id(), row)) {
    return false;
  }
  return true;
}

bool HashJoin::ParallelJoinPartitions(ExecContext* ctx, WorkerPool* pool) {
  // Budget geometry, all computed on the query thread before any task runs:
  // capacity is the kill headroom above what the plan already holds, and the
  // output allowance splits half of it evenly across partitions (the other
  // half carries the partition build tables). Every term is data-derived, so
  // the in-memory/overflow split is identical at every pool size.
  const QueryGuard* guard = ctx->guard();
  const uint64_t kill = guard != nullptr ? guard->max_buffered_rows_kill()
                                         : QueryGuard::kNoLimit;
  const bool unlimited = kill == QueryGuard::kNoLimit;
  const uint64_t base = ctx->buffered_rows();
  const uint64_t capacity = unlimited ? 0 : kill - std::min(kill, base);
  const size_t num_leaves = grace_leaves_.size();
  const uint64_t allowance =
      unlimited ? std::numeric_limits<uint64_t>::max()
                : capacity / (2 * std::max<uint64_t>(num_leaves, 1));
  OrderedTaskBudget budget(unlimited, capacity, allowance);
  par_outs_.clear();
  par_outs_.resize(num_leaves);
  std::vector<std::unique_ptr<TaskContext>> tcs;
  tcs.reserve(num_leaves);
  {
    TaskGroup group(pool);
    for (size_t p = 0; p < num_leaves; ++p) {
      const GraceLeaf& leaf = grace_leaves_[p];
      auto tc = std::make_unique<TaskContext>(
          ctx, JoinLeafTaskKey(leaf.depth, leaf.path));
      TaskContext* tcp = tc.get();
      SpillRun* build_run = leaf.build.get();
      SpillRun* probe_run = leaf.probe.get();
      PartitionJoinOut* out = &par_outs_[p];
      out->part = p;
      // The build run sealed on the query thread, so its row count is exact:
      // reserve the whole partition table plus the output allowance, capped
      // at capacity so an oversized partition can still be admitted alone
      // (its task then trips the kill tripwire, as the serial replay would).
      out->reserved =
          unlimited ? 0
                    : std::min<uint64_t>(build_run->rows_written() + allowance,
                                         capacity);
      group.Submit([this, tcp, build_run, probe_run,
                    spill = ctx->spill_manager(), budget_ptr = &budget, out] {
        JoinPartitionTask(tcp, build_run, probe_run, spill, budget_ptr, out);
      });
      tcs.push_back(std::move(tc));
    }
    Status escaped = group.Wait();
    for (size_t p = 0; p < num_leaves; ++p) {
      if (!ctx->ok()) break;
      tcs[p]->FoldInto(ctx);
      if (!ctx->ok()) break;
      // Post-barrier run-counter reads are safe: the barrier handed the runs
      // back to the query thread.
      max_bucket_ = std::max(max_bucket_, par_outs_[p].max_bucket);
      grace_leaves_[p].build.reset();  // delete temp files
      grace_leaves_[p].probe.reset();
    }
    if (ctx->ok() && !escaped.ok()) ctx->RaiseError(std::move(escaped));
  }
  part_idx_ = static_cast<int>(num_leaves);  // every leaf consumed
  if (!ctx->ok()) return false;
  // Move the retained in-memory prefixes into the plan-wide account, where
  // they stay visible to the guard until NextParallelOutput drains them.
  // Cannot trip the kill threshold: admission kept the sum within capacity.
  if (!unlimited) {
    uint64_t prefix_total = 0;
    for (PartitionJoinOut& po : par_outs_) {
      po.charged_rows = po.rows.size();
      prefix_total += po.charged_rows;
    }
    if (!ctx->ChargeBufferedRowsPostSpill(prefix_total)) return false;
    charged_ += prefix_total;
  }
  return ctx->ok();
}

void HashJoin::JoinPartitionTask(TaskContext* tc, SpillRun* build_run,
                                 SpillRun* probe_run, SpillManager* spill,
                                 OrderedTaskBudget* budget,
                                 PartitionJoinOut* out) const {
  // The task owns its partition end to end: a private hash table, the
  // partition's spill reads, and the output buffer. It runs only once the
  // shared budget admits its reservation, so the *sum* of concurrent
  // partition memory stays under the guard's kill threshold; the per-task
  // kill-threshold charge below mirrors the serial LoadPartition charge —
  // each reloaded partition answers to the same tripwire.
  if (!budget->Admit(out->part, out->reserved, tc)) return;
  // Output rows land in memory up to the allowance; the rest go to an
  // unaccounted side run created lazily here (thread-safe, trace-silent).
  auto emit = [&](Row&& joined) -> bool {
    if (out->rows.size() < budget->out_allowance) {
      out->rows.push_back(std::move(joined));
      return true;
    }
    if (out->overflow == nullptr) {
      out->overflow = spill->CreateSideRun(tc, node_id());
      if (out->overflow == nullptr) return false;
    }
    return out->overflow->Append(tc, node_id(), joined);
  };
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> table;
  Row row;
  bool ok = build_run->OpenRead(tc, node_id());
  while (ok && build_run->ReadNext(tc, node_id(), &row)) {
    bool has_null = false;
    Row key = KeyOf(row, build_keys_, &has_null);
    QPROG_DCHECK(!has_null);  // NULL build keys were never spilled
    if (!tc->ChargeBufferedRowsPostSpill(1)) {
      ok = false;
      break;
    }
    auto& bucket = table[std::move(key)];
    bucket.push_back(std::move(row));
    out->max_bucket = std::max<uint64_t>(out->max_bucket, bucket.size());
  }
  ok = ok && tc->ok() && probe_run->OpenRead(tc, node_id());
  while (ok && probe_run->ReadNext(tc, node_id(), &row)) {
    bool has_null = false;
    Row key = KeyOf(row, probe_keys_, &has_null);
    const std::vector<Row>* bucket = nullptr;
    if (!has_null) {
      auto it = table.find(key);
      if (it != table.end()) bucket = &it->second;
    }
    // Match logic mirrors DoNext's serial loop row for row, so the folded
    // output (partition order, probe order within each) is byte-identical
    // to the serial partition replay.
    bool matched = false;
    if (bucket != nullptr) {
      for (const Row& build_row : *bucket) {
        Row joined = ConcatRows(row, build_row);
        if (!PredicatePasses(residual_.get(), joined)) continue;
        matched = true;
        if (join_type_ == JoinType::kInner ||
            join_type_ == JoinType::kLeftOuter) {
          if (!emit(std::move(joined))) {
            ok = false;
            break;
          }
          continue;
        }
        if (join_type_ == JoinType::kLeftSemi && !emit(Row(row))) ok = false;
        break;  // semi: one output per probe row; anti: match disqualifies
      }
    }
    if (ok && !matched) {
      if (join_type_ == JoinType::kLeftOuter) {
        ok = emit(
            ConcatRows(row, NullRow(build_->output_schema().num_fields())));
      } else if (join_type_ == JoinType::kLeftAnti) {
        ok = emit(Row(row));
      }
    }
  }
  if (tc->ok() && out->overflow != nullptr) {
    out->overflow->FinishWrite(tc, node_id());
  }
  // Hand back the slack between the reservation and the rows the partition
  // actually keeps in memory; the prefix itself stays reserved until the
  // query thread charges it to the plan account after the fold.
  uint64_t kept = std::min<uint64_t>(out->rows.size(), out->reserved);
  budget->Retain(kept);
  budget->Release(out->reserved - kept);
}

bool HashJoin::NextParallelOutput(ExecContext* ctx, Row* out) {
  while (ctx->ok() && par_part_ < par_outs_.size()) {
    PartitionJoinOut& po = par_outs_[par_part_];
    if (par_pos_ < po.rows.size()) {
      *out = std::move(po.rows[par_pos_++]);
      Emit(ctx);
      return true;
    }
    if (po.overflow != nullptr) {
      if (!po.overflow_open) {
        if (!po.overflow->OpenRead(ctx, node_id())) return false;
        po.overflow_open = true;
      }
      if (po.overflow->ReadNext(ctx, node_id(), out)) {
        Emit(ctx);
        return true;
      }
      if (!ctx->ok()) return false;
      po.overflow.reset();  // end of side run: delete the temp file now
    }
    // Partition fully drained: give back its in-memory prefix.
    po.rows = std::vector<Row>();
    ctx->ReleaseBufferedRows(po.charged_rows);
    charged_ -= std::min<uint64_t>(charged_, po.charged_rows);
    po.charged_rows = 0;
    par_pos_ = 0;
    ++par_part_;
  }
  if (!ctx->ok()) return false;
  finished_ = true;
  return false;
}

bool HashJoin::AdvanceProbe(ExecContext* ctx) {
  for (;;) {
    if (!PullProbe(ctx, &probe_row_)) {
      probe_valid_ = false;
      return false;
    }
    probe_valid_ = true;
    probe_matched_ = false;
    bucket_ = nullptr;
    bucket_pos_ = 0;
    bool has_null = false;
    Row key = KeyOf(probe_row_, probe_keys_, &has_null);
    if (!has_null) {
      auto it = table_.find(key);
      if (it != table_.end()) bucket_ = &it->second;
    }
    return true;
  }
}

bool HashJoin::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kHashJoinProbe, node_id())) {
    return false;
  }
  if (!build_done_) {
    BuildTable(ctx);
    if (!ctx->ok()) return false;
  }
  if (spilled_ && !probe_partitioned_) {
    PartitionProbe(ctx);
    if (!ctx->ok()) return false;
    // Both sides sealed: flatten the partition tree, re-splitting any build
    // partition the kill threshold could never admit (recursive Grace).
    if (!RefinePartitions(ctx)) return false;
  }
  if (spilled_ && !parallel_joined_ && ctx->worker_pool() != nullptr) {
    if (!ParallelJoinPartitions(ctx, ctx->worker_pool())) return false;
    parallel_joined_ = true;
  }
  if (parallel_joined_) return NextParallelOutput(ctx, out);
  for (;;) {
    if (!ctx->ok()) return false;
    if (spilled_ && !part_loaded_) {
      if (part_idx_ >= static_cast<int>(grace_leaves_.size())) {
        finished_ = true;
        return false;
      }
      if (!LoadPartition(ctx)) return false;
    }
    if (!probe_valid_) {
      if (!AdvanceProbe(ctx)) {
        if (!ctx->ok()) return false;
        if (spilled_) {
          UnloadPartition(ctx);  // move on to the next partition
          continue;
        }
        finished_ = true;
        return false;
      }
    }
    if (bucket_ != nullptr) {
      bool anti_rejected = false;
      while (bucket_pos_ < bucket_->size()) {
        const Row& build_row = (*bucket_)[bucket_pos_++];
        Row joined = ConcatRows(probe_row_, build_row);
        if (!PredicatePasses(residual_.get(), joined)) continue;
        probe_matched_ = true;
        if (join_type_ == JoinType::kInner ||
            join_type_ == JoinType::kLeftOuter) {
          *out = std::move(joined);
          Emit(ctx);
          return true;
        }
        if (join_type_ == JoinType::kLeftSemi) {
          *out = probe_row_;
          Emit(ctx);
          probe_valid_ = false;
          return true;
        }
        anti_rejected = true;  // kLeftAnti
        break;
      }
      if (anti_rejected) {
        probe_valid_ = false;
        continue;
      }
    }
    // Bucket exhausted (or no bucket).
    if (!probe_matched_) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = ConcatRows(probe_row_,
                          NullRow(build_->output_schema().num_fields()));
        probe_valid_ = false;
        Emit(ctx);
        return true;
      }
      if (join_type_ == JoinType::kLeftAnti) {
        *out = probe_row_;
        probe_valid_ = false;
        Emit(ctx);
        return true;
      }
    }
    probe_valid_ = false;
  }
}

bool HashJoin::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  // The probe/output side batches by looping DoNext through the base-class
  // adapter (build, spill and parallel phases keep their exact tuple
  // semantics for free); in-memory probe pulls inside the batch go through
  // a fused kernel over the probe subtree via PullProbe.
  if (!fused_probe_checked_) {
    fused_probe_checked_ = true;
    fused_probe_ = FusedChain::TryBuild(probe_.get());
  }
  batch_active_ = true;
  bool more = PhysicalOperator::DoNextBatch(ctx, out);
  batch_active_ = false;
  if (fused_probe_ != nullptr) {
    fused_probe_->FlushStats(out, ctx->telemetry() != nullptr);
  }
  return more;
}

void HashJoin::DoClose(ExecContext* ctx) {
  probe_->Close(ctx);
  build_->Close(ctx);
  table_.clear();
  build_parts_.clear();  // deletes any remaining spill temp files
  probe_parts_.clear();
  grace_leaves_.clear();
  par_outs_.clear();  // deletes any remaining overflow side runs
  par_part_ = 0;
  par_pos_ = 0;
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string HashJoin::label() const {
  return StringPrintf("HashJoin(%s%s)", JoinTypeToString(join_type_),
                      is_linear() ? ", linear" : "");
}

void HashJoin::FillProgressState(const ExecContext& ctx,
                                 ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  // In Grace mode the build facts the bounds walker relies on (largest
  // bucket, full table) are no longer global, so stay on the conservative
  // !build_done path until every partition has been replayed.
  state->build_done = build_done_ && !spilled_;
  state->build_rows = build_rows_;
  state->max_multiplicity = max_bucket_;
  // A counter, not run-object sums: a worker task may own a run right now.
  // Every partition row is written once and read back exactly once, so this
  // node's total spill work is 2x the rows written so far; deriving pending
  // from the same work counter the checkpoint just advanced keeps
  // (done + pending) consistent at every sampling instant (see sort.cc).
  uint64_t spill_total = 2 * grace_rows_written_;
  state->spill_rows_pending = spill_total > state->spill_work_done
                                  ? spill_total - state->spill_work_done
                                  : 0;
}

// --------------------------------------------------------------------------
// MergeJoin

MergeJoin::MergeJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<ExprPtr> left_keys,
                     std::vector<ExprPtr> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      schema_(Schema::Concat(left_->output_schema(), right_->output_schema())) {
  QPROG_CHECK(left_keys_.size() == right_keys_.size());
  QPROG_CHECK(!left_keys_.empty());
}

Row MergeJoin::KeyOf(const Row& row, const std::vector<ExprPtr>& keys) const {
  Row key;
  key.reserve(keys.size());
  for (const ExprPtr& e : keys) key.push_back(e->Eval(row));
  return key;
}

bool MergeJoin::KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

int MergeJoin::CompareKeys(const Row& a, const Row& b) {
  QPROG_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool MergeJoin::PullLeft(ExecContext* ctx) {
  for (;;) {
    if (!left_->Next(ctx, &left_row_)) {
      left_valid_ = false;
      return false;
    }
    left_key_ = KeyOf(left_row_, left_keys_);
    if (!KeyHasNull(left_key_)) {
      left_valid_ = true;
      return true;
    }
  }
}

bool MergeJoin::PullRight(ExecContext* ctx) {
  for (;;) {
    if (!right_->Next(ctx, &right_row_)) {
      right_valid_ = false;
      return false;
    }
    right_key_ = KeyOf(right_row_, right_keys_);
    if (!KeyHasNull(right_key_)) {
      right_valid_ = true;
      return true;
    }
  }
}

void MergeJoin::DoOpen(ExecContext* ctx) {
  finished_ = false;
  left_valid_ = right_valid_ = false;
  group_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  group_active_ = false;
  group_pos_ = 0;
  left_->Open(ctx);
  right_->Open(ctx);
  PullLeft(ctx);
  PullRight(ctx);
}

bool MergeJoin::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kMergeJoinNext, node_id())) {
    return false;
  }
  for (;;) {
    if (!ctx->ok()) return false;
    if (group_active_) {
      if (group_pos_ < group_.size()) {
        *out = ConcatRows(left_row_, group_[group_pos_++]);
        Emit(ctx);
        return true;
      }
      // Current left row exhausted this group; advance left.
      if (!PullLeft(ctx)) {
        if (ctx->ok()) finished_ = true;
        return false;
      }
      if (CompareKeys(left_key_, group_key_) == 0) {
        group_pos_ = 0;  // replay the buffered group
        continue;
      }
      group_active_ = false;
    }
    if (!left_valid_ || !right_valid_) {
      finished_ = true;
      return false;
    }
    int cmp = CompareKeys(left_key_, right_key_);
    if (cmp < 0) {
      if (!PullLeft(ctx)) {
        if (ctx->ok()) finished_ = true;
        return false;
      }
    } else if (cmp > 0) {
      if (!PullRight(ctx)) {
        if (ctx->ok()) finished_ = true;
        return false;
      }
    } else {
      // Collect the full right group with this key. The buffer is bounded by
      // the largest duplicate-key group; charge it against the budget.
      group_.clear();
      ctx->ReleaseBufferedRows(charged_);
      charged_ = 0;
      group_key_ = right_key_;
      do {
        group_.push_back(right_row_);
        if (!ctx->ChargeBufferedRows(1)) return false;
        ++charged_;
      } while (PullRight(ctx) && CompareKeys(right_key_, group_key_) == 0);
      if (!ctx->ok()) return false;
      group_active_ = true;
      group_pos_ = 0;
    }
  }
}

void MergeJoin::DoClose(ExecContext* ctx) {
  left_->Close(ctx);
  right_->Close(ctx);
  group_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string MergeJoin::label() const {
  return StringPrintf("MergeJoin(%zu keys%s)", left_keys_.size(),
                      is_linear() ? ", linear" : "");
}

}  // namespace qprog
