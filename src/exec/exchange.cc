#include "exec/exchange.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "exec/worker_pool.h"
#include "obs/trace.h"

namespace qprog {

namespace {

// Task-key registry entry (DESIGN.md §10): exchange producer tasks carry
// 0x55 in the top byte and the producer partition index in the low bits, so
// a partition's forked fault schedule is a pure function of its data
// identity — identical at every pool size.
constexpr uint64_t kExchangeProduceTaskTag = 0x55ULL << 56;

uint64_t ExchangeTaskKey(size_t partition) {
  return kExchangeProduceTaskTag | static_cast<uint64_t>(partition);
}

void MaxNodeId(const PhysicalOperator* op, int* max_id) {
  if (op->node_id() > *max_id) *max_id = op->node_id();
  for (size_t i = 0; i < op->num_children(); ++i) {
    MaxNodeId(op->child(i), max_id);
  }
}

// Replays one producer subtree's per-node getnext counts from `prod_ctx`
// into `ctx`, pre-order (the serial engine's attribution order). Burst
// counting fires the observer once per crossed interval with the scheduled
// crossing point, so checkpoints land where serial counting would put them.
void ReplayCounts(const PhysicalOperator* op, const ExecContext& prod_ctx,
                  ExecContext* ctx) {
  uint64_t n = prod_ctx.rows_produced(op->node_id());
  if (n > 0) ctx->CountRows(op->node_id(), n, /*is_root=*/false);
  if (!ctx->ok()) return;
  for (size_t i = 0; i < op->num_children(); ++i) {
    ReplayCounts(op->child(i), prod_ctx, ctx);
    if (!ctx->ok()) return;
  }
}

}  // namespace

// --------------------------------------------------------------------------
// Exchange

Exchange::Exchange(std::vector<OperatorPtr> producers,
                   std::vector<size_t> key_cols, size_t num_consumers)
    : producers_(std::move(producers)),
      key_cols_(std::move(key_cols)),
      num_consumers_(num_consumers < 1 ? 1 : num_consumers) {
  QPROG_CHECK(!producers_.empty());
}

Exchange::~Exchange() = default;

void Exchange::DoOpen(ExecContext* ctx) {
  // Lazy: producers open inside Materialize (inline or on their tasks), so
  // Open only resets state for a rewind.
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  materialized_ = false;
  spilled_ = false;
  buckets_.clear();
  bucket_runs_.clear();
  routed_rows_ = 0;
  rows_spilled_ = 0;
  rows_replayed_ = 0;
  drain_bucket_ = 0;
  drain_pos_ = 0;
  drain_open_ = false;
  finished_ = false;
}

size_t Exchange::BucketOf(const Row& row) const {
  if (num_consumers_ == 1) return 0;
  // FNV-1a-style mix over the key columns' grouping hashes: stable across
  // runs, partition layouts and pool sizes (it sees only data).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t c : key_cols_) {
    h ^= static_cast<uint64_t>(row[c].Hash());
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h % num_consumers_);
}

size_t Exchange::SubtreeCounterSpan() const {
  int max_id = node_id();
  for (const OperatorPtr& p : producers_) MaxNodeId(p.get(), &max_id);
  return static_cast<size_t>(max_id) + 1;
}

bool Exchange::SwitchToSpill(ExecContext* ctx) {
  SpillManager* spill = ctx->spill_manager();
  QPROG_CHECK(spill != nullptr);
  bucket_runs_.resize(num_consumers_);
  for (size_t b = 0; b < num_consumers_; ++b) {
    bucket_runs_[b] = spill->CreateRun(ctx, node_id(), "exchange.part");
    if (bucket_runs_[b] == nullptr) return false;
  }
  // Flush the in-memory buckets in bucket order; every flushed row is one
  // spill-work unit (and will cost one more when re-read), revising
  // total(Q) upward exactly like the other spilling operators.
  for (size_t b = 0; b < num_consumers_; ++b) {
    for (const Row& row : buckets_[b]) {
      if (!bucket_runs_[b]->Append(ctx, node_id(), row)) return false;
      ++rows_spilled_;
    }
    buckets_[b].clear();
    buckets_[b].shrink_to_fit();
  }
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  spilled_ = true;
  return true;
}

bool Exchange::FoldPartition(ExecContext* ctx, size_t partition,
                             PartitionOut* out) {
  if (!spilled_) {
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(out->rows);
    if (verdict == ChargeVerdict::kFailed) return false;
    if (verdict == ChargeVerdict::kSpill) {
      if (!SwitchToSpill(ctx)) return false;
    } else {
      charged_ += out->rows;
    }
  }
  for (size_t b = 0; b < num_consumers_; ++b) {
    std::vector<Row>& src = out->buckets[b];
    if (spilled_) {
      for (Row& row : src) {
        if (!bucket_runs_[b]->Append(ctx, node_id(), row)) return false;
        ++rows_spilled_;
      }
    } else {
      buckets_[b].insert(buckets_[b].end(),
                         std::make_move_iterator(src.begin()),
                         std::make_move_iterator(src.end()));
    }
    src.clear();
  }
  routed_rows_ += out->rows;
  if (ctx->telemetry() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kExchangePartition;
    ev.work = ctx->work();
    ev.node = node_id();
    ev.a = static_cast<double>(partition);
    ev.b = static_cast<double>(out->rows);
    ctx->telemetry()->Emit(std::move(ev));
  }
  return ctx->ok();
}

void Exchange::ProduceTask(TaskContext* tc, ExecContext* prod_ctx,
                           PhysicalOperator* producer,
                           PartitionOut* out) const {
  producer->Open(prod_ctx);
  Row row;
  while (prod_ctx->ok() && tc->ok() && producer->Next(prod_ctx, &row)) {
    // One exchange.send consult per routed row, on the partition's forked
    // injector — the schedule is partition-keyed, not thread-keyed.
    if (prod_ctx->ConsultFault(faults::kExchangeSend, node_id())) break;
    size_t b = BucketOf(row);
    out->buckets[b].push_back(std::move(row));
    ++out->rows;
  }
  producer->Close(prod_ctx);
  if (!prod_ctx->ok()) tc->RaiseError(prod_ctx->status());
}

bool Exchange::MaterializePooled(ExecContext* ctx, WorkerPool* pool) {
  const size_t n = producers_.size();
  // Per-task state is created on the query thread (TaskContext forks the
  // fault injector there; run/trace identity must not depend on workers).
  std::vector<std::unique_ptr<TaskContext>> tcs;
  std::vector<std::unique_ptr<ExecContext>> prod_ctxs;
  std::vector<PartitionOut> outs(n);
  tcs.reserve(n);
  prod_ctxs.reserve(n);
  const size_t span = SubtreeCounterSpan();
  for (size_t p = 0; p < n; ++p) {
    tcs.push_back(std::make_unique<TaskContext>(ctx, ExchangeTaskKey(p)));
    auto prod_ctx = std::make_unique<ExecContext>();
    prod_ctx->set_fault_injector(tcs.back()->io_fault_injector());
    prod_ctx->Reset(span);
    prod_ctxs.push_back(std::move(prod_ctx));
    outs[p].buckets.resize(num_consumers_);
  }
  Status escaped;
  {
    TaskGroup group(pool);
    for (size_t p = 0; p < n; ++p) {
      TaskContext* tc = tcs[p].get();
      ExecContext* prod_ctx = prod_ctxs[p].get();
      PhysicalOperator* producer = producers_[p].get();
      PartitionOut* out = &outs[p];
      group.Submit([this, tc, prod_ctx, producer, out]() {
        ProduceTask(tc, prod_ctx, producer, out);
      });
    }
    escaped = group.Wait();
  }
  // Fold in partition order. Counts replay first (firing checkpoints /
  // guard trips at the exact scheduled crossings), then the partition's
  // rows are charged and appended; a partition whose replay or charge
  // fails ends the fold — later partitions' rows are never admitted, which
  // is exactly where the serial engine would have stopped.
  for (size_t p = 0; p < n; ++p) {
    if (!ctx->ok()) break;
    ReplayCounts(producers_[p].get(), *prod_ctxs[p], ctx);
    if (!ctx->ok()) break;
    if (tcs[p]->failed()) {
      tcs[p]->FoldInto(ctx);
      break;
    }
    if (!FoldPartition(ctx, p, &outs[p])) break;
  }
  if (ctx->ok() && !escaped.ok()) ctx->RaiseError(escaped);
  return ctx->ok();
}

bool Exchange::MaterializeSerial(ExecContext* ctx) {
  for (size_t p = 0; p < producers_.size(); ++p) {
    if (!ctx->ok()) return false;
    PhysicalOperator* producer = producers_[p].get();
    PartitionOut out;
    out.buckets.resize(num_consumers_);
    producer->Open(ctx);
    Row row;
    while (ctx->ok() && producer->Next(ctx, &row)) {
      if (ctx->ConsultFault(faults::kExchangeSend, node_id())) break;
      size_t b = BucketOf(row);
      out.buckets[b].push_back(std::move(row));
      ++out.rows;
    }
    producer->Close(ctx);
    if (!ctx->ok()) return false;
    if (!FoldPartition(ctx, p, &out)) return false;
  }
  return ctx->ok();
}

bool Exchange::Materialize(ExecContext* ctx) {
  if (ctx->telemetry() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kExchangeBegin;
    ev.work = ctx->work();
    ev.node = node_id();
    ev.a = static_cast<double>(producers_.size());
    ev.b = static_cast<double>(num_consumers_);
    ctx->telemetry()->Emit(std::move(ev));
  }
  buckets_.assign(num_consumers_, {});
  WorkerPool* pool = ctx->worker_pool();
  bool ok = pool != nullptr ? MaterializePooled(ctx, pool)
                            : MaterializeSerial(ctx);
  if (ok && spilled_) {
    for (size_t b = 0; b < num_consumers_; ++b) {
      if (!bucket_runs_[b]->FinishWrite(ctx, node_id())) return false;
    }
  }
  materialized_ = ok;
  return ok;
}

bool Exchange::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok() || ctx->ConsultFault(faults::kExchangeRecv, node_id())) {
    return false;
  }
  if (!materialized_ && !Materialize(ctx)) return false;
  while (drain_bucket_ < num_consumers_) {
    if (spilled_) {
      SpillRun* run = bucket_runs_[drain_bucket_].get();
      if (!drain_open_) {
        if (!run->OpenRead(ctx, node_id())) return false;
        drain_open_ = true;
      }
      Row row;
      if (run->ReadNext(ctx, node_id(), &row)) {
        ++rows_replayed_;
        *out = std::move(row);
        Emit(ctx);
        return true;
      }
      if (!ctx->ok()) return false;
      drain_open_ = false;
      ++drain_bucket_;
      continue;
    }
    std::vector<Row>& bucket = buckets_[drain_bucket_];
    if (drain_pos_ < bucket.size()) {
      *out = bucket[drain_pos_++];
      Emit(ctx);
      return true;
    }
    drain_pos_ = 0;
    ++drain_bucket_;
  }
  finished_ = true;
  return false;
}

void Exchange::DoClose(ExecContext* ctx) {
  // Producers open and close inside Materialize (inline or on their tasks);
  // Close here only drops buffered state. Runs delete their temp files on
  // destruction, so an aborted run leaks nothing.
  buckets_.clear();
  bucket_runs_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string Exchange::label() const {
  return StringPrintf("Exchange(%zu->%zu%s)", producers_.size(),
                      num_consumers_, spilled_ ? ", spilled" : "");
}

void Exchange::FillProgressState(const ExecContext& ctx,
                                 ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = materialized_;
  state->build_rows = routed_rows_;
  // Every spilled-but-unread row still owes one re-read pass.
  state->spill_rows_pending = rows_spilled_ - rows_replayed_;
}

// --------------------------------------------------------------------------
// PartialAggregate

namespace {

Schema MakePartialSchema(const std::vector<std::string>& group_names,
                         const std::vector<AggregateDesc>& aggregates) {
  std::vector<Field> fields;
  for (const std::string& name : group_names) {
    fields.emplace_back(name, TypeId::kNull);
  }
  for (const AggregateDesc& agg : aggregates) {
    if (agg.func == AggFunc::kAvg) {
      fields.emplace_back(agg.output_name + "_sum", TypeId::kNull);
      fields.emplace_back(agg.output_name + "_count", TypeId::kNull);
    } else {
      fields.emplace_back(agg.output_name, TypeId::kNull);
    }
  }
  return Schema(std::move(fields));
}

Schema MakeFinalSchema(const std::vector<std::string>& group_names,
                       const std::vector<AggregateDesc>& aggregates) {
  std::vector<Field> fields;
  for (const std::string& name : group_names) {
    fields.emplace_back(name, TypeId::kNull);
  }
  for (const AggregateDesc& agg : aggregates) {
    fields.emplace_back(agg.output_name, TypeId::kNull);
  }
  return Schema(std::move(fields));
}

/// NULLs-first lexicographic group-key order: the canonical output order of
/// a decomposed aggregation (Value::Compare refuses NULLs, so handle them
/// explicitly; keys are unique, so ties never reach the tail).
bool GroupKeyLess(const Row& a, const Row& b, size_t num_group_cols) {
  for (size_t i = 0; i < num_group_cols; ++i) {
    const Value& va = a[i];
    const Value& vb = b[i];
    if (va.is_null() || vb.is_null()) {
      if (va.is_null() && vb.is_null()) continue;
      return va.is_null();
    }
    int c = va.Compare(vb);
    if (c != 0) return c < 0;
  }
  return false;
}

}  // namespace

PartialAggregate::PartialAggregate(OperatorPtr child,
                                   std::vector<ExprPtr> group_exprs,
                                   std::vector<std::string> group_names,
                                   std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakePartialSchema(group_names, aggregates_)) {
  QPROG_CHECK_MSG(Decomposable(aggregates_),
                  "PartialAggregate: COUNT(DISTINCT) is not decomposable");
}

bool PartialAggregate::Decomposable(const std::vector<AggregateDesc>& descs) {
  for (const AggregateDesc& d : descs) {
    if (d.func == AggFunc::kCountDistinct) return false;
  }
  return true;
}

void PartialAggregate::DoOpen(ExecContext* ctx) {
  child_->Open(ctx);
  built_ = false;
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
  cursor_ = 0;
  finished_ = false;
}

void PartialAggregate::Build(ExecContext* ctx) {
  ctx->ConsultFault(faults::kHashAggregateBuild, node_id());
  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const ExprPtr& e : group_exprs_) key.push_back(e->Eval(row));
    auto [it, inserted] = group_index_.try_emplace(key, group_keys_.size());
    if (inserted) {
      group_keys_.push_back(std::move(key));
      // One accumulator per partial-state *column*: AVG keeps a (kSum,
      // kCount) pair whose Result()s are exactly its two partial columns.
      std::vector<AggAccumulator> states;
      for (const AggregateDesc& agg : aggregates_) {
        if (agg.func == AggFunc::kAvg) {
          states.emplace_back(AggFunc::kSum);
          states.emplace_back(AggFunc::kCount);
        } else {
          states.emplace_back(agg.func);
        }
      }
      group_states_.push_back(std::move(states));
    }
    std::vector<AggAccumulator>& states = group_states_[it->second];
    size_t col = 0;
    for (const AggregateDesc& agg : aggregates_) {
      if (agg.arg == nullptr) {
        states[col].AddCountStar();
      } else {
        Value v = agg.arg->Eval(row);
        for (size_t w = 0; w < StateWidth(agg.func); ++w) {
          states[col + w].Add(v);
        }
      }
      col += StateWidth(agg.func);
    }
  }
  built_ = true;
}

bool PartialAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!built_) {
    Build(ctx);
    if (!ctx->ok()) return false;
  }
  if (cursor_ >= group_keys_.size()) {
    finished_ = true;
    return false;
  }
  const Row& key = group_keys_[cursor_];
  const std::vector<AggAccumulator>& states = group_states_[cursor_];
  ++cursor_;
  Row result;
  result.reserve(schema_.num_fields());
  result.insert(result.end(), key.begin(), key.end());
  for (const AggAccumulator& acc : states) result.push_back(acc.Result());
  *out = std::move(result);
  Emit(ctx);
  return true;
}

void PartialAggregate::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  group_index_.clear();
  group_keys_.clear();
  group_states_.clear();
}

std::string PartialAggregate::label() const {
  std::vector<std::string> parts;
  for (const AggregateDesc& agg : aggregates_) {
    parts.push_back(AggFuncToString(agg.func));
  }
  return StringPrintf("PartialAggregate(%zu keys; %s)", group_exprs_.size(),
                      JoinStrings(parts, ",").c_str());
}

void PartialAggregate::FillProgressState(const ExecContext& ctx,
                                         ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = built_;
  state->groups_so_far = group_keys_.size();
}

// --------------------------------------------------------------------------
// FinalAggregate

FinalAggregate::FinalAggregate(OperatorPtr child, size_t num_group_cols,
                               std::vector<std::string> group_names,
                               std::vector<AggregateDesc> aggregates)
    : child_(std::move(child)),
      num_group_cols_(num_group_cols),
      aggregates_(std::move(aggregates)),
      schema_(MakeFinalSchema(group_names, aggregates_)) {
  QPROG_CHECK_MSG(PartialAggregate::Decomposable(aggregates_),
                  "FinalAggregate: COUNT(DISTINCT) is not decomposable");
}

void FinalAggregate::DoOpen(ExecContext* ctx) {
  child_->Open(ctx);
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  built_ = false;
  results_.clear();
  cursor_ = 0;
  finished_ = false;
}

void FinalAggregate::MergeRow(const Row& row,
                              std::vector<MergedAgg>* states) const {
  size_t col = num_group_cols_;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    MergedAgg& m = (*states)[i];
    switch (aggregates_[i].func) {
      case AggFunc::kCount:
        m.count += row[col].int64_value();
        break;
      case AggFunc::kSum:
        if (!row[col].is_null()) {
          m.sum += row[col].AsDouble();
          m.seen = true;
        }
        break;
      case AggFunc::kAvg: {
        // Partial layout: (<name>_sum, <name>_count); sum is NULL exactly
        // when count is zero.
        int64_t cnt = row[col + 1].int64_value();
        if (cnt > 0) {
          m.sum += row[col].AsDouble();
          m.count += cnt;
        }
        break;
      }
      case AggFunc::kMin:
        if (!row[col].is_null() &&
            (!m.seen || row[col].Compare(m.extremum) < 0)) {
          m.extremum = row[col];
          m.seen = true;
        }
        break;
      case AggFunc::kMax:
        if (!row[col].is_null() &&
            (!m.seen || row[col].Compare(m.extremum) > 0)) {
          m.extremum = row[col];
          m.seen = true;
        }
        break;
      case AggFunc::kCountDistinct:
        QPROG_CHECK_MSG(false, "unreachable: rejected at construction");
        break;
    }
    col += PartialAggregate::StateWidth(aggregates_[i].func);
  }
}

Value FinalAggregate::FinalValue(AggFunc func, const MergedAgg& m) const {
  switch (func) {
    case AggFunc::kCount:
      return Value::Int64(m.count);
    case AggFunc::kSum:
      return m.seen ? Value::Double(m.sum) : Value::Null();
    case AggFunc::kAvg:
      return m.count > 0
                 ? Value::Double(m.sum / static_cast<double>(m.count))
                 : Value::Null();
    case AggFunc::kMin:
    case AggFunc::kMax:
      return m.seen ? m.extremum : Value::Null();
    case AggFunc::kCountDistinct:
      break;
  }
  return Value::Null();
}

void FinalAggregate::Build(ExecContext* ctx) {
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Row> keys;
  std::vector<std::vector<MergedAgg>> states;
  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    Row key(row.begin(), row.begin() + static_cast<long>(num_group_cols_));
    auto [it, inserted] = index.try_emplace(key, keys.size());
    if (inserted) {
      // One group = one result row held to the end: the post-spill charge
      // (kill threshold only) is the memory tripwire, matching the parallel
      // aggregate replay's per-task contract — the soft budget already did
      // its job at the exchange.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
      ++charged_;
      keys.push_back(std::move(key));
      states.emplace_back(aggregates_.size());
    }
    MergeRow(row, &states[it->second]);
  }
  if (!ctx->ok()) return;
  results_.reserve(keys.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    Row result;
    result.reserve(schema_.num_fields());
    result.insert(result.end(), keys[g].begin(), keys[g].end());
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      result.push_back(FinalValue(aggregates_[i].func, states[g][i]));
    }
    results_.push_back(std::move(result));
  }
  std::sort(results_.begin(), results_.end(),
            [this](const Row& a, const Row& b) {
              return GroupKeyLess(a, b, num_group_cols_);
            });
  built_ = true;
}

bool FinalAggregate::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!built_) {
    Build(ctx);
    if (!ctx->ok()) return false;
  }
  if (cursor_ >= results_.size()) {
    finished_ = true;
    return false;
  }
  *out = results_[cursor_++];
  Emit(ctx);
  return true;
}

void FinalAggregate::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  results_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string FinalAggregate::label() const {
  std::vector<std::string> parts;
  for (const AggregateDesc& agg : aggregates_) {
    parts.push_back(AggFuncToString(agg.func));
  }
  return StringPrintf("FinalAggregate(%zu keys; %s)", num_group_cols_,
                      JoinStrings(parts, ",").c_str());
}

void FinalAggregate::FillProgressState(const ExecContext& ctx,
                                       ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = built_;
  state->groups_so_far = results_.size();
}

}  // namespace qprog
