// QueryGuard: the resource envelope of one query execution — a cancellation
// token, a wall-clock deadline, a work budget (getnext calls) and a
// buffered-row budget for blocking operators. The guard itself is passive:
// ExecContext consults it on the CountRow hot path at an amortized interval
// (one integer compare on the fast path) and converts violations into sticky
// execution errors (kCancelled / kDeadlineExceeded / kResourceExhausted).
//
// Two members are safe to call concurrently with the executing query:
// RequestCancel() (a monitoring thread flips the token; the executor observes
// it within one guard-check interval) and set_max_buffered_rows() (a memory
// governor revokes spill headroom mid-run by shrinking the *soft* budget; the
// executor observes the new value at its next buffered-row charge and spills
// instead of buffering — see server/memory_governor.h). All other budgets,
// the kill threshold, and the deadline must be configured before execution
// starts.

#ifndef QPROG_EXEC_QUERY_GUARD_H_
#define QPROG_EXEC_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/macros.h"
#include "common/status.h"

namespace qprog {

class QueryGuard {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();

  /// Default spacing (in getnext calls) between guard checks. When a work
  /// observer is also installed, checks additionally piggyback on every
  /// observation, so cancellation is always honored within one observation
  /// interval.
  static constexpr uint64_t kDefaultCheckInterval = 256;

  QueryGuard() = default;
  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  // -- cancellation ---------------------------------------------------------
  /// Requests cooperative cancellation. Thread-safe; idempotent.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Re-arms the guard for another run (clears the cancel token only; budgets
  /// and deadline are sticky configuration).
  void ResetCancel() { cancel_.store(false, std::memory_order_relaxed); }

  // -- budgets --------------------------------------------------------------
  /// Aborts the query with kResourceExhausted once its work counter (total
  /// getnext calls) reaches `max_work`. A query needing fewer calls than the
  /// budget completes normally.
  void set_max_work(uint64_t max_work) { max_work_ = max_work; }
  uint64_t max_work() const { return max_work_; }

  /// Bounds the rows buffered simultaneously by blocking operators (sort
  /// runs, hash-join tables, aggregate groups, merge-join key groups) — the
  /// engine's proxy for a memory budget. Without a SpillManager attached to
  /// the ExecContext, exceeding it aborts the query with kResourceExhausted;
  /// with one attached it is the *soft* threshold that triggers a spill pass
  /// instead (graceful degradation), and only the separate kill threshold
  /// below aborts.
  ///
  /// Atomic (relaxed): a memory governor may *shrink* this concurrently with
  /// execution to revoke spill headroom from a victim query — the executor
  /// reads it per charge, so a revocation takes effect at the victim's next
  /// buffered-row charge and manifests as an earlier spill, never as an
  /// abort. Growing it mid-run is also safe (a grant-back merely delays the
  /// next spill).
  void set_max_buffered_rows(uint64_t max_rows) {
    max_buffered_rows_.store(max_rows, std::memory_order_relaxed);
  }
  uint64_t max_buffered_rows() const {
    return max_buffered_rows_.load(std::memory_order_relaxed);
  }

  /// Hard ceiling on buffered rows once spilling is engaged: exceeding it
  /// aborts with kResourceExhausted even though a SpillManager is attached
  /// (e.g. a single Grace-join partition too skewed to fit). Defaults to
  /// kNoLimit; meaningful only when >= max_buffered_rows.
  void set_max_buffered_rows_kill(uint64_t max_rows) {
    max_buffered_rows_kill_ = max_rows;
  }
  uint64_t max_buffered_rows_kill() const { return max_buffered_rows_kill_; }

  // -- deadline -------------------------------------------------------------
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_timeout(Clock::duration timeout) {
    set_deadline(Clock::now() + timeout);
  }
  void clear_deadline() { has_deadline_ = false; }
  bool has_deadline() const { return has_deadline_; }

  /// How many getnext calls may elapse between guard checks (amortizes the
  /// clock read and atomic load off the hot path).
  void set_check_interval(uint64_t interval) {
    QPROG_CHECK(interval > 0);
    check_interval_ = interval;
  }
  uint64_t check_interval() const { return check_interval_; }

  /// Evaluates every constraint against the current work counter. Returns
  /// the first violation (cancel, then work budget, then deadline), or OK.
  Status Check(uint64_t work) const {
    if (cancel_requested()) {
      return qprog::Cancelled("query cancelled by request");
    }
    if (work >= max_work_) {
      return qprog::ResourceExhausted("work budget exhausted");
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return qprog::DeadlineExceeded("query deadline exceeded");
    }
    return OkStatus();
  }

 private:
  std::atomic<bool> cancel_{false};
  uint64_t max_work_ = kNoLimit;
  std::atomic<uint64_t> max_buffered_rows_{kNoLimit};
  uint64_t max_buffered_rows_kill_ = kNoLimit;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t check_interval_ = kDefaultCheckInterval;
};

}  // namespace qprog

#endif  // QPROG_EXEC_QUERY_GUARD_H_
