// PhysicalPlan: owns an operator tree, assigns node ids, and provides
// execution drivers. Finalize() must run before execution so the getnext
// counters in ExecContext line up with node ids.

#ifndef QPROG_EXEC_PLAN_H_
#define QPROG_EXEC_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace qprog {

class PhysicalPlan {
 public:
  /// Takes ownership of the operator tree and finalizes it (assigns
  /// pre-order node ids; marks the root).
  explicit PhysicalPlan(OperatorPtr root);

  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  PhysicalOperator* root() { return root_.get(); }
  const PhysicalOperator* root() const { return root_.get(); }

  /// All operators in pre-order; node_id() equals the position here.
  const std::vector<PhysicalOperator*>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Indented tree rendering.
  std::string ToString() const;

 private:
  OperatorPtr root_;
  std::vector<PhysicalOperator*> nodes_;
};

/// Runs the plan to completion. Returns the number of rows the root
/// produced. `sink` (optional) receives each output row.
uint64_t ExecutePlan(PhysicalPlan* plan, ExecContext* ctx,
                     const std::function<void(const Row&)>& sink = nullptr);

/// Runs the plan and collects the root's output.
std::vector<Row> CollectRows(PhysicalPlan* plan, ExecContext* ctx);

/// Convenience: run with a throwaway context, returning the output rows.
std::vector<Row> CollectRows(PhysicalPlan* plan);

/// Total getnext calls of a complete execution of `plan` — total(Q) in the
/// paper's notation. Runs the plan to completion on a fresh context.
uint64_t MeasureTotalWork(PhysicalPlan* plan);

}  // namespace qprog

#endif  // QPROG_EXEC_PLAN_H_
