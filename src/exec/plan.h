// PhysicalPlan: owns an operator tree, assigns node ids, and provides
// execution drivers. Finalize() must run before execution so the getnext
// counters in ExecContext line up with node ids.

#ifndef QPROG_EXEC_PLAN_H_
#define QPROG_EXEC_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/operator.h"

namespace qprog {

class PhysicalPlan {
 public:
  /// Takes ownership of the operator tree and finalizes it (assigns
  /// pre-order node ids; marks the root).
  explicit PhysicalPlan(OperatorPtr root);

  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  PhysicalOperator* root() { return root_.get(); }
  const PhysicalOperator* root() const { return root_.get(); }

  /// All operators in pre-order; node_id() equals the position here.
  const std::vector<PhysicalOperator*>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Indented tree rendering.
  std::string ToString() const;

 private:
  OperatorPtr root_;
  std::vector<PhysicalOperator*> nodes_;
};

/// Runs the plan until completion or the context's first execution error
/// (guard violation, injected fault). Returns the number of rows the root
/// produced; `ctx->status()` tells completion from abort. `sink` (optional)
/// receives each output row.
uint64_t ExecutePlan(PhysicalPlan* plan, ExecContext* ctx,
                     const std::function<void(const Row&)>& sink = nullptr);

/// Status-propagating driver: like ExecutePlan, but returns the execution's
/// final Status (OK on completion; kCancelled / kDeadlineExceeded /
/// kResourceExhausted / the fault's status on an aborted run).
Status RunPlan(PhysicalPlan* plan, ExecContext* ctx,
               const std::function<void(const Row&)>& sink = nullptr);

/// Batched driver: pulls RowBatch-es of up to `batch_size` rows from the
/// root instead of one row at a time. Produces byte-identical output,
/// getnext counters, checkpoints, and error rows to ExecutePlan — operators
/// advance work accounting per row at the exact tuple-at-a-time points, so
/// a batch of k rows advances each crossed counter by k and any mid-batch
/// fault/guard/cancel surfaces at the same row it would untuple-batched
/// (the batch is split at the fault point). `batch_size == 0` falls back to
/// the tuple driver.
uint64_t ExecutePlanBatched(PhysicalPlan* plan, ExecContext* ctx,
                            size_t batch_size,
                            const std::function<void(const Row&)>& sink =
                                nullptr);

/// Status-propagating form of ExecutePlanBatched.
Status RunPlanBatched(PhysicalPlan* plan, ExecContext* ctx, size_t batch_size,
                      const std::function<void(const Row&)>& sink = nullptr);

/// Runs the plan and collects the root's output. On an aborted run the
/// returned rows are the prefix produced before the error (check
/// `ctx->status()`); use TryCollectRows to get the Status instead.
std::vector<Row> CollectRows(PhysicalPlan* plan, ExecContext* ctx);

/// Convenience: run with a throwaway context, returning the output rows.
std::vector<Row> CollectRows(PhysicalPlan* plan);

/// Runs the plan and returns its full output, or the execution error (the
/// partial prefix is discarded).
StatusOr<std::vector<Row>> TryCollectRows(PhysicalPlan* plan, ExecContext* ctx);

/// Batched form of TryCollectRows; `batch_size == 0` is the tuple path.
StatusOr<std::vector<Row>> TryCollectRowsBatched(PhysicalPlan* plan,
                                                 ExecContext* ctx,
                                                 size_t batch_size);

/// Total getnext calls of a complete execution of `plan` — total(Q) in the
/// paper's notation. Runs the plan to completion on a fresh context.
uint64_t MeasureTotalWork(PhysicalPlan* plan);

/// True when every operator in the plan supports re-execution via Open()
/// (see PhysicalOperator::SupportsRewind).
bool PlanSupportsRewind(const PhysicalPlan& plan);

/// Structural fingerprint of the plan: FNV-1a 64 over the pre-order
/// (kind, child-count) sequence. Two plans share a signature iff they have
/// the same operator tree shape, independent of literals, estimates, and
/// runtime state. Cross-run priors (obs/cross_run_registry.h) are keyed by
/// (template fingerprint, node id) and guarded by this signature: a template
/// whose plan shape changed — new index picked, join reordered — must not
/// re-seed node estimates from the old shape's history.
uint64_t PlanSignature(const PhysicalPlan& plan);

}  // namespace qprog

#endif  // QPROG_EXEC_PLAN_H_
