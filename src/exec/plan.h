// PhysicalPlan: owns an operator tree, assigns node ids, and provides
// execution drivers. Finalize() must run before execution so the getnext
// counters in ExecContext line up with node ids.

#ifndef QPROG_EXEC_PLAN_H_
#define QPROG_EXEC_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/operator.h"

namespace qprog {

class PhysicalPlan {
 public:
  /// Takes ownership of the operator tree and finalizes it (assigns
  /// pre-order node ids; marks the root).
  explicit PhysicalPlan(OperatorPtr root);

  PhysicalPlan(const PhysicalPlan&) = delete;
  PhysicalPlan& operator=(const PhysicalPlan&) = delete;
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  PhysicalOperator* root() { return root_.get(); }
  const PhysicalOperator* root() const { return root_.get(); }

  /// All operators in pre-order; node_id() equals the position here.
  const std::vector<PhysicalOperator*>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Indented tree rendering.
  std::string ToString() const;

 private:
  OperatorPtr root_;
  std::vector<PhysicalOperator*> nodes_;
};

class QueryGuard;
class FaultInjector;
class SpillManager;
class WorkerPool;
class TelemetryCollector;

namespace exec {

/// Options for the unified driver (exec::Drive). One struct replaces the old
/// ExecutePlan/RunPlan/TryCollectRows × *Batched driver matrix: batch size,
/// row delivery, and (for context-free runs) the full environment wiring are
/// all knobs here instead of separate entry points.
struct DriveOptions {
  /// Execution context to drive against. Null = Drive builds a throwaway
  /// context internally and wires the environment pointers below into it.
  /// When non-null, the caller's context is used as-is and the environment
  /// pointers are ignored (the caller already wired what it wants).
  ExecContext* ctx = nullptr;

  /// Rows per RowBatch pulled from the root; 0 = tuple-at-a-time. The batched
  /// path produces byte-identical output, getnext counters, checkpoints, and
  /// error rows to the tuple path — operators advance work accounting per row
  /// at the exact tuple-at-a-time points, so a mid-batch fault/guard/cancel
  /// surfaces at the same row and the batch is split there.
  size_t batch_size = 0;

  /// Called with each root output row, in production order.
  std::function<void(const Row&)> sink;

  /// Collect root output rows into DriveResult::rows.
  bool collect_rows = false;

  // -- environment wiring, applied only when `ctx` is null --------------------
  QueryGuard* guard = nullptr;
  FaultInjector* fault_injector = nullptr;
  SpillManager* spill_manager = nullptr;
  WorkerPool* worker_pool = nullptr;
  TelemetryCollector* telemetry = nullptr;
};

/// Outcome of one Drive call.
struct DriveResult {
  /// The execution's final status: OK on completion; kCancelled /
  /// kDeadlineExceeded / kResourceExhausted / the fault's status on abort.
  Status status;
  /// Rows the root produced (delivered to sink/rows before any abort).
  uint64_t root_rows = 0;
  /// Total counted work of the run — total(Q) when status is OK.
  uint64_t work = 0;
  /// Root output when collect_rows was set. On an aborted run this holds the
  /// prefix produced before the error.
  std::vector<Row> rows;

  bool ok() const { return status.ok(); }
};

/// The single plan-execution entry point. Runs `plan` until completion or
/// the context's first execution error (guard violation, injected fault,
/// cancellation). Every other driver in this header is a thin forwarder.
DriveResult Drive(PhysicalPlan* plan, const DriveOptions& opts = {});

}  // namespace exec

/// Deprecated driver matrix — thin forwarders onto exec::Drive, kept for one
/// PR so out-of-tree callers migrate on their own schedule.
[[deprecated("use exec::Drive")]] uint64_t ExecutePlan(
    PhysicalPlan* plan, ExecContext* ctx,
    const std::function<void(const Row&)>& sink = nullptr);

[[deprecated("use exec::Drive")]] Status RunPlan(
    PhysicalPlan* plan, ExecContext* ctx,
    const std::function<void(const Row&)>& sink = nullptr);

[[deprecated("use exec::Drive with batch_size")]] uint64_t ExecutePlanBatched(
    PhysicalPlan* plan, ExecContext* ctx, size_t batch_size,
    const std::function<void(const Row&)>& sink = nullptr);

[[deprecated("use exec::Drive with batch_size")]] Status RunPlanBatched(
    PhysicalPlan* plan, ExecContext* ctx, size_t batch_size,
    const std::function<void(const Row&)>& sink = nullptr);

[[deprecated("use exec::Drive with collect_rows")]] StatusOr<std::vector<Row>>
TryCollectRows(PhysicalPlan* plan, ExecContext* ctx);

[[deprecated("use exec::Drive with collect_rows + batch_size")]] StatusOr<
    std::vector<Row>>
TryCollectRowsBatched(PhysicalPlan* plan, ExecContext* ctx, size_t batch_size);

/// Runs the plan and collects the root's output (sugar over exec::Drive).
/// On an aborted run the returned rows are the prefix produced before the
/// error (check `ctx->status()`).
std::vector<Row> CollectRows(PhysicalPlan* plan, ExecContext* ctx);

/// Convenience: run with a throwaway context, returning the output rows.
std::vector<Row> CollectRows(PhysicalPlan* plan);

/// Total getnext calls of a complete execution of `plan` — total(Q) in the
/// paper's notation. Runs the plan to completion on a fresh context.
uint64_t MeasureTotalWork(PhysicalPlan* plan);

/// True when every operator in the plan supports re-execution via Open()
/// (see PhysicalOperator::SupportsRewind).
bool PlanSupportsRewind(const PhysicalPlan& plan);

/// Structural fingerprint of the plan: FNV-1a 64 over the pre-order
/// (kind, child-count) sequence. Two plans share a signature iff they have
/// the same operator tree shape, independent of literals, estimates, and
/// runtime state. Cross-run priors (obs/cross_run_registry.h) are keyed by
/// (template fingerprint, node id) and guarded by this signature: a template
/// whose plan shape changed — new index picked, join reordered — must not
/// re-seed node estimates from the old shape's history.
uint64_t PlanSignature(const PhysicalPlan& plan);

}  // namespace qprog

#endif  // QPROG_EXEC_PLAN_H_
