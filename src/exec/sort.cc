#include "exec/sort.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/fault_injector.h"

namespace qprog {

Sort::Sort(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(!keys_.empty());
  set_is_linear(true);
}

void Sort::DoOpen(ExecContext* ctx) {
  finished_ = false;
  materialized_ = false;
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  if (ctx->ConsultFault(faults::kSortOpen, node_id())) return;
  child_->Open(ctx);
}

void Sort::Materialize(ExecContext* ctx) {
  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kSortBuild, node_id())) return;
    rows_.push_back(std::move(row));
    ++charged_;
    if (!ctx->ChargeBufferedRows(1)) return;
  }
  if (!ctx->ok()) return;  // partial input: do not sort or emit

  // Precompute the key tuple per row, then sort indices.
  const size_t nkeys = keys_.size();
  std::vector<Row> key_rows(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    key_rows[i].reserve(nkeys);
    for (const SortKey& k : keys_) key_rows[i].push_back(k.expr->Eval(rows_[i]));
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < nkeys; ++k) {
      const Value& va = key_rows[a][k];
      const Value& vb = key_rows[b][k];
      int cmp;
      if (va.is_null() || vb.is_null()) {
        // NULLs order lowest.
        cmp = (va.is_null() ? 0 : 1) - (vb.is_null() ? 0 : 1);
      } else {
        cmp = va.Compare(vb);
      }
      if (cmp != 0) return keys_[k].descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  materialized_ = true;
}

bool Sort::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!materialized_) {
    Materialize(ctx);
    if (!ctx->ok()) return false;
  }
  if (cursor_ >= rows_.size()) {
    finished_ = true;
    return false;
  }
  *out = rows_[cursor_++];
  Emit(ctx);
  return true;
}

void Sort::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string Sort::label() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() + (k.descending ? " DESC" : ""));
  }
  return StringPrintf("Sort(%s)", JoinStrings(parts, ", ").c_str());
}

void Sort::FillProgressState(const ExecContext& ctx,
                             ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = materialized_;
  state->build_rows = rows_.size();
}

}  // namespace qprog
