#include "exec/sort.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/fault_injector.h"

namespace qprog {

Sort::Sort(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(!keys_.empty());
  set_is_linear(true);
}

void Sort::DoOpen(ExecContext* ctx) {
  finished_ = false;
  materialized_ = false;
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  runs_.clear();
  merge_.clear();
  merging_ = false;
  spilled_rows_ = 0;
  reread_rows_ = 0;
  if (ctx->ConsultFault(faults::kSortOpen, node_id())) return;
  child_->Open(ctx);
}

Row Sort::MakeKey(const Row& row) const {
  Row key;
  key.reserve(keys_.size());
  for (const SortKey& k : keys_) key.push_back(k.expr->Eval(row));
  return key;
}

bool Sort::KeyLess(const Row& a, const Row& b) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    const Value& va = a[k];
    const Value& vb = b[k];
    int cmp;
    if (va.is_null() || vb.is_null()) {
      // NULLs order lowest.
      cmp = (va.is_null() ? 0 : 1) - (vb.is_null() ? 0 : 1);
    } else {
      cmp = va.Compare(vb);
    }
    if (cmp != 0) return keys_[k].descending ? cmp > 0 : cmp < 0;
  }
  return false;
}

void Sort::SortRows(std::vector<Row>* rows) const {
  // Precompute the key tuple per row, then sort indices.
  std::vector<Row> key_rows(rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    key_rows[i] = MakeKey((*rows)[i]);
  }
  std::vector<size_t> order(rows->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return KeyLess(key_rows[a], key_rows[b]);
  });
  std::vector<Row> sorted;
  sorted.reserve(rows->size());
  for (size_t i : order) sorted.push_back(std::move((*rows)[i]));
  *rows = std::move(sorted);
}

bool Sort::SpillBuffer(ExecContext* ctx) {
  SortRows(&rows_);
  SpillRunPtr run =
      ctx->spill_manager()->CreateRun(ctx, node_id(), "sort.run");
  if (run == nullptr) return false;
  for (const Row& row : rows_) {
    if (!run->Append(ctx, node_id(), row)) return false;
  }
  if (!run->FinishWrite(ctx, node_id())) return false;
  spilled_rows_ += rows_.size();
  runs_.push_back(std::move(run));
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  return true;
}

void Sort::Materialize(ExecContext* ctx) {
  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kSortBuild, node_id())) return;
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill) {
      if (!rows_.empty() && !SpillBuffer(ctx)) return;
      // The buffer is now empty and one row of headroom is this operator's
      // minimum working set. Other operators may legitimately hold the whole
      // soft budget (reloaded partitions answer to the kill threshold only),
      // so this charge does too — starvation must not abort a spilling sort.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
    }
    ++charged_;
    rows_.push_back(std::move(row));
  }
  if (!ctx->ok()) return;  // partial input: do not sort or emit

  if (runs_.empty()) {
    SortRows(&rows_);
    materialized_ = true;
    return;
  }
  // At least one run exists: flush the tail buffer too, so emission is a
  // uniform k-way merge of sorted runs.
  if (!rows_.empty() && !SpillBuffer(ctx)) return;
  merge_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i]->OpenRead(ctx, node_id())) return;
    if (!FillSource(ctx, i)) return;
  }
  merging_ = true;
  materialized_ = true;
}

bool Sort::FillSource(ExecContext* ctx, size_t i) {
  MergeSource& src = merge_[i];
  bool had_row = src.valid;
  src.valid = false;
  Row row;
  if (runs_[i]->ReadNext(ctx, node_id(), &row)) {
    src.row = std::move(row);
    src.key = MakeKey(src.row);
    src.valid = true;
    ++reread_rows_;
    if (!had_row) {
      // The merge holds one buffered row per live run — charged against the
      // kill threshold only; the soft budget already triggered the spill.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return false;
      ++charged_;
    }
    return true;
  }
  if (had_row && charged_ > 0) {
    ctx->ReleaseBufferedRows(1);
    --charged_;
  }
  return ctx->ok();
}

bool Sort::NextMerged(ExecContext* ctx, Row* out) {
  // Smallest head wins; a strict comparison keeps ties on the earliest run,
  // which preserves input order (runs were flushed in input order and each
  // run is stable-sorted) — the merge stays a stable sort.
  int best = -1;
  for (size_t i = 0; i < merge_.size(); ++i) {
    if (!merge_[i].valid) continue;
    if (best < 0 || KeyLess(merge_[i].key, merge_[static_cast<size_t>(best)].key)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    finished_ = ctx->ok();
    return false;
  }
  *out = std::move(merge_[static_cast<size_t>(best)].row);
  if (!FillSource(ctx, static_cast<size_t>(best))) return false;
  if (!ctx->ok()) return false;
  Emit(ctx);
  return true;
}

bool Sort::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!materialized_) {
    Materialize(ctx);
    if (!ctx->ok()) return false;
  }
  if (merging_) return NextMerged(ctx, out);
  if (cursor_ >= rows_.size()) {
    finished_ = true;
    return false;
  }
  *out = rows_[cursor_++];
  Emit(ctx);
  return true;
}

void Sort::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  rows_.clear();
  merge_.clear();
  runs_.clear();  // deletes any remaining spill temp files
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string Sort::label() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() + (k.descending ? " DESC" : ""));
  }
  return StringPrintf("Sort(%s)", JoinStrings(parts, ", ").c_str());
}

void Sort::FillProgressState(const ExecContext& ctx,
                             ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = materialized_;
  state->build_rows = merging_ ? spilled_rows_ : rows_.size();
  state->spill_rows_pending = spilled_rows_ - reread_rows_;
}

}  // namespace qprog
