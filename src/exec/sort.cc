#include "exec/sort.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/fault_injector.h"
#include "exec/query_guard.h"
#include "exec/worker_pool.h"

namespace qprog {

namespace {

// Task-key tags (DESIGN.md §10 task-key registry): the high byte names the
// task kind, the low bits its data identity, so forked fault-injector
// schedules replay identically at every thread count.
constexpr uint64_t kSortRunTaskTag = 0x50ULL << 56;    // | level-0 run index
constexpr uint64_t kSortMergeTaskTag = 0x51ULL << 56;  // | merge group index

// Run-formation tasks in flight between barriers. A fixed constant — never
// the pool size — so the fold points (and with them the trace) depend only
// on the data. Also the memory bound: at most this many handed-off sort
// buffers exist at once, over and above the charged in-memory buffer.
constexpr size_t kInflightRunTasks = 8;

}  // namespace

Sort::Sort(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  QPROG_CHECK(child_ != nullptr);
  QPROG_CHECK(!keys_.empty());
  set_is_linear(true);
}

void Sort::DoOpen(ExecContext* ctx) {
  finished_ = false;
  materialized_ = false;
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  cursor_ = 0;
  runs_.clear();
  merge_.clear();
  merging_ = false;
  spilled_rows_ = 0;
  input_spilled_rows_ = 0;
  if (ctx->ConsultFault(faults::kSortOpen, node_id())) return;
  child_->Open(ctx);
}

Row Sort::MakeKey(const Row& row) const {
  Row key;
  key.reserve(keys_.size());
  for (const SortKey& k : keys_) key.push_back(k.expr->Eval(row));
  return key;
}

bool Sort::KeyLess(const Row& a, const Row& b) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    const Value& va = a[k];
    const Value& vb = b[k];
    int cmp;
    if (va.is_null() || vb.is_null()) {
      // NULLs order lowest.
      cmp = (va.is_null() ? 0 : 1) - (vb.is_null() ? 0 : 1);
    } else {
      cmp = va.Compare(vb);
    }
    if (cmp != 0) return keys_[k].descending ? cmp > 0 : cmp < 0;
  }
  return false;
}

void Sort::SortRows(std::vector<Row>* rows) const {
  // Precompute the key tuple per row, then sort indices.
  std::vector<Row> key_rows(rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    key_rows[i] = MakeKey((*rows)[i]);
  }
  std::vector<size_t> order(rows->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return KeyLess(key_rows[a], key_rows[b]);
  });
  std::vector<Row> sorted;
  sorted.reserve(rows->size());
  for (size_t i : order) sorted.push_back(std::move((*rows)[i]));
  *rows = std::move(sorted);
}

bool Sort::SpillBuffer(ExecContext* ctx) {
  SortRows(&rows_);
  SpillRunPtr run =
      ctx->spill_manager()->CreateRun(ctx, node_id(), "sort.run");
  if (run == nullptr) return false;
  for (const Row& row : rows_) {
    if (!run->Append(ctx, node_id(), row)) return false;
  }
  if (!run->FinishWrite(ctx, node_id())) return false;
  spilled_rows_ += rows_.size();
  input_spilled_rows_ += rows_.size();
  runs_.push_back(std::move(run));
  rows_.clear();
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
  return true;
}

void Sort::Materialize(ExecContext* ctx) {
  if (ctx->worker_pool() != nullptr && ctx->spill_manager() != nullptr) {
    MaterializeParallel(ctx, ctx->worker_pool());
    return;
  }
  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kSortBuild, node_id())) return;
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill) {
      if (!rows_.empty() && !SpillBuffer(ctx)) return;
      // The buffer is now empty and one row of headroom is this operator's
      // minimum working set. Other operators may legitimately hold the whole
      // soft budget (reloaded partitions answer to the kill threshold only),
      // so this charge does too — starvation must not abort a spilling sort.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
    }
    ++charged_;
    rows_.push_back(std::move(row));
  }
  if (!ctx->ok()) return;  // partial input: do not sort or emit

  if (runs_.empty()) {
    SortRows(&rows_);
    materialized_ = true;
    return;
  }
  // At least one run exists: flush the tail buffer too, so emission is a
  // uniform k-way merge of sorted runs.
  if (!rows_.empty() && !SpillBuffer(ctx)) return;
  merge_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i]->OpenRead(ctx, node_id())) return;
    if (!FillSource(ctx, i)) return;
  }
  merging_ = true;
  materialized_ = true;
}

void Sort::MaterializeParallel(ExecContext* ctx, WorkerPool* pool) {
  TaskGroup group(pool);
  struct PendingRun {
    std::unique_ptr<TaskContext> tc;
    uint64_t rows = 0;
  };
  std::vector<PendingRun> pending;
  uint64_t run_seq = 0;
  // Rows living in buffers handed to in-flight run tasks. Their charge was
  // released at handoff (see flush_buffer), so this is the real memory the
  // plan-wide account cannot see; flush_buffer folds early when it would
  // push past the guard's kill threshold.
  uint64_t handoff_rows = 0;

  // Barrier + fold: replay each finished run task's log into the context in
  // submission (= run) order. Folding stops at the first failed task — the
  // serial engine also stops counting at the failure point. The operator's
  // row counters advance only *after* a task's log lands, so a checkpoint
  // firing mid-fold sees pending rows that undercount (sound: LB stays a
  // lower bound) and Curr/LB/UB stay monotone.
  auto fold_pending = [&]() -> bool {
    Status escaped = group.Wait();
    for (PendingRun& p : pending) {
      if (!ctx->ok()) break;
      p.tc->FoldInto(ctx);
      if (!ctx->ok()) break;
      spilled_rows_ += p.rows;
      input_spilled_rows_ += p.rows;
    }
    pending.clear();
    handoff_rows = 0;  // the barrier above freed every handed-off buffer
    if (ctx->ok() && !escaped.ok()) ctx->RaiseError(std::move(escaped));
    return ctx->ok();
  };

  // Handoff run formation: the query thread creates the run (spill_begin
  // stays on the deterministic trace) and moves the buffer into a task that
  // sorts, writes and seals it. Buffer charges release at handoff — exactly
  // where the serial path's next charge would see them released — so the
  // charge-verdict sequence, and with it every run boundary, is identical.
  auto flush_buffer = [&]() -> bool {
    // Handed-off buffers are uncharged by design (the release below is what
    // keeps the charge-verdict sequence serial-identical), but their real
    // memory still answers to the guard's kill threshold: when this buffer
    // would push the uncharged aggregate past it, barrier-and-fold first so
    // the in-flight buffers are freed. The bound depends only on the data
    // and the guard config — never the pool size — so fold points (and the
    // trace) stay identical at every thread count. With kill == kNoLimit
    // (the default) the pipeline runs free, exactly as before.
    const QueryGuard* guard = ctx->guard();
    if (handoff_rows > 0 && guard != nullptr &&
        guard->max_buffered_rows_kill() != QueryGuard::kNoLimit &&
        ctx->buffered_rows() + handoff_rows >
            guard->max_buffered_rows_kill()) {
      if (!fold_pending()) return false;
    }
    SpillRunPtr run =
        ctx->spill_manager()->CreateRun(ctx, node_id(), "sort.run");
    if (run == nullptr) return false;
    auto tc = std::make_unique<TaskContext>(ctx, kSortRunTaskTag | run_seq++);
    TaskContext* tcp = tc.get();
    SpillRun* run_ptr = run.get();
    uint64_t n = rows_.size();
    group.Submit([this, tcp, run_ptr, rows = std::move(rows_)]() mutable {
      SortRows(&rows);
      for (const Row& row : rows) {
        if (!run_ptr->Append(tcp, node_id(), row)) return;
      }
      run_ptr->FinishWrite(tcp, node_id());
    });
    rows_ = std::vector<Row>();
    runs_.push_back(std::move(run));
    pending.push_back(PendingRun{std::move(tc), n});
    handoff_rows += n;
    ctx->ReleaseBufferedRows(charged_);
    charged_ = 0;
    if (pending.size() >= kInflightRunTasks) return fold_pending();
    return true;
  };

  Row row;
  while (ctx->ok() && child_->Next(ctx, &row)) {
    if (ctx->ConsultFault(faults::kSortBuild, node_id())) return;
    ChargeVerdict verdict = ctx->ChargeBufferedRowsOrSpill(1);
    if (verdict == ChargeVerdict::kFailed) return;
    if (verdict == ChargeVerdict::kSpill) {
      if (!rows_.empty() && !flush_buffer()) return;
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return;
    }
    ++charged_;
    rows_.push_back(std::move(row));
  }
  if (!ctx->ok()) return;  // group destructor drains in-flight tasks

  if (runs_.empty()) {
    SortRows(&rows_);
    materialized_ = true;
    return;
  }
  if (!rows_.empty() && !flush_buffer()) return;
  if (!fold_pending()) return;
  if (!MergeRunsParallel(ctx, pool)) return;
  merge_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i]->OpenRead(ctx, node_id())) return;
    if (!FillSource(ctx, i)) return;
  }
  merging_ = true;
  materialized_ = true;
}

bool Sort::MergeRunsParallel(ExecContext* ctx, WorkerPool* pool) {
  uint64_t group_seq = 0;
  while (runs_.size() > static_cast<size_t>(kMergeFanIn) && ctx->ok()) {
    TaskGroup group(pool);
    struct PendingMerge {
      std::unique_ptr<TaskContext> tc;
      std::vector<SpillRunPtr> sources;  // kept alive until after the fold
      SpillRun* dest = nullptr;
    };
    std::vector<PendingMerge> pending;
    std::vector<SpillRunPtr> next;
    // Contiguous groups of kMergeFanIn runs, in run order: level-1 stability
    // follows because ties resolve to the earliest source at both levels and
    // earlier-input rows live in earlier groups. A trailing singleton group
    // is passed through unmerged.
    for (size_t g = 0; g < runs_.size() && ctx->ok();
         g += static_cast<size_t>(kMergeFanIn)) {
      size_t end = std::min(runs_.size(), g + static_cast<size_t>(kMergeFanIn));
      if (end - g == 1) {
        next.push_back(std::move(runs_[g]));
        continue;
      }
      SpillRunPtr inter =
          ctx->spill_manager()->CreateRun(ctx, node_id(), "sort.merge");
      if (inter == nullptr) break;
      PendingMerge pm;
      pm.tc = std::make_unique<TaskContext>(ctx, kSortMergeTaskTag | group_seq++);
      pm.dest = inter.get();
      std::vector<SpillRun*> sources;
      sources.reserve(end - g);
      for (size_t i = g; i < end; ++i) {
        sources.push_back(runs_[i].get());
        pm.sources.push_back(std::move(runs_[i]));
      }
      TaskContext* tcp = pm.tc.get();
      SpillRun* dest = pm.dest;
      group.Submit([this, tcp, sources = std::move(sources), dest] {
        MergeRunsTask(tcp, sources, dest);
      });
      next.push_back(std::move(inter));
      pending.push_back(std::move(pm));
    }
    Status escaped = group.Wait();
    for (PendingMerge& pm : pending) {
      if (!ctx->ok()) break;
      pm.tc->FoldInto(ctx);
      if (!ctx->ok()) break;
      // Post-barrier reads of the run counters are safe: the barrier is the
      // ownership handoff back to the query thread.
      spilled_rows_ += pm.dest->rows_written();
    }
    if (ctx->ok() && !escaped.ok()) ctx->RaiseError(std::move(escaped));
    if (!ctx->ok()) return false;
    pending.clear();  // destroys the merged source runs (and their files)
    runs_ = std::move(next);
  }
  return ctx->ok();
}

void Sort::MergeRunsTask(TaskContext* tc,
                         const std::vector<SpillRun*>& sources,
                         SpillRun* dest) const {
  struct Head {
    Row row;
    Row key;
    bool valid = false;
  };
  std::vector<Head> heads(sources.size());
  auto fill = [&](size_t i) -> bool {
    Head& h = heads[i];
    h.valid = false;
    Row row;
    if (sources[i]->ReadNext(tc, node_id(), &row)) {
      h.row = std::move(row);
      h.key = MakeKey(h.row);
      h.valid = true;
    }
    return tc->ok();
  };
  for (size_t i = 0; i < sources.size(); ++i) {
    if (!sources[i]->OpenRead(tc, node_id())) return;
    if (!fill(i)) return;
  }
  // The same strict smallest-head-wins rule as NextMerged: ties stay on the
  // earliest source, which keeps the two-level merge stable end to end. At
  // most one buffered row per source lives here, uncharged (a documented
  // bounded overcommit; see DESIGN.md §10).
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < heads.size(); ++i) {
      if (!heads[i].valid) continue;
      if (best < 0 ||
          KeyLess(heads[i].key, heads[static_cast<size_t>(best)].key)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    if (!dest->Append(tc, node_id(), heads[static_cast<size_t>(best)].row)) {
      return;
    }
    if (!fill(static_cast<size_t>(best))) return;
  }
  dest->FinishWrite(tc, node_id());
}

bool Sort::FillSource(ExecContext* ctx, size_t i) {
  MergeSource& src = merge_[i];
  bool had_row = src.valid;
  src.valid = false;
  Row row;
  if (runs_[i]->ReadNext(ctx, node_id(), &row)) {
    src.row = std::move(row);
    src.key = MakeKey(src.row);
    src.valid = true;
    if (!had_row) {
      // The merge holds one buffered row per live run — charged against the
      // kill threshold only; the soft budget already triggered the spill.
      if (!ctx->ChargeBufferedRowsPostSpill(1)) return false;
      ++charged_;
    }
    return true;
  }
  if (had_row && charged_ > 0) {
    ctx->ReleaseBufferedRows(1);
    --charged_;
  }
  return ctx->ok();
}

bool Sort::NextMerged(ExecContext* ctx, Row* out) {
  // Smallest head wins; a strict comparison keeps ties on the earliest run,
  // which preserves input order (runs were flushed in input order and each
  // run is stable-sorted) — the merge stays a stable sort.
  int best = -1;
  for (size_t i = 0; i < merge_.size(); ++i) {
    if (!merge_[i].valid) continue;
    if (best < 0 || KeyLess(merge_[i].key, merge_[static_cast<size_t>(best)].key)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    finished_ = ctx->ok();
    return false;
  }
  *out = std::move(merge_[static_cast<size_t>(best)].row);
  if (!FillSource(ctx, static_cast<size_t>(best))) return false;
  if (!ctx->ok()) return false;
  Emit(ctx);
  return true;
}

bool Sort::DoNext(ExecContext* ctx, Row* out) {
  if (!ctx->ok()) return false;
  if (!materialized_) {
    Materialize(ctx);
    if (!ctx->ok()) return false;
  }
  if (merging_) return NextMerged(ctx, out);
  if (cursor_ >= rows_.size()) {
    finished_ = true;
    return false;
  }
  *out = rows_[cursor_++];
  Emit(ctx);
  return true;
}

void Sort::DoClose(ExecContext* ctx) {
  child_->Close(ctx);
  rows_.clear();
  merge_.clear();
  runs_.clear();  // deletes any remaining spill temp files
  ctx->ReleaseBufferedRows(charged_);
  charged_ = 0;
}

std::string Sort::label() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    parts.push_back(k.expr->ToString() + (k.descending ? " DESC" : ""));
  }
  return StringPrintf("Sort(%s)", JoinStrings(parts, ", ").c_str());
}

void Sort::FillProgressState(const ExecContext& ctx,
                             ProgressState* state) const {
  PhysicalOperator::FillProgressState(ctx, state);
  state->build_done = materialized_;
  state->build_rows = merging_ ? input_spilled_rows_ : rows_.size();
  // Every spilled row — level-0 and intermediate alike — is written once and
  // read back exactly once, so this node's total spill work is 2x the rows
  // written so far. Deriving the pending share from the same work counter a
  // checkpoint just advanced keeps (done + pending) consistent at every
  // sampling instant: a checkpoint can fire from inside a read, after the
  // work is counted but before any operator-side cursor moves, so a separate
  // rows-read counter would double-count the in-flight row.
  uint64_t spill_total = 2 * spilled_rows_;
  state->spill_rows_pending = spill_total > state->spill_work_done
                                  ? spill_total - state->spill_work_done
                                  : 0;
}

}  // namespace qprog
