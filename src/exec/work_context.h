// WorkContext: the narrow execution-context surface the spill layer performs
// I/O against. Serial code hands SpillRun/SpillManager the ExecContext
// itself; a worker task hands them a TaskContext (exec/worker_pool.h)
// instead, which accumulates the same effects — spill-work units, telemetry
// events, I/O-retry records — into a private per-task log that the *main*
// thread folds into the real ExecContext at the task barrier, in task
// submission order.
//
// That split is what keeps intra-query parallelism deterministic: no worker
// ever touches the shared work counters, so total(Q), every checkpoint, and
// the whole trace depend only on the task decomposition (which is a function
// of the data) and the fold order (submission order) — never on thread count
// or OS scheduling. See DESIGN.md §10.

#ifndef QPROG_EXEC_WORK_CONTEXT_H_
#define QPROG_EXEC_WORK_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace qprog {

class FaultInjector;

class WorkContext {
 public:
  virtual ~WorkContext() = default;

  /// False once this context has failed or the query is being cancelled:
  /// spill loops treat it as an immediate stop signal, exactly like
  /// ExecContext::ok() on the serial path.
  virtual bool ok() const = 0;

  /// Records an execution error (first one wins). On a task context the
  /// error stays task-local until the fold raises it on the ExecContext.
  virtual void RaiseError(Status status) = 0;

  /// Counts `n` units of spill I/O work at `node` (rows written to or
  /// re-read from a run). On ExecContext this advances total(Q) immediately;
  /// on a task context it is logged and replayed at the fold.
  virtual void AddSpillWork(int node, uint64_t n) = 0;

  /// The fault injector spill I/O consults (the injector models the I/O
  /// layer). A task context returns its own deterministic fork, seeded from
  /// the task key — never the shared injector, whose hit counters are not
  /// thread-safe.
  virtual FaultInjector* io_fault_injector() const = 0;

  // -- telemetry forwarding ---------------------------------------------------
  // Same semantics as the TelemetryCollector hooks of the same names; the
  // work stamp on the emitted trace events is taken from the ExecContext at
  // call time (serial) or at fold time (task), so it is deterministic either
  // way. All no-ops when no collector is attached.

  virtual void OnSpillEnd(int node, const std::string& phase, uint64_t rows,
                          uint64_t bytes) = 0;
  virtual void OnSpillRead(int node, uint64_t rows) = 0;
  virtual void OnIoRetry(int node, const char* site, uint64_t attempt) = 0;
  virtual void OnIoFault(int node, const char* site,
                         const std::string& message) = 0;
};

}  // namespace qprog

#endif  // QPROG_EXEC_WORK_CONTEXT_H_
