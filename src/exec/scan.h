// Leaf access paths: sequential scan and index seek.

#ifndef QPROG_EXEC_SCAN_H_
#define QPROG_EXEC_SCAN_H_

#include <memory>
#include <string>

#include "exec/operator.h"
#include "expr/expr.h"
#include "index/ordered_index.h"
#include "storage/table.h"

namespace qprog {

/// Sequential scan over a table, with an optional pushed-down residual
/// predicate (a predicate evaluated inside the scan does not produce getnext
/// calls for rejected rows — it changes the work model exactly as a merged
/// scan+filter does in a commercial engine).
class SeqScan : public PhysicalOperator {
 public:
  /// `table` must outlive the operator; `predicate` may be null.
  explicit SeqScan(const Table* table, ExprPtr predicate = nullptr);

  /// Range-partitioned scan over rows [begin, end) of the table — one
  /// partition of an exchange producer pipeline (exec/exchange.h). All work
  /// accounting (input_examined, base_rows, the static per-pass bound) is
  /// partition-relative, so per-partition getnext sums at the exchange
  /// boundary reproduce the serial scan's totals exactly.
  SeqScan(const Table* table, ExprPtr predicate, uint64_t begin, uint64_t end);
  ~SeqScan() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  bool DoNextBatch(ExecContext* ctx, RowBatch* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kSeqScan; }
  const Schema& output_schema() const override { return table_->schema(); }
  size_t num_children() const override { return 0; }
  PhysicalOperator* child(size_t) override { return nullptr; }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  const Table* table() const { return table_; }
  bool has_predicate() const { return predicate_ != nullptr; }
  const Expr* predicate() const { return predicate_.get(); }

  /// True when this scan covers a strict sub-range of the table.
  bool partitioned() const {
    return begin_ != 0 || end_ != table_->num_rows();
  }
  uint64_t partition_begin() const { return begin_; }
  uint64_t partition_end() const { return end_; }
  /// Rows in this scan's range — the partition-relative base cardinality.
  uint64_t partition_rows() const { return end_ - begin_; }

 private:
  friend class FusedChain;

  const Table* table_;
  ExprPtr predicate_;
  uint64_t begin_ = 0;    // first row of this scan's range
  uint64_t end_ = 0;      // one past the last row of this scan's range
  uint64_t cursor_ = 0;   // table cursor within [begin_, end_)
  uint64_t emitted_ = 0;  // rows produced to the parent
  std::unique_ptr<FusedChain> fused_;  // lazily built batch kernel
  bool fused_checked_ = false;
};

/// Index seek over an ordered index. Two modes:
///  * Rebindable equality seek — the inner side of an index-nested-loops
///    join; the parent calls Rebind(key) before draining matches.
///  * Static range seek — a leaf access path with fixed bounds.
/// Produces full rows of the indexed table.
class IndexSeek : public PhysicalOperator {
 public:
  /// Rebindable equality-seek (INL inner side).
  explicit IndexSeek(const OrderedIndex* index);

  /// Static range seek. NULL `lo`/`hi` Values with the unbounded flags make
  /// either end open.
  IndexSeek(const OrderedIndex* index, Value lo, bool lo_inclusive,
            bool lo_unbounded, Value hi, bool hi_inclusive, bool hi_unbounded);

  /// Repositions an equality seek on a new key. Resets the cursor.
  void Rebind(const Value& key);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kIndexSeek; }
  const Schema& output_schema() const override {
    return index_->table()->schema();
  }
  size_t num_children() const override { return 0; }
  PhysicalOperator* child(size_t) override { return nullptr; }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  const OrderedIndex* index() const { return index_; }

 private:
  const OrderedIndex* index_;
  bool range_mode_ = false;
  Value lo_;
  bool lo_inclusive_ = false, lo_unbounded_ = true;
  Value hi_;
  bool hi_inclusive_ = false, hi_unbounded_ = true;

  OrderedIndex::EntryRange current_{};
  size_t pos_ = 0;
  bool opened_ = false;
};

}  // namespace qprog

#endif  // QPROG_EXEC_SCAN_H_
