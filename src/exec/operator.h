// PhysicalOperator: the iterator (Volcano) operator interface, instrumented
// for the paper's getnext model of work, plus the narrow state accessors the
// progress subsystem needs to maintain cardinality bounds (Section 5.1).

#ifndef QPROG_EXEC_OPERATOR_H_
#define QPROG_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "exec/row_batch.h"
#include "types/schema.h"
#include "types/value.h"

namespace qprog {

class FusedChain;

enum class OpKind {
  kSeqScan,
  kIndexSeek,
  kFilter,
  kProject,
  kNestedLoopsJoin,
  kIndexNestedLoopsJoin,
  kHashJoin,
  kMergeJoin,
  kSort,
  kHashAggregate,
  kStreamAggregate,
  kLimit,
  kExchange,
};

const char* OpKindToString(OpKind kind);

/// True for operators performing nested iteration (⋈NL, ⋈INL, index-seek).
/// A plan free of these is "scan-based" in the paper's sense (Section 5.4).
bool IsNestedIterationKind(OpKind kind);

/// Execution-state snapshot consumed by the cardinality-bounds tracker.
/// Fields are meaningful only for the operator kinds that set them.
struct ProgressState {
  uint64_t rows_produced = 0;  // filled in by the tracker from counters
  bool finished = false;       // operator has returned its last row

  // SeqScan: rows examined so far and table size; `exact_total` is the
  // final production when it is known a priori (unfiltered scan).
  uint64_t input_examined = 0;
  uint64_t base_rows = 0;
  double exact_total = -1.0;

  // IndexSeek: worst-case matches for a single probe.
  uint64_t max_per_probe = 0;

  // HashJoin / aggregates: whether the blocking phase has completed, and
  // hash-table facts learned from it.
  bool build_done = false;
  uint64_t build_rows = 0;        // hash join: rows inserted into the table
  uint64_t max_multiplicity = 0;  // hash join: largest bucket
  uint64_t groups_so_far = 0;     // aggregates: distinct groups seen
  bool scalar_aggregate = false;  // aggregate without GROUP BY (always 1 row)

  // Limit: remaining output budget.
  uint64_t limit_remaining = 0;
  bool has_limit = false;

  // Spilling (any blocking operator): extra work units already spent on
  // spill I/O at this node, and spill work not yet performed (in work
  // units: unfinished writes plus unstarted re-reads). Both are counted
  // into [LB, UB] — spill passes revise total(Q) upward mid-query.
  uint64_t spill_work_done = 0;   // set by the base FillProgressState
  uint64_t spill_rows_pending = 0;
  // HashAggregate only: spilled *rows* not yet re-aggregated. A row count,
  // not work units — feeds the group-cardinality upper bound (each unread
  // row may still open a fresh group), where spill_rows_pending would
  // overstate the unseen input.
  uint64_t spill_rows_unread = 0;
};

/// Base class for all physical operators. Operators own their children.
/// Lifecycle: construct -> (PhysicalPlan::Finalize assigns node ids) ->
/// Open -> Next* -> Close. Open fully resets state, so plans are rerunnable.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  // The public iterator interface is a set of non-virtual wrappers around
  // DoOpen/DoNext/DoClose: with no telemetry attached they add exactly one
  // null-pointer branch (the zero-cost contract checked by
  // bench/micro_trace_overhead.cpp); with a TelemetryCollector attached they
  // time the call and record per-node stats. Parents call these wrappers on
  // their children, so instrumentation covers the whole tree.

  void Open(ExecContext* ctx) {
    if (ctx->telemetry() == nullptr) [[likely]] {
      DoOpen(ctx);
    } else {
      OpenInstrumented(ctx);
    }
  }

  /// Produces the next row into `*out`; false at end of stream. A row
  /// returned here is one getnext call in the paper's work model (counted
  /// via Emit()).
  bool Next(ExecContext* ctx, Row* out) {
    if (ctx->telemetry() == nullptr) [[likely]] {
      return DoNext(ctx, out);
    }
    return NextInstrumented(ctx, out);
  }

  /// Appends rows to `out` until it is full, the stream ends, or the
  /// execution errors; returns true iff it stopped because the batch filled
  /// (the stream may have more rows). Work accounting is identical to
  /// driving Next() row by row: a batch of k rows advances the getnext
  /// counters by k at every node it crosses, in tuple order, so checkpoints,
  /// guard trips and fault schedules land on the same row at every batch
  /// size (DESIGN.md §15). The default implementation adapts DoNext();
  /// streaming operators override DoNextBatch with fused kernels.
  bool NextBatch(ExecContext* ctx, RowBatch* out) {
    if (ctx->telemetry() == nullptr) [[likely]] {
      return DoNextBatch(ctx, out);
    }
    return NextBatchInstrumented(ctx, out);
  }

  void Close(ExecContext* ctx) {
    if (ctx->telemetry() == nullptr) [[likely]] {
      DoClose(ctx);
    } else {
      CloseInstrumented(ctx);
    }
  }

  virtual OpKind kind() const = 0;
  virtual const Schema& output_schema() const = 0;

  virtual size_t num_children() const = 0;
  virtual PhysicalOperator* child(size_t i) = 0;
  const PhysicalOperator* child(size_t i) const {
    return const_cast<PhysicalOperator*>(this)->child(i);
  }

  /// One-line label for plan printing, e.g. "HashJoin(inner, linear)".
  virtual std::string label() const;

  /// True when Open() fully resets state so the operator can be re-executed
  /// (all built-in operators). Sources that consume an external stream
  /// return false; ProgressMonitor::RunWithApproxCheckpoints needs the whole
  /// plan rewindable for its throwaway learning run and reports a clear
  /// Status otherwise.
  virtual bool SupportsRewind() const { return true; }

  /// Fills the bounds-tracker snapshot. Subclasses override to publish the
  /// fields relevant to their kind; `rows_produced`/`finished` are set here.
  virtual void FillProgressState(const ExecContext& ctx,
                                 ProgressState* state) const;

  // -- plan wiring (set by PhysicalPlan::Finalize) --------------------------
  int node_id() const { return node_id_; }
  bool is_root() const { return is_root_; }
  void set_node_id(int id) { node_id_ = id; }
  void set_is_root(bool r) { is_root_ = r; }

  // -- planner metadata ------------------------------------------------------
  /// Optimizer estimate of this node's total production; < 0 when unknown.
  /// Feeds the dne estimator's driver totals, never the bounds tracker.
  double estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }

  /// Linear operator flag (Section 5.4): production is at most the largest
  /// input. True by construction for σ/π/γ/sort; set explicitly on joins
  /// known to be foreign-key (linear) joins.
  bool is_linear() const { return is_linear_; }
  void set_is_linear(bool linear) { is_linear_ = linear; }

 protected:
  PhysicalOperator() = default;

  /// The iterator implementation, provided by each operator. Same contract
  /// as the public wrappers; implementations call Open/Next/Close (the
  /// wrappers) on their children, never Do* directly.
  virtual void DoOpen(ExecContext* ctx) = 0;
  virtual bool DoNext(ExecContext* ctx, Row* out) = 0;
  virtual void DoClose(ExecContext* ctx) = 0;

  /// Batched produce (see NextBatch). The default adapter loops DoNext(),
  /// emulating the tuple driver exactly: the end-observing call is made (and
  /// counted) like any other, and a row produced concurrently with an error
  /// stays in the batch — the tuple driver delivers it too. Overrides must
  /// preserve that contract and, when telemetry is attached, append their
  /// per-node (rows, calls) deltas to out->stats.
  virtual bool DoNextBatch(ExecContext* ctx, RowBatch* out);

  /// Counts the row this operator is about to return. Every Next
  /// implementation calls this exactly once per produced row.
  void Emit(ExecContext* ctx) const { ctx->CountRow(node_id_, is_root_); }

  /// True once the operator has reported end-of-stream.
  bool finished_ = false;

  /// The fused batch kernels poke operator internals (counters, finished_)
  /// to emulate tuple execution exactly; see exec/batch.h.
  friend class FusedChain;

 private:
  // Timed paths, out of line (operator.cc); only taken with telemetry.
  void OpenInstrumented(ExecContext* ctx);
  bool NextInstrumented(ExecContext* ctx, Row* out);
  bool NextBatchInstrumented(ExecContext* ctx, RowBatch* out);
  void CloseInstrumented(ExecContext* ctx);

  int node_id_ = -1;
  bool is_root_ = false;
  double estimated_rows_ = -1.0;
  bool is_linear_ = false;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

}  // namespace qprog

#endif  // QPROG_EXEC_OPERATOR_H_
