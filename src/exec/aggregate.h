// Aggregation operators: HashAggregate (γ, blocking build then emit) and
// StreamAggregate (input pre-sorted on the grouping keys, streaming).

#ifndef QPROG_EXEC_AGGREGATE_H_
#define QPROG_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/operator.h"
#include "exec/spill.h"
#include "expr/expr.h"

namespace qprog {

class TaskContext;
class WorkerPool;
struct OrderedTaskBudget;

enum class AggFunc {
  kCount,  // COUNT(*) when arg is null, else COUNT(arg)
  kSum,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,
};

const char* AggFuncToString(AggFunc func);

/// One aggregate in the output list.
struct AggregateDesc {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;  // null for COUNT(*)
  std::string output_name;

  AggregateDesc() = default;
  AggregateDesc(AggFunc f, ExprPtr a, std::string name)
      : func(f), arg(std::move(a)), output_name(std::move(name)) {}
};

/// Running state for one aggregate within one group.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}
  void Add(const Value& v);
  void AddCountStar() { ++count_; }
  Value Result() const;

 private:
  struct ValueHasher {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.EqualsForGrouping(b);
    }
  };

  AggFunc func_;
  uint64_t count_ = 0;  // non-null inputs seen
  double sum_ = 0.0;
  Value min_, max_;
  std::unordered_set<Value, ValueHasher, ValueEq> distinct_;
};

/// γ via hashing. Output schema: group columns (named by `group_names`),
/// then one column per aggregate. Groups are emitted in first-seen order
/// (deterministic). A grouping-free ("scalar") aggregate emits exactly one
/// row even over empty input.
///
/// Memory-adaptive: when the group table would exceed the guard's soft
/// budget and a SpillManager is attached, rows for *unseen* keys are routed
/// raw to kSpillFanout hash partitions on disk (groups already in memory
/// keep accumulating there — no work is thrown away). After the build, any
/// partition whose row count exceeds the kill headroom is recursively
/// re-split with the depth-salted GracePartitionIndex (depth <=
/// kMaxGraceDepth, the join's Grace recursion transplanted here); then, after
/// the in-memory groups are emitted, each leaf partition is re-read and
/// aggregated in turn. Keys never straddle memory and disk, so no group is
/// double-counted. Unlike the join, an unsplittable (single-key skew) or
/// depth-capped partition is *not* an abort: aggregate memory is #groups,
/// not #rows, so such a partition may still fit — it is admitted alone and
/// the per-group kill-threshold charge stays the tripwire if it does not.
///
/// With a WorkerPool attached, the partition replay runs as one task per
/// partition instead of the serial loop: tasks admit their exact memory need
/// against a shared OrderedTaskBudget (the Grace join's reservation
/// protocol), aggregate their partition privately, and emit result rows —
/// the in-memory prefix up to the budget's allowance, the rest to an
/// unaccounted side run. Results fold in partition order, so output rows are
/// identical to the serial replay at every pool size.
class HashAggregate : public PhysicalOperator {
 public:
  HashAggregate(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                std::vector<std::string> group_names,
                std::vector<AggregateDesc> aggregates);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kHashAggregate; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

  /// True once this execution spilled unseen-key rows to partitions.
  bool spilled() const { return spilled_; }

  static constexpr int kSpillFanout = 8;
  /// Maximum Grace re-split depth for oversized spilled partitions.
  static constexpr int kMaxGraceDepth = 4;

 private:
  /// One replayable spilled partition after Grace refinement: the run plus
  /// its position in the recursion tree (depth 0, path p = the original
  /// fanout partition p when no re-split was needed; deeper leaves are
  /// minted by RefineOne). depth and path are the replay task's full data
  /// identity — the same leaf gets the same forked fault schedule whether it
  /// came from a depth-0 pass or a depth-3 re-split.
  struct AggLeaf {
    SpillRunPtr run;
    int depth = 0;
    uint64_t path = 0;
  };
  /// One parallel partition replay's results, filled by a worker task.
  /// Result rows up to the budget's allowance stay in `rows`; the remainder
  /// overflows to an unaccounted side run, so a high-cardinality partition's
  /// output never breaks the bounded-memory contract.
  struct PartitionAggOut {
    size_t part = 0;          // partition index (== admission order)
    uint64_t reserved = 0;    // budget rows held while the task runs
    std::vector<Row> rows;    // in-memory result prefix (<= allowance)
    SpillRunPtr overflow;     // results beyond the allowance, if any
    bool overflow_open = false;
    uint64_t charged_rows = 0;  // prefix rows charged to the plan account
    uint64_t groups = 0;        // distinct groups found in this partition
    uint64_t rows_read = 0;     // partition rows re-aggregated by the task
  };

  void Build(ExecContext* ctx);
  /// Routes one raw input row to its hash partition (creating the partition
  /// runs on first use).
  bool SpillRow(ExecContext* ctx, const Row& key, const Row& row);
  /// Moves the build-phase partitions into leaves_, recursively re-splitting
  /// any whose row count exceeds the current kill headroom. Query thread
  /// only (run creation order is part of the deterministic trace).
  bool RefinePartitions(ExecContext* ctx);
  /// Emits `run` as a leaf if small enough (or unsplittable, or at the depth
  /// cap — admit-alone fallback), else redistributes it into kSpillFanout
  /// children under the next level's salt and recurses.
  bool RefineOne(ExecContext* ctx, SpillRunPtr run, int depth, uint64_t path,
                 uint64_t capacity);
  /// Aggregates leaf `part_next_` into a fresh group table and resets
  /// the emit cursor over it.
  bool LoadNextPartition(ExecContext* ctx);
  /// Replays all spilled partitions on the pool, folding results into
  /// agg_outs_ in partition order. Returns ctx->ok().
  bool ParallelReplayPartitions(ExecContext* ctx, WorkerPool* pool);
  /// Worker-side body of one partition replay: admits `out->part` against
  /// the shared budget, re-aggregates `run` into a private group table, and
  /// emits result rows into `out` in first-seen order (overflowing to a side
  /// run past the budget's allowance), releasing the unretained budget.
  void ReplayPartitionTask(TaskContext* tc, SpillRun* run, SpillManager* spill,
                           OrderedTaskBudget* budget,
                           PartitionAggOut* out) const;
  /// Streams the next parallel-replay result row: each partition's in-memory
  /// prefix, then its overflow side run, releasing the partition's charge as
  /// it drains. Returns false at end of output or on error.
  bool NextReplayOutput(ExecContext* ctx, Row* out);

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateDesc> aggregates_;
  Schema schema_;

  bool built_ = false;
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index_;
  std::vector<Row> group_keys_;  // first-seen order
  std::vector<std::vector<AggAccumulator>> group_states_;
  size_t cursor_ = 0;
  uint64_t charged_ = 0;  // groups charged to the context's buffer budget

  // Partition-spill state (unused until the group table overflows).
  bool spilled_ = false;
  std::vector<SpillRunPtr> parts_;  // build-phase fanout; drained by Refine
  std::vector<AggLeaf> leaves_;    // replayable leaves after refinement
  size_t part_next_ = 0;           // next leaf to replay serially
  uint64_t prior_groups_ = 0;  // groups emitted before the current table
  // Query-thread spill accounting (never read from SpillRun counters — a
  // task may own the runs). Rows appended to partition runs (initial spill
  // plus every re-partitioning rewrite), and rows read back from them
  // (re-aggregated or re-partitioned); 2x the former is this node's total
  // spill work, and their difference is the rows still sitting in leaves.
  uint64_t agg_rows_spilled_ = 0;
  uint64_t agg_rows_replayed_ = 0;

  // Parallel-replay state (pool-backed executions only).
  bool parallel_replayed_ = false;
  std::vector<PartitionAggOut> agg_outs_;
  size_t agg_part_ = 0;       // next partition to drain
  size_t agg_pos_ = 0;        // next prefix row within that partition
  uint64_t par_groups_ = 0;   // groups discovered by folded replay tasks
};

/// γ over an input already sorted by the grouping expressions; emits each
/// group as soon as it closes (non-blocking between groups).
class StreamAggregate : public PhysicalOperator {
 public:
  StreamAggregate(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<std::string> group_names,
                  std::vector<AggregateDesc> aggregates);

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kStreamAggregate; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

 private:
  void Accumulate(const Row& row);
  Row EmitGroup();

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateDesc> aggregates_;
  Schema schema_;

  bool group_open_ = false;
  bool input_done_ = false;
  bool any_input_ = false;
  uint64_t groups_emitted_ = 0;
  Row current_key_;
  std::vector<AggAccumulator> current_state_;
  Row pending_row_;
  bool pending_valid_ = false;
};

}  // namespace qprog

#endif  // QPROG_EXEC_AGGREGATE_H_
