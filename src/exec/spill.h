// SpillManager: the memory-adaptive execution layer. When a blocking
// operator's ChargeBufferedRowsOrSpill comes back kSpill, the operator dumps
// buffered state into SpillRuns — checksummed temp files (storage/
// spill_file.h) — and re-reads them later in partition-sized pieces, so a
// query degrades to extra I/O passes instead of dying with
// kResourceExhausted.
//
// Spilling changes the paper's work model: every row written to or re-read
// from a run is one extra unit of work that was not in the static plan, so
// total(Q) is revised upward mid-query (ExecContext::AddSpillWork). The
// bounds walker folds the same terms into [LB, UB], which keeps pmax/safe
// sound while the total grows under the estimators' feet — exactly the
// dynamic-total regime the paper's Section 5 warns about.
//
// Retryable I/O: every file operation first consults the fault injector at
// its site (spill.open / spill.write / spill.read). A kUnavailable verdict is
// transient — the manager retries with deterministic doubling busy-wait
// backoff up to the policy's attempt limit, emitting an io_retry trace event
// per retry. Any other failure (injected permanent faults, real I/O errors,
// checksum mismatches) is terminal: retrying a possibly-partial write would
// corrupt the run, so it surfaces immediately as the sticky execution error.
//
// Cleanup is structural: a SpillRun deletes its temp file on destruction and
// operators own their runs, so DoClose — which the plan driver invokes even
// on an aborted run — is all it takes to guarantee zero leaked temp files on
// cancel, deadline, guard trip or injected fault.

#ifndef QPROG_EXEC_SPILL_H_
#define QPROG_EXEC_SPILL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "exec/exec_context.h"
#include "storage/spill_file.h"
#include "types/value.h"

namespace qprog {

class SpillManager;

/// Retry behavior for transient spill I/O failures.
struct SpillRetryPolicy {
  /// Total tries per operation (first attempt + up to max_attempts-1
  /// retries). Must be >= 1.
  int max_attempts = 4;
  /// Busy-wait spins before the first retry; doubles per retry. Deterministic
  /// (no clock) so traces stay byte-identical for a fixed seed.
  uint64_t backoff_spins = 512;
};

/// Manager-wide counters, aggregated across all runs.
struct SpillStats {
  uint64_t runs_created = 0;
  uint64_t runs_deleted = 0;
  uint64_t rows_written = 0;
  uint64_t rows_read = 0;
  uint64_t bytes_written = 0;
  uint64_t io_retries = 0;
};

/// One spill run: a write-then-read sequence of rows in a temp file. Created
/// via SpillManager::CreateRun; the backing file is deleted when the run is
/// destroyed (or earlier via Discard), never later.
///
/// All methods return false after raising the sticky execution error on
/// failure — callers propagate by returning false themselves, and DoClose
/// destroys the runs.
class SpillRun {
 public:
  ~SpillRun();

  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;

  /// Serializes and appends one row; counts one unit of spill work at `node`.
  bool Append(ExecContext* ctx, int node, const Row& row);

  /// Seals the write phase: emits the spill_end trace event carrying this
  /// run's row and byte counts. Call once, after the last Append.
  bool FinishWrite(ExecContext* ctx, int node);

  /// Rewinds to the first row for reading. May be called again to re-read.
  bool OpenRead(ExecContext* ctx, int node);

  /// Reads the next row; counts one unit of spill work at `node`. Returns
  /// false at end of run *or* on error — check ctx->ok() to tell them apart.
  bool ReadNext(ExecContext* ctx, int node, Row* row);

  /// Deletes the backing file now (idempotent; destructor does it too).
  void Discard();

  uint64_t rows_written() const { return rows_written_; }
  uint64_t rows_read() const { return rows_read_; }
  /// Rows written but not yet re-read — the run's pending spill work, which
  /// the bounds walker adds to UB (and LB: every spilled row must come back).
  uint64_t rows_pending() const { return rows_written_ - rows_read_; }

 private:
  friend class SpillManager;

  SpillRun(SpillManager* manager, std::unique_ptr<SpillFile> file,
           std::string phase);

  SpillManager* manager_;
  std::unique_ptr<SpillFile> file_;
  std::string phase_;
  uint64_t rows_written_ = 0;
  uint64_t rows_read_ = 0;
  std::string scratch_;  // serialization buffer, reused across rows
};

using SpillRunPtr = std::unique_ptr<SpillRun>;

/// Creates and tracks spill runs for one execution. Borrowed by ExecContext
/// (set_spill_manager); operators reach it via ctx->spill_manager(). Tests
/// assert live_runs() == 0 after Close to prove nothing leaked.
class SpillManager {
 public:
  /// `dir` is where temp files go (empty = $TMPDIR, else /tmp).
  explicit SpillManager(std::string dir = "",
                        SpillRetryPolicy policy = SpillRetryPolicy());

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a spill run for `node`; emits a spill_begin trace event with
  /// `phase` (e.g. "sort.run", "hashjoin.build"). Returns nullptr after
  /// raising the sticky error when the file cannot be created.
  SpillRunPtr CreateRun(ExecContext* ctx, int node, const char* phase);

  /// Runs created but not yet destroyed (each owns one live temp file).
  uint64_t live_runs() const { return stats_.runs_created - stats_.runs_deleted; }

  const SpillStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  const SpillRetryPolicy& policy() const { return policy_; }

 private:
  friend class SpillRun;

  /// Runs `attempt` with transient-fault retries: consults the fault
  /// injector at `site` before each try (the injector models the I/O layer),
  /// retries only kUnavailable with doubling busy-wait backoff, and returns
  /// the first non-transient status (or the last transient one when the
  /// attempt budget runs out).
  Status WithRetries(ExecContext* ctx, int node, const char* site,
                     const std::function<Status()>& attempt);

  /// Records `status` as the sticky execution error, attributed to `node` at
  /// `site` in the telemetry.
  void RaiseIoError(ExecContext* ctx, int node, const char* site,
                    Status status);

  std::string dir_;
  SpillRetryPolicy policy_;
  SpillStats stats_;
};

}  // namespace qprog

#endif  // QPROG_EXEC_SPILL_H_
