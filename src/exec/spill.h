// SpillManager: the memory-adaptive execution layer. When a blocking
// operator's ChargeBufferedRowsOrSpill comes back kSpill, the operator dumps
// buffered state into SpillRuns — checksummed temp files (storage/
// spill_file.h) — and re-reads them later in partition-sized pieces, so a
// query degrades to extra I/O passes instead of dying with
// kResourceExhausted.
//
// Spilling changes the paper's work model: every row written to or re-read
// from a run is one extra unit of work that was not in the static plan, so
// total(Q) is revised upward mid-query (ExecContext::AddSpillWork). The
// bounds walker folds the same terms into [LB, UB], which keeps pmax/safe
// sound while the total grows under the estimators' feet — exactly the
// dynamic-total regime the paper's Section 5 warns about.
//
// Retryable I/O: every file operation first consults the fault injector at
// its site (spill.open / spill.write / spill.read). A kUnavailable verdict is
// transient — the manager retries with deterministic doubling busy-wait
// backoff up to the policy's attempt limit, emitting an io_retry trace event
// per retry. Any other failure (injected permanent faults, real I/O errors,
// checksum mismatches) is terminal: retrying a possibly-partial write would
// corrupt the run, so it surfaces immediately as the sticky execution error.
//
// Cleanup is structural: a SpillRun deletes its temp file on destruction and
// operators own their runs, so DoClose — which the plan driver invokes even
// on an aborted run — is all it takes to guarantee zero leaked temp files on
// cancel, deadline, guard trip or injected fault. As a backstop against runs
// whose destructor never fires (a worker task dying mid-write with ownership
// of a run, or an abort path that drops a run on the floor), the manager
// keeps a registry of every live temp-file path: CreateRun/CreateSideRun
// register, Discard unregisters, live_files() lets tests audit for leaks,
// and ~SpillManager unlinks anything still registered.
//
// Threading: runs perform their I/O against a WorkContext — the ExecContext
// itself on the serial path, a per-task TaskContext (exec/worker_pool.h) on
// a pool thread. One run is owned by exactly one context at a time; the
// manager-wide SpillStats counters are atomics because runs on different
// worker threads bump them concurrently (they are monitoring data, not part
// of the deterministic work model). CreateRun stays query-thread-only: run
// *identity* (and the spill_begin trace event) is part of the deterministic
// trace, so operators create runs up front and hand them to tasks.
// CreateSideRun is the one exception: it mints an *unaccounted* run — no
// trace events, no spill work, no row/byte stats — that worker tasks may
// create lazily to park overflow state on disk. Because a side run leaves no
// mark on the work model or the trace, creating one from a task cannot make
// totals or traces scheduling-dependent.

#ifndef QPROG_EXEC_SPILL_H_
#define QPROG_EXEC_SPILL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/exec_context.h"
#include "exec/work_context.h"
#include "storage/spill_file.h"
#include "types/value.h"

namespace qprog {

class SpillManager;

/// Depth-salted Grace partition routing, shared by every operator that
/// recursively re-splits oversized spilled partitions (hash join since PR 5,
/// hash aggregate since PR 6). Level 0 uses the raw row hash; each deeper
/// level remixes the hash with a level-dependent increment and a 64-bit
/// finalizer so rows that collided into one partition at level d spread
/// across children at level d+1 — unless they literally share a hash
/// (single-key skew), which no salt can separate and which callers detect as
/// an ineffective split (biggest child as large as the parent).
size_t GracePartitionIndex(size_t hash, int level, int fanout);

/// Retry behavior for transient spill I/O failures.
struct SpillRetryPolicy {
  /// Total tries per operation (first attempt + up to max_attempts-1
  /// retries). Must be >= 1.
  int max_attempts = 4;
  /// Busy-wait spins before the first retry; doubles per retry. Deterministic
  /// (no clock) so traces stay byte-identical for a fixed seed.
  uint64_t backoff_spins = 512;
};

/// Simulated spill-device bandwidth, for benchmarking I/O overlap: each byte
/// moved to/from a spill file accrues sleep debt at these rates, paid in
/// >= 100us sleeps. Debt is per-run, so concurrent runs on worker threads
/// overlap their "device time" exactly like real bandwidth-bound I/O — this
/// is what lets bench/micro_parallel measure parallel speedup even on a
/// single-core host. Default zero = off (all tests run with it off; the
/// model adds latency, never changes results or traces).
struct SpillDeviceModel {
  uint64_t write_ns_per_byte = 0;
  uint64_t read_ns_per_byte = 0;
  bool enabled() const { return (write_ns_per_byte | read_ns_per_byte) != 0; }
};

/// Manager-wide counters, aggregated across all runs. Atomics: worker-thread
/// runs update them concurrently. Monitoring data only — nothing in the
/// deterministic work model reads them.
struct SpillStats {
  std::atomic<uint64_t> runs_created{0};
  std::atomic<uint64_t> runs_deleted{0};
  std::atomic<uint64_t> rows_written{0};
  std::atomic<uint64_t> rows_read{0};
  /// Raw serialized row bytes appended to runs (pre-codec).
  std::atomic<uint64_t> bytes_written{0};
  /// Bytes that actually hit the device, post-codec, accumulated when each
  /// run's write phase seals. bytes_written / disk_bytes_written is the
  /// manager-wide compression ratio.
  std::atomic<uint64_t> disk_bytes_written{0};
  std::atomic<uint64_t> io_retries{0};
};

/// One spill run: a write-then-read sequence of rows in a temp file. Created
/// via SpillManager::CreateRun; the backing file is deleted when the run is
/// destroyed (or earlier via Discard), never later.
///
/// All methods return false after raising the sticky error on the passed
/// context — callers propagate by returning false themselves, and DoClose
/// destroys the runs. A run may move between threads (created on the query
/// thread, written/read by a task) but is only ever touched by one thread at
/// a time, with the task barrier as the handoff point.
class SpillRun {
 public:
  ~SpillRun();

  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;

  /// Serializes and appends one row; counts one unit of spill work at `node`.
  bool Append(WorkContext* wc, int node, const Row& row);

  /// Seals the write phase (flushing the final codec block, so byte counts
  /// are true on-disk sizes) and emits the spill_end trace event carrying
  /// this run's row and byte counts. Call once, after the last Append.
  bool FinishWrite(WorkContext* wc, int node);

  /// Rewinds to the first row for reading. May be called again to re-read.
  bool OpenRead(WorkContext* wc, int node);

  /// Reads the next row; counts one unit of spill work at `node`. Returns
  /// false at end of run *or* on error — check wc->ok() to tell them apart.
  bool ReadNext(WorkContext* wc, int node, Row* row);

  /// Deletes the backing file now (idempotent; destructor does it too).
  void Discard();

  uint64_t rows_written() const { return rows_written_; }
  uint64_t rows_read() const { return rows_read_; }
  /// Rows written but not yet re-read — the run's pending spill work, which
  /// the bounds walker adds to UB (and LB: every spilled row must come back).
  /// NOTE: while a task owns this run, these counters are in flux and must
  /// not be read from the query thread; operators keep their own query-
  /// thread-side pending counters for FillProgressState (DESIGN.md §10).
  uint64_t rows_pending() const { return rows_written_ - rows_read_; }

  /// On-disk size of the sealed run (post-codec), for telemetry/benchmarks.
  uint64_t disk_bytes() const { return file_->bytes_written(); }

  /// False for side runs (SpillManager::CreateSideRun): I/O on an
  /// unaccounted run moves no work counters, no stats and no trace events.
  bool accounted() const { return accounted_; }

 private:
  friend class SpillManager;

  SpillRun(SpillManager* manager, std::unique_ptr<SpillFile> file,
           std::string phase);

  /// Accrues device-model sleep debt for bytes newly moved by file_ since
  /// the last charge, and pays it off in >= 100us sleeps.
  void ChargeDevice();

  SpillManager* manager_;
  std::unique_ptr<SpillFile> file_;
  std::string path_;  // retained past file_'s death to unregister it
  std::string phase_;
  bool accounted_ = true;
  uint64_t rows_written_ = 0;
  uint64_t rows_read_ = 0;
  std::string scratch_;  // serialization buffer, reused across rows
  // Device-model bookkeeping: file byte counters as of the last charge, and
  // unslept debt in nanoseconds. All zero-cost when the model is off.
  uint64_t device_written_seen_ = 0;
  uint64_t device_read_seen_ = 0;
  uint64_t device_debt_ns_ = 0;
};

using SpillRunPtr = std::unique_ptr<SpillRun>;

/// Creates and tracks spill runs for one execution. Borrowed by ExecContext
/// (set_spill_manager); operators reach it via ctx->spill_manager(). Tests
/// assert live_runs() == 0 after Close to prove nothing leaked.
class SpillManager {
 public:
  /// `dir` is where temp files go (empty = $TMPDIR, else /tmp).
  explicit SpillManager(std::string dir = "",
                        SpillRetryPolicy policy = SpillRetryPolicy());

  /// Sweeps orphans: any registered temp file whose run never ran its
  /// destructor is unlinked here, so even a task that died mid-write cannot
  /// leak a qprog-spill-* file past the manager's lifetime.
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a spill run for `node`; emits a spill_begin trace event with
  /// `phase` (e.g. "sort.run", "hashjoin.build") and `depth` — the Grace
  /// recursion depth of the run (0 for first-pass runs and every non-join
  /// spill; >= 1 for runs minted while re-partitioning an oversized
  /// partition). Returns nullptr after raising the sticky error when the
  /// file cannot be created. Query thread only — run creation order is part
  /// of the deterministic trace.
  SpillRunPtr CreateRun(ExecContext* ctx, int node, const char* phase,
                        int depth = 0);

  /// Creates an *unaccounted* side run for `node`: no spill_begin event, and
  /// the run's I/O moves no work counters, row/byte stats or spill events —
  /// only the live-run count (for leak tracking), the device model and the
  /// retryable-I/O path still apply. Safe from any thread, including worker
  /// tasks mid-phase: operators use side runs to bound in-memory overflow
  /// (e.g. parallel join output beyond its budget allowance) without
  /// perturbing the deterministic work model. Returns nullptr after raising
  /// the sticky error on `wc` when the file cannot be created.
  SpillRunPtr CreateSideRun(WorkContext* wc, int node);

  /// Runs created but not yet destroyed (each owns one live temp file).
  uint64_t live_runs() const { return stats_.runs_created - stats_.runs_deleted; }

  /// Paths of every temp file currently registered (sorted, for stable test
  /// output). Empty after all runs are destroyed — the soak leak audit.
  /// Thread-safe snapshot.
  std::vector<std::string> live_files() const;

  const SpillStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  const SpillRetryPolicy& policy() const { return policy_; }

  /// Framing/codec for runs created from now on (existing runs keep theirs).
  /// Compression is off by default; flip `compress` to write LZ4-style
  /// compressed blocks (storage/spill_codec.h). Configure before execution,
  /// not concurrently with it.
  void set_file_options(SpillFileOptions options) { file_options_ = options; }
  const SpillFileOptions& file_options() const { return file_options_; }

  /// Simulated device bandwidth (see SpillDeviceModel). Benchmarks only;
  /// configure before execution.
  void set_device_model(SpillDeviceModel model) { device_model_ = model; }
  const SpillDeviceModel& device_model() const { return device_model_; }

 private:
  friend class SpillRun;

  /// Runs `attempt` with transient-fault retries: consults the context's
  /// fault injector at `site` before each try (the injector models the I/O
  /// layer), retries only kUnavailable with doubling busy-wait backoff, and
  /// returns the first non-transient status (or the last transient one when
  /// the attempt budget runs out).
  Status WithRetries(WorkContext* wc, int node, const char* site,
                     const std::function<Status()>& attempt);

  /// Records `status` as the sticky error on `wc`, attributed to `node` at
  /// `site` in the telemetry.
  void RaiseIoError(WorkContext* wc, int node, const char* site,
                    Status status);

  void RegisterLiveFile(const std::string& path);
  void UnregisterLiveFile(const std::string& path);

  std::string dir_;
  SpillRetryPolicy policy_;
  SpillStats stats_;
  SpillFileOptions file_options_;
  SpillDeviceModel device_model_;
  mutable std::mutex live_files_mu_;
  std::unordered_set<std::string> live_files_;
};

}  // namespace qprog

#endif  // QPROG_EXEC_SPILL_H_
