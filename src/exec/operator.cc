#include "exec/operator.h"

namespace qprog {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kSeqScan:
      return "SeqScan";
    case OpKind::kIndexSeek:
      return "IndexSeek";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kNestedLoopsJoin:
      return "NestedLoopsJoin";
    case OpKind::kIndexNestedLoopsJoin:
      return "IndexNestedLoopsJoin";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kHashAggregate:
      return "HashAggregate";
    case OpKind::kStreamAggregate:
      return "StreamAggregate";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kExchange:
      return "Exchange";
  }
  return "Unknown";
}

bool IsNestedIterationKind(OpKind kind) {
  return kind == OpKind::kNestedLoopsJoin ||
         kind == OpKind::kIndexNestedLoopsJoin || kind == OpKind::kIndexSeek;
}

std::string PhysicalOperator::label() const { return OpKindToString(kind()); }

void PhysicalOperator::OpenInstrumented(ExecContext* ctx) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  DoOpen(ctx);
  t->RecordOpen(node_id_, label(), MonotonicNanos() - start, ctx->work());
}

bool PhysicalOperator::NextInstrumented(ExecContext* ctx, Row* out) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  bool produced = DoNext(ctx, out);
  uint64_t end = MonotonicNanos();
  t->RecordNext(node_id_, produced, end - start, end);
  return produced;
}

bool PhysicalOperator::DoNextBatch(ExecContext* ctx, RowBatch* out) {
  // Generic adapter: one emulated tuple-driver loop. `calls` counts every
  // DoNext made, including the final end-observing one, so per-node
  // next_calls telemetry matches the tuple engine exactly. A row produced
  // concurrently with an error stays in the batch (the tuple driver, having
  // passed its ok() check before the call, delivers such a row too).
  uint64_t rows = 0;
  uint64_t calls = 0;
  bool more = true;
  while (!out->full()) {
    if (!ctx->ok()) {
      more = false;
      break;
    }
    Row* slot = out->AppendSlot();
    ++calls;
    if (!DoNext(ctx, slot)) {
      out->PopLast();
      more = false;
      break;
    }
    ++rows;
  }
  if (ctx->telemetry() != nullptr && calls > 0) {
    out->stats.push_back({node_id_, rows, calls});
  }
  return more;
}

bool PhysicalOperator::NextBatchInstrumented(ExecContext* ctx, RowBatch* out) {
  TelemetryCollector* t = ctx->telemetry();
  size_t stats_base = out->stats.size();
  uint64_t start = MonotonicNanos();
  bool more = DoNextBatch(ctx, out);
  uint64_t end = MonotonicNanos();
  uint64_t elapsed = end - start;
  // Per-batch granularity: the batch's inclusive elapsed time is attributed
  // to every node the batch crossed (times are inclusive of children by
  // convention, so this is the coarsened analogue of the per-call clock).
  for (size_t i = stats_base; i < out->stats.size(); ++i) {
    const RowBatch::NodeStats& s = out->stats[i];
    t->RecordNextBatch(s.node, s.rows, s.calls, elapsed, end);
  }
  return more;
}

void PhysicalOperator::CloseInstrumented(ExecContext* ctx) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  DoClose(ctx);
  t->RecordClose(node_id_, label(), MonotonicNanos() - start, ctx->work());
}

void PhysicalOperator::FillProgressState(const ExecContext& ctx,
                                         ProgressState* state) const {
  state->rows_produced = ctx.rows_produced(node_id_);
  state->finished = finished_;
  state->spill_work_done = ctx.spill_work(node_id_);
}

}  // namespace qprog
