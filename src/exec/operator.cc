#include "exec/operator.h"

namespace qprog {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kSeqScan:
      return "SeqScan";
    case OpKind::kIndexSeek:
      return "IndexSeek";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kNestedLoopsJoin:
      return "NestedLoopsJoin";
    case OpKind::kIndexNestedLoopsJoin:
      return "IndexNestedLoopsJoin";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kHashAggregate:
      return "HashAggregate";
    case OpKind::kStreamAggregate:
      return "StreamAggregate";
    case OpKind::kLimit:
      return "Limit";
  }
  return "Unknown";
}

bool IsNestedIterationKind(OpKind kind) {
  return kind == OpKind::kNestedLoopsJoin ||
         kind == OpKind::kIndexNestedLoopsJoin || kind == OpKind::kIndexSeek;
}

std::string PhysicalOperator::label() const { return OpKindToString(kind()); }

void PhysicalOperator::OpenInstrumented(ExecContext* ctx) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  DoOpen(ctx);
  t->RecordOpen(node_id_, label(), MonotonicNanos() - start, ctx->work());
}

bool PhysicalOperator::NextInstrumented(ExecContext* ctx, Row* out) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  bool produced = DoNext(ctx, out);
  uint64_t end = MonotonicNanos();
  t->RecordNext(node_id_, produced, end - start, end);
  return produced;
}

void PhysicalOperator::CloseInstrumented(ExecContext* ctx) {
  TelemetryCollector* t = ctx->telemetry();
  uint64_t start = MonotonicNanos();
  DoClose(ctx);
  t->RecordClose(node_id_, label(), MonotonicNanos() - start, ctx->work());
}

void PhysicalOperator::FillProgressState(const ExecContext& ctx,
                                         ProgressState* state) const {
  state->rows_produced = ctx.rows_produced(node_id_);
  state->finished = finished_;
  state->spill_work_done = ctx.spill_work(node_id_);
}

}  // namespace qprog
