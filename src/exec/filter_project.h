// Filter (σ), Project (π) and Limit operators.

#ifndef QPROG_EXEC_FILTER_PROJECT_H_
#define QPROG_EXEC_FILTER_PROJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expr.h"

namespace qprog {

/// σ: passes rows whose predicate evaluates to TRUE.
class Filter : public PhysicalOperator {
 public:
  Filter(OperatorPtr child, ExprPtr predicate);
  ~Filter() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  bool DoNextBatch(ExecContext* ctx, RowBatch* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kFilter; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;

 private:
  friend class FusedChain;

  OperatorPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<FusedChain> fused_;  // lazily built batch kernel
  bool fused_checked_ = false;
};

/// π: computes a list of output expressions per input row.
class Project : public PhysicalOperator {
 public:
  /// `names` labels the output columns; sizes must match `exprs`. Output
  /// field types are inferred lazily as kNull (the engine is dynamically
  /// typed); names are what matter for printing and SQL binding.
  Project(OperatorPtr child, std::vector<ExprPtr> exprs,
          std::vector<std::string> names);
  ~Project() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  bool DoNextBatch(ExecContext* ctx, RowBatch* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kProject; }
  const Schema& output_schema() const override { return schema_; }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;

 private:
  friend class FusedChain;

  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  std::unique_ptr<FusedChain> fused_;  // lazily built batch kernel
  bool fused_checked_ = false;
};

/// LIMIT k: stops the plan after k rows (leaves the child undrained).
class Limit : public PhysicalOperator {
 public:
  Limit(OperatorPtr child, uint64_t limit);
  ~Limit() override;

  void DoOpen(ExecContext* ctx) override;
  bool DoNext(ExecContext* ctx, Row* out) override;
  bool DoNextBatch(ExecContext* ctx, RowBatch* out) override;
  void DoClose(ExecContext* ctx) override;

  OpKind kind() const override { return OpKind::kLimit; }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  size_t num_children() const override { return 1; }
  PhysicalOperator* child(size_t) override { return child_.get(); }
  std::string label() const override;
  void FillProgressState(const ExecContext& ctx,
                         ProgressState* state) const override;

 private:
  friend class FusedChain;

  OperatorPtr child_;
  uint64_t limit_;
  uint64_t produced_ = 0;
  std::unique_ptr<FusedChain> fused_;  // lazily built batch kernel
  bool fused_checked_ = false;
};

}  // namespace qprog

#endif  // QPROG_EXEC_FILTER_PROJECT_H_
