// WorkerPool / TaskGroup / TaskContext: the intra-query parallelism layer.
//
// A WorkerPool is a fixed set of threads with a shared FIFO task queue,
// attached to an ExecContext (set_worker_pool) and borrowed by spill-heavy
// operators: external Sort fans out run formation and run merging, Grace
// HashJoin fans out partition writes and per-partition joins. Everything
// else in the engine stays single-threaded.
//
// The design problem is not speed — it is keeping the paper's progress
// model deterministic while work happens concurrently. The solution has
// three parts (DESIGN.md §10):
//
//  1. Sharded-then-folded accounting. A task never touches the ExecContext
//     counters; it runs its spill I/O against a TaskContext, which logs the
//     effects (spill-work units, telemetry events, errors) into a private
//     op-log. After the barrier, the query thread folds each log into the
//     ExecContext *in task submission order*. Submission order is a
//     function of the data (partition 0, 1, 2, ...), so total(Q), every
//     observer checkpoint and the whole trace are byte-identical at every
//     pool size — and the ProgressMonitor keeps seeing consistent
//     (Curr, LB, UB) snapshots because counters only move on its thread.
//
//  2. Data-derived task decomposition. Operators split work by fixed
//     constants (merge fan-in, batch size, partition count), never by
//     pool size. Adding threads changes who executes a task, not which
//     tasks exist.
//
//  3. Deterministic fault forking. A task consults a FaultInjector::Fork
//     seeded from the task's data identity (run index, partition index),
//     so injected-fault schedules replay identically at every thread count.
//
// Lanes: SubmitToLane(k, fn) serializes tasks sharing lane k (they run in
// submission order, one at a time) while different lanes proceed in
// parallel. The Grace join uses one lane per spill partition so writes to a
// partition's run stay ordered without a lock around the run.
//
// Error model: a task that fails keeps running its op-log locally (its
// SpillRun methods return false and it unwinds); the fold raises the first
// failed task's status on the ExecContext. C++ exceptions escaping a task
// are a bug-containment path, not a control-flow path — the group converts
// the first one to kInternal and Wait() returns it.

#ifndef QPROG_EXEC_WORKER_POOL_H_
#define QPROG_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "exec/work_context.h"

namespace qprog {

/// Fixed-size thread pool with a shared FIFO queue. Threads start in the
/// constructor and join in the destructor; the pool outlives every TaskGroup
/// built on it (operators borrow the pool from the ExecContext and create
/// short-lived groups per phase).
class WorkerPool {
 public:
  /// `num_threads` is clamped to >= 1.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  friend class TaskGroup;

  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// One barrier's worth of tasks on a pool. Submit (optionally into lanes),
/// then Wait() — the destructor also waits, so a group can never leak
/// running tasks past its scope.
class TaskGroup {
 public:
  explicit TaskGroup(WorkerPool* pool);
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn` to run on some pool thread.
  void Submit(std::function<void()> fn);

  /// Enqueues `fn` into `lane`: tasks sharing a lane run one at a time in
  /// submission order; distinct lanes run concurrently. Lane promotion
  /// happens on the finishing worker thread and never blocks, so lanes
  /// cannot deadlock a small pool.
  void SubmitToLane(uint64_t lane, std::function<void()> fn);

  /// Blocks until every submitted task has finished. Returns OK, or
  /// kInternal describing the first exception that escaped a task.
  /// Idempotent; safe to call with nothing submitted.
  Status Wait();

 private:
  struct Lane {
    std::deque<std::function<void()>> queued;
    bool running = false;
  };

  // The group's synchronization state lives in a block co-owned by every
  // in-flight task closure: a finishing task may signal done_cv (and promote
  // the next lane task) strictly after Wait() observed pending == 0 and the
  // TaskGroup itself was destroyed. The shared_ptr keeps the block alive
  // until the last such task lets go.
  struct Sync {
    std::mutex mu;
    std::condition_variable done_cv;
    uint64_t pending = 0;  // submitted, not finished (queued lane tasks incl.)
    Status status;         // first escaped exception, as kInternal
    std::unordered_map<uint64_t, Lane> lanes;
  };

  /// Runs `fn` with exception containment, then retires it (status capture,
  /// pending decrement, done_cv signal).
  static void RunTask(const std::shared_ptr<Sync>& sync,
                      const std::function<void()>& fn);
  /// Enqueues a lane task: run, then promote the lane's next queued task.
  static void StartLaneTask(WorkerPool* pool,
                            const std::shared_ptr<Sync>& sync, uint64_t lane,
                            std::function<void()> fn);

  WorkerPool* pool_;
  std::shared_ptr<Sync> sync_;
};

class TaskContext;

/// Shared buffered-row budget for concurrent partition tasks (the PR-4
/// reservation protocol, hoisted out of the Grace join so HashAggregate's
/// parallel partition replay admits against the same contract). The serial
/// replay keeps one partition's state in memory at a time, all of it
/// answering to the guard's kill threshold; with many tasks in flight the
/// same contract must hold for their *sum*. Each task's need is known
/// exactly before it runs (a sealed run's row count is an upper bound on
/// what the task can buffer), so tasks make one all-or-nothing reservation
/// in partition-index order — no incremental growth, hence no
/// two-holders-stuck deadlock — and an admitted task runs to completion
/// without blocking. A partition too big for the whole budget is admitted
/// alone and then trips the task's kill tripwire exactly where the serial
/// replay would. Admission order, reservations and the allowance are all
/// data-derived, so memory placement is identical at every pool size. With
/// kill == kNoLimit (unlimited) the budget is inert.
struct OrderedTaskBudget {
  const bool unlimited;
  const uint64_t capacity;       // kill threshold minus the plan-wide base
  const uint64_t out_allowance;  // caller-defined per-task in-memory quota
                                 // (the join's output prefix; 0 if unused)

  std::mutex mu;
  std::condition_variable cv;
  uint64_t in_use = 0;    // sum of live reservations; <= capacity
  uint64_t retained = 0;  // floor of in_use held by finished tasks' kept
                          // output prefixes until the post-barrier charge
  size_t next_admit = 0;  // partition index next in line

  OrderedTaskBudget(bool unlimited_in, uint64_t capacity_in,
                    uint64_t allowance_in)
      : unlimited(unlimited_in),
        capacity(capacity_in),
        out_allowance(allowance_in) {}

  /// Blocks until partition `part` may hold `need` budget rows. Returns
  /// false (without reserving) when the query fails or is cancelled while
  /// waiting; polls so a guard cancel can't strand a waiter. A partition
  /// that cannot fit beside the live reservations is admitted alone — i.e.
  /// once every active reservation has drained and only the `retained`
  /// floor is left — so kept prefixes can never wedge the admission line.
  bool Admit(size_t part, uint64_t need, const TaskContext* tc);

  /// Moves `n` rows of this task's reservation into the `retained` floor:
  /// output rows the task keeps buffered past its own completion, paid for
  /// by the fold's post-barrier charge. Leaves `in_use` unchanged. An
  /// oversized partition admitted alone may transiently push the floor past
  /// what a later solo admission adds on top of — that overshoot is bounded
  /// by the per-task kill tripwires that already fired (or will fire) on
  /// the oversized task itself.
  void Retain(uint64_t n);

  /// Returns `n` reserved rows to the pool (the task's unretained slack).
  /// Clamped against the active (unretained) share of `in_use`.
  void Release(uint64_t n);
};

/// The WorkContext a task runs against: accumulates the task's spill work,
/// telemetry events, and error into a private log that FoldInto replays on
/// the ExecContext after the barrier. Created on the query thread (it
/// snapshots the buffered-row baseline and forks the fault injector there),
/// used by exactly one task, folded back on the query thread — the task
/// barrier is the handoff, so no member needs to be atomic.
class TaskContext final : public WorkContext {
 public:
  /// `task_key` seeds the injector fork; derive it from the task's data
  /// identity (see the task-key registry in DESIGN.md §10).
  TaskContext(ExecContext* parent, uint64_t task_key);

  // -- WorkContext ------------------------------------------------------------
  /// False once this task failed, the query failed (sticky error raised on
  /// the parent by the query thread or an earlier fold), or cancellation was
  /// requested — tasks drain quickly instead of finishing doomed work.
  bool ok() const override;
  void RaiseError(Status status) override;
  void AddSpillWork(int node, uint64_t n) override;
  FaultInjector* io_fault_injector() const override { return injector_.get(); }
  void OnSpillEnd(int node, const std::string& phase, uint64_t rows,
                  uint64_t bytes) override;
  void OnSpillRead(int node, uint64_t rows) override;
  void OnIoRetry(int node, const char* site, uint64_t attempt) override;
  void OnIoFault(int node, const char* site,
                 const std::string& message) override;

  // -- task-local buffered-row budget ------------------------------------------
  /// Task-side mirror of ExecContext::ChargeBufferedRowsPostSpill: checks
  /// this task's buffered rows (plus the plan-wide baseline snapshotted at
  /// construction) against the guard's kill threshold. Check-first — a
  /// failed charge raises the task-local error and charges nothing. The
  /// parent's account is untouched either way: a task's buffers live and die
  /// inside the task, so the charge is purely the kill-threshold tripwire,
  /// applied per task exactly like the serial engine applies it per
  /// partition.
  bool ChargeBufferedRowsPostSpill(uint64_t n);
  void ReleaseBufferedRows(uint64_t n) {
    buffered_rows_ -= n < buffered_rows_ ? n : buffered_rows_;
  }
  uint64_t buffered_rows() const { return buffered_rows_; }

  /// Task-local sticky status (OK until the first RaiseError).
  const Status& status() const { return status_; }
  bool failed() const { return failed_; }

  /// Replays the op-log into `ctx` in log order — spill work advances
  /// total(Q) and fires observer checkpoints / guard checks exactly as if
  /// the I/O had happened serially at fold time — then raises this task's
  /// error (if any) on `ctx`. Query thread only, after the barrier.
  void FoldInto(ExecContext* ctx);

 private:
  struct Op {
    enum Kind { kSpillWork, kSpillEnd, kSpillRead, kIoRetry, kIoFault };
    Kind kind;
    int node = 0;
    uint64_t count = 0;      // spill-work units / rows read / retry attempt
    uint64_t bytes = 0;      // spill_end only
    const char* site = nullptr;  // retry/fault sites are static strings
    std::string text;        // spill_end phase / fault message
  };

  ExecContext* parent_;
  QueryGuard* guard_;
  std::unique_ptr<FaultInjector> injector_;  // deterministic per-task fork
  std::vector<Op> ops_;
  uint64_t base_buffered_rows_;  // plan-wide account at construction
  uint64_t buffered_rows_ = 0;
  bool failed_ = false;
  Status status_;
};

}  // namespace qprog

#endif  // QPROG_EXEC_WORKER_POOL_H_
