// FusedChain: the monomorphized kernel behind the native NextBatch
// implementations (DESIGN.md §15).
//
// A chain is a stack of streaming operators — Filter, Project, Limit, in any
// order — over a SeqScan leaf. TryBuild recognizes the shape; Fill/ProduceOne
// then execute the whole chain inline, per output row, with no virtual
// dispatch and no intermediate Row copies (levels hand a `const Row*` up the
// chain; only a Project materializes, and the outermost Project writes
// straight into the batch slot).
//
// The kernel is an exact emulation of the tuple-at-a-time engine, not an
// approximation of it. Per emulated DoNext call it preserves, in order:
//   * the `!ctx->ok()` entry check and the ConsultFault at each level's
//     fault site (one consult per emulated call, including the final
//     end-of-stream call — fault schedules are hit-indexed);
//   * every ExecContext::CountRow, at the exact point the tuple engine makes
//     it — so work counters, guard charging, observation checkpoints and
//     budget trips land on the same row at every batch size;
//   * the operators' own progress state (cursor_/emitted_/produced_/
//     finished_), so FillProgressState snapshots taken inside a mid-batch
//     checkpoint are indistinguishable from tuple-at-a-time ones.
// A mid-batch fault or guard trip therefore splits the batch at the exact
// row it would have stopped a tuple run: the partial batch is delivered and
// the sticky error cascades to the driver.

#ifndef QPROG_EXEC_BATCH_H_
#define QPROG_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/row_batch.h"
#include "types/compare_op.h"
#include "types/value.h"

namespace qprog {

class SeqScan;

/// Batches smaller than this bypass the fused kernel and run through the
/// generic per-row adapter instead: at tiny vector sizes the per-batch
/// framing is pure overhead and fusion buys nothing, so the engine keeps the
/// classic vectorized-execution cost curve (vector size 1 ≈ tuple-at-a-time,
/// large vectors amortize dispatch — cf. MonetDB/X100).
inline constexpr size_t kMinFusedCapacity = 16;

class FusedChain {
 public:
  /// Builds a fused chain for the subtree rooted at `top` when it is a stack
  /// of {Filter, Project, Limit} over a SeqScan; returns null for any other
  /// shape (callers then fall back to the generic adapter). The operators are
  /// borrowed and must outlive the chain.
  static std::unique_ptr<FusedChain> TryBuild(PhysicalOperator* top);

  /// Appends rows to `out` until it is full, the stream ends, or the
  /// execution errors. Returns true iff it stopped because the batch filled
  /// (more rows may remain). Flushes per-node stats into `out->stats` when
  /// telemetry is attached.
  bool Fill(ExecContext* ctx, RowBatch* out);

  /// Produces exactly one row — one emulated top-level DoNext call. Used for
  /// the probe side of a batched HashJoin, where the join's own loop needs
  /// tuple granularity. Stats accumulate until FlushStats.
  bool ProduceOne(ExecContext* ctx, Row* out);

  /// Appends the accumulated per-node (rows, calls) deltas to `out->stats`
  /// when `record` is true, and zeroes the accumulators either way.
  void FlushStats(RowBatch* out, bool record);

 private:
  /// One non-leaf operator of the chain, outermost first.
  struct Level {
    PhysicalOperator* op = nullptr;
    OpKind kind = OpKind::kFilter;
    Row scratch;          // materialization target for a mid-chain Project
    uint64_t rows = 0;    // per-batch telemetry accumulators
    uint64_t calls = 0;
    // Specialized predicate for the `column <op> literal` shape (Filter
    // levels only): skips two virtual Eval calls and three Value
    // temporaries per row while computing the identical keep decision —
    // CompareExpr::Eval followed by the null-rejecting keep test reduces to
    // `!col.is_null() && EvalCompareOp(op, col.Compare(lit))` once the
    // literal is known non-null. The literal is borrowed from the
    // operator-owned expression tree.
    bool fast_pred = false;
    size_t pred_col = 0;
    CompareOp pred_op = CompareOp::kEq;
    const Value* pred_lit = nullptr;
    // Specialized projection when every expression is a plain column
    // reference: copies the columns directly instead of virtual Eval.
    bool fast_proj = false;
    std::vector<size_t> proj_cols;
  };

  FusedChain(SeqScan* scan, std::vector<Level> levels);

  /// Emulates one DoNext call at levels_[depth] (depth == levels_.size() is
  /// the scan). Returns 1 with *src pointing at the produced row, 0 at clean
  /// end-of-stream, -1 on error/abort (mirroring a tuple DoNext that returns
  /// false with !ctx->ok()). `top_dst` is the batch slot the outermost level
  /// may materialize into directly.
  int Produce(ExecContext* ctx, size_t depth, const Row** src, Row* top_dst);

  SeqScan* scan_;
  std::vector<Level> levels_;
  uint64_t scan_rows_ = 0;
  uint64_t scan_calls_ = 0;
  // Specialized form of the scan's merged predicate (same shape and
  // semantics as Level::fast_pred).
  bool scan_fast_pred_ = false;
  size_t scan_pred_col_ = 0;
  CompareOp scan_pred_op_ = CompareOp::kEq;
  const Value* scan_pred_lit_ = nullptr;
};

}  // namespace qprog

#endif  // QPROG_EXEC_BATCH_H_
