// FaultInjector: a seeded, deterministic fault-point registry for exercising
// the engine's error paths. Physical operators consult the injector (via
// ExecContext::ConsultFault) at named sites — "<operator>.<phase>" — and a
// fired fault becomes the execution's sticky error Status, propagating out of
// the plan exactly like a real operator failure.
//
// A fault spec can fire on the Nth hit of a site ("fail the scan at row N"),
// probabilistically per hit (seeded xoshiro draw, so runs replay bit-for-bit
// with the same seed), and/or inject deterministic latency (a fixed busy-wait
// that perturbs wall-clock timing without touching clocks or results).
//
// Reset() restores the injector to its initial state — hit counters zeroed,
// RNG reseeded — so the same injector replays identically across runs; the
// ProgressMonitor resets it at the start of every monitored run.

#ifndef QPROG_EXEC_FAULT_INJECTOR_H_
#define QPROG_EXEC_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace qprog {

/// Canonical fault-site names. One name per operator phase that can fail;
/// operators consult exactly these sites (tests iterate the list via
/// FaultInjector::KnownSites()).
namespace faults {
inline constexpr char kSeqScanOpen[] = "seqscan.open";
inline constexpr char kSeqScanNext[] = "seqscan.next";
inline constexpr char kIndexSeekNext[] = "indexseek.next";
inline constexpr char kFilterNext[] = "filter.next";
inline constexpr char kProjectNext[] = "project.next";
inline constexpr char kLimitNext[] = "limit.next";
inline constexpr char kNestedLoopsJoinNext[] = "nljoin.next";
inline constexpr char kIndexNestedLoopsJoinNext[] = "inljoin.next";
inline constexpr char kHashJoinOpen[] = "hashjoin.open";
inline constexpr char kHashJoinBuild[] = "hashjoin.build";
inline constexpr char kHashJoinProbe[] = "hashjoin.probe";
inline constexpr char kMergeJoinNext[] = "mergejoin.next";
inline constexpr char kSortOpen[] = "sort.open";
inline constexpr char kSortBuild[] = "sort.build";
inline constexpr char kHashAggregateBuild[] = "hashagg.build";
inline constexpr char kStreamAggregateNext[] = "streamagg.next";
// Exchange repartition sites (exec/exchange.h): `send` is consulted once per
// row a producer partition routes to a consumer bucket (on the producer's
// forked injector in pooled mode, so schedules are partition-keyed and
// pool-size-invariant); `recv` once per consumer-side Next call.
inline constexpr char kExchangeSend[] = "exchange.send";
inline constexpr char kExchangeRecv[] = "exchange.recv";
// Spill-layer I/O sites, consulted by the SpillManager (exec/spill.h) once
// per temp-file open / record write / record read. Transient faults armed
// here exercise the bounded-retry path; permanent ones the cleanup path.
inline constexpr char kSpillOpen[] = "spill.open";
inline constexpr char kSpillWrite[] = "spill.write";
inline constexpr char kSpillRead[] = "spill.read";
// Cross-run registry persistence sites (storage/registry_log.h), consulted
// through the log's fault hook once per open / append / compact. Transient
// faults exercise the deterministic retry path; permanent ones must surface
// as clean errors with no partial on-disk state.
inline constexpr char kRegistryOpen[] = "registry.open";
inline constexpr char kRegistryAppend[] = "registry.append";
inline constexpr char kRegistryCompact[] = "registry.compact";
}  // namespace faults

/// Failure taxonomy. A permanent fault latches: once fired, every later hit
/// of the site fails too (until Disarm or Reset) — the model of a corrupted
/// file or a dead disk. A transient fault fails for a bounded window of
/// `transient_failures` consecutive hits and then recovers — the model of a
/// full page cache or a flaky device that a bounded retry loop can ride out.
enum class FaultClass {
  kPermanent,
  kTransient,
};

/// One armed fault. `fail_on_hit` and `fail_probability` may be combined;
/// whichever condition is met first fires. A fired site stays armed (a
/// probabilistic fault can fire again on a later run after Reset()).
struct FaultSpec {
  std::string site;            // one of faults::k* (or any custom site name)
  uint64_t fail_on_hit = 0;    // fire on the Nth hit of the site; 0 disables
  double fail_probability = 0; // per-hit Bernoulli draw; 0 disables
  StatusCode code = StatusCode::kInternal;
  std::string message;         // defaults to "injected fault at <site>"
  uint64_t latency_spins = 0;  // busy-wait iterations added to every hit
  FaultClass fault_class = FaultClass::kPermanent;
  // Transient faults only: consecutive failing hits (the trigger included)
  // before the site recovers. Arm() defaults a transient fault's code to
  // kUnavailable so retry loops recognize it as retryable.
  uint64_t transient_failures = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or replaces) the fault for `spec.site`.
  void Arm(FaultSpec spec);

  /// Removes the fault armed at `site`, if any. Hit counting continues.
  void Disarm(const std::string& site);

  /// Called by the execution layer each time a site is reached. Returns a
  /// non-OK Status when the armed fault fires.
  Status OnHit(const char* site);

  /// Times `site` has been reached since construction or the last Reset().
  uint64_t hit_count(const std::string& site) const;

  /// Zeroes every hit counter and reseeds the RNG: the injector will replay
  /// the exact same fault schedule on the next run.
  void Reset();

  /// Deterministic per-task fork for parallel execution: a new injector with
  /// the same armed specs, fresh hit counters, and a seed mixed from this
  /// injector's seed and `task_key`. Task keys are derived from the task's
  /// *data identity* (partition index, run index) — never from thread IDs or
  /// scheduling order — so a parallel run replays the same fault schedule at
  /// every thread count. Fork the same key twice, get the same schedule.
  std::unique_ptr<FaultInjector> Fork(uint64_t task_key) const;

  uint64_t seed() const { return seed_; }

  /// Every canonical operator fault site, in a stable order.
  static const std::vector<std::string>& KnownSites();

 private:
  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    bool latched = false;           // permanent fault has fired
    uint64_t failing_remaining = 0; // transient failing window still open
  };

  uint64_t seed_;
  Rng rng_;
  std::unordered_map<std::string, SiteState> sites_;
};

}  // namespace qprog

#endif  // QPROG_EXEC_FAULT_INJECTOR_H_
